#!/usr/bin/env python3
"""Repo-specific invariant linter (stdlib ``ast`` only — runs anywhere).

Three invariants that generic linters don't enforce the way this
codebase needs them:

- **No bare/broad ``except`` in the engine core** (``src/repro/gpc``
  and ``src/repro/graph``): a ``try: ... except Exception`` in the
  evaluation path swallows :class:`DeadlineExceededError` /
  :class:`EvaluationLimitError` and turns a cancelled request into a
  silently-wrong answer. A deliberately-defensive site must carry the
  waiver comment ``lint: allow-broad-except`` on the ``except`` line
  (and should re-raise budget errors first).
- **No mutable default arguments** anywhere in ``src/repro``: the
  classic shared-``[]`` bug, but also a cache-poisoning hazard in a
  library whose plans are memoised and shared across threads.
- **No ``assert`` statements for control flow** anywhere in
  ``src/repro``: asserts vanish under ``python -O``; library-side
  validation must raise typed :mod:`repro.errors` exceptions.
  ``lint: allow-assert`` waives a site (e.g. a typing-only narrow).

Exit status 0 when clean, 1 with findings (one per line, parseable as
``path:line: CODE message``), 2 on usage/syntax errors.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import NamedTuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: Packages where broad excepts are banned (the evaluation path).
BROAD_EXCEPT_SCOPES = ("gpc", "graph")

BROAD_EXCEPT_WAIVER = "lint: allow-broad-except"
ASSERT_WAIVER = "lint: allow-assert"

#: Exception names considered "broad" when caught directly.
BROAD_NAMES = frozenset({"Exception", "BaseException"})

#: Call targets considered mutable default constructors.
MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


class Finding(NamedTuple):
    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _is_broad_exception(node: "ast.expr | None") -> bool:
    if node is None:
        return True  # bare ``except:``
    if isinstance(node, ast.Name):
        return node.id in BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(_is_broad_exception(item) for item in node.elts)
    return False


def _is_mutable_default(node: "ast.expr | None") -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_CALLS
    return False


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, lines: list[str], scope_broad: bool):
        self.path = path
        self.lines = lines
        self.scope_broad = scope_broad
        self.findings: list[Finding] = []

    def _line(self, lineno: int) -> str:
        return self.lines[lineno - 1] if 0 < lineno <= len(self.lines) else ""

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(Finding(self.path, node.lineno, code, message))

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if (
            self.scope_broad
            and _is_broad_exception(node.type)
            and BROAD_EXCEPT_WAIVER not in self._line(node.lineno)
        ):
            caught = "bare except" if node.type is None else "except Exception"
            self._add(
                node,
                "INV001",
                f"{caught} in the evaluation path swallows deadline/limit "
                f"errors; narrow it or waive with '{BROAD_EXCEPT_WAIVER}'",
            )
        self.generic_visit(node)

    def _check_defaults(self, node) -> None:
        arguments = node.args
        name = getattr(node, "name", "<lambda>")
        for default in [*arguments.defaults, *arguments.kw_defaults]:
            if _is_mutable_default(default):
                self._add(
                    default,
                    "INV002",
                    f"mutable default argument in {name}(); "
                    "use None and construct inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Assert(self, node: ast.Assert) -> None:
        if ASSERT_WAIVER not in self._line(node.lineno):
            self._add(
                node,
                "INV003",
                "assert used for control flow vanishes under python -O; "
                "raise a typed repro.errors exception instead",
            )
        self.generic_visit(node)


def check_source(
    source: str, path: str = "<string>", *, scope_broad_except: bool = True
) -> list[Finding]:
    """Lint one module's source text (the unit-testable core)."""
    tree = ast.parse(source, filename=path)
    checker = _Checker(path, source.splitlines(), scope_broad_except)
    checker.visit(tree)
    return sorted(checker.findings)


def _in_broad_scope(path: Path) -> bool:
    relative = path.relative_to(SRC_ROOT)
    return bool(relative.parts) and relative.parts[0] in BROAD_EXCEPT_SCOPES


def main(argv: "list[str] | None" = None) -> int:
    roots = [Path(arg) for arg in (argv or [])] or [SRC_ROOT]
    findings: list[Finding] = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            try:
                source = file.read_text(encoding="utf-8")
            except OSError as exc:
                print(f"error: cannot read {file}: {exc}", file=sys.stderr)
                return 2
            # Files outside src/repro (explicit arguments, e.g. in the
            # linter's own tests) get the strict scope.
            scoped = (
                _in_broad_scope(file)
                if file.is_relative_to(SRC_ROOT)
                else True
            )
            try:
                findings.extend(
                    check_source(
                        source,
                        str(file.relative_to(REPO_ROOT))
                        if file.is_relative_to(REPO_ROOT)
                        else str(file),
                        scope_broad_except=scoped,
                    )
                )
            except SyntaxError as exc:
                print(f"error: cannot parse {file}: {exc}", file=sys.stderr)
                return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} invariant violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
