"""Mutation-heavy serving: deltas, derived snapshots, footprint caching.

Run with: python examples/incremental_demo.py
"""

from repro import GraphService
from repro.gpc import query_footprint, parse_query
from repro.graph.generators import social_network


def main() -> None:
    # 1. Every mutation records a structured GraphDelta under a single
    #    version bump; the bounded log is what the incremental
    #    machinery consumes.
    service = GraphService(social_network(num_people=40, seed=2))
    graph = service.graph
    start = graph.version
    city = service.add_node("metropolis", ["City"], {"name": "Metropolis"})
    person = next(iter(graph.nodes_with_label("Person")))
    service.add_edge("commute", person, city, ["lives_in"])
    for delta in graph.deltas_since(start):
        print(f"  {delta!r}")
        print(f"    summary: {delta.summary().describe()}")

    # 2. Queries carry a read footprint derived from the typechecked
    #    pattern: which labels and property keys they can observe.
    queries = {
        "knows": "TRAIL (x:Person) -[e:knows]-> (y:Person)",
        "lives": "TRAIL (x:Person) -[:lives_in]-> (c:City)",
    }
    for name, text in queries.items():
        footprint = query_footprint(parse_query(text))
        print(f"  {name}: {footprint.describe()}")

    # 3. A mutation invalidates only the queries whose footprint
    #    intersects it; disjoint entries are re-stamped and keep
    #    hitting. Removing a node cascades as ONE delta.
    for text in queries.values():
        service.evaluate(text)  # warm both entries
    service.remove_node(city)  # touches City nodes + lives_in edges
    for name, text in queries.items():
        service.evaluate(text)
    stats = service.stats.result_cache
    print(f"== after remove_node(city): hits={stats.hits} "
          f"restamps={stats.restamps} invalidations={stats.invalidations} ==")

    # 4. Snapshot refreshes under small mutations are incremental:
    #    the previous version's indexes are patched, not rebuilt.
    before = graph.snapshot_derivations
    for i in range(5):
        service.add_node(f"visitor{i}", ["Person"])
        service.evaluate(queries["knows"])
    print(f"== {graph.snapshot_derivations - before} of 5 snapshot "
          f"refreshes served by delta derivation "
          f"(rebuilds total: {graph.snapshot_rebuilds}) ==")

    service.close()


if __name__ == "__main__":
    main()
