"""Network serving: the HTTP front end over a query service.

Run with: PYTHONPATH=src python examples/server_demo.py

Demonstrates :mod:`repro.server` — a stdlib-only asyncio HTTP/1.1
server wrapping :class:`repro.service.GraphService` (or
:class:`repro.cluster.ClusterService`, same surface). Answers travel
in a deterministic JSON encoding and decode back to the exact
``frozenset[Answer]`` the engine computed, so a remote client and a
local evaluation compare ``==``. Concurrent ``/query`` arrivals are
coalesced into one service batch; overload is shed with 429; shutdown
drains gracefully.
"""

import threading

from repro import GraphService
from repro.graph.generators import social_network
from repro.server import HttpServiceClient, serve_background

QUERIES = [
    "TRAIL (x:Person) -[e:knows]-> (y:Person)",
    "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
    "TRAIL (x:Person) -[:knows]-> (y:Person), TRAIL (y:Person) -[:lives_in]-> (c:City)",
]


def main() -> None:
    graph = social_network(num_people=14, friend_degree=2, seed=4)
    service = GraphService(graph)
    reference = {text: service.evaluate(text) for text in QUERIES}

    print("=== serving over HTTP ===")
    with serve_background(service) as handle:
        host, port = handle.address
        print(f"  listening on http://{host}:{port}")
        with HttpServiceClient(host, port) as client:
            print(f"  healthz: {client.healthz()}")

            print("\n=== HTTP answers decode frozenset-identical ===")
            for text in QUERIES:
                answers = client.query(text)
                status = "OK" if answers == reference[text] else "MISMATCH"
                print(f"  [{status}] {len(answers):4d} answers  {text}")

            print("\n=== mutations over the wire ===")
            client.mutate(
                [
                    {"op": "add_node", "key": "eve", "labels": ["Person"],
                     "properties": {"name": "Eve"}},
                    {"op": "add_node", "key": "mal", "labels": ["Person"],
                     "properties": {"name": "Mal"}},
                    {"op": "add_edge", "key": "eve-mal", "source": "eve",
                     "target": "mal", "labels": ["knows"]},
                ]
            )
            answers = client.query(QUERIES[0])
            print(
                f"  after add_edge: {len(answers)} answers "
                f"(was {len(reference[QUERIES[0]])}), "
                f"version {client.healthz()['version']}"
            )

        print("\n=== concurrent clients coalesce into batches ===")

        def hammer() -> None:
            with HttpServiceClient(host, port) as worker:
                for _ in range(5):
                    worker.query(QUERIES[0])

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = handle.server.stats.as_dict(service.stats)
        print(
            f"  queries: {stats['queries']}, "
            f"dispatches: {stats['dispatches']}, "
            f"coalesced: {stats['coalesced']}, "
            f"largest batch: {stats['max_batch']}, "
            f"rejected: {stats['rejected']}"
        )
        print(
            f"  service result-cache hit rate: "
            f"{stats['service']['result_cache']['hit_rate']:.2f}"
        )
    print("\n  drained: in-flight finished, service closed.")


if __name__ == "__main__":
    main()
