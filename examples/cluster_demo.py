"""Sharded cluster serving: scatter/gather over partitioned seeds.

Run with: PYTHONPATH=src python examples/cluster_demo.py

Demonstrates :class:`repro.cluster.ClusterService` — the same surface
as :class:`repro.service.GraphService`, but each query's start-node
space is partitioned into balanced cells and evaluated shard-by-shard
on an executor backend (serial here for the equivalence check, a
process pool for real CPU parallelism). GPC's set semantics makes the
merge lossless: answers from disjoint seed cells are disjoint and
union to exactly the unsharded answer set.
"""

from repro import GraphService
from repro.cluster import ClusterService
from repro.graph.generators import social_network

QUERIES = [
    "TRAIL (x:Person) -[e:knows]-> (y:Person)",
    "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
    "TRAIL (x:Person) -[:knows]-> (y:Person), TRAIL (y:Person) -[:lives_in]-> (c:City)",
]


def main() -> None:
    graph = social_network(num_people=14, friend_degree=2, seed=4)

    print("=== single service (the baseline) ===")
    single = GraphService(graph.copy())
    reference = {text: single.evaluate(text) for text in QUERIES}
    for text in QUERIES:
        print(f"  {len(reference[text]):4d} answers  {text}")
    single.close()

    print("\n=== sharded serving: how a query is split ===")
    with ClusterService(
        graph.copy(), backend="serial", num_workers=3
    ) as cluster:
        print(cluster.explain(QUERIES[1]))
        print()
        for text in QUERIES:
            answers = cluster.evaluate(text)
            status = "OK" if answers == reference[text] else "MISMATCH"
            print(f"  [{status}] {len(answers):4d} answers  {text}")
        stats = cluster.stats.as_dict()
        print(
            f"\n  shard tasks: {stats['scatters']}, "
            f"failures: {stats['shard_failures']}, "
            f"queries: {stats['queries']}"
        )

    print("\n=== process-pool backend (ships snapshot once/version) ===")
    with ClusterService(
        graph.copy(), backend="process", num_workers=2
    ) as cluster:
        for text in QUERIES:
            answers = cluster.evaluate(text)
            status = "OK" if answers == reference[text] else "MISMATCH"
            print(f"  [{status}] {len(answers):4d} answers  {text}")
        batch = cluster.evaluate_batch(QUERIES)
        print(
            f"  batch of {len(batch)} queries: "
            f"{'all equal' if all(b == reference[t] for b, t in zip(batch, QUERIES)) else 'MISMATCH'}"
        )
        stats = cluster.stats.as_dict()
        print(
            f"  snapshots shipped: {stats['snapshots_shipped']} "
            f"(one per graph version), workers seen: "
            f"{sorted(stats['per_worker'])}"
        )


if __name__ == "__main__":
    main()
