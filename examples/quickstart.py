"""Quickstart: build a property graph, parse GPC queries, evaluate.

Run with: python examples/quickstart.py
"""

from repro import GraphBuilder, Evaluator, parse_query


def main() -> None:
    # 1. Build a property graph: labeled nodes and edges, properties.
    graph = (
        GraphBuilder()
        .node("ann", "Person", name="Ann", team="db")
        .node("bob", "Person", name="Bob", team="db")
        .node("cia", "Person", name="Cia", team="ml")
        .node("dan", "Person", name="Dan", team="ml")
        .edge("ann", "bob", "knows", since=2015)
        .edge("bob", "cia", "knows", since=2018)
        .edge("cia", "dan", "knows", since=2020)
        .edge("dan", "ann", "knows", since=2021)
        .undirected("ann", "cia", "married")
        .build()
    )
    evaluator = Evaluator(graph)

    # 2. A single-hop pattern with variable bindings.
    print("== who knows whom ==")
    query = parse_query("TRAIL (x:Person) -[e:knows]-> (y:Person)")
    for answer in sorted(evaluator.evaluate(query), key=lambda a: repr(a.path)):
        x, y = answer["x"], answer["y"]
        print(f"  {graph.get_property(x, 'name')} knows "
              f"{graph.get_property(y, 'name')}")

    # 3. Reachability with a group variable: e binds the edge LIST.
    print("== knows-chains within the same team (condition) ==")
    query = parse_query(
        "p = TRAIL [ (x:Person) -[e:knows]->{1,} (y:Person) ]"
        " << x.team = y.team >>"
    )
    for answer in evaluator.evaluate(query):
        hops = len(answer["e"].entries)
        print(f"  {graph.get_property(answer['x'], 'name')} ->"
              f" {graph.get_property(answer['y'], 'name')}  ({hops} hops)")

    # 4. Shortest paths: one minimal witness set per endpoint pair.
    print("== shortest knows-paths from Ann ==")
    query = parse_query("SHORTEST (x:Person) -[:knows]->{1,} (y:Person)")
    for answer in evaluator.evaluate(query):
        if graph.get_property(answer["x"], "name") == "Ann":
            print(f"  to {graph.get_property(answer['y'], 'name')}: "
                  f"{len(answer.path)} hop(s)")

    # 5. Undirected edges and unions of directions.
    print("== married or knows (either direction) ==")
    query = parse_query(
        "TRAIL (x:Person) [~[:married]~ + -[:knows]-> + <-[:knows]-] (y:Person)"
    )
    print(f"  {len(evaluator.evaluate(query))} pairs")


if __name__ == "__main__":
    main()
