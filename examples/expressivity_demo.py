"""Theorem 11 live: baselines versus their GPC+ translations.

Evaluates an RPQ, an NRE, and a regular query with the classical
algorithms, then runs the constructive GPC+ translations through the
GPC engine and checks the answers coincide.

Run with: python examples/expressivity_demo.py
"""

from repro.baselines import (
    eval_nre,
    eval_regular_query,
    eval_rpq,
)
from repro.baselines.datalog import Program
from repro.baselines.nre import NREConcat, NREStar, NRESymbol, NRETest
from repro.baselines.regular_queries import RegularQuery, atom, clause, tatom
from repro.graph.generators import random_labeled_digraph
from repro.translate import (
    nre_to_gpc_plus,
    regular_query_to_gpc_plus,
    rpq_to_gpc_plus,
)


def main() -> None:
    graph = random_labeled_digraph(
        7, 12, edge_labels=("a", "b"), node_labels=("A", "B"), seed=99
    )
    print(f"graph: {graph}\n")

    # --- 2RPQ ---------------------------------------------------------
    expression = "a (b- | a)* b"
    baseline = eval_rpq(graph, expression)
    translated = rpq_to_gpc_plus(expression).evaluate(graph)
    print(f"2RPQ   {expression!r}")
    print(f"  baseline pairs: {len(baseline)}  gpc+ pairs: {len(translated)}"
          f"  agree: {baseline == translated}")

    # --- NRE: a[b+] — an a-edge whose target starts a b-path ----------
    expression = NREConcat(
        NRESymbol("a"), NRETest(NREConcat(NRESymbol("b"), NREStar(NRESymbol("b"))))
    )
    baseline = eval_nre(graph, expression)
    translated = nre_to_gpc_plus(expression).evaluate(graph)
    print("NRE    a[b b*]")
    print(f"  baseline pairs: {len(baseline)}  gpc+ pairs: {len(translated)}"
          f"  agree: {baseline == translated}")

    # --- Regular query: closure of a 2-step predicate ------------------
    query = RegularQuery(
        Program(
            (
                clause(
                    atom("Step", "x", "y"),
                    atom("a", "x", "z"),
                    atom("b", "z", "y"),
                ),
                clause(atom("Ans", "x", "y"), tatom("Step", "x", "y")),
            )
        )
    )
    baseline = eval_regular_query(graph, query)
    translated = regular_query_to_gpc_plus(query).evaluate(graph)
    print("RQ     Ans(x,y) :- Step+(x,y), Step(x,y) :- a(x,z), b(z,y)")
    print(f"  baseline pairs: {len(baseline)}  gpc+ pairs: {len(translated)}"
          f"  agree: {baseline == translated}")


if __name__ == "__main__":
    main()
