"""The query-service runtime: prepared queries, caching, batching.

Run with: python examples/service_demo.py
"""

from repro import GraphService, PreparedQuery
from repro.graph.generators import social_network


def main() -> None:
    # 1. Stand a service up over a graph. The service owns the graph
    #    and tracks its version for cache invalidation.
    service = GraphService(social_network(num_people=12, seed=1))
    print(f"== serving {service.graph!r} (version {service.version}) ==")

    # 2. Repeated queries hit the result cache: parse, typecheck,
    #    automaton compilation and adjacency indexing all happen once.
    query = "TRAIL (x:Person) -[e:knows]-> (y:Person)"
    for round_number in (1, 2, 3):
        answers = service.evaluate(query)
        stats = service.stats.result_cache
        print(f"  round {round_number}: {len(answers)} answers "
              f"(cache hits={stats.hits}, misses={stats.misses})")

    # 3. Mutations bump the graph version; stale cache entries can
    #    never be served again.
    person = next(iter(service.graph.nodes_with_label("Person")))
    newcomer = service.add_node("newbie", ["Person"], {"name": "Newbie"})
    service.add_edge("enew", person, newcomer, ["knows"], {"since": 2026})
    print(f"== after mutation (version {service.version}) ==")
    print(f"  {len(service.evaluate(query))} answers "
          f"(one more than before)")

    # 4. Prepared queries compile once and run against any graph.
    prepared = PreparedQuery("SHORTEST (x:Person) -[:knows]->{1,} (y:Person)")
    for people in (6, 9):
        graph = social_network(num_people=people, seed=7)
        print(f"  prepared on {people}-person network: "
              f"{len(prepared.execute(graph))} shortest answers")

    # 5. Batches fan out over a thread pool; results stay in order.
    batch = service.evaluate_batch([
        "TRAIL (x:Person) -[:lives_in]-> (c:City)",
        "SIMPLE (x:Person) ~[:married]~ (y:Person)",
        query,
    ])
    print("== batch ==")
    print(f"  result sizes: {[len(r) for r in batch]}")

    # 6. Serving metrics: hit rates and latency percentiles.
    summary = service.stats.as_dict()
    print("== stats ==")
    print(f"  queries={summary['queries']} "
          f"result hit_rate={summary['result_cache']['hit_rate']:.2f} "
          f"p50={summary['latency']['p50_s'] * 1e6:.0f}us "
          f"p99={summary['latency']['p99_s'] * 1e6:.0f}us")
    service.close()


if __name__ == "__main__":
    main()
