"""Observability: request tracing, engine work counters, /metrics.

Run with: PYTHONPATH=src python examples/observability_demo.py

Demonstrates the :mod:`repro.obs` layer end to end over the HTTP
server:

- a client-chosen ``X-Trace-Id`` is honoured, echoed, and resolves to
  the request's full span tree via ``GET /trace?id=...`` — transport,
  coalescer, service and engine stages with their timings and work
  counters;
- ``deadline_ms`` bounds server-side evaluation: a blown budget
  answers 504 and the partial trace is kept (error traces bypass
  sampling);
- ``GET /metrics`` serves every layer's counters in one Prometheus
  text scrape, including true fixed-bucket latency histograms;
- ``explain(analyze=True)`` runs the query and appends the observed
  engine work — and the planner's estimated-vs-actual table — to the
  planner summary;
- ``GET /insights`` aggregates the whole workload by query
  fingerprint: calls, cache outcomes, latency, engine work, and how
  far the planner's estimates sat from observed reality.
"""

from repro import GraphService
from repro.graph.generators import social_network
from repro.server import HttpServiceClient, HttpServiceError, serve_background

QUERY = "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)"


def show_tree(node: dict, depth: int = 1) -> None:
    duration_ms = node["duration_s"] * 1000
    attrs = node["attributes"]
    extras = ", ".join(
        f"{key}={attrs[key]}"
        for key in ("hit", "answers", "coalesce_batch", "status")
        if key in attrs
    )
    line = f"{'  ' * depth}{node['name']}  {duration_ms:8.3f}ms"
    if extras:
        line += f"  ({extras})"
    if node.get("error"):
        line += f"  !! {node['error']}"
    print(line)
    for child in node["children"]:
        show_tree(child, depth + 1)


def main() -> None:
    graph = social_network(num_people=24, friend_degree=2, seed=4)
    with serve_background(GraphService(graph)) as handle:
        host, port = handle.address
        print(f"serving on http://{host}:{port}")
        with HttpServiceClient(host, port) as client:
            print("\n=== a traced request, stage by stage ===")
            client.query(QUERY, trace_id="0ddba11c0ffee000")
            tree = client.trace("0ddba11c0ffee000")["trace"]
            show_tree(tree)

            print("\n=== engine work counters on the eval span ===")
            eval_span = next(
                c for c in tree["children"] if c["name"] == "service.eval"
            )
            for name, value in sorted(eval_span["attributes"].items()):
                print(f"  {name}: {value}")

            print("\n=== a blown deadline: 504, partial trace kept ===")
            try:
                # use_cache=False: a result-cache hit would (correctly)
                # beat any deadline — force a real evaluation.
                client.query(
                    QUERY,
                    use_cache=False,
                    deadline_ms=0.001,
                    trace_id="dead11nedead11ne",
                )
            except HttpServiceError as exc:
                print(f"  {exc}")
            show_tree(client.trace("dead11nedead11ne")["trace"])

            print("\n=== explain --analyze over the wire ===")
            for line in client.explain(QUERY, analyze=True).splitlines():
                print(f"  {line}")

            print("\n=== one /metrics scrape (excerpt) ===")
            wanted = (
                "repro_server_queries",
                "repro_server_timeouts",
                "repro_service_result_cache_hits",
                "repro_engine_nfa_states_expanded",
                "repro_engine_deepening_rounds",
                "repro_traces_recorded",
                "repro_traces_errors",
            )
            for line in client.metrics().splitlines():
                if line.startswith(wanted):
                    print(f"  {line}")

            print("\n=== trace store accounting ===")
            counters = client.trace()["counters"]
            print(
                f"  seen {counters['seen']}, recorded "
                f"{counters['recorded']}, errors {counters['errors']}, "
                f"slow {counters['slow']}"
            )

            print("\n=== /insights: the workload by fingerprint ===")
            # Add a constant-conditioned shape: the two variants
            # collapse into one fingerprint (constants bucket to ?).
            for name in ("alice", "bob"):
                client.query(
                    "TRAIL [ (x:Person) -[:knows]-> (y:Person) ] "
                    f"<< x.name = '{name}' >>"
                )
            payload = client.insights(sort="calls")
            for entry in payload["insights"]:
                plan = entry["plan"]
                print(
                    f"  [{entry['fingerprint']}] {entry['query']}\n"
                    f"    calls {entry['calls']}, errors "
                    f"{entry['errors']}, answers {entry['answers_total']}, "
                    f"cache hits {entry['cache']['hits']}/"
                    f"misses {entry['cache']['misses']}\n"
                    f"    plan: est answers "
                    f"{plan['estimated_answers_mean']:.1f} vs observed "
                    f"{plan['observed_answers_mean']:.1f} -> misestimate "
                    f"{plan['misestimate_factor']:.1f}x "
                    f"(worst {plan['worst_factor']:.1f}x)"
                )

            print("\n=== worst planner misestimates first ===")
            for entry in client.insights(sort="misestimate", limit=3)[
                "insights"
            ]:
                print(
                    f"  {entry['plan']['misestimate_factor']:6.1f}x  "
                    f"{entry['query']}"
                )
            registry = payload["counters"]
            print(
                f"  ({registry['fingerprints']} fingerprints, "
                f"{registry['records']} records, "
                f"{registry['evictions']} evictions)"
            )

            print("\n=== the same profiles as /metrics series ===")
            for line in client.metrics().splitlines():
                if line.startswith("repro_insights_calls"):
                    print(f"  {line}")


if __name__ == "__main__":
    main()
