"""Static query analysis: unsat proofs, rewrites and lint diagnostics.

Run with: PYTHONPATH=src python examples/lint_demo.py

Demonstrates :mod:`repro.gpc.analysis` — the compositional static
analyzer that runs before every evaluation. It proves some queries
empty on *every* graph (the engine then short-circuits without touching
the snapshot), simplifies conditions, prunes dead union branches, and
emits structured ``Diagnostic`` records for query smells. The same
diagnostics are served by ``GraphService.lint``, ``GET /lint`` on the
HTTP server, and the ``python -m repro.lint`` CLI that CI runs over
``examples/lint_demo.gpc``.
"""

from repro import GraphService
from repro.gpc.analysis import analyze_query, lint_query, render_diagnostics
from repro.gpc.parser import parse_query
from repro.graph.generators import social_network

SHOWCASE = [
    # A contradiction the saturation proves empty: short-circuits.
    "TRAIL [(x:Person) -[:knows]-> (y)] << x.age = 30 AND x.age = 40 >>",
    # One dead union branch; the query itself still runs.
    "TRAIL [(x:Person) << x.age = 1 AND x.age = 2 >> + (x:Person)] -[:knows]-> (y)",
    # Redundant conjunct and a double negation: simplified in place.
    "TRAIL [(x:Person) -[:knows]-> (y)] << x.age = 30 AND (x.age = 30 AND NOT (NOT y.age = 25)) >>",
    # Unanchored shortest: a warning, not a rewrite.
    "SHORTEST (x) -[:knows]->{1,} (y)",
    # Malformed input: lint_query is total, GPC000 instead of a raise.
    "TRAIL (x:",
]


def main() -> None:
    print("=== analyzer verdicts ===")
    for text in SHOWCASE:
        print(f"\nquery: {text}")
        diagnostics = lint_query(text)
        print(render_diagnostics(diagnostics))
        if any(d.severity == "error" for d in diagnostics):
            continue
        verdict = analyze_query(parse_query(text))
        if verdict.provably_empty:
            print("  => provably empty: evaluation never touches the graph")
        elif verdict.simplified is not verdict.query:
            print(
                f"  => rewritten "
                f"({verdict.conditions_simplified} condition(s) simplified, "
                f"{verdict.dead_branches_pruned} branch(es) pruned)"
            )

    print("\n=== the engine acts on the verdicts ===")
    graph = social_network(num_people=14, friend_degree=2, seed=4)
    with GraphService(graph) as service:
        empty = SHOWCASE[0]
        answers = service.evaluate(empty)
        print(f"  {len(answers)} answers for the provably-empty query")
        print(
            "  service.lint codes:",
            [d.code for d in service.lint(empty)],
        )
        print("\n" + service.explain(SHOWCASE[1]))


if __name__ == "__main__":
    main()
