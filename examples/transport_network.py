"""Journey planning on a transport network.

Stations joined by bidirectional ``link`` edges carrying ``line`` and
``minutes`` properties. Demonstrates shortest-path queries, trail
semantics (no track segment reused), and property conditions on
endpoints.

Run with: python examples/transport_network.py
"""

from repro import Evaluator, parse_query
from repro.graph.generators import transport_network
from repro.graph.ids import NodeId


def main() -> None:
    graph = transport_network(lines=3, stops_per_line=4, seed=4)
    evaluator = Evaluator(graph)
    print(f"network: {graph}")

    # Shortest hop-count routes from the hub to every station.
    print("\n== shortest routes from the hub ==")
    query = parse_query("SHORTEST (s:Hub) -[:link]->{1,} (t:Station)")
    distances = {}
    for answer in evaluator.evaluate(query):
        name = graph.get_property(answer["t"], "name")
        distances[name] = len(answer.path)
    for name in sorted(distances):
        print(f"  {name}: {distances[name]} hop(s)")

    # Trails vs simple routes of realistic length (at most 5 hops):
    # trail forbids reusing a track segment, simple forbids revisiting
    # a station, so simple routes are never more numerous.
    print("\n== route counts hub -> end of line 0 (max 5 hops) ==")
    target = "l0s3"
    for restrictor in ("TRAIL", "SIMPLE"):
        query = parse_query(
            f"{restrictor} (s:Hub) -[:link]->{{1,5}} (t:Station)"
        )
        answers = [
            a
            for a in evaluator.evaluate(query)
            if a["t"] == NodeId(target)
        ]
        print(f"  {restrictor.lower()} routes: {len(answers)}")

    # Zone-restricted travel: start and end in the same zone.
    print("\n== same-zone connections (2 hops) ==")
    query = parse_query(
        "TRAIL [ (a:Station) -[:link]-> () -[:link]-> (b:Station) ]"
        " << a.zone = b.zone >>"
    )
    print(f"  {len(evaluator.evaluate(query))} connections")

    # Named paths: return the witnessing route itself.
    print("\n== a concrete shortest route (named path) ==")
    query = parse_query("r = SHORTEST (s:Hub) -[:link]->{1,} (t:Station)")
    answer = max(evaluator.evaluate(query), key=lambda a: len(a.path))
    stops = [graph.get_property(n, "name") for n in answer["r"].nodes]
    print("  " + " -> ".join(stops))


if __name__ == "__main__":
    main()
