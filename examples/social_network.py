"""Social-network analytics with GPC.

A generated social graph (Person/City nodes; knows/lives_in/married
edges) queried for friend recommendations, mutual-acquaintance
triangles, and an optional pattern in the style of the paper's
Section 3 example.

Run with: python examples/social_network.py
"""

from repro import Evaluator, parse_query
from repro.graph.generators import social_network
from repro.gpc.values import Nothing


def names(graph, answer, *variables):
    return tuple(
        graph.get_property(answer[v], "name") if answer[v] != Nothing else "-"
        for v in variables
    )


def main() -> None:
    graph = social_network(num_people=14, num_cities=3, friend_degree=2, seed=11)
    evaluator = Evaluator(graph)
    print(f"graph: {graph}")

    # Friend recommendation: friends-of-friends who are not yet friends
    # (the non-friendship check is approximated by requiring distinct
    # endpoints; GPC core has no negation over patterns).
    print("\n== friend-of-friend pairs (2 hops, same city) ==")
    query = parse_query(
        "TRAIL (x:Person) -[:knows]-> (:Person) -[:knows]-> (y:Person),"
        " TRAIL (x) -[:lives_in]-> (c:City),"
        " TRAIL (y) -[:lives_in]-> (c)"
    )
    answers = evaluator.evaluate(query)
    shown = 0
    for answer in answers:
        if answer["x"] != answer["y"] and shown < 8:
            x, y = names(graph, answer, "x", "y")
            city = graph.get_property(answer["c"], "name")
            print(f"  {x} ~ {y} (both in {city})")
            shown += 1
    print(f"  ... {len(answers)} raw matches")

    # Triangles of mutual acquaintance: an implicit join via repeated x.
    print("\n== knows-triangles ==")
    query = parse_query(
        "SIMPLE (x:Person) -[:knows]-> (:Person) -[:knows]-> "
        "(:Person) -[:knows]-> ()"
    )
    triangles = [
        a for a in evaluator.evaluate(query) if a.path.src == a.path.tgt
    ]
    # A simple path cannot close a cycle; count trail-closed triangles
    # instead.
    query = parse_query(
        "TRAIL (x:Person) -[:knows]-> () -[:knows]-> () -[:knows]-> (x)"
    )
    triangles = evaluator.evaluate(query)
    print(f"  {len(triangles)} directed triangles")

    # Optional pattern (paper, Section 3): a knows-edge, optionally
    # preceded by an incoming edge from a married partner.
    print("\n== knows-edges with optional married in-partner ==")
    query = parse_query(
        "TRAIL (x:Person) -[:knows]-> (z:Person) "
        "[[~[:married]~ (u:Person)] + [()]]"
    )
    answers = evaluator.evaluate(query)
    with_partner = sum(1 for a in answers if a["u"] != Nothing)
    without = sum(1 for a in answers if a["u"] == Nothing)
    print(f"  {with_partner} with a married partner, {without} without")

    # Shortest social distance from one person to everyone.
    print("\n== social distances from Person-0 ==")
    query = parse_query("SHORTEST (x:Person) -[:knows]->{1,} (y:Person)")
    for answer in sorted(
        evaluator.evaluate(query), key=lambda a: len(a.path)
    ):
        if graph.get_property(answer["x"], "name") == "Person-0":
            y = graph.get_property(answer["y"], "name")
            print(f"  {y}: {len(answer.path)}")


if __name__ == "__main__":
    main()
