"""A tour of the calculus following the paper, section by section.

Each stop reproduces a construction from the paper on a small graph:
the Section 3 examples, the Section 4 type system at work, the three
collect approaches of Section 5, and the Section 7 restrictor-placement
counterexample.

Run with: python examples/standards_tour.py
"""

from repro import CollectMode, EngineConfig, Evaluator, GraphBuilder, parse_query
from repro.errors import CollectError, GPCTypeError
from repro.extensions.mixed_restrictors import section7_anomaly
from repro.gpc.parser import parse_pattern
from repro.gpc.typing import infer_schema


def section3_examples() -> None:
    print("== Section 3: patterns and binding ==")
    graph = (
        GraphBuilder()
        .node("a", "A", k=7)
        .node("b", "B")
        .node("c", "C")
        .edge("a", "b", key="y1")
        .edge("c", "b", key="y2")
        .edge("c", "a", key="y3")
        .build()
    )
    evaluator = Evaluator(graph)

    # The cyclic pattern with an implicit join on x1.
    pattern = "(x1:A) -[y1]-> (x2:B) <-[y2]- (x3:C) -[y3]-> (x1)"
    matches = evaluator.eval_pattern(parse_pattern(pattern))
    print(f"  cyclic pattern: {len(matches)} match(es)")

    # Group variables: y binds to a LIST of edges.
    query = parse_query("TRAIL (x:A) -[y]->{1,} (z:B)")
    for answer in evaluator.evaluate(query):
        print(f"  group variable y -> {len(answer['y'].entries)} edge(s)")


def section4_typing() -> None:
    print("\n== Section 4: the type system rejects ill-typed patterns ==")
    for text in ["(x) -[x]-> ()", "[(x:A) -[y]->{1,} (z:B)] << x.a = y.a >>"]:
        try:
            infer_schema(parse_pattern(text))
            print(f"  UNEXPECTEDLY ACCEPTED: {text}")
        except GPCTypeError as error:
            print(f"  rejected {text!r}:")
            print(f"    {error}")

    schema = infer_schema(parse_pattern("[(x) -> (z)] + [-> (z)]"))
    print(f"  one-sided union variable: x : {schema['x']}")


def section5_collect() -> None:
    print("\n== Section 5: the three collect approaches ==")
    graph = GraphBuilder().node("a", "A").node("b", "B").edge("a", "b").build()
    pattern = parse_pattern("(x){1,}")  # body may match edgeless paths
    for mode in CollectMode:
        config = EngineConfig(collect_mode=mode)
        try:
            matches = Evaluator(graph, config).eval_pattern(pattern)
            print(f"  {mode.value:>10}: {len(matches)} match(es)")
        except CollectError as error:
            print(f"  {mode.value:>10}: rejected ({error})")


def section7_restrictors() -> None:
    print("\n== Section 7: restrictor placement counterexample ==")
    report = section7_anomaly()
    print(f"  true shortest A->B length: {report.true_shortest_length}")
    print(f"  local-shortest semantics answers: {report.local_semantics_answers}")
    print(f"  GQL-rationale semantics answers: {report.global_semantics_answers}")
    print(f"  witness length under trail[shortest...]: "
          f"{report.global_witness_length}")
    print(f"  anomaly (shortest witness is not shortest): "
          f"{report.anomaly_present}")


def main() -> None:
    section3_examples()
    section4_typing()
    section5_collect()
    section7_restrictors()


if __name__ == "__main__":
    main()
