"""Regex parsing, Thompson construction, and graph products."""

import pytest

from repro.direction import Direction
from repro.errors import EvaluationLimitError, ParseError
from repro.graph.builder import GraphBuilder
from repro.graph.generators import chain_graph, cycle_graph
from repro.graph.ids import NodeId as N
from repro.automata.nfa import EdgeStep, NFABuilder, NodeTest
from repro.automata.product import (
    accepted_pairs,
    min_accepting_lengths,
    pairs_and_distances,
)
from repro.automata.regex import (
    Concat,
    Epsilon,
    Option,
    Plus,
    Star,
    Symbol,
    Union,
    parse_regex,
    regex_size,
    regex_to_nfa,
)


class TestRegexParser:
    def test_symbol(self):
        assert parse_regex("abc") == Symbol("abc")

    def test_inverse_symbol(self):
        assert parse_regex("a-") == Symbol("a", inverse=True)

    def test_concat_by_juxtaposition(self):
        assert parse_regex("a b") == Concat(Symbol("a"), Symbol("b"))
        assert parse_regex("ab c") == Concat(Symbol("ab"), Symbol("c"))

    def test_union(self):
        assert parse_regex("a | b") == Union(Symbol("a"), Symbol("b"))

    def test_postfix_operators(self):
        assert parse_regex("a*") == Star(Symbol("a"))
        assert parse_regex("a+") == Plus(Symbol("a"))
        assert parse_regex("a?") == Option(Symbol("a"))

    def test_precedence(self):
        # union < concat < postfix
        parsed = parse_regex("a b* | c")
        assert isinstance(parsed, Union)
        assert parsed.left == Concat(Symbol("a"), Star(Symbol("b")))

    def test_parentheses_and_epsilon(self):
        assert parse_regex("(a | b) c") == Concat(
            Union(Symbol("a"), Symbol("b")), Symbol("c")
        )
        assert parse_regex("()") == Epsilon()

    @pytest.mark.parametrize("text", ["", "(", "a |", "*", "a)("])
    def test_errors(self, text):
        with pytest.raises(ParseError):
            parse_regex(text)

    def test_regex_size(self):
        assert regex_size(parse_regex("(a b-)* | c")) == 6


class TestProductEvaluation:
    def test_single_symbol_on_chain(self):
        graph = chain_graph(3, edge_label="a")
        pairs = accepted_pairs(graph, regex_to_nfa(parse_regex("a")))
        assert pairs == frozenset(
            {(N("n0"), N("n1")), (N("n1"), N("n2")), (N("n2"), N("n3"))}
        )

    def test_star_reaches_everything_on_cycle(self):
        graph = cycle_graph(3, edge_label="a")
        pairs = accepted_pairs(graph, regex_to_nfa(parse_regex("a*")))
        assert len(pairs) == 9

    def test_inverse_traverses_backward(self):
        graph = chain_graph(2, edge_label="a")
        pairs = accepted_pairs(graph, regex_to_nfa(parse_regex("a-")))
        assert (N("n1"), N("n0")) in pairs
        assert (N("n0"), N("n1")) not in pairs

    def test_distances_are_minimal(self):
        graph = cycle_graph(4, edge_label="a")
        distances = pairs_and_distances(graph, regex_to_nfa(parse_regex("a+")))
        assert distances[(N("n0"), N("n1"))] == 1
        assert distances[(N("n0"), N("n3"))] == 3
        # via the cycle, returning home costs 4
        assert distances[(N("n0"), N("n0"))] == 4

    def test_epsilon_accepts_at_zero(self):
        graph = chain_graph(1)
        best = min_accepting_lengths(graph, regex_to_nfa(Epsilon()), N("n0"))
        assert best == {N("n0"): 0}

    def test_option(self):
        graph = chain_graph(2, edge_label="a")
        pairs = accepted_pairs(graph, regex_to_nfa(parse_regex("a?")))
        assert (N("n0"), N("n0")) in pairs
        assert (N("n0"), N("n1")) in pairs
        assert (N("n0"), N("n2")) not in pairs

    def test_mixed_two_way_language(self):
        # a b-: forward a then backward b.
        graph = (
            GraphBuilder()
            .edge("u", "m", "a")
            .edge("w", "m", "b")
            .build()
        )
        pairs = accepted_pairs(graph, regex_to_nfa(parse_regex("a b-")))
        assert pairs == frozenset({(N("u"), N("w"))})


class TestNFABuilder:
    def test_state_limit_enforced(self):
        builder = NFABuilder(state_limit=3)
        builder.new_state()
        builder.new_state()
        builder.new_state()
        with pytest.raises(EvaluationLimitError):
            builder.new_state()

    def test_node_test_gates_zero_weight_move(self):
        graph = (
            GraphBuilder().node("a", "X").node("b").edge("a", "b", "e").build()
        )
        builder = NFABuilder()
        s0, s1, s2 = builder.new_state(), builder.new_state(), builder.new_state()
        builder.add_node_test(s0, NodeTest("X"), s1)
        builder.add_edge_step(s1, EdgeStep(Direction.FORWARD, "e"), s2)
        nfa = builder.build(s0, {s2})
        assert min_accepting_lengths(graph, nfa, N("a")) == {N("b"): 1}
        assert min_accepting_lengths(graph, nfa, N("b")) == {}

    def test_epsilon_closure(self):
        builder = NFABuilder()
        s0, s1, s2 = builder.new_state(), builder.new_state(), builder.new_state()
        builder.add_epsilon(s0, s1)
        builder.add_epsilon(s1, s2)
        nfa = builder.build(s0, {s2})
        assert nfa.epsilon_closure(frozenset({s0})) == frozenset({s0, s1, s2})

    def test_transition_iteration(self):
        builder = NFABuilder()
        s0, s1 = builder.new_state(), builder.new_state()
        builder.add_epsilon(s0, s1)
        builder.add_edge_step(s0, EdgeStep(Direction.FORWARD, None), s1)
        nfa = builder.build(s0, {s1})
        assert nfa.num_transitions == 2


class TestGPCAbstraction:
    def test_condition_dropped(self):
        from repro.gpc.abstraction import compile_pattern_abstraction
        from repro.gpc.parser import parse_pattern

        graph = (
            GraphBuilder().node("a", k=1).node("b", k=2).edge("a", "b", "e").build()
        )
        pattern = parse_pattern("[(x) -> (y)] << x.k = y.k >>")
        nfa = compile_pattern_abstraction(pattern)
        # The abstraction ignores the (unsatisfiable) condition.
        assert (N("a"), N("b")) in accepted_pairs(graph, nfa)

    def test_repetition_unrolled_exactly(self):
        from repro.gpc.abstraction import compile_pattern_abstraction
        from repro.gpc.parser import parse_pattern

        graph = chain_graph(5, edge_label="e")
        nfa = compile_pattern_abstraction(parse_pattern("->{2,3}"))
        distances = pairs_and_distances(graph, nfa)
        assert distances[(N("n0"), N("n2"))] == 2
        assert distances[(N("n0"), N("n3"))] == 3
        assert (N("n0"), N("n4")) not in distances

    def test_huge_bounds_hit_state_limit(self):
        from repro.gpc.abstraction import compile_pattern_abstraction
        from repro.gpc.parser import parse_pattern

        with pytest.raises(EvaluationLimitError):
            compile_pattern_abstraction(
                parse_pattern("->{100000,}"), state_limit=1000
            )
