"""The wire codec: exact round trips, deterministic encodings,
malformed-payload rejection."""

from __future__ import annotations

import json

import pytest

from repro.errors import WireError
from repro.gpc.assignments import Assignment
from repro.gpc.engine import Evaluator
from repro.gpc.parser import parse_query
from repro.gpc.values import GroupValue, Nothing
from repro.graph.builder import GraphBuilder
from repro.graph.generators import social_network
from repro.graph.ids import DirectedEdgeId, NodeId, UndirectedEdgeId
from repro.graph.paths import Path
from repro.server import wire

#: Queries chosen to exercise every value sort an answer can carry:
#: node/edge references, group values from repetition, undirected
#: edges, and joins (multi-path answer tuples).
QUERIES = [
    "TRAIL (x:Person) -[e:knows]-> (y:Person)",
    "TRAIL (x:Person) [-[e:knows]->]{1,2} (y:Person)",
    "SIMPLE (x:Person) ~[m:married]~ (y:Person)",
    "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
    "p = TRAIL (x:Person) -[:knows]-> (y:Person)",
    "TRAIL (x:Person) -[:knows]-> (y:Person), "
    "TRAIL (y:Person) -[:lives_in]-> (c:City)",
]


class TestIdRoundTrip:
    @pytest.mark.parametrize(
        "element",
        [
            NodeId("a"),
            NodeId(7),
            NodeId(2.5),
            NodeId(False),
            NodeId(None),
            NodeId(("composite", 3)),
            NodeId(("nested", ("deep", 1))),
            DirectedEdgeId("e1"),
            UndirectedEdgeId(("u", 0)),
        ],
    )
    def test_round_trip(self, element):
        encoded = wire.encode_id(element)
        json.dumps(encoded)  # JSON-representable
        decoded = wire.decode_id(encoded)
        assert decoded == element
        assert type(decoded) is type(element)

    def test_sorts_stay_disjoint(self):
        # node("1") and dedge("1") must not collapse on the wire.
        node = wire.decode_id(wire.encode_id(NodeId("1")))
        edge = wire.decode_id(wire.encode_id(DirectedEdgeId("1")))
        assert node != edge

    def test_int_vs_float_keys_preserved(self):
        as_int = wire.decode_id(wire.encode_id(NodeId(1)))
        as_float = wire.decode_id(wire.encode_id(NodeId(1.0)))
        assert type(as_int.key) is int
        assert type(as_float.key) is float

    @pytest.mark.parametrize("bad", [{"z": 1}, {}, {"n": 1, "d": 2}, [1], "n"])
    def test_malformed_ids_rejected(self, bad):
        with pytest.raises(WireError):
            wire.decode_id(bad)

    def test_unencodable_key_rejected(self):
        with pytest.raises(WireError):
            wire.encode_id(NodeId(frozenset({1})))


class TestValueRoundTrip:
    def test_nothing(self):
        assert wire.decode_value(wire.encode_value(Nothing)) is Nothing

    def test_path(self):
        path = Path.of(
            NodeId("a"), DirectedEdgeId("e"), NodeId("b"),
            UndirectedEdgeId("u"), NodeId("c"),
        )
        assert wire.decode_value(wire.encode_value(path)) == path

    def test_group(self):
        group = GroupValue(
            (
                (Path.node(NodeId("a")), NodeId("a")),
                (
                    Path.of(NodeId("a"), DirectedEdgeId("e"), NodeId("b")),
                    DirectedEdgeId("e"),
                ),
            )
        )
        assert wire.decode_value(wire.encode_value(group)) == group

    def test_empty_group(self):
        assert wire.decode_value(wire.encode_value(GroupValue())) == GroupValue()

    def test_broken_alternation_rejected(self):
        payload = {
            "p": [{"n": "a"}, {"n": "b"}]  # node where an edge must be
        }
        with pytest.raises(WireError):
            wire.decode_value(payload)

    @pytest.mark.parametrize("bad", [{}, 5, None, {"g": {"not": "a list"}}])
    def test_malformed_values_rejected(self, bad):
        with pytest.raises(WireError):
            wire.decode_value(bad)


class TestAnswerSetRoundTrip:
    @pytest.fixture(scope="class")
    def graph(self):
        return social_network(num_people=12, friend_degree=2, seed=5)

    @pytest.mark.parametrize("text", QUERIES)
    def test_engine_answers_round_trip(self, graph, text):
        answers = Evaluator(graph).evaluate(parse_query(text))
        payload = wire.encode_answers(answers)
        blob = json.dumps(payload)  # wire-representable
        assert wire.decode_answers(json.loads(blob)) == answers

    @pytest.mark.parametrize("text", QUERIES)
    def test_encoding_is_deterministic(self, graph, text):
        answers = Evaluator(graph).evaluate(parse_query(text))
        # Rebuild the frozenset in a different insertion order: the
        # serialised bytes must not change.
        reordered = frozenset(sorted(answers, key=repr, reverse=True))
        first = json.dumps(wire.encode_answers(answers), sort_keys=True)
        second = json.dumps(wire.encode_answers(reordered), sort_keys=True)
        assert first == second

    def test_empty_answer_set(self):
        payload = wire.encode_answers(frozenset())
        assert payload["count"] == 0
        assert wire.decode_answers(payload) == frozenset()

    def test_answer_with_zero_paths_rejected(self):
        with pytest.raises(WireError):
            wire.decode_answer({"paths": [], "mu": {}})

    def test_format_checked(self):
        with pytest.raises(WireError):
            wire.decode_answers({"format": "something-else", "answers": []})
        with pytest.raises(WireError):
            wire.decode_answers({"answers": []})
        with pytest.raises(WireError):
            wire.decode_answers([])

    def test_assignment_variables_preserved(self):
        graph = (
            GraphBuilder()
            .node("a", "P")
            .node("b", "P")
            .edge("a", "b", "r")
            .build()
        )
        answers = Evaluator(graph).evaluate(
            parse_query("TRAIL (x:P) -[e:r]-> (y:P)")
        )
        decoded = wire.decode_answers(wire.encode_answers(answers))
        answer = next(iter(decoded))
        assert answer["x"] == NodeId("a")
        assert isinstance(answer["e"], DirectedEdgeId)
        assert answer["y"] == NodeId("b")
        assert isinstance(answer.assignment, Assignment)
