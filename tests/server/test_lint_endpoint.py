"""End-to-end tests for the ``/lint`` endpoint: diagnostics over HTTP
for both service facades, GET and POST forms, validation errors, the
``lints`` stats counter, and totality on malformed queries."""

from __future__ import annotations

import pytest

from urllib.parse import quote

from repro.cluster import ClusterService
from repro.graph.generators import social_network
from repro.server import HttpServiceClient, serve_background
from repro.service import GraphService

EMPTY = "TRAIL [(x:Person) -[:knows]-> (y)] << x.age = 0 AND x.age = 1 >>"
CLEAN = "TRAIL (x:Person) -[:knows]-> (y:Person)"
BROKEN = "TRAIL (x:"


def _graph():
    return social_network(num_people=8, friend_degree=2, seed=3)


def _serve_graph():
    return serve_background(GraphService(_graph()))


def _serve_cluster():
    return serve_background(
        ClusterService(_graph(), backend="serial", num_workers=2)
    )


@pytest.mark.parametrize("serve", [_serve_graph, _serve_cluster])
class TestLintEndpoint:
    def test_post_lint_reports_provably_empty(self, serve):
        with serve() as handle:
            with HttpServiceClient(*handle.address) as client:
                payload = client.lint(EMPTY)
        assert payload["provably_empty"] is True
        codes = [d["code"] for d in payload["diagnostics"]]
        assert "GPC010" in codes
        assert "version" in payload

    def test_clean_query_has_no_diagnostics(self, serve):
        with serve() as handle:
            with HttpServiceClient(*handle.address) as client:
                payload = client.lint(CLEAN)
        assert payload["diagnostics"] == []
        assert payload["provably_empty"] is False

    def test_lint_is_total_on_parse_errors(self, serve):
        with serve() as handle:
            with HttpServiceClient(*handle.address) as client:
                payload = client.lint(BROKEN)
        codes = [d["code"] for d in payload["diagnostics"]]
        assert codes == ["GPC000"]
        assert payload["diagnostics"][0]["severity"] == "error"

    def test_get_form_and_stats_counter(self, serve):
        with serve() as handle:
            with HttpServiceClient(*handle.address) as client:
                reply = client.request(
                    "GET", f"/lint?query={quote(EMPTY)}"
                ).raise_for_status()
                assert reply.payload["provably_empty"] is True
                client.lint(CLEAN)
                stats = client.stats()
        assert stats["lints"] == 2

    def test_validation_errors(self, serve):
        with serve() as handle:
            with HttpServiceClient(*handle.address) as client:
                assert client.request("GET", "/lint").status == 400
                assert client.request("POST", "/lint", {"nope": 1}).status == 400
                assert (
                    client.request("POST", "/lint", {"query": 7}).status == 400
                )
                assert client.request("PUT", "/lint", {}).status == 405
