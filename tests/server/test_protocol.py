"""The minimal HTTP/1.1 layer: parsing, limits, response rendering."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server.protocol import (
    ProtocolError,
    json_body,
    read_request,
    render_response,
)


def parse(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class TestRequestParsing:
    def test_get_with_query_string(self):
        request = parse(
            b"GET /explain?query=TRAIL%20(x)%20-%3E%20(y)&x=1 HTTP/1.1\r\n"
            b"Host: localhost\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/explain"
        assert request.params["query"] == "TRAIL (x) -> (y)"
        assert request.params["x"] == "1"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body(self):
        body = json.dumps({"query": "TRAIL (x) -> (y)"}).encode()
        request = parse(
            b"POST /query HTTP/1.1\r\nContent-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.method == "POST"
        assert json_body(request) == {"query": "TRAIL (x) -> (y)"}

    def test_header_names_case_insensitive(self):
        request = parse(
            b"GET /healthz HTTP/1.1\r\nCoNnEcTiOn: ClOsE\r\n\r\n"
        )
        assert request.headers["connection"] == "ClOsE"
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        request = parse(b"GET /healthz HTTP/1.0\r\n\r\n")
        assert not request.keep_alive
        request = parse(
            b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        )
        assert request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_head_is_400(self):
        with pytest.raises(ProtocolError) as info:
            parse(b"GET /healthz HTT")
        assert info.value.status == 400

    def test_truncated_body_is_400(self):
        with pytest.raises(ProtocolError) as info:
            parse(
                b"POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"
            )
        assert info.value.status == 400

    @pytest.mark.parametrize(
        "line",
        [b"GARBAGE\r\n\r\n", b"GET /x HTTP/2\r\n\r\n", b"GET HTTP/1.1\r\n\r\n"],
    )
    def test_malformed_request_lines_are_400(self, line):
        with pytest.raises(ProtocolError) as info:
            parse(line)
        assert info.value.status == 400

    def test_bad_content_length_is_400(self):
        with pytest.raises(ProtocolError) as info:
            parse(b"POST /q HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert info.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(ProtocolError) as info:
            parse(
                b"POST /q HTTP/1.1\r\nContent-Length: 99\r\n\r\n",
                max_body_bytes=10,
            )
        assert info.value.status == 413

    def test_chunked_is_501(self):
        with pytest.raises(ProtocolError) as info:
            parse(
                b"POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert info.value.status == 501

    def test_bad_json_body_is_400(self):
        request = parse(
            b"POST /q HTTP/1.1\r\nContent-Length: 4\r\n\r\n{oop"
        )
        with pytest.raises(ProtocolError) as info:
            json_body(request)
        assert info.value.status == 400

    def test_missing_body_is_400(self):
        request = parse(b"POST /q HTTP/1.1\r\n\r\n")
        with pytest.raises(ProtocolError) as info:
            json_body(request)
        assert info.value.status == 400


class TestResponseRendering:
    def test_shape(self):
        raw = render_response(200, {"b": 1, "a": 2})
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Type: application/json" in lines
        assert f"Content-Length: {len(body)}" in lines
        assert "Connection: keep-alive" in lines
        # Sorted keys: deterministic bytes for equal payloads.
        assert body == b'{"a": 2, "b": 1}'

    def test_close_and_extra_headers(self):
        raw = render_response(
            503, {"error": "draining"}, keep_alive=False,
            headers={"Retry-After": "1"},
        )
        head = raw.partition(b"\r\n\r\n")[0].decode()
        assert head.startswith("HTTP/1.1 503 Service Unavailable")
        assert "Connection: close" in head
        assert "Retry-After: 1" in head

    def test_unknown_status_still_renders(self):
        assert render_response(418, {}).startswith(b"HTTP/1.1 418 ")
