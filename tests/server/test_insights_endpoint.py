"""End-to-end tests for ``GET /insights``: fingerprint-aggregated
workload profiles over both service facades, the client accessor, the
``/metrics`` fold, the ``/trace`` cross-link, and the explain
estimated-vs-actual table over HTTP."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterService
from repro.graph.generators import social_network
from repro.obs import query_fingerprint
from repro.server import HttpServiceClient, HttpServiceError, serve_background
from repro.service import GraphService

QUERY = "TRAIL (x:Person) -[:knows]-> (y:Person)"
OTHER = "SIMPLE (x:Person) <-[:knows]- (y:Person)"


def _graph(seed: int = 11, people: int = 12):
    return social_network(num_people=people, friend_degree=2, seed=seed)


def _serve_graph():
    return serve_background(GraphService(_graph()))


def _serve_cluster():
    return serve_background(
        ClusterService(_graph(), backend="serial", num_workers=2)
    )


@pytest.mark.parametrize("serve", [_serve_graph, _serve_cluster])
class TestInsightsEndpoint:
    def test_insights_aggregate_per_fingerprint(self, serve):
        with serve() as handle:
            with HttpServiceClient(*handle.address) as client:
                for _ in range(3):
                    client.query(QUERY)
                client.query(OTHER)
                payload = client.insights()
        assert payload["sort"] == "total_time"
        counters = payload["counters"]
        assert counters["enabled"] is True
        assert counters["fingerprints"] == 2
        assert counters["records"] == 4
        by_query = {e["query"]: e for e in payload["insights"]}
        entry = by_query[QUERY]
        assert entry["fingerprint"] == query_fingerprint(QUERY)[0]
        assert entry["calls"] == 3
        # First call misses, the repeats hit the result cache.
        assert entry["cache"]["misses"] == 1
        assert entry["cache"]["hits"] == 2
        assert entry["latency"]["count"] == 3
        assert entry["latency_histogram"]["count"] == 3
        assert entry["answers_total"] > 0
        # The uncached execution carried planner estimates.
        assert entry["plan"]["samples"] == 1
        assert entry["plan"]["misestimate_factor"] >= 1.0
        assert "engine" in entry

    def test_sort_and_limit_parameters(self, serve):
        with serve() as handle:
            with HttpServiceClient(*handle.address) as client:
                client.query(QUERY)
                client.query(OTHER)
                client.query(OTHER)
                by_calls = client.insights(sort="calls", limit=1)
        assert by_calls["limit"] == 1
        assert len(by_calls["insights"]) == 1
        assert by_calls["insights"][0]["query"] == OTHER

    def test_bad_parameters_are_400(self, serve):
        with serve() as handle:
            with HttpServiceClient(*handle.address) as client:
                client.query(QUERY)
                with pytest.raises(HttpServiceError) as bad_sort:
                    client.insights(sort="nope")
                assert bad_sort.value.status == 400
                reply = client.request("GET", "/insights?limit=banana")
                assert reply.status == 400

    def test_metrics_fold_in_labeled_series(self, serve):
        with serve() as handle:
            with HttpServiceClient(*handle.address) as client:
                client.query(QUERY)
                client.query(QUERY)
                body = client.metrics()
        fingerprint = query_fingerprint(QUERY)[0]
        assert (
            f'repro_insights_calls{{fingerprint="{fingerprint}"}} 2' in body
        )
        assert "insights_records 2" in body
        assert "insights_enabled 1" in body

    def test_metrics_render_is_byte_deterministic(self, serve):
        with serve() as handle:
            with HttpServiceClient(*handle.address) as client:
                client.query(QUERY)
                client.query(OTHER)
                first = client.metrics()
                second = client.metrics()
        # Serving /metrics itself bumps the request counters, but no
        # query ran between the renders, so the insights series must
        # come out byte-identical — the guard against map-ordering
        # drift in the new section.
        def insights_lines(body):
            return [
                line for line in body.splitlines() if "insights" in line
            ]

        first_lines = insights_lines(first)
        assert first_lines  # the section is present at all
        assert "\n".join(first_lines).encode("utf-8") == "\n".join(
            insights_lines(second)
        ).encode("utf-8")


class TestTraceCrossLink:
    def test_forced_trace_carries_the_fingerprint(self):
        with _serve_graph() as handle:
            with HttpServiceClient(*handle.address) as client:
                client.request(
                    "POST",
                    "/query",
                    {"query": QUERY},
                    headers={"X-Trace-Id": "0123456789abcdef"},
                )
                tree = client.trace("0123456789abcdef")["trace"]
                insights = client.insights()
        assert tree["fingerprint"] == query_fingerprint(QUERY)[0]
        (entry,) = insights["insights"]
        assert "0123456789abcdef" in entry["recent_trace_ids"]

    def test_insight_trace_ids_resolve_via_trace_endpoint(self):
        with _serve_graph() as handle:
            with HttpServiceClient(*handle.address) as client:
                client.query(QUERY)
                (entry,) = client.insights()["insights"]
                trace_id = entry["recent_trace_ids"][-1]
                tree = client.trace(trace_id)["trace"]
        assert tree["trace_id"] == trace_id
        assert tree["fingerprint"] == entry["fingerprint"]


class TestExplainAnalyzeTable:
    @pytest.mark.parametrize("serve", [_serve_graph, _serve_cluster])
    def test_estimated_vs_actual_section_over_http(self, serve):
        with serve() as handle:
            with HttpServiceClient(*handle.address) as client:
                text = client.explain(QUERY, analyze=True)
        assert "observed execution:" in text
        assert "estimated vs actual:" in text
        assert "answers: est " in text


class TestDisabledInsights:
    def test_disabled_registry_serves_empty_insights(self):
        with serve_background(
            GraphService(_graph(), insights=False)
        ) as handle:
            with HttpServiceClient(*handle.address) as client:
                client.query(QUERY)
                payload = client.insights()
                body = client.metrics()
        assert payload["insights"] == []
        assert payload["counters"]["enabled"] is False
        assert payload["counters"]["records"] == 0
        assert "repro_insights_calls" not in body

    def test_batch_path_feeds_insights(self):
        with serve_background(
            ClusterService(_graph(), backend="serial", num_workers=2)
        ) as handle:
            with HttpServiceClient(*handle.address) as client:
                client.batch([QUERY, OTHER, QUERY])
                payload = client.insights(sort="calls")
        by_query = {e["query"]: e for e in payload["insights"]}
        assert by_query[QUERY]["calls"] == 2
        assert by_query[OTHER]["calls"] == 1
