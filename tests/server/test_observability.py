"""End-to-end observability tests for the HTTP front end: trace
round trips (X-Trace-Id honoured and echoed, span trees retrievable
via ``/trace``), the ``/metrics`` Prometheus exposition over both
service facades, request deadlines (``deadline_ms`` -> 504 with the
partial trace recorded), batch trace propagation, and the structured
access log."""

from __future__ import annotations

import json
import logging

import pytest

from repro.cluster import ClusterService
from repro.graph.generators import social_network
from repro.server import HttpServiceClient, HttpServiceError, serve_background
from repro.service import GraphService

QUERY = "TRAIL (x:Person) -[:knows]-> (y:Person)"
SLOW_QUERY = "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)"


def _graph(seed: int = 11, people: int = 12):
    return social_network(num_people=people, friend_degree=2, seed=seed)


def _span_names(tree: dict) -> set[str]:
    names = {tree["name"]}
    for child in tree.get("children", []):
        names |= _span_names(child)
    return names


def _all_trace_ids(tree: dict) -> set[str]:
    ids = {tree["trace_id"]}
    for child in tree.get("children", []):
        ids |= _all_trace_ids(child)
    return ids


class TestTraceRoundTrip:
    def test_client_trace_id_is_honoured_echoed_and_retrievable(self):
        with serve_background(GraphService(_graph())) as handle:
            with HttpServiceClient(*handle.address) as client:
                reply = client.request(
                    "POST",
                    "/query",
                    {"query": QUERY},
                    headers={"X-Trace-Id": "0123456789abcdef"},
                )
                assert reply.status == 200
                assert reply.headers.get("X-Trace-Id") == "0123456789abcdef"
                tree = client.trace("0123456789abcdef")["trace"]
        assert tree["name"] == "request"
        assert tree["attributes"]["path"] == "/query"
        assert tree["attributes"]["status"] == 200
        assert tree["attributes"]["coalesce_batch"] >= 1
        # Every serving stage shows up in the tree.
        names = _span_names(tree)
        assert {
            "server.parse",
            "server.coalesce_wait",
            "server.dispatch",
            "service.cache_probe",
            "service.plan",
            "service.eval",
        } <= names
        # All stages belong to the client's trace, and the sequential
        # stages sum within the recorded end-to-end duration
        # (server.dispatch is an envelope *around* the service stages,
        # so it would double-count them).
        assert _all_trace_ids(tree) == {"0123456789abcdef"}
        stage_sum = sum(
            c["duration_s"]
            for c in tree["children"]
            if c["name"] != "server.dispatch"
        )
        assert 0 < stage_sum <= tree["duration_s"]

    def test_every_request_gets_an_id_echoed(self):
        with serve_background(GraphService(_graph())) as handle:
            with HttpServiceClient(*handle.address) as client:
                reply = client.request("POST", "/query", {"query": QUERY})
                assigned = reply.headers.get("X-Trace-Id")
                assert assigned
                assert client.trace(assigned)["trace"]["name"] == "request"

    def test_trace_listing_and_store_counters(self):
        with serve_background(GraphService(_graph())) as handle:
            with HttpServiceClient(*handle.address) as client:
                client.query(QUERY)
                listing = client.trace()
        assert listing["counters"]["seen"] >= 1
        assert listing["counters"]["recorded"] >= 1
        assert any(
            t["attributes"].get("path") == "/query"
            for t in listing["recent"]
        )

    def test_unknown_trace_id_is_404(self):
        with serve_background(GraphService(_graph())) as handle:
            with HttpServiceClient(*handle.address) as client:
                with pytest.raises(HttpServiceError) as info:
                    client.trace("0000000000000000")
        assert info.value.status == 404

    def test_tracing_disabled_serves_without_ids(self):
        with serve_background(
            GraphService(_graph()), tracing=False
        ) as handle:
            with HttpServiceClient(*handle.address) as client:
                reply = client.request("POST", "/query", {"query": QUERY})
                assert reply.status == 200
                assert "X-Trace-Id" not in reply.headers
                listing = client.trace()
        assert listing["recent"] == []
        assert listing["counters"]["seen"] == 0

    def test_head_sampling_still_keeps_forced_traces(self):
        with serve_background(
            GraphService(_graph()), trace_sample_every=1000
        ) as handle:
            with HttpServiceClient(*handle.address) as client:
                client.query(QUERY)  # sampled in (first)
                client.query(QUERY)  # sampled out
                client.query(QUERY, trace_id="feedfacefeedface")  # forced
                assert (
                    client.trace("feedfacefeedface")["trace"]["trace_id"]
                    == "feedfacefeedface"
                )
                counters = client.trace()["counters"]
        # 3 queries + the finished /trace?id GET; the listing request
        # itself has not recorded yet when it reads the counters.
        assert counters["seen"] == 4
        assert counters["dropped"] >= 1


class TestBatchTracePropagation:
    def test_batch_members_share_the_request_root_trace(self):
        # Distinct queries: a repeated one would hit the result cache
        # and legitimately skip its service.eval span.
        queries = [
            QUERY,
            SLOW_QUERY,
            "SIMPLE (x:Person) ~[:married]~ (y:Person)",
        ]
        with serve_background(GraphService(_graph())) as handle:
            with HttpServiceClient(*handle.address) as client:
                reply = client.request(
                    "POST",
                    "/batch",
                    {"queries": queries},
                    headers={"X-Trace-Id": "beefbeefbeefbeef"},
                )
                assert reply.status == 200
                tree = client.trace("beefbeefbeefbeef")["trace"]
        assert _all_trace_ids(tree) == {"beefbeefbeefbeef"}
        # One service.eval span per batch member, all under one root.
        evals = [
            c for c in tree["children"] if c["name"] == "service.eval"
        ]
        assert len(evals) == len(queries)


class TestDeadlines:
    def test_blown_deadline_is_504_with_partial_trace(self):
        with serve_background(GraphService(_graph(people=30))) as handle:
            with HttpServiceClient(*handle.address) as client:
                with pytest.raises(HttpServiceError) as info:
                    client.query(
                        SLOW_QUERY,
                        deadline_ms=0.001,
                        trace_id="dead0000dead0000",
                    )
                assert info.value.status == 504
                assert "Deadline" in str(info.value)
                # The partial span tree was recorded (5xx bypasses
                # sampling) and carries the error marker.
                tree = client.trace("dead0000dead0000")["trace"]
                stats = client.stats()
        assert tree["error"] == "HTTP 504"
        assert tree["attributes"]["status"] == 504
        assert stats["timeouts"] == 1
        assert stats["server_errors"] == 1

    def test_generous_deadline_does_not_interfere(self):
        with serve_background(GraphService(_graph())) as handle:
            with HttpServiceClient(*handle.address) as client:
                direct = client.query(QUERY)
                bounded = client.query(QUERY, deadline_ms=30_000)
        assert bounded == direct

    @pytest.mark.parametrize("bad", [0, -5, "fast", True])
    def test_invalid_deadline_is_400(self, bad):
        with serve_background(GraphService(_graph())) as handle:
            with HttpServiceClient(*handle.address) as client:
                reply = client.request(
                    "POST", "/query", {"query": QUERY, "deadline_ms": bad}
                )
        assert reply.status == 400
        assert "deadline_ms" in reply.payload["error"]


class TestMetricsEndpoint:
    def _lines(self, text: str) -> dict[str, str]:
        pairs = {}
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name, _, value = line.rpartition(" ")
            pairs[name] = value
        return pairs

    def test_single_service_exposition(self):
        with serve_background(GraphService(_graph())) as handle:
            with HttpServiceClient(*handle.address) as client:
                client.query(SLOW_QUERY)
                text = client.metrics()
        metrics = self._lines(text)
        # Transport, service, engine and trace-store counters all
        # present in one scrape.
        assert metrics["repro_server_queries"] == "1"
        assert metrics["repro_service_queries"] == "1"
        assert int(metrics["repro_engine_nfa_states_expanded"]) > 0
        assert int(metrics["repro_traces_recorded"]) >= 1
        assert metrics["repro_server_request_latency_seconds_count"] >= "1"
        assert "# TYPE repro_server_request_latency_seconds histogram" in text
        assert "# TYPE repro_service_latency_seconds histogram" in text
        assert 'repro_server_request_latency_seconds_bucket{le="+Inf"}' in text
        assert metrics["repro_service_result_cache_misses"] == "1"

    def test_cluster_exposition_with_worker_labels(self):
        with serve_background(
            ClusterService(_graph(), backend="thread", num_workers=2)
        ) as handle:
            with HttpServiceClient(*handle.address) as client:
                client.query(SLOW_QUERY)
                text = client.metrics()
        metrics = self._lines(text)
        assert metrics["repro_cluster_scatters"] == "2"
        assert int(metrics["repro_engine_nfa_states_expanded"]) > 0
        assert "# TYPE repro_cluster_shard_latency_seconds histogram" in text
        assert 'repro_cluster_worker_latency_seconds_count{worker="' in text

    def test_metrics_counts_grow_monotonically(self):
        with serve_background(GraphService(_graph())) as handle:
            with HttpServiceClient(*handle.address) as client:
                client.query(QUERY)
                first = self._lines(client.metrics())
                client.query(QUERY)
                second = self._lines(client.metrics())
        assert int(second["repro_server_queries"]) > int(
            first["repro_server_queries"]
        )
        assert int(
            second["repro_server_request_latency_seconds_count"]
        ) > int(first["repro_server_request_latency_seconds_count"])


class TestAccessLog:
    def test_off_by_default(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.server.access"):
            with serve_background(GraphService(_graph())) as handle:
                with HttpServiceClient(*handle.address) as client:
                    client.query(QUERY)
        assert not caplog.records

    def test_structured_json_lines_when_enabled(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.server.access"):
            with serve_background(
                GraphService(_graph()), log_requests=True
            ) as handle:
                with HttpServiceClient(*handle.address) as client:
                    client.query(QUERY, trace_id="abadcafeabadcafe")
        records = [json.loads(r.getMessage()) for r in caplog.records]
        entry = next(r for r in records if r["path"] == "/query")
        assert entry["method"] == "POST"
        assert entry["status"] == 200
        assert entry["trace_id"] == "abadcafeabadcafe"
        assert entry["latency_ms"] > 0
        assert entry["coalesce_batch"] >= 1
