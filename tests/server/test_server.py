"""End-to-end tests for the HTTP serving front end.

Covers every endpoint round trip, HTTP-vs-direct answer equality on
randomized graphs over both service facades, admission-control sheds
under a saturated semaphore, micro-batch coalescing, and graceful
drain semantics.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster import ClusterService
from repro.graph.generators import social_network
from repro.server import (
    GraphServer,
    HttpServiceClient,
    HttpServiceError,
    serve_background,
)
from repro.service import GraphService

QUERY = "TRAIL (x:Person) -[:knows]-> (y:Person)"

QUERIES = [
    QUERY,
    "SIMPLE (x:Person) ~[:married]~ (y:Person)",
    "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
    "TRAIL (x:Person) [-[e:knows]->]{1,2} (y:Person)",
    "TRAIL (x:Person) -[:knows]-> (y:Person), "
    "TRAIL (y:Person) -[:lives_in]-> (c:City)",
]


def _graph(seed: int = 11):
    return social_network(num_people=12, friend_degree=2, seed=seed)


@pytest.fixture
def served():
    """A GraphService behind a background server, plus a client."""
    service = GraphService(_graph())
    with serve_background(service) as handle:
        with HttpServiceClient(*handle.address) as client:
            yield handle, client, service


class TestEndpointRoundTrips:
    def test_healthz(self, served):
        _, client, service = served
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["version"] == service.version
        assert payload["draining"] is False

    def test_query_round_trip(self, served):
        _, client, service = served
        assert client.query(QUERY) == service.evaluate(QUERY)

    def test_batch_round_trip(self, served):
        _, client, service = served
        results = client.batch(QUERIES[:3])
        for text, result in zip(QUERIES[:3], results):
            assert result == service.evaluate(text)

    def test_batch_keeps_siblings_on_error(self, served):
        _, client, service = served
        results = client.batch([QUERY, "TRAIL (broken", QUERIES[1]])
        assert results[0] == service.evaluate(QUERY)
        assert isinstance(results[1], HttpServiceError)
        assert "ParseError" in str(results[1])
        assert results[2] == service.evaluate(QUERIES[1])

    def test_mutate_full_surface(self, served):
        _, client, service = served
        before = service.version
        reply = client.mutate(
            [
                {"op": "add_node", "key": "n1", "labels": ["Person"],
                 "properties": {"name": "N1"}},
                {"op": "add_node", "key": "n2", "labels": ["Person"]},
                {"op": "add_edge", "key": "k12", "source": "n1",
                 "target": "n2", "labels": ["knows"]},
                {"op": "add_undirected_edge", "key": "m12",
                 "endpoint_a": "n1", "endpoint_b": "n2",
                 "labels": ["married"]},
                {"op": "set_property", "element": {"n": "n1"},
                 "key": "name", "value": "renamed"},
                {"op": "remove_undirected_edge", "key": "m12"},
                {"op": "remove_edge", "key": "k12"},
                {"op": "remove_node", "key": "n2"},
            ]
        )
        assert reply.payload["version"] == service.version > before
        results = reply.payload["results"]
        assert results[0] == {"n": "n1"}
        assert results[2] == {"d": "k12"}
        assert results[3] == {"u": "m12"}
        # The mutations really happened (and the caches track them):
        from repro.graph.ids import NodeId

        assert service.graph.has_node(NodeId("n1"))
        assert not service.graph.has_node(NodeId("n2"))
        assert (
            service.graph.get_property(NodeId("n1"), "name") == "renamed"
        )

    def test_mutation_visible_to_queries(self, served):
        _, client, service = served
        baseline = len(client.query(QUERY))
        client.mutate(
            [
                {"op": "add_node", "key": "x1", "labels": ["Person"]},
                {"op": "add_node", "key": "x2", "labels": ["Person"]},
                {"op": "add_edge", "key": "xe", "source": "x1",
                 "target": "x2", "labels": ["knows"]},
            ]
        )
        assert len(client.query(QUERY)) == baseline + 1

    def test_mutate_failure_reports_applied_prefix(self, served):
        _, client, service = served
        reply = client.request(
            "POST",
            "/mutate",
            {"ops": [
                {"op": "add_node", "key": "ok1", "labels": ["Person"]},
                {"op": "add_node", "key": "ok1"},  # duplicate: fails
            ]},
        )
        assert reply.status == 400
        assert "op 1 failed after 1 applied" in reply.payload["error"]
        from repro.graph.ids import NodeId

        assert service.graph.has_node(NodeId("ok1"))

    def test_unknown_op_is_400(self, served):
        _, client, _ = served
        reply = client.request(
            "POST", "/mutate", {"ops": [{"op": "explode"}]}
        )
        assert reply.status == 400

    def test_explain(self, served):
        _, client, service = served
        text = client.explain(QUERIES[2])
        assert text == service.explain(QUERIES[2])
        assert "plan:" in text

    def test_stats_composed(self, served):
        _, client, service = served
        client.query(QUERY)
        payload = client.stats()
        assert payload["queries"] >= 1
        assert payload["dispatches"] >= 1
        assert payload["rejected"] == 0
        assert payload["service"]["queries"] == service.stats.queries
        assert "latency" in payload and "p99_s" in payload["latency"]

    def test_http_errors(self, served):
        _, client, _ = served
        assert client.request("GET", "/nope").status == 404
        assert client.request("GET", "/query").status == 405
        assert client.request("POST", "/query", {"nope": 1}).status == 400
        assert client.request("GET", "/explain").status == 400
        reply = client.request("POST", "/query", {"query": "TRAIL (x"})
        assert reply.status == 400
        assert "ParseError" in reply.payload["error"]

    def test_keep_alive_connection_reused(self, served):
        handle, client, _ = served
        for _ in range(3):
            client.healthz()
        # One client connection serves all three requests.
        assert handle.server.stats.connections == 1


class TestAnswerEquality:
    """The acceptance bar: HTTP-decoded answers are frozenset-identical
    to direct evaluation, on randomized graphs, over both facades."""

    @pytest.mark.parametrize("seed", [3, 17, 29])
    def test_graph_service(self, seed):
        reference = GraphService(_graph(seed))
        expected = {
            text: reference.evaluate(text, use_cache=False)
            for text in QUERIES
        }
        reference.close()
        with serve_background(GraphService(_graph(seed))) as handle:
            with HttpServiceClient(*handle.address) as client:
                for text in QUERIES:
                    assert client.query(text) == expected[text]

    @pytest.mark.parametrize("seed", [3, 17])
    def test_cluster_service(self, seed):
        reference = GraphService(_graph(seed))
        expected = {
            text: reference.evaluate(text, use_cache=False)
            for text in QUERIES
        }
        reference.close()
        cluster = ClusterService(
            _graph(seed), backend="serial", num_workers=3
        )
        with serve_background(cluster) as handle:
            with HttpServiceClient(*handle.address) as client:
                for text in QUERIES:
                    assert client.query(text) == expected[text]
                results = client.batch(QUERIES)
                for text, result in zip(QUERIES, results):
                    assert result == expected[text]


class _BlockingService(GraphService):
    """Evaluation blocks until the gate opens — makes saturation and
    drain windows deterministic."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()

    def evaluate_batch(self, queries, *args, **kwargs):
        assert self.gate.wait(30.0), "test gate never opened"
        return super().evaluate_batch(queries, *args, **kwargs)


class TestAdmissionControl:
    def test_query_queue_overflow_sheds_429(self):
        service = _BlockingService(_graph())
        with serve_background(
            service,
            max_in_flight=1,
            max_queue_depth=1,
            coalesce_max=1,
            coalesce_window_s=0.0,
        ) as handle:
            clients = [HttpServiceClient(*handle.address) for _ in range(4)]
            try:
                replies: dict[int, int] = {}

                def fire(index):
                    replies[index] = clients[index].request(
                        "POST", "/query", {"query": QUERY}
                    ).status

                threads = []
                # 1st: dispatched (blocked on the gate, slot held);
                # 2nd: popped by the coalescer, waiting for the slot;
                # 3rd: sits in the queue (depth 1 reached).
                for index in range(3):
                    thread = threading.Thread(target=fire, args=(index,))
                    thread.start()
                    threads.append(thread)
                    time.sleep(0.15)
                # 4th: the queue is full -> shed, never evaluated.
                shed = clients[3].request(
                    "POST", "/query", {"query": QUERY}
                )
                assert shed.status == 429
                service.gate.set()
                for thread in threads:
                    thread.join(30.0)
                assert [replies[i] for i in range(3)] == [200, 200, 200]
                stats = handle.server.stats
                assert stats.rejected >= 1
            finally:
                service.gate.set()
                for client in clients:
                    client.close()

    def test_batch_semaphore_saturation_sheds_429(self):
        service = _BlockingService(_graph())
        with serve_background(
            service,
            max_in_flight=1,
            max_queue_depth=1,
            coalesce_window_s=0.0,
        ) as handle:
            first = HttpServiceClient(*handle.address)
            second = HttpServiceClient(*handle.address)
            third = HttpServiceClient(*handle.address)
            try:
                statuses: dict[str, int] = {}

                def fire(name, client):
                    statuses[name] = client.request(
                        "POST", "/batch", {"queries": [QUERY]}
                    ).status

                a = threading.Thread(target=fire, args=("a", first))
                a.start()
                time.sleep(0.15)  # a holds the only slot (gate-blocked)
                b = threading.Thread(target=fire, args=("b", second))
                b.start()
                time.sleep(0.15)  # b waits for the slot: depth 1 used
                shed = third.request("POST", "/batch", {"queries": [QUERY]})
                assert shed.status == 429
                assert handle.server.stats.rejected >= 1
                service.gate.set()
                a.join(30.0)
                b.join(30.0)
                assert statuses == {"a": 200, "b": 200}
            finally:
                service.gate.set()
                for client in (first, second, third):
                    client.close()

    def test_rejected_never_reaches_the_service(self):
        service = _BlockingService(_graph())
        with serve_background(
            service,
            max_in_flight=1,
            max_queue_depth=0,
            coalesce_window_s=0.0,
        ) as handle:
            client = HttpServiceClient(*handle.address)
            try:
                # Depth 0: every /query is shed before it is queued.
                reply = client.request("POST", "/query", {"query": QUERY})
                assert reply.status == 429
                assert handle.server.stats.queries == 0
                assert service.stats.queries == 0
            finally:
                service.gate.set()
                client.close()


class TestCoalescing:
    def test_concurrent_queries_fold_into_one_dispatch(self):
        service = GraphService(_graph())
        with serve_background(
            service, coalesce_window_s=0.25, coalesce_max=16
        ) as handle:
            expected = service.evaluate(QUERY)
            results: list = [None] * 5

            def fire(index):
                with HttpServiceClient(*handle.address) as client:
                    results[index] = client.query(QUERY)

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(5)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)
            assert all(result == expected for result in results)
            stats = handle.server.stats
            # All five arrivals landed inside one coalescing window.
            assert stats.dispatches == 1
            assert stats.coalesced == 5
            assert stats.max_batch == 5
            # ... and the service saw exactly one evaluate_batch call.
            assert service.stats.batches == 1

    def test_mixed_use_cache_flags_split_correctly(self):
        service = GraphService(_graph())
        with serve_background(
            service, coalesce_window_s=0.25
        ) as handle:
            expected = service.evaluate(QUERY)
            results: list = [None] * 4

            def fire(index, flag):
                with HttpServiceClient(*handle.address) as client:
                    results[index] = client.query(QUERY, use_cache=flag)

            threads = [
                threading.Thread(target=fire, args=(i, i % 2 == 0))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)
            assert all(result == expected for result in results)
            # One coalesced dispatch, split into two service batches
            # (one per use_cache flag).
            assert handle.server.stats.dispatches == 1
            assert service.stats.batches == 2
            assert service.stats.result_cache.bypasses == 2


class TestGracefulDrain:
    def test_drain_finishes_in_flight_then_closes_service(self):
        service = _BlockingService(_graph())
        handle = serve_background(service, coalesce_window_s=0.0)
        slow_client = HttpServiceClient(*handle.address)
        # During drain every response carries Connection: close and the
        # listener is gone, so each probe needs its own pre-established
        # connection.
        probe_client = HttpServiceClient(*handle.address)
        health_client = HttpServiceClient(*handle.address)
        outcome: dict = {}

        def slow_query():
            outcome["reply"] = slow_client.request(
                "POST", "/query", {"query": QUERY}
            )

        probe_client.healthz()  # establish the probe connections now
        health_client.healthz()
        slow = threading.Thread(target=slow_query)
        slow.start()
        deadline = time.time() + 10
        while handle.server.stats.queries < 1 and time.time() < deadline:
            time.sleep(0.01)

        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        deadline = time.time() + 10
        while not handle.server.stats.draining and time.time() < deadline:
            time.sleep(0.01)

        # New work on an established connection is shed with 503...
        refused = probe_client.request("POST", "/query", {"query": QUERY})
        assert refused.status == 503
        # ...while healthz still answers and reports the drain.
        health = health_client.request("GET", "/healthz")
        assert health.status == 200
        assert health.payload["status"] == "draining"

        # The admitted slow request completes once the gate opens.
        service.gate.set()
        slow.join(30.0)
        stopper.join(30.0)
        assert outcome["reply"].status == 200
        # Drain closed the underlying service's batch pool.
        assert service._executor is None
        assert handle.server.stats.rejected >= 1
        slow_client.close()
        probe_client.close()
        health_client.close()

    def test_stop_is_idempotent(self):
        service = GraphService(_graph())
        handle = serve_background(service)
        with HttpServiceClient(*handle.address) as client:
            client.query(QUERY)
        handle.stop()
        handle.stop()

    def test_queued_queries_survive_drain(self):
        service = GraphService(_graph())
        handle = serve_background(service, coalesce_window_s=0.3)
        results: list = [None] * 3

        def fire(index):
            with HttpServiceClient(*handle.address) as client:
                results[index] = client.query(QUERY)

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        # Stop while the queries sit in the coalescing window; drain
        # must let them evaluate, not drop them.
        deadline = time.time() + 10
        while handle.server.stats.queries < 3 and time.time() < deadline:
            time.sleep(0.01)
        handle.stop()
        for thread in threads:
            thread.join(30.0)
        expected = GraphService(_graph()).evaluate(QUERY)
        assert all(result == expected for result in results)


class TestServerValidation:
    def test_bad_parameters_rejected(self):
        service = GraphService(_graph())
        with pytest.raises(ValueError):
            GraphServer(service, max_in_flight=0)
        with pytest.raises(ValueError):
            GraphServer(service, max_queue_depth=-1)
        with pytest.raises(ValueError):
            GraphServer(service, coalesce_max=0)
        service.close()

    def test_port_conflict_surfaces(self):
        service = GraphService(_graph())
        with serve_background(service, close_service=False) as handle:
            with pytest.raises(OSError):
                serve_background(
                    service, port=handle.address[1], close_service=False
                )
        service.close()
