"""Radix enumeration, Appendix C bounds, and the Theorem 12 enumerator."""

import pytest

from repro.graph.generators import chain_graph, theorem13_gadget
from repro.graph.ids import NodeId as N
from repro.gpc import ast
from repro.gpc.engine import Evaluator, evaluate
from repro.gpc.parser import parse_pattern, parse_query
from repro.enumeration.bounds import (
    lemma16_length_bound,
    lemma17_mu_bound,
    mu_size,
)
from repro.enumeration.enumerator import enumerate_answers
from repro.enumeration.radix import iter_paths_radix


class TestRadixEnumeration:
    def test_lengths_non_decreasing(self, cycle4):
        lengths = [len(p) for p in iter_paths_radix(cycle4, 3)]
        assert lengths == sorted(lengths)

    def test_level_zero_is_all_nodes(self, cycle4):
        level0 = [p for p in iter_paths_radix(cycle4, 0)]
        assert {p.src for p in level0} == cycle4.nodes
        assert all(p.is_edgeless for p in level0)

    def test_no_duplicates(self, cycle4):
        paths = list(iter_paths_radix(cycle4, 3))
        assert len(paths) == len(set(paths))

    def test_walk_counts_on_chain(self):
        graph = chain_graph(2)
        # length-1 walks: each edge both directions = 4
        level1 = [p for p in iter_paths_radix(graph, 1) if len(p) == 1]
        assert len(level1) == 4

    def test_start_restriction(self, cycle4):
        paths = list(iter_paths_radix(cycle4, 2, start=N("n0")))
        assert all(p.src == N("n0") for p in paths)

    def test_unknown_start_is_empty(self, cycle4):
        assert not list(iter_paths_radix(cycle4, 2, start=N("zz")))

    def test_undirected_and_backward_steps_included(self, mixed_graph):
        level1 = [p for p in iter_paths_radix(mixed_graph, 1) if len(p) == 1]
        sources = {p.elements[1] for p in level1}
        # directed d1 appears (both directions), undirected u1 too.
        assert len(sources) >= 4


class TestLemma16Bounds:
    def test_simple_bound(self, cycle4):
        pattern = parse_pattern("->{0,}")
        bound = lemma16_length_bound(cycle4, ast.Restrictor.SIMPLE, pattern)
        answers = evaluate(parse_query("SIMPLE ->{0,}"), cycle4)
        assert max(len(a.path) for a in answers) <= bound == 4

    def test_trail_bound(self, cycle4):
        pattern = parse_pattern("->{0,}")
        bound = lemma16_length_bound(cycle4, ast.Restrictor.TRAIL, pattern)
        answers = evaluate(parse_query("TRAIL ->{0,}"), cycle4)
        assert max(len(a.path) for a in answers) <= bound == 4

    def test_shortest_bound(self, cycle4):
        pattern = parse_pattern("->{0,}")
        bound = lemma16_length_bound(cycle4, ast.Restrictor.SHORTEST, pattern)
        answers = evaluate(parse_query("SHORTEST ->{0,}"), cycle4)
        assert max(len(a.path) for a in answers) <= bound


class TestLemma17Bound:
    @pytest.mark.parametrize(
        "query_text",
        [
            "TRAIL (x) -[e]-> (y)",
            "TRAIL -[e]->{1,}",
            "TRAIL [[-[e]->]{1,2}]{1,2}",
            "SIMPLE [(x) -[e]->] + [<- (y)]",
        ],
    )
    def test_mu_sizes_within_bound(self, cycle4, query_text):
        query = parse_query(query_text)
        answers = evaluate(query, cycle4)
        assert answers
        for answer in answers:
            bound = lemma17_mu_bound(answer.path, query.pattern)
            assert mu_size(answer.assignment) <= bound

    def test_mu_size_measures_groups(self):
        graph = chain_graph(2)
        answers = evaluate(parse_query("TRAIL -[e]->{2,2}"), graph)
        ((answer),) = answers
        assert mu_size(answer.assignment) > 0


class TestEnumerator:
    def test_matches_engine_on_trail(self, cycle4):
        query = parse_query("TRAIL (x) ->{1,} (y)")
        engine_answers = evaluate(query, cycle4)
        enumerated, stats = enumerate_answers(cycle4, query)
        assert frozenset(enumerated) == engine_answers
        assert stats.answers_emitted == len(engine_answers)

    def test_matches_engine_on_simple(self, diamond_graph):
        query = parse_query("SIMPLE (x:S) ->{1,} (y:T)")
        engine_answers = evaluate(query, diamond_graph)
        enumerated, _ = enumerate_answers(diamond_graph, query)
        assert frozenset(enumerated) == engine_answers

    def test_matches_engine_on_shortest(self, diamond_graph):
        query = parse_query("SHORTEST (x:S) ->{1,} (y:T)")
        engine_answers = evaluate(query, diamond_graph)
        enumerated, _ = enumerate_answers(diamond_graph, query, max_length=6)
        assert frozenset(enumerated) == engine_answers

    def test_radix_order_of_emission(self, cycle4):
        query = parse_query("TRAIL ->{1,}")
        enumerated, _ = enumerate_answers(cycle4, query)
        lengths = [len(a.path) for a in enumerated]
        assert lengths == sorted(lengths)

    def test_named_path_bound(self, tiny_graph):
        query = parse_query("p = TRAIL (x) -> (y)")
        enumerated, _ = enumerate_answers(tiny_graph, query)
        assert all(a["p"] == a.path for a in enumerated)

    def test_working_set_stays_small_on_trail(self, cycle4):
        # Trail/simple enumeration needs no candidate storage at all.
        _, stats = enumerate_answers(cycle4, parse_query("TRAIL ->{1,}"))
        assert stats.peak_working_set == 0

    def test_shortest_working_set_bounded_by_pairs(self):
        graph = theorem13_gadget()
        query = parse_query("SHORTEST () ->{2,2} ()")
        answers, stats = enumerate_answers(graph, query, max_length=2)
        # The gadget alternates strictly between u and v, so length-2
        # walks return home: pairs (u,u) and (v,v), 2^2 = 4 witnesses
        # each. The working set holds one entry per endpoint pair.
        assert stats.peak_working_set <= 2
        assert stats.answers_emitted == len(answers) == 8

    def test_length_bound_recorded(self, cycle4):
        _, stats = enumerate_answers(cycle4, parse_query("SIMPLE ->{0,}"))
        assert stats.length_bound == 4


class TestSpanMatcherDifferential:
    """The span matcher is an independent implementation of the
    semantics; it must agree with the engine match-for-match."""

    @pytest.mark.parametrize(
        "pattern_text",
        [
            "(x) -[e]-> (y)",
            "[->] + [<-]",
            "-[e]->{1,3}",
            "(x) ->{0,} (y)",
            "[(x) -> (y)] << x.v = y.v >>",
            "[[-[e]->]{1,2}]{1,2}",
            "[(x) ->] + [<- (y)]",
        ],
    )
    def test_agreement_per_path(self, pattern_text):
        from repro.enumeration.span_matcher import match_on_path

        graph = chain_graph(3, value_key="v")
        pattern = parse_pattern(pattern_text)
        engine_matches = Evaluator(graph).eval_pattern(pattern, max_length=4)
        by_path = {}
        for path, mu in engine_matches:
            by_path.setdefault(path, set()).add(mu)
        for path in iter_paths_radix(graph, 4):
            expected = frozenset(by_path.get(path, set()))
            assert match_on_path(pattern, path, graph) == expected, path
