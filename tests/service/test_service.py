"""The query-service runtime: caching, invalidation, batching."""

from __future__ import annotations

import pytest

from repro.errors import GPCError, GPCTypeError
from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.parser import parse_query
from repro.graph.builder import GraphBuilder
from repro.graph.generators import cycle_graph
from repro.service import GraphService, LRUCache, PreparedQuery

QUERIES = [
    "TRAIL (x:Person) -[e:knows]-> (y:Person)",
    "SIMPLE (x) ->{1,} (y)",
    "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
    "p = TRAIL [ (x:Person) -[e:knows]->{1,} (y:Person) ] << x.team = y.team >>",
    "TRAIL (x) ~[:married]~ (y)",
]


@pytest.fixture
def social() -> GraphService:
    graph = (
        GraphBuilder()
        .node("ann", "Person", name="Ann", team="db")
        .node("bob", "Person", name="Bob", team="db")
        .node("cia", "Person", name="Cia", team="ml")
        .node("dan", "Person", name="Dan", team="ml")
        .edge("ann", "bob", "knows", since=2015)
        .edge("bob", "cia", "knows", since=2018)
        .edge("cia", "dan", "knows", since=2020)
        .edge("dan", "ann", "knows", since=2021)
        .undirected("ann", "cia", "married")
        .build()
    )
    return GraphService(graph)


class TestPreparedQueries:
    @pytest.mark.parametrize("text", QUERIES)
    def test_prepared_equals_one_shot(self, social, text):
        prepared = PreparedQuery(text)
        one_shot = Evaluator(social.graph).evaluate(parse_query(text))
        assert prepared.execute(social.graph) == one_shot

    @pytest.mark.parametrize("text", QUERIES)
    def test_prepared_reexecution_is_stable(self, social, text):
        prepared = PreparedQuery(text)
        first = prepared.execute(social.graph)
        assert prepared.execute(social.graph) == first
        assert prepared.execute(social.graph.snapshot()) == first

    def test_prepared_tracks_graph_versions(self, social):
        prepared = PreparedQuery(QUERIES[0])
        before = prepared.execute(social.graph)
        eve = social.add_node("eve", ["Person"], {"name": "Eve", "team": "db"})
        social.add_edge(
            "e5", eve, next(iter(social.graph.nodes_with_label("Person"))),
            ["knows"],
        )
        after = prepared.execute(social.graph)
        assert len(after) == len(before) + 1

    def test_prepared_executes_across_graphs(self):
        prepared = PreparedQuery("SHORTEST (x) ->{1,} (y)")
        for size in (3, 4, 5):
            graph = cycle_graph(size)
            assert prepared.execute(graph) == Evaluator(graph).evaluate(
                parse_query("SHORTEST (x) ->{1,} (y)")
            )

    def test_prepared_typechecks_at_construction(self):
        # A group variable used as a singleton in a condition is a type
        # error the paper's Figure 2 rules reject; prepare() must too.
        with pytest.raises(GPCTypeError):
            PreparedQuery("TRAIL [ -[e]->{1,3} ] << e.k = 1 >>")

    def test_ast_queries_accepted(self, social):
        query = parse_query(QUERIES[0])
        prepared = PreparedQuery(query)
        assert prepared.execute(social.graph) == social.evaluate(query)


class TestResultCache:
    def test_hit_on_repeat(self, social):
        first = social.evaluate(QUERIES[0])
        second = social.evaluate(QUERIES[0])
        assert first == second
        assert social.stats.result_cache.hits == 1
        assert social.stats.result_cache.misses == 1

    def test_identical_results_are_shared(self, social):
        first = social.evaluate(QUERIES[2])
        second = social.evaluate(QUERIES[2])
        assert first is second  # the cached frozenset itself

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: s.remove_edge(next(s.graph.iter_directed_edges())),
            lambda s: s.remove_node(next(s.graph.iter_nodes())),
            lambda s: s.add_edge(
                "extra",
                *sorted(s.graph.nodes_with_label("Person"))[:2],
                ["knows"],
            ),
        ],
        ids=["remove_edge", "remove_node", "add_edge"],
    )
    def test_footprint_intersecting_mutation_invalidates(
        self, social, mutate
    ):
        """QUERIES[0] reads `knows` directed edges; any mutation
        touching them must invalidate the cached entry and recompute
        under the bumped version."""
        social.evaluate(QUERIES[0])
        version = social.version
        mutate(social)
        assert social.version > version
        after = social.evaluate(QUERIES[0])
        assert social.stats.result_cache.misses == 2
        assert social.stats.result_cache.hits == 0
        assert social.stats.result_cache.invalidations == 1
        assert after == Evaluator(social.graph).evaluate(
            parse_query(QUERIES[0])
        )

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: s.add_node("zed", ["Person"], {"team": "db"}),
            lambda s: s.set_property(
                next(iter(s.graph.nodes_with_label("Person"))), "age", 30
            ),
            lambda s: s.remove_undirected_edge(
                next(s.graph.iter_undirected_edges())
            ),
        ],
        ids=["add_isolated_node", "set_unread_property",
             "remove_undirected_edge"],
    )
    def test_footprint_disjoint_mutation_restamps(self, social, mutate):
        """Mutations provably outside QUERIES[0]'s read footprint (an
        isolated node, an unread property key, an undirected edge) keep
        the cached entry alive: it is re-stamped to the new version and
        served as a hit — and the served answers still equal a fresh
        one-shot evaluation of the mutated graph."""
        before = social.evaluate(QUERIES[0])
        version = social.version
        mutate(social)
        assert social.version > version
        after = social.evaluate(QUERIES[0])
        assert after is before  # the cached frozenset itself
        assert social.stats.result_cache.hits == 1
        assert social.stats.result_cache.misses == 1
        assert social.stats.result_cache.restamps == 1
        assert after == Evaluator(social.graph).evaluate(
            parse_query(QUERIES[0])
        )

    def test_stale_entries_never_served(self, social):
        q = QUERIES[0]
        before = social.evaluate(q)
        edge = next(social.graph.iter_directed_edges())
        social.remove_edge(edge)
        after = social.evaluate(q)
        assert after != before
        assert after == Evaluator(social.graph).evaluate(parse_query(q))

    def test_results_equal_one_shot_per_version(self, social):
        for text in QUERIES:
            assert social.evaluate(text) == Evaluator(social.graph).evaluate(
                parse_query(text)
            )
        social.remove_node(next(social.graph.iter_nodes()))
        for text in QUERIES:
            assert social.evaluate(text) == Evaluator(social.graph).evaluate(
                parse_query(text)
            )

    def test_use_cache_false_recomputes(self, social):
        first = social.evaluate(QUERIES[0], use_cache=False)
        second = social.evaluate(QUERIES[0], use_cache=False)
        assert first == second and first is not second
        assert social.stats.result_cache.hits == 0

    def test_config_is_part_of_the_key(self, social):
        loose = EngineConfig(max_pattern_length=2)
        social.evaluate(QUERIES[0])
        social.evaluate(QUERIES[0], config=loose)
        assert social.stats.result_cache.misses == 2


class TestPlanCache:
    def test_prepare_is_memoised(self, social):
        first = social.prepare(QUERIES[0])
        second = social.prepare(QUERIES[0])
        assert first is second
        assert social.stats.plan_cache.hits == 1

    def test_plan_survives_mutations(self, social):
        plan = social.prepare(QUERIES[2])
        social.add_node("new", ["Person"], {"team": "db"})
        assert social.prepare(QUERIES[2]) is plan  # plans are version-free

    def test_eviction_is_counted(self):
        service = GraphService(cycle_graph(3), plan_cache_size=2)
        for text in ["TRAIL ->", "SIMPLE ->", "TRAIL ->{1,2}"]:
            service.prepare(text)
        assert service.stats.plan_cache.evictions == 1
        assert len(service._plan_cache) == 2


class TestBatchEvaluation:
    def test_batch_matches_sequential(self, social):
        batch = social.evaluate_batch(QUERIES)
        assert batch == [
            Evaluator(social.graph).evaluate(parse_query(t)) for t in QUERIES
        ]

    def test_batch_is_deterministic_across_runs(self, social):
        workload = QUERIES * 3
        runs = [social.evaluate_batch(workload, use_cache=False)
                for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]

    def test_batch_preserves_input_order(self, social):
        workload = list(reversed(QUERIES))
        batch = social.evaluate_batch(workload)
        for text, result in zip(workload, batch):
            assert result == social.evaluate(text)

    def test_empty_batch(self, social):
        assert social.evaluate_batch([]) == []

    def test_batch_with_single_worker(self):
        service = GraphService(cycle_graph(4), max_workers=1)
        batch = service.evaluate_batch(["TRAIL ->", "SIMPLE ->{1,}"])
        assert [len(r) for r in batch] == [4, 12]
        service.close()

    def test_context_manager_closes_pool(self, social):
        with social as service:
            service.evaluate_batch(QUERIES[:2])
            assert service._executor is not None
        assert social._executor is None

    def test_raising_query_keeps_sibling_results(self, social):
        """Regression: one bad query must not lose its siblings."""
        workload = [QUERIES[0], "TRAIL (x", QUERIES[1]]
        results = social.evaluate_batch(workload, return_exceptions=True)
        assert results[0] == social.evaluate(QUERIES[0])
        assert isinstance(results[1], GPCError)
        assert results[2] == social.evaluate(QUERIES[1])

    def test_raising_query_raises_after_full_drain(self, social):
        workload = ["TRAIL (x", QUERIES[0], QUERIES[1]]
        with pytest.raises(GPCError):
            social.evaluate_batch(workload)
        # The siblings ran to completion despite the leading failure:
        # their stats were recorded and their results cached.
        assert social.stats.queries == 2
        social.evaluate(QUERIES[0])
        social.evaluate(QUERIES[1])
        assert social.stats.result_cache.hits == 2

    def test_exception_positions_preserve_input_order(self, social):
        workload = [QUERIES[0], "TRAIL (x", QUERIES[1], "SIMPLE )y("]
        results = social.evaluate_batch(workload, return_exceptions=True)
        assert [isinstance(r, Exception) for r in results] == (
            [False, True, False, True]
        )


class TestCloseDuringBatch:
    """Regression: ``close()`` racing ``evaluate_batch`` used to shut
    the pool down between ``_ensure_executor`` and ``submit``, so the
    batch died with ``RuntimeError: cannot schedule new futures after
    shutdown``. Submission now happens inside the same lock window
    that resolves the executor, so a concurrent close waits for the
    submits and then drains them with ``shutdown(wait=True)``."""

    def test_close_in_the_submit_window(self, social):
        import threading
        import time

        original = social._ensure_executor
        window_open = threading.Event()

        def stalled_ensure():
            executor = original()
            if not window_open.is_set():
                # Hold the ensure->submit window open long enough for
                # the closer thread to run close() inside it. With the
                # fix the service lock makes close wait; without it,
                # the pool is shut down under the batch's feet.
                window_open.set()
                time.sleep(0.15)
            return executor

        social._ensure_executor = stalled_ensure
        expected = social.evaluate(QUERIES[0], use_cache=False)
        outcome: dict = {}

        def run_batch():
            try:
                outcome["results"] = social.evaluate_batch(
                    [QUERIES[0]] * 4, use_cache=False
                )
            except Exception as exc:  # pragma: no cover - the regression
                outcome["error"] = exc

        closer = threading.Thread(
            target=lambda: (window_open.wait(5.0), social.close())
        )
        batch = threading.Thread(target=run_batch)
        batch.start()
        closer.start()
        batch.join(30.0)
        closer.join(30.0)
        assert "error" not in outcome, f"batch died: {outcome.get('error')!r}"
        assert outcome["results"] == [expected] * 4

    def test_service_usable_after_close(self, social):
        social.evaluate_batch(QUERIES[:2])
        social.close()
        # The documented contract: close is idempotent and a later
        # batch lazily re-creates the pool.
        social.close()
        assert social.evaluate_batch([QUERIES[0]]) == [
            social.evaluate(QUERIES[0])
        ]
        social.close()


class TestRemovalInvalidation:
    """Each remove_* delegation bumps the version, invalidates cached
    results, and forces a snapshot rebuild — symmetric with the
    add-path coverage above."""

    def _warm(self, service, text=QUERIES[0]):
        result = service.evaluate(text)
        assert service.evaluate(text) is result  # cached
        return result

    def test_remove_edge(self, social):
        before = self._warm(social)
        version = social.version
        snapshots = social.stats.snapshots_built
        social.remove_edge(next(social.graph.iter_directed_edges()))
        assert social.version == version + 1
        after = social.evaluate(QUERIES[0])
        assert after != before
        assert after == Evaluator(social.graph).evaluate(
            parse_query(QUERIES[0])
        )
        assert social.stats.snapshots_built == snapshots + 1

    def test_remove_undirected_edge(self, social):
        text = "TRAIL (x) ~[:married]~ (y)"
        before = self._warm(social, text)
        version = social.version
        social.remove_undirected_edge(
            next(social.graph.iter_undirected_edges())
        )
        assert social.version == version + 1
        after = social.evaluate(text)
        assert after != before
        assert after == Evaluator(social.graph).evaluate(parse_query(text))

    def test_remove_node_cascades(self, social):
        before = self._warm(social)
        version = social.version
        victim = next(social.graph.iter_nodes())
        social.remove_node(victim)
        # One version bump for the whole cascade (node + incident edges).
        assert social.version == version + 1
        after = social.evaluate(QUERIES[0])
        assert after != before
        assert all(
            victim not in answer.paths[0].elements for answer in after
        )
        assert after == Evaluator(social.graph).evaluate(
            parse_query(QUERIES[0])
        )

    def test_removal_round_trip_restores_cache_keying(self, social):
        """Removing and re-adding identical data yields a *new* version:
        stale entries must still miss even though answers coincide."""
        before = self._warm(social)
        edge = next(social.graph.iter_directed_edges())
        source, target = social.graph.source(edge), social.graph.target(edge)
        labels = social.graph.labels(edge)
        properties = dict(social.graph.properties(edge))
        social.remove_edge(edge)
        social.add_edge(edge.key, source, target, labels, properties)
        restored = social.evaluate(QUERIES[0])
        assert restored == before
        # Equal answers, but recomputed under the new version key.
        assert social.stats.result_cache.misses == 2


class TestStats:
    def test_latency_percentiles_ordered(self, social):
        for _ in range(5):
            social.evaluate_batch(QUERIES)
        summary = social.stats.latency.summary()
        assert summary["count"] == 5 * len(QUERIES)
        assert summary["p50_s"] <= summary["p90_s"] <= summary["p99_s"]

    def test_as_dict_is_json_serialisable(self, social):
        import json

        social.evaluate(QUERIES[0])
        encoded = json.dumps(social.stats.as_dict())
        assert "result_cache" in encoded

    def test_snapshot_memoised_per_version(self, social):
        social.evaluate(QUERIES[0])
        social.evaluate(QUERIES[1])
        assert social.stats.snapshots_built == 1
        social.add_node("x")
        social.evaluate(QUERIES[0])
        assert social.stats.snapshots_built == 2


class TestLRUCache:
    def test_lru_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_get_or_create_runs_factory_once_per_miss(self):
        cache = LRUCache(4)
        calls = []
        cache.get_or_create("k", lambda: calls.append(1) or "v")
        cache.get_or_create("k", lambda: calls.append(1) or "v")
        assert len(calls) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestConcurrentMutation:
    def test_service_mutators_are_safe_during_serving(self):
        """Mutating through the service while a batch is in flight
        must never produce torn snapshots (UnknownIdError mid-eval)."""
        import threading

        service = GraphService(cycle_graph(6), max_workers=4)
        errors: list[Exception] = []

        def mutate():
            try:
                for i in range(40):
                    node = service.add_node(f"extra{i}")
                    edge = service.add_edge(
                        f"eextra{i}", node, next(service.graph.iter_nodes())
                    )
                    service.remove_edge(edge)
                    service.remove_node(node)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        writer = threading.Thread(target=mutate)
        writer.start()
        try:
            for _ in range(10):
                for result in service.evaluate_batch(
                    ["TRAIL (x) -> (y)", "SIMPLE (x) ->{1,2} (y)"]
                ):
                    assert result is not None
        finally:
            writer.join()
            service.close()
        assert errors == []
