"""Regression tests for the service-stats correctness fixes:

- ``evaluate(use_cache=False)`` must count a *bypass*, not a miss, so
  ``hit_rate`` only reflects real cache probes;
- ``LatencyRecorder.count`` must read under the lock, and ``summary()``
  must derive every figure from one locked, once-sorted copy;
- ``summary()`` must report a *windowed* mean: after the bounded
  reservoir wraps, the all-time ``_total/_count`` mean describes a
  different population than the windowed percentiles (regression — the
  two used to be mixed in one payload).
"""

import threading

from repro.graph.generators import social_network
from repro.service import GraphService
from repro.service.stats import CacheStats, LatencyRecorder

QUERY = "TRAIL (x:Person) -[:knows]-> (y:Person)"


class TestCacheBypasses:
    def test_bypass_not_counted_as_miss(self):
        service = GraphService(social_network(num_people=8, seed=2))
        for _ in range(3):
            service.evaluate(QUERY, use_cache=False)
        stats = service.stats.result_cache
        assert stats.bypasses == 3
        assert stats.misses == 0
        assert stats.lookups == 0
        service.close()

    def test_hit_rate_unaffected_by_bypasses(self):
        service = GraphService(social_network(num_people=8, seed=2))
        service.evaluate(QUERY)  # miss
        service.evaluate(QUERY)  # hit
        for _ in range(10):
            service.evaluate(QUERY, use_cache=False)
        stats = service.stats.result_cache
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5  # 10 bypasses must not drag it down
        service.close()

    def test_bypasses_in_as_dict(self):
        stats = CacheStats(hits=2, misses=1, bypasses=4)
        payload = stats.as_dict()
        assert payload["bypasses"] == 4
        assert payload["hit_rate"] == 2 / 3

    def test_service_as_dict_includes_bypasses(self):
        service = GraphService(social_network(num_people=8, seed=2))
        service.evaluate(QUERY, use_cache=False)
        payload = service.stats.as_dict()
        assert payload["result_cache"]["bypasses"] == 1
        service.close()


class TestLatencyRecorder:
    def test_summary_consistent_figures(self):
        recorder = LatencyRecorder()
        for value in (0.5, 0.1, 0.3, 0.2, 0.4):
            recorder.record(value)
        summary = recorder.summary()
        assert summary["count"] == 5
        assert abs(summary["mean_s"] - 0.3) < 1e-12
        assert summary["p50_s"] == 0.3
        assert summary["p90_s"] == 0.5
        assert summary["p99_s"] == 0.5
        assert summary["p50_s"] <= summary["p90_s"] <= summary["p99_s"]

    def test_empty_summary(self):
        summary = LatencyRecorder().summary()
        assert summary == {
            "count": 0,
            "total_s": 0.0,
            "window": 0,
            "mean_s": 0.0,
            "p50_s": 0.0,
            "p90_s": 0.0,
            "p99_s": 0.0,
        }

    def test_wrapped_reservoir_mean_is_windowed(self):
        # One huge outlier, then enough samples to push it out of the
        # bounded window: the summary's mean must describe the same
        # window as the percentiles, not the all-time total.
        recorder = LatencyRecorder(capacity=4)
        recorder.record(1000.0)
        for _ in range(4):
            recorder.record(0.002)
        summary = recorder.summary()
        assert summary["count"] == 5          # all-time, kept
        assert abs(summary["total_s"] - 1000.008) < 1e-9
        assert summary["window"] == 4
        assert abs(summary["mean_s"] - 0.002) < 1e-12  # windowed
        # The one-shot summary is internally consistent: the mean lies
        # within the window's percentile range.
        assert summary["p50_s"] <= summary["mean_s"] <= summary["p99_s"]

    def test_unwrapped_summary_mean_matches_all_time(self):
        recorder = LatencyRecorder(capacity=16)
        for value in (0.1, 0.2, 0.3):
            recorder.record(value)
        summary = recorder.summary()
        assert summary["count"] == summary["window"] == 3
        assert abs(summary["mean_s"] - 0.2) < 1e-12
        assert abs(summary["mean_s"] - recorder.mean) < 1e-12

    def test_percentile_still_matches_summary(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(value / 100.0)
        summary = recorder.summary()
        assert summary["p50_s"] == recorder.percentile(50)
        assert summary["p90_s"] == recorder.percentile(90)
        assert summary["p99_s"] == recorder.percentile(99)

    def test_concurrent_records_keep_summary_sane(self):
        recorder = LatencyRecorder(capacity=128)
        stop = threading.Event()

        def writer():
            value = 0
            while not stop.is_set():
                value += 1
                recorder.record((value % 100) / 1000.0)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                summary = recorder.summary()
                assert summary["count"] >= 0
                assert 0.0 <= summary["p50_s"] <= summary["p99_s"] <= 0.1
                assert recorder.count == recorder.count  # locked read
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert recorder.summary()["count"] == recorder.count


class TestCacheStatsRoundTrip:
    """``as_dict`` must cover every counter field (its annotation says
    ``int | float`` because ``hit_rate`` rides along) — a new dataclass
    field that never reaches the payload is a silent metrics gap."""

    def test_every_counter_field_round_trips(self):
        from dataclasses import fields

        distinct = {
            f.name: i for i, f in enumerate(fields(CacheStats), start=1)
        }
        stats = CacheStats(**distinct)
        payload = stats.as_dict()
        for name, value in distinct.items():
            assert payload[name] == value, f"{name} missing or mangled"

    def test_payload_has_no_extra_keys_beyond_hit_rate(self):
        from dataclasses import fields

        payload = CacheStats().as_dict()
        assert set(payload) == {f.name for f in fields(CacheStats)} | {
            "hit_rate"
        }

    def test_hit_rate_is_float(self):
        payload = CacheStats(hits=1, misses=3).as_dict()
        assert payload["hit_rate"] == 0.25
        assert isinstance(payload["hit_rate"], float)
