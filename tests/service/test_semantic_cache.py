"""SemanticResultCache behaviour and LRUCache single-flight."""

from __future__ import annotations

import threading
import time

import pytest

from repro.gpc.engine import Evaluator
from repro.gpc.parser import parse_query
from repro.graph.builder import GraphBuilder
from repro.service import GraphService, LRUCache, SemanticResultCache
from repro.service.stats import CacheStats


def two_worlds_service() -> GraphService:
    """Two label-disjoint subgraphs: mutations in one provably cannot
    affect queries over the other."""
    graph = (
        GraphBuilder()
        .node("p1", "Person", team="db")
        .node("p2", "Person", team="db")
        .node("d1", "Device")
        .node("d2", "Device")
        .edge("p1", "p2", "knows", key="k1")
        .edge("d1", "d2", "pings", key="g1")
        .build()
    )
    return GraphService(graph)


PERSON_QUERY = "TRAIL (x:Person) -[e:knows]-> (y:Person)"
DEVICE_QUERY = "TRAIL (x:Device) -[e:pings]-> (y:Device)"


class TestSemanticInvalidation:
    def test_disjoint_mutation_keeps_hits_coming(self):
        service = two_worlds_service()
        person_before = service.evaluate(PERSON_QUERY)
        for i in range(5):  # a stream of device-world mutations
            d = service.add_node(f"dev{i}", ["Device"])
            service.add_edge(
                f"dp{i}", d, next(iter(service.graph.nodes_with_label("Device"))),
                ["pings"],
            )
            assert service.evaluate(PERSON_QUERY) is person_before
        stats = service.stats.result_cache
        assert stats.hits == 5
        assert stats.restamps == 5
        assert stats.invalidations == 0
        assert stats.misses == 1

    def test_intersecting_mutation_invalidates_and_recomputes(self):
        service = two_worlds_service()
        before = service.evaluate(PERSON_QUERY)
        people = sorted(service.graph.nodes_with_label("Person"))
        service.add_edge("k2", people[1], people[0], ["knows"])
        after = service.evaluate(PERSON_QUERY)
        assert after != before
        assert after == Evaluator(service.graph).evaluate(
            parse_query(PERSON_QUERY)
        )
        stats = service.stats.result_cache
        assert stats.invalidations == 1
        assert stats.restamps == 0

    def test_each_entry_checked_against_its_own_footprint(self):
        service = two_worlds_service()
        person = service.evaluate(PERSON_QUERY)
        device = service.evaluate(DEVICE_QUERY)
        devices = sorted(service.graph.nodes_with_label("Device"))
        service.add_edge("g2", devices[1], devices[0], ["pings"])
        # Person entry survives, device entry is invalidated.
        assert service.evaluate(PERSON_QUERY) is person
        fresh_device = service.evaluate(DEVICE_QUERY)
        assert fresh_device != device
        stats = service.stats.result_cache
        assert stats.restamps == 1
        assert stats.invalidations == 1

    def test_restamped_entry_hits_exactly_afterwards(self):
        service = two_worlds_service()
        service.evaluate(PERSON_QUERY)
        service.add_node("lone", ["Device"])
        assert service.evaluate(PERSON_QUERY) is not None  # restamp
        service.evaluate(PERSON_QUERY)  # exact version hit now
        stats = service.stats.result_cache
        assert stats.hits == 2
        assert stats.restamps == 1

    def test_overflowed_delta_log_invalidates(self):
        graph = (
            GraphBuilder()
            .node("p1", "Person")
            .node("p2", "Person")
            .edge("p1", "p2", "knows", key="k1")
            .build()
        )
        service = GraphService(graph)
        service.graph._delta_log = type(service.graph._delta_log)(maxlen=2)
        service.evaluate(PERSON_QUERY)
        for i in range(4):  # more mutations than the log retains
            service.add_node(f"x{i}", ["Device"])
        service.evaluate(PERSON_QUERY)
        stats = service.stats.result_cache
        # Disjoint mutations, but the chain is gone: must recompute.
        assert stats.hits == 0
        assert stats.invalidations == 1

    def test_cache_without_delta_source_flushes_per_version(self):
        cache = SemanticResultCache(8, CacheStats())
        cache.put("q", 1, None, frozenset({1}))
        assert cache.get("q", 1) == frozenset({1})
        assert cache.get("q", 2) is None  # no semantics available
        assert cache.stats.misses == 1

    def test_put_never_downgrades_newer_stamp(self):
        cache = SemanticResultCache(8, CacheStats())
        cache.put("q", 5, None, frozenset({"new"}))
        cache.put("q", 3, None, frozenset({"old"}))  # racing old writer
        assert cache.get("q", 5) == frozenset({"new"})

    def test_eviction_counted(self):
        cache = SemanticResultCache(2, CacheStats())
        for i in range(4):
            cache.put(f"q{i}", 1, None, frozenset())
        assert len(cache) == 2
        assert cache.stats.evictions == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SemanticResultCache(0)


class TestSingleFlight:
    def test_concurrent_misses_share_one_factory_run(self):
        cache = LRUCache(8)
        calls: list[int] = []
        barrier = threading.Barrier(6)

        def factory():
            calls.append(1)
            time.sleep(0.05)  # long enough for every waiter to queue
            return "value"

        results: list[str] = []

        def worker():
            barrier.wait()
            results.append(cache.get_or_create("key", factory))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == ["value"] * 6
        assert len(calls) == 1  # the whole point
        assert cache.stats.misses == 1
        assert cache.stats.dedup_waits == 5
        assert cache.stats.hits == 5  # waiters re-probe and hit

    def test_failing_factory_releases_waiters(self):
        cache = LRUCache(8)
        attempts: list[int] = []
        barrier = threading.Barrier(3)

        def factory():
            attempts.append(1)
            time.sleep(0.02)
            if len(attempts) == 1:
                raise RuntimeError("first build fails")
            return "second-time-lucky"

        outcomes: list[object] = []

        def worker():
            barrier.wait()
            try:
                outcomes.append(cache.get_or_create("key", factory))
            except RuntimeError as exc:
                outcomes.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Exactly one caller saw the failure; the others retried and
        # got the second factory run's value.
        errors = [o for o in outcomes if isinstance(o, RuntimeError)]
        values = [o for o in outcomes if o == "second-time-lucky"]
        assert len(errors) == 1
        assert len(values) == 2
        assert len(attempts) == 2

    def test_sequential_behaviour_unchanged(self):
        cache = LRUCache(4)
        assert cache.get_or_create("k", lambda: 1) == 1
        assert cache.get_or_create("k", lambda: 2) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.dedup_waits == 0

    def test_service_prepare_is_single_flight(self):
        service = two_worlds_service()
        barrier = threading.Barrier(4)
        prepared: list[object] = []

        def worker():
            barrier.wait()
            prepared.append(service.prepare(PERSON_QUERY))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(p) for p in prepared}) == 1
        assert service.stats.plan_cache.misses == 1
