"""GraphSnapshot: immutability, memoisation, index agreement."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, UnknownIdError
from repro.gpc.engine import Evaluator
from repro.gpc.parser import parse_query
from repro.graph.builder import GraphBuilder
from repro.graph.generators import cycle_graph


@pytest.fixture
def mixed():
    return (
        GraphBuilder()
        .node("a", "P", name="Ann")
        .node("b", "P", name="Bob")
        .node("c", "Q")
        .edge("a", "b", "knows", key="e1", since=2015)
        .edge("b", "c", "likes", key="e2")
        .undirected("a", "c", "married", key="u1")
        .build()
    )


class TestIndexAgreement:
    def test_carrier_sets(self, mixed):
        snap = mixed.snapshot()
        assert frozenset(snap.nodes) == mixed.nodes
        assert frozenset(snap.directed_edges) == mixed.directed_edges
        assert frozenset(snap.undirected_edges) == mixed.undirected_edges
        assert snap.num_nodes == mixed.num_nodes
        assert snap.num_edges == mixed.num_edges

    def test_adjacency(self, mixed):
        snap = mixed.snapshot()
        for node in mixed.nodes:
            assert frozenset(snap.out_edges(node)) == mixed.out_edges(node)
            assert frozenset(snap.in_edges(node)) == mixed.in_edges(node)
            assert frozenset(snap.undirected_edges_at(node)) == (
                mixed.undirected_edges_at(node)
            )
            assert snap.degree(node) == mixed.degree(node)
            assert snap.neighbours(node) == mixed.neighbours(node)

    def test_label_indexes(self, mixed):
        snap = mixed.snapshot()
        for label in mixed.all_labels() | {"absent"}:
            assert frozenset(snap.nodes_with_label(label)) == (
                mixed.nodes_with_label(label)
            )
            assert frozenset(snap.directed_edges_with_label(label)) == (
                mixed.directed_edges_with_label(label)
            )
            assert frozenset(snap.undirected_edges_with_label(label)) == (
                mixed.undirected_edges_with_label(label)
            )
        assert snap.all_labels() == mixed.all_labels()

    def test_formal_accessors(self, mixed):
        snap = mixed.snapshot()
        for edge in mixed.directed_edges:
            assert snap.source(edge) == mixed.source(edge)
            assert snap.target(edge) == mixed.target(edge)
            assert snap.labels(edge) == mixed.labels(edge)
        for edge in mixed.undirected_edges:
            assert snap.endpoints(edge) == mixed.endpoints(edge)
        for node in mixed.nodes:
            assert snap.properties(node) == mixed.properties(node)
            assert snap.get_property(node, "name") == (
                mixed.get_property(node, "name")
            )

    def test_unknown_ids_raise(self, mixed):
        from repro.graph.ids import NodeId

        snap = mixed.snapshot()
        ghost = NodeId("ghost")
        with pytest.raises(UnknownIdError):
            snap.out_edges(ghost)
        with pytest.raises(UnknownIdError):
            snap.labels(ghost)
        with pytest.raises(UnknownIdError):
            snap.get_property(ghost, "k")
        edge = next(mixed.iter_undirected_edges())
        with pytest.raises(GraphError):
            snap.other_endpoint(edge, ghost)


class TestVersioning:
    def test_memoised_per_version(self, mixed):
        assert mixed.snapshot() is mixed.snapshot()
        assert mixed.snapshot().version == mixed.version

    def test_new_snapshot_after_mutation(self, mixed):
        first = mixed.snapshot()
        mixed.add_node("d", labels={"P"})
        second = mixed.snapshot()
        assert second is not first
        assert second.version > first.version

    def test_snapshot_is_immutable_under_mutation(self, mixed):
        snap = mixed.snapshot()
        nodes_before = snap.nodes
        node = next(mixed.iter_nodes())
        out_before = snap.out_edges(node)
        mixed.remove_node(node)
        assert snap.nodes == nodes_before
        assert snap.out_edges(node) == out_before
        assert snap.has_node(node)
        assert not mixed.has_node(node)

    def test_snapshot_of_snapshot_is_identity(self, mixed):
        snap = mixed.snapshot()
        assert snap.snapshot() is snap

    def test_version_counts_every_mutation(self):
        graph = cycle_graph(3)
        start = graph.version
        node = next(graph.iter_nodes())
        graph.set_property(node, "k", 1)
        graph.remove_property(node, "k")
        assert graph.version == start + 2


class TestEvaluationOverSnapshots:
    QUERY = "SHORTEST (x) ->{1,} (y)"

    def test_evaluator_accepts_snapshot(self):
        graph = cycle_graph(4)
        from_graph = Evaluator(graph).evaluate(parse_query(self.QUERY))
        from_snap = Evaluator(graph.snapshot()).evaluate(
            parse_query(self.QUERY)
        )
        assert from_graph == from_snap

    def test_evaluator_pins_version(self):
        graph = cycle_graph(4)
        evaluator = Evaluator(graph)
        before = evaluator.evaluate(parse_query(self.QUERY))
        graph.add_node("extra")
        # The evaluator still sees the version it snapshotted.
        assert evaluator.evaluate(parse_query(self.QUERY)) == before
        # A fresh evaluator sees the mutation.
        assert Evaluator(graph).evaluate(
            parse_query("SIMPLE (x)")
        ) != before
