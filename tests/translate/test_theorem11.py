"""Theorem 11 — differential tests: every baseline evaluator agrees
with its GPC+ translation on randomly generated graphs.

These are the central correctness tests of the expressivity claim: the
left side runs the textbook algorithm (product automaton, relational
fixpoint, Datalog bottom-up), the right side runs the translated GPC+
query through the full GPC engine.
"""

import pytest

from repro.graph.generators import (
    chain_graph,
    cycle_graph,
    random_labeled_digraph,
)
from repro.baselines.c2rpq import Atom, C2RPQ, UC2RPQ, eval_c2rpq, eval_uc2rpq
from repro.baselines.datalog import Program
from repro.baselines.nre import (
    NREConcat,
    NREEpsilon,
    NRELabel,
    NREStar,
    NRESymbol,
    NRETest,
    NREUnion,
    eval_nre,
)
from repro.baselines.regular_queries import (
    RegularQuery,
    atom,
    clause,
    eval_regular_query,
    tatom,
)
from repro.baselines.rpq import eval_rpq
from repro.translate import (
    c2rpq_to_gpc_plus,
    nre_to_gpc_plus,
    regular_query_to_gpc_plus,
    rpq_to_gpc_plus,
    uc2rpq_to_gpc_plus,
)


def graphs():
    out = [
        chain_graph(4, edge_label="a"),
        cycle_graph(3, edge_label="a"),
    ]
    for seed in range(4):
        out.append(
            random_labeled_digraph(
                5, 8, edge_labels=("a", "b"), node_labels=("A", "B"), seed=seed
            )
        )
    return out


RPQ_EXPRESSIONS = [
    "a",
    "a b",
    "a | b",
    "a*",
    "a+",
    "a?",
    "a-",
    "(a b)*",
    "(a | b-)+",
    "a (b | a)* b-",
    "()",
]


class TestRPQTranslation:
    @pytest.mark.parametrize("expression", RPQ_EXPRESSIONS)
    def test_agreement(self, expression):
        for graph in graphs():
            baseline = eval_rpq(graph, expression)
            translated = rpq_to_gpc_plus(expression).evaluate(graph)
            assert baseline == translated, expression


class TestC2RPQTranslation:
    def test_two_atom_join(self):
        query = C2RPQ(("x", "z"), (Atom("x", "a+", "y"), Atom("y", "b", "z")))
        for graph in graphs():
            assert eval_c2rpq(graph, query) == c2rpq_to_gpc_plus(query).evaluate(
                graph
            )

    def test_triangle(self):
        query = C2RPQ(
            ("x",),
            (
                Atom("x", "a", "y"),
                Atom("y", "a", "z"),
                Atom("z", "a", "x"),
            ),
        )
        for graph in graphs():
            assert eval_c2rpq(graph, query) == c2rpq_to_gpc_plus(query).evaluate(
                graph
            )

    def test_projection_to_middle_variable(self):
        query = C2RPQ(("y",), (Atom("x", "a", "y"), Atom("y", "b*", "z")))
        for graph in graphs():
            assert eval_c2rpq(graph, query) == c2rpq_to_gpc_plus(query).evaluate(
                graph
            )

    def test_union_of_conjunctions(self):
        disjuncts = (
            C2RPQ(("x", "y"), (Atom("x", "a", "y"),)),
            C2RPQ(("x", "y"), (Atom("x", "b b", "y"),)),
        )
        query = UC2RPQ(disjuncts)
        for graph in graphs():
            assert eval_uc2rpq(graph, query) == uc2rpq_to_gpc_plus(
                query
            ).evaluate(graph)


NRE_EXPRESSIONS = [
    NRESymbol("a"),
    NREEpsilon(),
    NREConcat(NRESymbol("a"), NRETest(NRESymbol("b"))),
    NREConcat(NRESymbol("a"), NRETest(NREConcat(NRESymbol("b"), NRESymbol("b")))),
    NREStar(NREConcat(NRESymbol("a"), NRETest(NRESymbol("b")))),
    NREUnion(NRESymbol("a", inverse=True), NRETest(NRESymbol("b"))),
    NREConcat(NRETest(NRELabel("A")), NREStar(NRESymbol("a"))),
    NRETest(NRETest(NRESymbol("a"))),
]


class TestNRETranslation:
    @pytest.mark.parametrize("index", range(len(NRE_EXPRESSIONS)))
    def test_agreement(self, index):
        expression = NRE_EXPRESSIONS[index]
        for graph in graphs():
            baseline = eval_nre(graph, expression)
            translated = nre_to_gpc_plus(expression).evaluate(graph)
            assert baseline == translated, index

    def test_paper_example_shape(self):
        # (a[b+]c)+ — the exact example from the Theorem 11 proof
        # sketch (adapted: labels a, b, a).
        expression = NREStar(
            NREConcat(
                NREConcat(
                    NRESymbol("a"),
                    NRETest(NREConcat(NRESymbol("b"), NREStar(NRESymbol("b")))),
                ),
                NRESymbol("a"),
            )
        )
        for graph in graphs()[:3]:
            baseline = eval_nre(graph, expression)
            translated = nre_to_gpc_plus(expression).evaluate(graph)
            assert baseline == translated


def _rq_simple_closure():
    return RegularQuery(
        Program(
            (
                clause(atom("P", "x", "y"), atom("a", "x", "y")),
                clause(atom("Ans", "x", "y"), tatom("P", "x", "y")),
            )
        )
    )


def _rq_two_step_closure():
    return RegularQuery(
        Program(
            (
                clause(
                    atom("Two", "x", "y"),
                    atom("a", "x", "z"),
                    atom("b", "z", "y"),
                ),
                clause(atom("Ans", "x", "y"), tatom("Two", "x", "y")),
            )
        )
    )


def _rq_union_of_predicates():
    return RegularQuery(
        Program(
            (
                clause(atom("P", "x", "y"), atom("a", "x", "y")),
                clause(atom("P", "x", "y"), atom("b", "x", "y")),
                clause(atom("Ans", "x", "y"), tatom("P", "x", "y")),
            )
        )
    )


def _rq_nested_closure():
    return RegularQuery(
        Program(
            (
                clause(atom("P", "x", "y"), atom("a", "x", "y")),
                clause(atom("Q", "x", "y"), tatom("P", "x", "y"), atom("b", "y", "y")),
                clause(atom("Ans", "x", "y"), tatom("Q", "x", "y")),
            )
        )
    )


def _rq_ternary_answer():
    return RegularQuery(
        Program(
            (
                clause(
                    atom("Ans", "x", "y", "z"),
                    atom("a", "x", "y"),
                    tatom("b", "y", "z"),
                ),
            )
        )
    )


def _rq_disconnected_answer_body():
    # Disconnected bodies at the *answer* level are handled by joins.
    return RegularQuery(
        Program(
            (
                clause(
                    atom("Ans", "x", "z"),
                    atom("a", "x", "y"),
                    atom("b", "w", "z"),
                ),
            )
        )
    )


class TestRegularQueryTranslation:
    @pytest.mark.parametrize(
        "factory",
        [
            _rq_simple_closure,
            _rq_two_step_closure,
            _rq_union_of_predicates,
            _rq_nested_closure,
            _rq_ternary_answer,
            _rq_disconnected_answer_body,
        ],
    )
    def test_agreement(self, factory):
        query = factory()
        for graph in graphs():
            baseline = eval_regular_query(graph, query)
            translated = regular_query_to_gpc_plus(query).evaluate(graph)
            assert baseline == translated, factory.__name__

    def test_inlined_nontransitive_predicate(self):
        query = RegularQuery(
            Program(
                (
                    clause(atom("P", "x", "y"), atom("a", "x", "y")),
                    clause(atom("Q", "x", "y"), atom("P", "x", "z"), atom("P", "z", "y")),
                    clause(atom("Ans", "x", "y"), tatom("Q", "x", "y")),
                )
            )
        )
        for graph in graphs()[:4]:
            assert eval_regular_query(graph, query) == regular_query_to_gpc_plus(
                query
            ).evaluate(graph)

    def test_disconnected_rule_case_a(self):
        # P's defining rule splits x and y into separate components:
        # P(x, y) :- a(x, x'), b(y', y) — appendix case (a).
        query = RegularQuery(
            Program(
                (
                    clause(
                        atom("P", "x", "y"),
                        atom("a", "x", "u"),
                        atom("b", "v", "y"),
                    ),
                    clause(atom("P", "x", "y"), atom("a", "x", "y")),
                    clause(atom("Ans", "x", "y"), tatom("P", "x", "y")),
                )
            )
        )
        for graph in graphs()[:4]:
            baseline = eval_regular_query(graph, query)
            translated = regular_query_to_gpc_plus(query).evaluate(graph)
            assert baseline == translated

    def test_disconnected_rule_case_b(self):
        # P(x, y) :- a(x, y), b(u, v): the b-component is a global
        # Boolean side condition — appendix case (b).
        query = RegularQuery(
            Program(
                (
                    clause(
                        atom("P", "x", "y"),
                        atom("a", "x", "y"),
                        atom("b", "u", "v"),
                    ),
                    clause(atom("Ans", "x", "y"), tatom("P", "x", "y")),
                )
            )
        )
        for graph in graphs():
            baseline = eval_regular_query(graph, query)
            translated = regular_query_to_gpc_plus(query).evaluate(graph)
            assert baseline == translated
