"""Tests for ``tools/lint_invariants.py`` (the repo-invariant linter).

The tool lives outside the ``repro`` package, so it is loaded by file
path. ``check_source`` is the testable core; ``main`` is exercised for
its exit codes on seeded good/bad trees.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
_SPEC = importlib.util.spec_from_file_location(
    "lint_invariants", REPO_ROOT / "tools" / "lint_invariants.py"
)
lint_invariants = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(lint_invariants)


def codes(source: str, **kwargs) -> list[str]:
    return [
        finding.code
        for finding in lint_invariants.check_source(
            source, Path("probe.py"), **kwargs
        )
    ]


class TestBroadExcept:
    BROAD = "try:\n    pass\nexcept Exception:\n    pass\n"
    BARE = "try:\n    pass\nexcept:\n    pass\n"
    NARROW = "try:\n    pass\nexcept ValueError:\n    pass\n"
    TUPLE = "try:\n    pass\nexcept (ValueError, Exception):\n    pass\n"
    WAIVED = (
        "try:\n    pass\n"
        "except Exception:  # lint: allow-broad-except\n    pass\n"
    )

    def test_broad_except_flagged(self):
        assert codes(self.BROAD) == ["INV001"]

    def test_bare_except_flagged(self):
        assert codes(self.BARE) == ["INV001"]

    def test_exception_inside_tuple_flagged(self):
        assert codes(self.TUPLE) == ["INV001"]

    def test_narrow_except_ok(self):
        assert codes(self.NARROW) == []

    def test_waiver_comment_suppresses(self):
        assert codes(self.WAIVED) == []

    def test_out_of_scope_files_skip_broad_except(self):
        assert codes(self.BROAD, scope_broad_except=False) == []


class TestMutableDefaults:
    def test_list_default(self):
        assert codes("def f(x=[]):\n    pass\n") == ["INV002"]

    def test_dict_and_set_calls(self):
        assert codes("def f(x=dict(), y=set()):\n    pass\n") == [
            "INV002",
            "INV002",
        ]

    def test_keyword_only_default(self):
        assert codes("def f(*, x={}):\n    pass\n") == ["INV002"]

    def test_comprehension_default(self):
        assert codes("def f(x=[i for i in range(3)]):\n    pass\n") == [
            "INV002"
        ]

    def test_lambda_default(self):
        assert codes("g = lambda x=[]: x\n") == ["INV002"]

    def test_immutable_defaults_ok(self):
        assert codes("def f(x=(), y=None, z=1, w=frozenset()):\n    pass\n") == []


class TestAsserts:
    def test_assert_flagged(self):
        assert codes("def f(x):\n    assert x\n") == ["INV003"]

    def test_waived_assert_ok(self):
        assert (
            codes("def f(x):\n    assert x  # lint: allow-assert\n") == []
        )

    def test_asserts_unscoped_like_defaults(self):
        # INV002/INV003 apply everywhere, even when broad-except
        # checking is scoped out.
        assert codes(
            "def f(x=[]):\n    assert x\n", scope_broad_except=False
        ) == ["INV002", "INV003"]


class TestMain:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("def f(x=None):\n    return x\n", encoding="utf-8")
        assert lint_invariants.main([str(good)]) == 0
        assert capsys.readouterr().out == ""

    def test_seeded_violations_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def f(x=[]):\n"
            "    assert x\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:\n"
            "        pass\n",
            encoding="utf-8",
        )
        assert lint_invariants.main([str(bad)]) == 1
        out = capsys.readouterr().out
        for code in ("INV001", "INV002", "INV003"):
            assert code in out

    def test_unparsable_file_exits_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n", encoding="utf-8")
        assert lint_invariants.main([str(broken)]) == 2
        assert "broken.py" in capsys.readouterr().err

    def test_repo_tree_is_clean(self):
        # The invariant the CI job enforces: the committed tree lints
        # clean with default roots.
        assert lint_invariants.main([]) == 0
