"""Section 7 extensions: arithmetic conditions, the Diophantine gadget,
label expressions, mixed restrictors, bag semantics."""

import pytest

from repro.direction import Direction
from repro.errors import CollectError, GPCTypeError
from repro.graph.builder import GraphBuilder
from repro.graph.generators import chain_graph
from repro.graph.ids import NodeId as N
from repro.gpc import ast
from repro.gpc.assignments import Assignment
from repro.gpc.engine import Evaluator
from repro.gpc.parser import parse_pattern, parse_query
from repro.graph.paths import Path, is_simple, is_trail
from repro.gpc.typing import infer_schema
from repro.gpc.values import GroupValue
from repro.extensions.arithmetic import (
    ArithConditioned,
    Count,
    PropertyTerm,
    TermConst,
    TermProduct,
    TermSum,
    evaluate_term,
)
from repro.extensions.bag_semantics import BagEvaluator
from repro.extensions.diophantine import (
    DiophantineInstance,
    build_gadget_graph,
    build_gadget_pattern,
    solve_bounded,
)
from repro.extensions.label_expressions import (
    EdgeWithLabelExpr,
    LabelAnd,
    LabelAtom,
    LabelNot,
    LabelOr,
    LabelWildcard,
    NodeWithLabelExpr,
    satisfies_label_expr,
)
from repro.extensions.mixed_restrictors import (
    RestrictedSubpattern,
    section7_anomaly,
)


class TestArithmeticTerms:
    @pytest.fixture
    def graph(self):
        return GraphBuilder().node("a", k=3).node("b").build()

    def test_const(self, graph):
        assert evaluate_term(TermConst(7), graph, Assignment({})) == 7

    def test_property_term(self, graph):
        mu = Assignment({"x": N("a")})
        assert evaluate_term(PropertyTerm("x", "k"), graph, mu) == 3

    def test_undefined_property_is_none(self, graph):
        mu = Assignment({"x": N("b")})
        assert evaluate_term(PropertyTerm("x", "k"), graph, mu) is None

    def test_count(self, graph):
        group = GroupValue(((Path.node(N("a")), N("a")),))
        mu = Assignment({"g": group})
        assert evaluate_term(Count("g"), graph, mu) == 1

    def test_sum_and_product(self, graph):
        mu = Assignment({"x": N("a")})
        term = TermSum(PropertyTerm("x", "k"), TermProduct(TermConst(2), TermConst(5)))
        assert evaluate_term(term, graph, mu) == 13

    def test_undefined_propagates(self, graph):
        mu = Assignment({"x": N("b")})
        term = TermSum(PropertyTerm("x", "k"), TermConst(1))
        assert evaluate_term(term, graph, mu) is None


class TestArithConditioned:
    def test_count_equals_constant(self):
        graph = chain_graph(4)
        pattern = ArithConditioned(
            parse_pattern("-[e]->{1,}"), Count("e"), TermConst(2)
        )
        matches = Evaluator(graph).eval_pattern(pattern, max_length=4)
        assert matches
        assert all(len(p) == 2 for p, _ in matches)

    def test_typing_checks_count_needs_group(self):
        pattern = ArithConditioned(
            parse_pattern("-[e]->"), Count("e"), TermConst(1)
        )
        with pytest.raises(GPCTypeError):
            infer_schema(pattern)

    def test_typing_checks_property_needs_singleton(self):
        pattern = ArithConditioned(
            parse_pattern("-[e]->{1,}"), PropertyTerm("e", "k"), TermConst(1)
        )
        with pytest.raises(GPCTypeError):
            infer_schema(pattern)

    def test_typing_checks_unbound(self):
        pattern = ArithConditioned(
            parse_pattern("->"), Count("zz"), TermConst(1)
        )
        with pytest.raises(GPCTypeError):
            infer_schema(pattern)

    def test_count_against_property(self):
        graph = (
            GraphBuilder()
            .node("a", want=2)
            .node("b")
            .node("c")
            .edge("a", "b", key="e1")
            .edge("b", "c", key="e2")
            .build()
        )
        pattern = ArithConditioned(
            parse_pattern("(u) -[e]->{1,} ()"),
            Count("e"),
            PropertyTerm("u", "want"),
        )
        matches = Evaluator(graph).eval_pattern(pattern, max_length=3)
        assert len(matches) == 1
        ((path, mu),) = matches
        assert len(path) == 2 and mu["u"] == N("a")


class TestDiophantine:
    def test_gadget_graph_shape(self):
        instance = DiophantineInstance(2, ((1, (1, 0)), (-1, (0, 1))))
        graph = build_gadget_graph(instance)
        # 2 variable nodes + 2 monomial nodes, loops on each.
        assert graph.num_nodes == 4
        assert len(graph.nodes_with_label("S")) == 1
        assert len(graph.directed_edges_with_label("A0")) == 1
        assert len(graph.directed_edges_with_label("B1")) == 1

    def test_pattern_is_well_typed(self):
        instance = DiophantineInstance(2, ((1, (1, 0)), (-1, (0, 1))))
        pattern = build_gadget_pattern(instance, loop_bound=3)
        schema = infer_schema(pattern)
        assert "x0" in schema and "y1" in schema

    def test_linear_equation(self):
        # x - y - 2 = 0, minimal natural solution (2, 0).
        instance = DiophantineInstance(
            2, ((1, (1, 0)), (-1, (0, 1)), (-2, (0, 0)))
        )
        solution = solve_bounded(instance, bound=4)
        assert solution is not None
        assert instance.evaluate(solution) == 0

    def test_quadratic_equation(self):
        # x^2 - 4 = 0 -> x = 2.
        instance = DiophantineInstance(1, ((1, (2,)), (-4, (0,))))
        solution = solve_bounded(instance, bound=3)
        assert solution == (2,)

    def test_unsolvable_within_bound(self):
        # x + 1 = 0 has no natural solution.
        instance = DiophantineInstance(1, ((1, (1,)), (1, (0,))))
        assert solve_bounded(instance, bound=3) is None

    def test_instance_validation(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            DiophantineInstance(0, ())
        with pytest.raises(WorkloadError):
            DiophantineInstance(1, ((0, (1,)),))
        with pytest.raises(WorkloadError):
            DiophantineInstance(2, ((1, (1,)),))


class TestLabelExpressions:
    def test_satisfaction(self):
        labels = frozenset({"A", "B"})
        assert satisfies_label_expr(labels, LabelAtom("A"))
        assert not satisfies_label_expr(labels, LabelAtom("C"))
        assert satisfies_label_expr(labels, LabelAnd(LabelAtom("A"), LabelAtom("B")))
        assert satisfies_label_expr(labels, LabelOr(LabelAtom("C"), LabelAtom("A")))
        assert satisfies_label_expr(labels, LabelNot(LabelAtom("C")))
        assert satisfies_label_expr(frozenset(), LabelWildcard())

    def test_node_pattern_with_expression(self):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "A", "B")
            .node("c", "C")
            .build()
        )
        pattern = NodeWithLabelExpr(
            LabelAnd(LabelAtom("A"), LabelNot(LabelAtom("B"))), variable="x"
        )
        matches = Evaluator(graph).eval_pattern(pattern)
        assert {mu["x"] for _, mu in matches} == {N("a")}

    def test_edge_pattern_with_expression(self):
        graph = (
            GraphBuilder()
            .edge("a", "b", "r", "fast", key="e1")
            .edge("b", "c", "r", key="e2")
            .build()
        )
        pattern = EdgeWithLabelExpr(
            Direction.FORWARD,
            LabelAnd(LabelAtom("r"), LabelAtom("fast")),
            variable="e",
        )
        matches = Evaluator(graph).eval_pattern(pattern)
        assert len(matches) == 1

    def test_composes_with_core_patterns(self):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "B")
            .edge("a", "b")
            .build()
        )
        pattern = ast.Concat(
            ast.Concat(
                NodeWithLabelExpr(LabelOr(LabelAtom("A"), LabelAtom("Z")), "x"),
                ast.forward(),
            ),
            ast.node("y"),
        )
        matches = Evaluator(graph).eval_pattern(pattern)
        assert len(matches) == 1

    def test_schema_inference(self):
        pattern = NodeWithLabelExpr(LabelWildcard(), "x")
        from repro.gpc.types import NODE

        assert infer_schema(pattern) == {"x": NODE}


class TestMixedRestrictors:
    def test_local_trail_subpattern(self, cycle4):
        pattern = RestrictedSubpattern(
            ast.Restrictor.TRAIL, parse_pattern("->{1,}")
        )
        matches = Evaluator(cycle4).eval_pattern(pattern, max_length=8)
        assert matches and all(is_trail(p) for p, _ in matches)

    def test_local_shortest_subpattern(self, diamond_graph):
        pattern = RestrictedSubpattern(
            ast.Restrictor.SHORTEST, parse_pattern("(:S) ->{1,} (:T)")
        )
        matches = Evaluator(diamond_graph).eval_pattern(pattern, max_length=4)
        assert {len(p) for p, _ in matches} == {1}

    def test_section7_anomaly_reproduced(self):
        report = section7_anomaly()
        assert report.true_shortest_length == 1
        assert report.local_semantics_answers == 0
        assert report.global_semantics_answers == 1
        assert report.global_witness_length == 2
        assert report.anomaly_present


class TestBagSemantics:
    def test_atomic_multiplicity_one(self, tiny_graph):
        bag = BagEvaluator(tiny_graph).evaluate(parse_pattern("(x)"), 0)
        assert set(bag.values()) == {1}

    def test_union_accumulates_multiplicity(self, tiny_graph):
        bag = BagEvaluator(tiny_graph).evaluate(parse_pattern("[->] + [->]"), 1)
        assert set(bag.values()) == {2}

    def test_set_semantics_is_support(self, diamond_graph):
        pattern = parse_pattern("(x:S) -> () -> (y:T)")
        bag = BagEvaluator(diamond_graph).evaluate(pattern, 2)
        engine = Evaluator(diamond_graph).eval_pattern(pattern, max_length=2)
        assert frozenset(bag) == engine

    def test_repetition_counts_factorizations(self):
        # Two parallel edges: ->{2,2} over a 2-chain with doubled first
        # hop has 2 derivations to the same endpoint pair but they are
        # distinct paths; multiplicities stay 1. A genuinely ambiguous
        # case: [->{1,2}]{1,2} matching a length-2 path can split 1+1
        # or take 2 at once, but bindings differ, so multiplicity 1.
        # True multiplicity > 1 arises via union overlap inside a
        # repetition body.
        graph = chain_graph(2)
        pattern = parse_pattern("[[-[e]->] + [-[e]->]]{2,2}")
        bag = BagEvaluator(graph).evaluate(pattern, 2)
        assert set(bag.values()) == {4}  # 2 choices per factor, 2 factors

    def test_edgeless_body_rejected(self, tiny_graph):
        with pytest.raises(CollectError):
            BagEvaluator(tiny_graph).evaluate(parse_pattern("(x){1,}"), 2)

    def test_query_restrictor_filters(self, cycle4):
        bag = BagEvaluator(cycle4).evaluate_query(parse_query("SIMPLE ->{1,}"))
        assert all(is_simple(path) for (path, _mu) in bag)
