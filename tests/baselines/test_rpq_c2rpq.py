"""RPQ / 2RPQ / (U)C2RPQ baseline evaluators."""

import pytest

from repro.errors import TranslationError
from repro.graph.builder import GraphBuilder
from repro.graph.generators import chain_graph, cycle_graph
from repro.graph.ids import NodeId as N
from repro.baselines.c2rpq import Atom, C2RPQ, UC2RPQ, eval_c2rpq, eval_uc2rpq
from repro.baselines.rpq import eval_rpq, eval_rpq_regex, rpq_distances
from repro.automata.regex import parse_regex


@pytest.fixture
def two_label_graph():
    return (
        GraphBuilder()
        .edge("a", "b", "r")
        .edge("b", "c", "s")
        .edge("c", "a", "r")
        .edge("b", "b", "s")
        .build()
    )


class TestRPQ:
    def test_single_label(self, two_label_graph):
        assert eval_rpq(two_label_graph, "r") == frozenset(
            {(N("a"), N("b")), (N("c"), N("a"))}
        )

    def test_concatenation(self, two_label_graph):
        assert eval_rpq(two_label_graph, "r s") == frozenset(
            {(N("a"), N("c")), (N("a"), N("b"))}
        )

    def test_union(self, two_label_graph):
        rs = eval_rpq(two_label_graph, "r | s")
        assert rs == eval_rpq(two_label_graph, "r") | eval_rpq(two_label_graph, "s")

    def test_star_includes_identity(self, two_label_graph):
        pairs = eval_rpq(two_label_graph, "r*")
        for node in two_label_graph.nodes:
            assert (node, node) in pairs

    def test_plus_excludes_identity_unless_cyclic(self):
        graph = chain_graph(3, edge_label="a")
        pairs = eval_rpq(graph, "a+")
        assert (N("n0"), N("n0")) not in pairs

    def test_2rpq_inverse(self, two_label_graph):
        pairs = eval_rpq(two_label_graph, "r-")
        assert pairs == frozenset({(N("b"), N("a")), (N("a"), N("c"))})

    def test_round_trip_word(self, two_label_graph):
        # self-loop on b allows pumping s.
        pairs = eval_rpq(two_label_graph, "s s s")
        assert (N("b"), N("b")) in pairs

    def test_distances(self):
        graph = cycle_graph(5, edge_label="a")
        distances = rpq_distances(graph, parse_regex("a+"))
        assert distances[(N("n0"), N("n4"))] == 4

    def test_regex_ast_input(self):
        graph = chain_graph(1, edge_label="a")
        assert eval_rpq_regex(graph, parse_regex("a")) == frozenset(
            {(N("n0"), N("n1"))}
        )


class TestC2RPQ:
    def test_single_atom(self, two_label_graph):
        query = C2RPQ(("x", "y"), (Atom("x", "r", "y"),))
        assert eval_c2rpq(two_label_graph, query) == eval_rpq(two_label_graph, "r")

    def test_conjunction_joins(self, two_label_graph):
        query = C2RPQ(
            ("x", "z"), (Atom("x", "r", "y"), Atom("y", "s", "z"))
        )
        assert eval_c2rpq(two_label_graph, query) == frozenset(
            {(N("a"), N("c")), (N("a"), N("b"))}
        )

    def test_projection(self, two_label_graph):
        query = C2RPQ(("y",), (Atom("x", "r", "y"), Atom("y", "s", "z")))
        assert eval_c2rpq(two_label_graph, query) == frozenset({(N("b"),)})

    def test_same_variable_both_sides(self, two_label_graph):
        query = C2RPQ(("x",), (Atom("x", "s+", "x"),))
        assert eval_c2rpq(two_label_graph, query) == frozenset({(N("b"),)})

    def test_unsatisfiable_conjunction(self, two_label_graph):
        query = C2RPQ(
            ("x",), (Atom("x", "s", "y"), Atom("y", "r s r", "x"))
        )
        assert eval_c2rpq(two_label_graph, query) == frozenset()

    def test_head_variable_validation(self):
        with pytest.raises(TranslationError):
            C2RPQ(("zz",), (Atom("x", "r", "y"),))

    def test_empty_atoms_rejected(self):
        with pytest.raises(TranslationError):
            C2RPQ(("x",), ())


class TestUC2RPQ:
    def test_union(self, two_label_graph):
        q1 = C2RPQ(("x", "y"), (Atom("x", "r", "y"),))
        q2 = C2RPQ(("x", "y"), (Atom("x", "s", "y"),))
        union = UC2RPQ((q1, q2))
        assert eval_uc2rpq(two_label_graph, union) == eval_c2rpq(
            two_label_graph, q1
        ) | eval_c2rpq(two_label_graph, q2)

    def test_mismatched_arities_rejected(self):
        q1 = C2RPQ(("x",), (Atom("x", "r", "y"),))
        q2 = C2RPQ(("x", "y"), (Atom("x", "r", "y"),))
        with pytest.raises(TranslationError):
            UC2RPQ((q1, q2))
