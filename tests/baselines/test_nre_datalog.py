"""NRE and Datalog/regular-query baseline evaluators."""

import pytest

from repro.errors import DatalogError
from repro.graph.builder import GraphBuilder
from repro.graph.generators import chain_graph, cycle_graph
from repro.graph.ids import NodeId as N
from repro.baselines.datalog import Clause, DatalogAtom, Program, evaluate_program
from repro.baselines.nre import (
    NREConcat,
    NREEpsilon,
    NRELabel,
    NREStar,
    NRESymbol,
    NRETest,
    NREUnion,
    eval_nre,
    nre_size,
)
from repro.baselines.regular_queries import (
    RegularQuery,
    atom,
    clause,
    eval_regular_query,
    tatom,
)


@pytest.fixture
def nre_graph():
    return (
        GraphBuilder()
        .node("a", "A")
        .node("b", "B")
        .node("c", "C")
        .edge("a", "b", "r")
        .edge("b", "c", "s")
        .edge("b", "b", "t")
        .build()
    )


class TestNRE:
    def test_epsilon_is_identity(self, nre_graph):
        assert eval_nre(nre_graph, NREEpsilon()) == frozenset(
            (n, n) for n in nre_graph.nodes
        )

    def test_symbol(self, nre_graph):
        assert eval_nre(nre_graph, NRESymbol("r")) == frozenset(
            {(N("a"), N("b"))}
        )

    def test_inverse_symbol(self, nre_graph):
        assert eval_nre(nre_graph, NRESymbol("r", inverse=True)) == frozenset(
            {(N("b"), N("a"))}
        )

    def test_label_test(self, nre_graph):
        assert eval_nre(nre_graph, NRELabel("B")) == frozenset({(N("b"), N("b"))})

    def test_nested_test_filters(self, nre_graph):
        # r[s]: an r-edge whose target has an outgoing s-edge.
        expr = NREConcat(NRESymbol("r"), NRETest(NRESymbol("s")))
        assert eval_nre(nre_graph, expr) == frozenset({(N("a"), N("b"))})
        # r[r]: target of r has no outgoing r.
        expr2 = NREConcat(NRESymbol("r"), NRETest(NRESymbol("r")))
        assert eval_nre(nre_graph, expr2) == frozenset()

    def test_star_is_reflexive_transitive(self):
        graph = chain_graph(3, edge_label="a")
        rel = eval_nre(graph, NREStar(NRESymbol("a")))
        assert (N("n0"), N("n3")) in rel
        assert (N("n2"), N("n2")) in rel
        assert (N("n3"), N("n0")) not in rel

    def test_union(self, nre_graph):
        rel = eval_nre(nre_graph, NREUnion(NRESymbol("r"), NRESymbol("s")))
        assert rel == frozenset({(N("a"), N("b")), (N("b"), N("c"))})

    def test_test_of_star_always_holds(self, nre_graph):
        rel = eval_nre(nre_graph, NRETest(NREStar(NRESymbol("zz"))))
        assert rel == frozenset((n, n) for n in nre_graph.nodes)

    def test_size(self):
        expr = NREConcat(NRESymbol("a"), NRETest(NREStar(NRESymbol("b"))))
        assert nre_size(expr) == 5  # Concat, Symbol, Test, Star, Symbol


class TestDatalogValidation:
    def test_unsafe_clause_rejected(self):
        with pytest.raises(DatalogError):
            Clause(DatalogAtom("P", ("x", "z")), (DatalogAtom("a", ("x", "y")),))

    def test_transitive_head_rejected(self):
        with pytest.raises(DatalogError):
            Clause(
                DatalogAtom("P", ("x", "y"), transitive=True),
                (DatalogAtom("a", ("x", "y")),),
            )

    def test_transitive_atom_must_be_binary(self):
        with pytest.raises(DatalogError):
            DatalogAtom("P", ("x", "y", "z"), transitive=True)

    def test_program_needs_answer(self):
        with pytest.raises(DatalogError):
            Program(
                (clause(atom("P", "x", "y"), atom("a", "x", "y")),),
            )

    def test_recursion_detected(self):
        program = Program(
            (
                clause(atom("P", "x", "y"), atom("Q", "x", "y")),
                clause(atom("Q", "x", "y"), atom("P", "x", "y")),
                clause(atom("Ans", "x", "y"), atom("P", "x", "y")),
            )
        )
        with pytest.raises(DatalogError):
            program.check_nonrecursive()

    def test_topological_order(self):
        program = Program(
            (
                clause(atom("P", "x", "y"), atom("a", "x", "y")),
                clause(atom("Q", "x", "y"), tatom("P", "x", "y")),
                clause(atom("Ans", "x", "y"), atom("Q", "x", "y")),
            )
        )
        order = program.check_nonrecursive()
        assert order.index("P") < order.index("Q") < order.index("Ans")


class TestDatalogEvaluation:
    def test_edge_edb(self):
        graph = chain_graph(2, edge_label="a")
        program = Program((clause(atom("Ans", "x", "y"), atom("a", "x", "y")),))
        rel = evaluate_program(graph, program)["Ans"]
        assert rel == frozenset({(N("n0"), N("n1")), (N("n1"), N("n2"))})

    def test_node_label_edb(self):
        graph = GraphBuilder().node("a", "L").node("b").build()
        program = Program((clause(atom("Ans", "x"), atom("L", "x")),))
        assert evaluate_program(graph, program)["Ans"] == frozenset({(N("a"),)})

    def test_transitive_closure_of_edb(self):
        graph = chain_graph(3, edge_label="a")
        program = Program((clause(atom("Ans", "x", "y"), tatom("a", "x", "y")),))
        rel = evaluate_program(graph, program)["Ans"]
        assert (N("n0"), N("n3")) in rel
        assert (N("n0"), N("n0")) not in rel  # irreflexive on a chain

    def test_transitive_closure_of_idb(self):
        graph = chain_graph(4, edge_label="a")
        program = Program(
            (
                clause(atom("Two", "x", "y"), atom("a", "x", "z"), atom("a", "z", "y")),
                clause(atom("Ans", "x", "y"), tatom("Two", "x", "y")),
            )
        )
        rel = evaluate_program(graph, program)["Ans"]
        assert (N("n0"), N("n2")) in rel
        assert (N("n0"), N("n4")) in rel
        assert (N("n0"), N("n3")) not in rel  # odd distances unreachable

    def test_join_across_atoms(self):
        graph = (
            GraphBuilder()
            .edge("a", "b", "r")
            .edge("b", "c", "s")
            .build()
        )
        program = Program(
            (
                clause(
                    atom("Ans", "x", "z"),
                    atom("r", "x", "y"),
                    atom("s", "y", "z"),
                ),
            )
        )
        assert evaluate_program(graph, program)["Ans"] == frozenset(
            {(N("a"), N("c"))}
        )

    def test_union_via_multiple_clauses(self):
        graph = (
            GraphBuilder().edge("a", "b", "r").edge("c", "d", "s").build()
        )
        program = Program(
            (
                clause(atom("Ans", "x", "y"), atom("r", "x", "y")),
                clause(atom("Ans", "x", "y"), atom("s", "x", "y")),
            )
        )
        assert len(evaluate_program(graph, program)["Ans"]) == 2

    def test_constant_like_repeated_variable(self):
        graph = cycle_graph(2, edge_label="a")
        program = Program(
            (clause(atom("Ans", "x"), atom("a", "x", "y"), atom("a", "y", "x")),)
        )
        assert len(evaluate_program(graph, program)["Ans"]) == 2


class TestRegularQueryValidation:
    def test_nonbinary_user_predicate_rejected(self):
        program = Program(
            (
                clause(atom("P", "x", "y", "z"), atom("a", "x", "y"), atom("a", "y", "z")),
                clause(atom("Ans", "x"), atom("a", "x", "x")),
            )
        )
        with pytest.raises(DatalogError):
            RegularQuery(program)

    def test_answer_arity_free(self):
        program = Program(
            (
                clause(
                    atom("Ans", "x", "y", "z"),
                    atom("a", "x", "y"),
                    atom("a", "y", "z"),
                ),
            )
        )
        query = RegularQuery(program)
        assert query.arity == 3

    def test_eval_regular_query(self):
        graph = chain_graph(3, edge_label="a")
        program = Program(
            (
                clause(atom("P", "x", "y"), atom("a", "x", "y")),
                clause(atom("Ans", "x", "y"), tatom("P", "x", "y")),
            )
        )
        rel = eval_regular_query(graph, RegularQuery(program))
        assert (N("n0"), N("n3")) in rel
