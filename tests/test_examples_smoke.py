"""Every example script runs to completion (the quickstart promise)."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
    assert "Traceback" not in out


def test_examples_exist():
    # The deliverable requires at least three runnable examples.
    assert len(EXAMPLES) >= 3
