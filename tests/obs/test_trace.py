"""Unit tests for the tracing substrate: span trees, contextvar
propagation, carrier-based re-parenting across executor boundaries,
trace-store retention policy, deadlines, and engine work counters.
"""

from __future__ import annotations

import contextvars
import threading
import time

import pytest

from repro.errors import DeadlineExceededError
from repro.obs import (
    EvalCounters,
    NULL_SPAN,
    Span,
    TraceStore,
    Tracer,
    active_counters,
    check_deadline,
    current_carrier,
    current_span,
    deadline_scope,
    remaining,
    remote_span,
    span,
    use_counters,
)


class TestSpanTree:
    def test_trace_builds_nested_tree(self):
        tracer = Tracer(TraceStore())
        with tracer.trace("request", path="/query") as root:
            with span("outer") as outer:
                outer.set_attr("k", 1)
                with span("inner"):
                    pass
            with span("sibling"):
                pass
        tree = tracer.store.recent()[0]
        assert tree["name"] == "request"
        assert tree["attributes"]["path"] == "/query"
        names = [child["name"] for child in tree["children"]]
        assert names == ["outer", "sibling"]
        outer_dict = tree["children"][0]
        assert outer_dict["attributes"] == {"k": 1}
        assert [c["name"] for c in outer_dict["children"]] == ["inner"]
        # Every node shares the root's trace id and parents correctly.
        assert outer_dict["trace_id"] == root.trace_id
        assert outer_dict["parent_id"] == tree["span_id"]

    def test_span_without_ambient_root_is_noop(self):
        with span("orphan") as s:
            assert s is NULL_SPAN
            assert not s
        assert current_span() is None

    def test_disabled_tracer_yields_null_span(self):
        tracer = Tracer(TraceStore(), enabled=False)
        with tracer.trace("request") as root:
            assert root is NULL_SPAN
            with span("child") as child:
                assert child is NULL_SPAN
        assert tracer.store.recent() == []
        assert tracer.store.counters()["seen"] == 0

    def test_children_durations_fit_inside_root(self):
        tracer = Tracer(TraceStore())
        with tracer.trace("request"):
            with span("a"):
                time.sleep(0.002)
            with span("b"):
                time.sleep(0.002)
        tree = tracer.store.recent()[0]
        child_sum = sum(c["duration_s"] for c in tree["children"])
        assert 0 < child_sum <= tree["duration_s"]

    def test_error_recorded_and_propagated(self):
        tracer = Tracer(TraceStore())
        with pytest.raises(ValueError):
            with tracer.trace("request"):
                with span("work"):
                    raise ValueError("boom")
        tree = tracer.store.recent()[0]
        assert tree["error"]  # root saw the exception on exit
        assert "boom" in tree["children"][0]["error"]


class TestThreadPropagation:
    def test_copied_context_parents_thread_spans_under_root(self):
        tracer = Tracer(TraceStore())
        with tracer.trace("request") as root:
            ctx = contextvars.copy_context()

            def work():
                with span("thread_work") as s:
                    return s.trace_id

            holder = {}
            thread = threading.Thread(
                target=lambda: holder.update(tid=ctx.run(work))
            )
            thread.start()
            thread.join()
        assert holder["tid"] == root.trace_id
        tree = tracer.store.recent()[0]
        assert [c["name"] for c in tree["children"]] == ["thread_work"]


class TestCarrierReparenting:
    def test_carrier_roundtrip_and_adopt(self):
        tracer = Tracer(TraceStore())
        with tracer.trace("request") as root:
            carrier = current_carrier()
            assert carrier == (root.trace_id, root.span_id)
            # "In the worker": rebuild the context from the carrier.
            with remote_span("shard", carrier, worker="w0") as shard:
                with span("engine_bit"):
                    pass
            shipped = shard.to_dict()
            # "Back home": adopt under a different parent.
            with span("gather") as gather:
                gather.adopt(shipped)
        tree = tracer.store.recent()[0]
        gather_dict = tree["children"][0]
        shard_dict = gather_dict["children"][0]
        assert shard_dict["name"] == "shard"
        assert shard_dict["attributes"]["worker"] == "w0"
        assert shard_dict["trace_id"] == root.trace_id
        assert shard_dict["parent_id"] == gather_dict["span_id"]
        assert [c["name"] for c in shard_dict["children"]] == ["engine_bit"]

    def test_none_carrier_is_noop(self):
        with remote_span("shard", None) as shard:
            assert shard is NULL_SPAN
        assert shard.to_dict() is None

    def test_adopt_none_is_noop(self):
        root = Span("root", "t" * 16, None)
        root.adopt(None)
        root.end()
        assert root.to_dict()["children"] == []


class TestTraceStore:
    def _tree(self, name="request", *, duration=0.0, error=None):
        root = Span(name, "t" * 16, None)
        root.end()
        root._end = root._start + duration
        if error:
            root.set_error(error)
        return root

    def test_head_sampling_is_deterministic(self):
        store = TraceStore(capacity=16, sample_every=3)
        kept = [
            store.record(self._tree()) is not None for _ in range(9)
        ]
        assert kept == [True, False, False] * 3
        counters = store.counters()
        assert counters["seen"] == 9
        assert counters["recorded"] == 3
        assert counters["dropped"] == 6

    def test_forced_error_slow_bypass_sampling(self):
        store = TraceStore(capacity=16, sample_every=1000, slow_threshold_s=0.1)
        store.record(self._tree())  # sampled (first)
        assert store.record(self._tree(), forced=True) is not None
        assert store.record(self._tree(error="boom")) is not None
        assert store.record(self._tree(duration=0.2)) is not None
        assert store.record(self._tree()) is None  # sampled out
        counters = store.counters()
        assert counters["recorded"] == 4
        assert counters["errors"] == 1
        assert counters["slow"] == 1
        assert len(store.slow()) == 1

    def test_ring_buffer_bounds_retention(self):
        store = TraceStore(capacity=4)
        for _ in range(10):
            store.record(self._tree())
        assert len(store.recent()) == 4
        assert store.counters()["retained"] == 4

    def test_find_by_trace_id(self):
        store = TraceStore()
        root = Span("request", "cafe" * 4, None)
        root.end()
        store.record(root)
        assert store.find("cafe" * 4)["name"] == "request"
        assert store.find("missing") is None

    def test_recent_is_most_recent_first(self):
        store = TraceStore()
        for name in ("a", "b", "c"):
            store.record(self._tree(name))
        assert [t["name"] for t in store.recent()] == ["c", "b", "a"]
        assert [t["name"] for t in store.recent(2)] == ["c", "b"]


class TestTraceStoreIndex:
    """The trace_id → tree index behind O(1) ``find``."""

    def _root(self, trace_id, *, duration=0.0, attrs=None):
        root = Span("request", trace_id, None, attrs)
        root.end()
        root._end = root._start + duration
        return root

    def test_full_ring_still_resolves_a_retained_slow_trace(self):
        # The regression: a slow trace older than the whole recent ring
        # must stay findable via the slow log, and the index must agree
        # with the rings rather than dangling into evicted trees.
        store = TraceStore(capacity=4, slow_capacity=8, slow_threshold_s=0.1)
        slow_id = "feed" * 4
        store.record(self._root(slow_id, duration=0.5))
        for index in range(20):  # cycle the recent ring many times over
            store.record(self._root(f"{index:016d}"))
        assert store.find(slow_id) is not None
        assert store.find(slow_id)["trace_id"] == slow_id
        # Evicted recent-only traces are gone from the index too.
        assert store.find(f"{0:016d}") is None
        assert store.find(f"{19:016d}") is not None

    def test_find_matches_linear_scan_under_churn(self):
        store = TraceStore(capacity=3, slow_capacity=2, slow_threshold_s=0.1)
        ids = []
        for index in range(12):
            trace_id = f"{index:016x}"
            ids.append(trace_id)
            store.record(
                self._root(
                    trace_id, duration=0.5 if index % 3 == 0 else 0.0
                )
            )
        retained = {t["trace_id"] for t in store.recent()} | {
            t["trace_id"] for t in store.slow()
        }
        for trace_id in ids:
            found = store.find(trace_id)
            if trace_id in retained:
                assert found is not None and found["trace_id"] == trace_id
            else:
                assert found is None

    def test_duplicate_trace_ids_resolve_newest(self):
        store = TraceStore(capacity=4)
        shared = "abcd" * 4
        first = self._root(shared)
        second = self._root(shared)
        store.record(first)
        store.record(second)
        assert store.find(shared) is store._recent[-1]

    def test_slow_eviction_keeps_recent_occurrence_indexed(self):
        # A slow tree lives in both rings; evicting it from one ring
        # must not unindex the copy still held by the other.
        store = TraceStore(capacity=16, slow_capacity=1, slow_threshold_s=0.1)
        first_slow = "aaaa" * 4
        store.record(self._root(first_slow, duration=0.5))
        store.record(self._root("bbbb" * 4, duration=0.5))  # evicts from slow
        assert [t["trace_id"] for t in store.slow()] == ["bbbb" * 4]
        assert store.find(first_slow) is not None  # still in recent

    def test_clear_resets_the_index(self):
        store = TraceStore()
        store.record(self._root("cafe" * 4))
        store.clear()
        assert store.find("cafe" * 4) is None
        assert store._index == {}

    def test_fingerprint_attribute_lifted_to_tree_top(self):
        store = TraceStore()
        tree = store.record(
            self._root("dead" * 4, attrs={"fingerprint": "fp123"})
        )
        assert tree["fingerprint"] == "fp123"
        assert store.find("dead" * 4)["fingerprint"] == "fp123"

    def test_fingerprint_found_on_descendant_spans(self):
        root = Span("request", "beef" * 4, None)
        child = root.child("service.eval")
        child.set_attr("fingerprint", "fp456")
        child.end()
        root.end()
        store = TraceStore()
        tree = store.record(root)
        assert tree["fingerprint"] == "fp456"


class TestDeadline:
    def test_no_deadline_by_default(self):
        assert remaining() is None
        check_deadline()  # must not raise

    def test_deadline_scope_and_check(self):
        with deadline_scope(30.0):
            left = remaining()
            assert 29.0 < left <= 30.0
            check_deadline()
        assert remaining() is None

    def test_expired_deadline_raises(self):
        with deadline_scope(0.001):
            time.sleep(0.005)
            with pytest.raises(DeadlineExceededError):
                check_deadline()

    def test_nested_scopes_take_the_minimum(self):
        with deadline_scope(30.0):
            with deadline_scope(60.0):  # cannot extend the outer budget
                assert remaining() <= 30.0
            with deadline_scope(0.5):
                assert remaining() <= 0.5
            assert 29.0 < remaining() <= 30.0

    def test_none_scope_is_noop(self):
        with deadline_scope(None):
            assert remaining() is None


class TestEvalCounters:
    def test_merge_from_struct_and_dict(self):
        total = EvalCounters()
        total.merge(EvalCounters(nfa_states_expanded=3, deepening_rounds=1))
        total.merge({"nfa_states_expanded": 2, "join_probe_rows": 7})
        assert total.nfa_states_expanded == 5
        assert total.deepening_rounds == 1
        assert total.join_probe_rows == 7
        assert total.total() == 13

    def test_merge_none_and_unknown_keys(self):
        total = EvalCounters()
        total.merge(None)
        total.merge({"not_a_counter": 99})
        assert total.total() == 0
        assert not hasattr(total, "not_a_counter")

    def test_ambient_accessor_scoping(self):
        assert active_counters() is None
        counters = EvalCounters()
        with use_counters(counters):
            assert active_counters() is counters
        assert active_counters() is None

    def test_render(self):
        assert EvalCounters().render() == "no work recorded"
        rendered = EvalCounters(nfa_transitions=4, seeds_pruned=2).render()
        assert rendered == "nfa_transitions=4, seeds_pruned=2"

    def test_as_dict_covers_every_field(self):
        payload = EvalCounters().as_dict()
        assert set(payload) == {
            "nfa_states_expanded",
            "nfa_transitions",
            "deepening_rounds",
            "join_build_rows",
            "join_probe_rows",
            "seeds_pruned",
            "condition_evals",
            "conditions_pushed",
            "masks_built",
            "mask_probes",
            "dense_fast_lane",
            "queries_proven_empty",
            "conditions_simplified",
            "dead_branches_pruned",
        }
