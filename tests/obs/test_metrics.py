"""Unit tests for the Prometheus text-exposition rendering and the
fixed-bucket latency histogram that feeds it."""

from __future__ import annotations

from repro.obs.metrics import (
    histogram_lines,
    labeled_summary_lines,
    mapping_lines,
    render_metrics,
    sanitize,
)
from repro.service.stats import LATENCY_BUCKETS_S, LatencyRecorder


class TestSanitize:
    def test_invalid_chars_become_underscores(self):
        assert sanitize("shard-latency.p99") == "shard_latency_p99"

    def test_leading_digit_is_prefixed(self):
        assert sanitize("9lives") == "_9lives"


class TestMappingLines:
    def test_flattens_nested_mappings_sorted(self):
        lines = mapping_lines(
            "repro_service",
            {"queries": 3, "result_cache": {"hits": 2, "misses": 1}},
        )
        assert lines == [
            "repro_service_queries 3",
            "repro_service_result_cache_hits 2",
            "repro_service_result_cache_misses 1",
        ]

    def test_skips_named_keys_and_non_numeric_leaves(self):
        lines = mapping_lines(
            "x",
            {"latency": {"p99": 1.0}, "name": "gpc", "count": 2, "on": True},
            skip=("latency",),
        )
        assert lines == ["x_count 2", "x_on 1"]

    def test_floats_render_exactly(self):
        assert mapping_lines("x", {"rate": 0.5}) == ["x_rate 0.5"]


class TestHistogramLines:
    def test_cumulative_buckets_with_inf_sum_count(self):
        lines = histogram_lines(
            "lat",
            {"buckets": [(0.1, 2), (0.5, 3), (1.0, 0)], "sum": 1.25, "count": 6},
        )
        assert lines[0] == "# TYPE lat histogram"
        assert 'lat_bucket{le="0.1"} 2' in lines
        assert 'lat_bucket{le="0.5"} 5' in lines  # cumulative
        assert 'lat_bucket{le="1.0"} 5' in lines
        assert 'lat_bucket{le="+Inf"} 6' in lines  # one overflow sample
        assert "lat_sum 1.25" in lines
        assert lines[-1] == "lat_count 6"


class TestLabeledSummaryLines:
    def test_one_series_per_key(self):
        lines = labeled_summary_lines(
            "work",
            "worker",
            {"pid-2": {"count": 4}, "pid-1": {"count": 7}},
        )
        assert lines == [
            'work_count{worker="pid-1"} 7',
            'work_count{worker="pid-2"} 4',
        ]

    def test_label_values_escaped(self):
        lines = labeled_summary_lines(
            "work", "worker", {'a"b\\c': {"count": 1}}
        )
        assert lines == ['work_count{worker="a\\"b\\\\c"} 1']


class TestRenderMetrics:
    def test_sections_concatenate_with_trailing_newline(self):
        text = render_metrics({"a": {"x": 1}, "b": {"y": 2}})
        assert text == "a_x 1\nb_y 2\n"


class TestByteDeterminism:
    """The exposition must be byte-stable against map-ordering drift:
    equal stats must render to identical bytes however the source
    dicts' insertion orders came about."""

    def test_mapping_lines_ignore_insertion_order(self):
        forward = {"b": 1, "a": 2, "nested": {"y": 3, "x": 4}}
        backward = {"nested": {"x": 4, "y": 3}, "a": 2, "b": 1}
        assert mapping_lines("m", forward) == mapping_lines("m", backward)

    def test_labeled_series_ignore_insertion_order(self):
        forward = {"k1": {"b": 1, "a": 2}, "k2": {"a": 3, "b": 4}}
        backward = {"k2": {"b": 4, "a": 3}, "k1": {"a": 2, "b": 1}}
        assert labeled_summary_lines(
            "s", "key", forward
        ) == labeled_summary_lines("s", "key", backward)

    def test_two_full_renders_are_byte_identical(self):
        def build(shuffled: bool) -> bytes:
            fields = [("x", 1), ("y", 2.5), ("flags", {"on": True})]
            series = [("fp1", {"calls": 3}), ("fp2", {"calls": 9})]
            if shuffled:
                fields = list(reversed(fields))
                series = list(reversed(series))
            lines = mapping_lines("repro_test", dict(fields))
            lines.extend(
                labeled_summary_lines(
                    "repro_test_insights", "fingerprint", dict(series)
                )
            )
            lines.extend(
                histogram_lines(
                    "repro_test_latency",
                    {"buckets": [(0.1, 1), (0.5, 2)], "sum": 0.7, "count": 3},
                )
            )
            return ("\n".join(lines) + "\n").encode("utf-8")

        assert build(shuffled=False) == build(shuffled=True)

    def test_render_metrics_ignores_section_content_order(self):
        first = render_metrics({"a": {"y": 2, "x": 1}, "b": {"z": 3}})
        second = render_metrics({"a": {"x": 1, "y": 2}, "b": {"z": 3}})
        assert first.encode("utf-8") == second.encode("utf-8")

    def test_label_special_characters_are_escaped(self):
        tricky = 'quote:" backslash:\\ newline:\n'
        (line,) = labeled_summary_lines(
            "work", "worker", {tricky: {"count": 1}}
        )
        assert line == (
            'work_count{worker="quote:\\" backslash:\\\\ newline:\\n"} 1'
        )
        assert "\n" not in line  # a raw newline would split the series


class TestLatencyRecorderHistogram:
    def test_empty_histogram_shape(self):
        histogram = LatencyRecorder().histogram()
        assert histogram["count"] == 0
        assert histogram["sum"] == 0.0
        assert [bound for bound, _ in histogram["buckets"]] == list(
            LATENCY_BUCKETS_S
        )
        assert all(count == 0 for _, count in histogram["buckets"])

    def test_samples_land_in_the_right_buckets(self):
        recorder = LatencyRecorder()
        recorder.record(0.0001)  # below the first bound -> first bucket
        recorder.record(0.003)  # (0.0025, 0.005]
        recorder.record(0.003)
        recorder.record(99.0)  # beyond the last bound -> overflow
        histogram = recorder.histogram()
        counts = dict(histogram["buckets"])
        assert counts[0.0005] == 1
        assert counts[0.005] == 2
        assert histogram["count"] == 4  # overflow sample still counted
        assert sum(count for _, count in histogram["buckets"]) == 3
        assert abs(histogram["sum"] - 99.0061) < 1e-9

    def test_histogram_is_all_time_despite_bounded_reservoir(self):
        recorder = LatencyRecorder(capacity=4)
        for _ in range(20):
            recorder.record(0.01)
        histogram = recorder.histogram()
        assert histogram["count"] == 20
        assert dict(histogram["buckets"])[0.01] == 20
