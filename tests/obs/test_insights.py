"""Unit tests for the fingerprint-aggregated insights registry."""

import threading

import pytest

from repro.obs import EvalCounters, InsightsRegistry, query_fingerprint
from repro.obs.insights import PlanQuality, canonical_query
from repro.gpc.parser import parse_query
from repro.gpc.planner import JoinEstimate, PlanEstimates

Q = "TRAIL (x:A) -[:a]-> (y)"
Q_OTHER = "SIMPLE (u:B) -[:b]-> (v)"


class TestFingerprinting:
    def test_whitespace_variants_share_a_fingerprint(self):
        assert query_fingerprint(Q) == query_fingerprint(
            "TRAIL   (x:A)-[:a]->(y)"
        )

    def test_constant_variants_share_a_fingerprint(self):
        with_int = "TRAIL (x:A) -[:a]-> (y) << x.k = 1 >>"
        with_str = "TRAIL (x:A) -[:a]-> (y) << x.k = 'zzz' >>"
        with_bool = "TRAIL (x:A) -[:a]-> (y) << x.k = TRUE >>"
        assert (
            query_fingerprint(with_int)
            == query_fingerprint(with_str)
            == query_fingerprint(with_bool)
        )
        assert "?" in query_fingerprint(with_int)[1]

    def test_different_shapes_get_different_fingerprints(self):
        assert query_fingerprint(Q)[0] != query_fingerprint(Q_OTHER)[0]

    def test_string_and_ast_inputs_agree(self):
        assert query_fingerprint(Q) == query_fingerprint(parse_query(Q))

    def test_canonical_text_reparses_to_itself(self):
        canonical = canonical_query("TRAIL (x:A) -[:a]-> (y) << x.k = 7 >>")
        assert canonical_query(canonical) == canonical

    def test_property_equals_property_is_preserved(self):
        text = "TRAIL (x:A) -[:a]-> (y:A) << x.k = y.k >>"
        assert "x.k = y.k" in canonical_query(text)


def _estimates(cardinality, *joins):
    return PlanEstimates(cardinality=cardinality, joins=tuple(joins))


class TestRegistryRecording:
    def test_record_aggregates_per_fingerprint(self):
        registry = InsightsRegistry()
        for _ in range(3):
            registry.record(Q, latency_s=0.01, answers=2, cache="miss")
        registry.record(Q, latency_s=0.02, answers=2, cache="hit")
        (entry,) = registry.top()
        assert entry["calls"] == 4
        assert entry["answers_total"] == 8
        assert entry["cache"] == {
            "hits": 1,
            "restamps": 0,
            "misses": 3,
            "invalidations": 0,
            "bypasses": 0,
        }
        assert entry["total_time_s"] == pytest.approx(0.05)
        assert entry["latency"]["count"] == 4

    def test_restamp_and_invalidation_accounting(self):
        registry = InsightsRegistry()
        registry.record(Q, latency_s=0.0, answers=1, cache="restamp")
        registry.record(Q, latency_s=0.0, cache="invalidated")
        registry.record(Q, latency_s=0.0, cache="bypass")
        (entry,) = registry.top()
        cache = entry["cache"]
        assert cache["hits"] == 1 and cache["restamps"] == 1
        assert cache["misses"] == 1 and cache["invalidations"] == 1
        assert cache["bypasses"] == 1

    def test_errors_and_timeouts(self):
        registry = InsightsRegistry()
        registry.record(Q, latency_s=0.0, error=True)
        registry.record(Q, latency_s=0.0, error=True, timeout=True)
        (entry,) = registry.top()
        assert entry["errors"] == 2
        assert entry["timeouts"] == 1

    def test_counters_merge(self):
        registry = InsightsRegistry()
        counters = EvalCounters()
        counters.join_build_rows = 5
        registry.record(Q, latency_s=0.0, answers=0, counters=counters)
        registry.record(Q, latency_s=0.0, answers=0, counters=counters)
        (entry,) = registry.top()
        assert entry["engine"]["join_build_rows"] == 10

    def test_record_returns_fingerprint(self):
        registry = InsightsRegistry()
        fingerprint = registry.record(Q, latency_s=0.0)
        assert fingerprint == query_fingerprint(Q)[0]

    def test_trace_ids_are_bounded_and_deduped(self):
        registry = InsightsRegistry(trace_id_capacity=2)
        for trace_id in ["t1", "t1", "t2", "t3"]:
            registry.record(Q, latency_s=0.0, trace_id=trace_id)
        (entry,) = registry.top()
        assert entry["recent_trace_ids"] == ["t2", "t3"]

    def test_disabled_registry_is_a_noop(self):
        registry = InsightsRegistry(enabled=False)
        assert registry.record(Q, latency_s=0.0) is None
        assert len(registry) == 0
        assert registry.counters()["records"] == 0
        assert registry.top() == []


class TestPlanQuality:
    def test_perfect_estimate_scores_one(self):
        quality = PlanQuality()
        quality.observe(_estimates(4.0), 4, None)
        assert quality.misestimate_factor == pytest.approx(1.0)
        assert quality.worst_factor == pytest.approx(1.0)

    def test_symmetric_over_and_under(self):
        over = PlanQuality()
        over.observe(_estimates(40.0), 4, None)
        under = PlanQuality()
        under.observe(_estimates(4.0), 40, None)
        assert over.misestimate_factor == pytest.approx(10.0)
        assert under.misestimate_factor == pytest.approx(10.0)

    def test_zero_observed_answers_do_not_divide_by_zero(self):
        quality = PlanQuality()
        quality.observe(_estimates(0.0), 0, None)
        assert quality.misestimate_factor == pytest.approx(1.0)

    def test_join_rows_aggregate_from_counters(self):
        quality = PlanQuality()
        counters = EvalCounters()
        counters.join_build_rows = 3
        counters.join_probe_rows = 9
        estimates = _estimates(
            10.0, JoinEstimate(shared=("y",), left=4.0, right=8.0)
        )
        quality.observe(estimates, 10, counters)
        record = quality.as_dict()
        assert record["estimated_join_build_rows"] == pytest.approx(4.0)
        assert record["estimated_join_probe_rows"] == pytest.approx(8.0)
        assert record["observed_join_build_rows"] == 3
        assert record["observed_join_probe_rows"] == 9

    def test_worst_factor_tracks_the_worst_call(self):
        quality = PlanQuality()
        quality.observe(_estimates(4.0), 4, None)
        quality.observe(_estimates(100.0), 4, None)
        quality.observe(_estimates(4.0), 4, None)
        assert quality.worst_factor == pytest.approx(25.0)

    def test_registry_threads_estimates_into_plan_quality(self):
        registry = InsightsRegistry()
        registry.record(
            Q, latency_s=0.0, answers=2, estimates=_estimates(8.0)
        )
        (entry,) = registry.top()
        assert entry["plan"]["samples"] == 1
        assert entry["plan"]["misestimate_factor"] == pytest.approx(4.0)

    def test_cache_hits_do_not_count_as_plan_samples(self):
        registry = InsightsRegistry()
        registry.record(Q, latency_s=0.0, answers=2, cache="hit")
        (entry,) = registry.top()
        assert entry["plan"]["samples"] == 0


class TestRegistryViews:
    def test_top_sorts(self):
        registry = InsightsRegistry()
        registry.record(Q, latency_s=1.0, answers=1)
        registry.record(Q_OTHER, latency_s=0.1, answers=1)
        registry.record(Q_OTHER, latency_s=0.1, answers=1)
        registry.record(
            Q_OTHER, latency_s=0.1, answers=1, estimates=_estimates(100.0)
        )
        by_time = registry.top(sort="total_time")
        assert by_time[0]["query"] == canonical_query(Q)
        by_calls = registry.top(sort="calls")
        assert by_calls[0]["query"] == canonical_query(Q_OTHER)
        by_miss = registry.top(sort="misestimate")
        assert by_miss[0]["query"] == canonical_query(Q_OTHER)

    def test_top_sort_errors(self):
        registry = InsightsRegistry()
        registry.record(Q, latency_s=0.0, error=True)
        registry.record(Q_OTHER, latency_s=1.0, answers=1)
        assert registry.top(sort="errors")[0]["query"] == canonical_query(Q)

    def test_top_rejects_bad_arguments(self):
        registry = InsightsRegistry()
        with pytest.raises(ValueError):
            registry.top(sort="nope")
        with pytest.raises(ValueError):
            registry.top(limit=0)

    def test_top_respects_limit(self):
        registry = InsightsRegistry()
        for index in range(5):
            registry.record(
                f"TRAIL (x) -[:a]->{{{index + 1}}} (y)", latency_s=0.0
            )
        assert len(registry.top(limit=2)) == 2

    def test_labeled_series_is_flat_numeric_and_bounded(self):
        registry = InsightsRegistry()
        registry.record(Q, latency_s=0.5, answers=1)
        registry.record(Q_OTHER, latency_s=0.1, answers=1)
        series = registry.labeled_series(limit=1)
        assert list(series) == [query_fingerprint(Q)[0]]
        for value in next(iter(series.values())).values():
            assert isinstance(value, (int, float))

    def test_get_by_fingerprint(self):
        registry = InsightsRegistry()
        fingerprint = registry.record(Q, latency_s=0.0)
        assert registry.get(fingerprint).calls == 1
        assert registry.get("ffffffffffffffff") is None


class TestRegistryBounds:
    def test_lru_eviction_past_capacity(self):
        registry = InsightsRegistry(capacity=2)
        queries = [f"TRAIL (x) -[:a]->{{{n}}} (y)" for n in (1, 2, 3)]
        first, second, third = (
            registry.record(query, latency_s=0.0) for query in queries
        )
        # Recording the third evicted the first (capacity 2, LRU).
        assert registry.get(first) is None
        assert registry.counters()["evictions"] == 1
        # Re-recording the first re-creates it, evicting the second —
        # now the least recently updated survivor.
        registry.record(queries[0], latency_s=0.0)
        assert registry.get(first) is not None
        assert registry.get(second) is None
        assert registry.get(third) is not None
        assert registry.counters()["evictions"] == 2

    def test_fingerprint_memo_is_bounded(self):
        registry = InsightsRegistry(fingerprint_cache_size=2)
        for n in (1, 2, 3, 4):
            registry.fingerprint(f"TRAIL (x) -[:a]->{{{n}}} (y)")
        assert len(registry._fingerprints) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            InsightsRegistry(capacity=0)

    def test_clear(self):
        registry = InsightsRegistry()
        registry.record(Q, latency_s=0.0)
        registry.clear()
        assert len(registry) == 0
        assert registry.counters()["records"] == 0
        assert registry.enabled

    def test_concurrent_recording_is_consistent(self):
        registry = InsightsRegistry()
        queries = [Q, Q_OTHER]

        def worker():
            for _ in range(200):
                for query in queries:
                    registry.record(query, latency_s=0.001, answers=1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counters()["records"] == 4 * 200 * 2
        total_calls = sum(entry["calls"] for entry in registry.top())
        assert total_calls == 4 * 200 * 2
