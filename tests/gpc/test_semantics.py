"""The Section 5 semantics: atomic patterns through repetition.

All tests use the bounded evaluator directly (`eval_pattern`) or the
full engine, asserting exact answer sets on hand-checkable graphs.
"""

import pytest

from repro.graph.ids import DirectedEdgeId as E, NodeId as N, UndirectedEdgeId as U
from repro.graph.paths import Path
from repro.gpc.assignments import Assignment
from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.collect import CollectMode
from repro.gpc.parser import parse_pattern
from repro.gpc.values import GroupValue, Nothing


def paths_of(matches):
    return {m[0] for m in matches}


class TestNodePatterns:
    def test_anonymous_matches_every_node(self, tiny_graph):
        matches = Evaluator(tiny_graph).eval_pattern(parse_pattern("()"))
        assert paths_of(matches) == {Path.node(N("a")), Path.node(N("b"))}
        assert all(m[1] == Assignment({}) for m in matches)

    def test_variable_binds_node(self, tiny_graph):
        matches = Evaluator(tiny_graph).eval_pattern(parse_pattern("(x)"))
        assert (Path.node(N("a")), Assignment({"x": N("a")})) in matches

    def test_label_filters(self, diamond_graph):
        matches = Evaluator(diamond_graph).eval_pattern(parse_pattern("(:M)"))
        assert paths_of(matches) == {Path.node(N("m1")), Path.node(N("m2"))}

    def test_unknown_label_matches_nothing(self, tiny_graph):
        assert not Evaluator(tiny_graph).eval_pattern(parse_pattern("(:Nope)"))


class TestEdgePatterns:
    def test_forward(self, tiny_graph):
        matches = Evaluator(tiny_graph).eval_pattern(parse_pattern("-[e]->"))
        assert matches == frozenset(
            {(Path.of(N("a"), E("e1"), N("b")), Assignment({"e": E("e1")}))}
        )

    def test_backward_reverses_path(self, tiny_graph):
        matches = Evaluator(tiny_graph).eval_pattern(parse_pattern("<-[e]-"))
        assert paths_of(matches) == {Path.of(N("b"), E("e1"), N("a"))}

    def test_label_filters_edges(self, diamond_graph):
        matches = Evaluator(diamond_graph).eval_pattern(parse_pattern("-[:direct]->"))
        assert paths_of(matches) == {Path.of(N("s"), E("e5"), N("t"))}

    def test_undirected_yields_both_orders(self, mixed_graph):
        matches = Evaluator(mixed_graph).eval_pattern(parse_pattern("~[x:b]~"))
        assert (Path.of(N("u"), U("u1"), N("v")), Assignment({"x": U("u1")})) in matches
        assert (Path.of(N("v"), U("u1"), N("u")), Assignment({"x": U("u1")})) in matches

    def test_undirected_self_loop_single_path(self, mixed_graph):
        matches = Evaluator(mixed_graph).eval_pattern(parse_pattern("~"))
        loops = [p for p in paths_of(matches) if p.src == p.tgt]
        assert Path.of(N("w"), U("u2"), N("w")) in loops

    def test_directed_self_loop_matches_both_directions(self, mixed_graph):
        fwd = Evaluator(mixed_graph).eval_pattern(parse_pattern("-[:loop]->"))
        bwd = Evaluator(mixed_graph).eval_pattern(parse_pattern("<-[:loop]-"))
        assert paths_of(fwd) == paths_of(bwd) == {Path.of(N("u"), E("d3"), N("u"))}

    def test_undirected_pattern_ignores_directed_edges(self, tiny_graph):
        assert not Evaluator(tiny_graph).eval_pattern(parse_pattern("~"))

    def test_zero_length_bound_gives_nothing(self, tiny_graph):
        assert not Evaluator(tiny_graph).eval_pattern(parse_pattern("->"), max_length=0)


class TestConcatenation:
    def test_two_hops(self, diamond_graph):
        matches = Evaluator(diamond_graph).eval_pattern(
            parse_pattern("(x:S) -> () -> (y:T)")
        )
        assert paths_of(matches) == {
            Path.of(N("s"), E("e1"), N("m1"), E("e2"), N("t")),
            Path.of(N("s"), E("e3"), N("m2"), E("e4"), N("t")),
        }

    def test_implicit_join_on_shared_variable(self, diamond_graph):
        # (x) -> (y) <- (x): both edges from the same source.
        matches = Evaluator(diamond_graph).eval_pattern(
            parse_pattern("(x) -> (y) <- (x)")
        )
        for path, mu in matches:
            assert path.src == path.tgt == mu["x"]

    def test_node_pattern_acts_as_filter(self, diamond_graph):
        with_filter = Evaluator(diamond_graph).eval_pattern(
            parse_pattern("-> (:M)")
        )
        assert paths_of(with_filter) == {
            Path.of(N("s"), E("e1"), N("m1")),
            Path.of(N("s"), E("e3"), N("m2")),
        }

    def test_assignments_merge(self, tiny_graph):
        matches = Evaluator(tiny_graph).eval_pattern(
            parse_pattern("(x) -[e]-> (y)")
        )
        ((path, mu),) = matches
        assert mu == Assignment({"x": N("a"), "e": E("e1"), "y": N("b")})


class TestUnion:
    def test_union_of_directions(self, tiny_graph):
        matches = Evaluator(tiny_graph).eval_pattern(parse_pattern("[->] + [<-]"))
        assert paths_of(matches) == {
            Path.of(N("a"), E("e1"), N("b")),
            Path.of(N("b"), E("e1"), N("a")),
        }

    def test_one_sided_variable_padded_with_nothing(self, tiny_graph):
        matches = Evaluator(tiny_graph).eval_pattern(
            parse_pattern("[(x) ->] + [<-]")
        )
        padded = [mu for _, mu in matches if mu["x"] == Nothing]
        bound = [mu for _, mu in matches if mu["x"] != Nothing]
        assert padded and bound

    def test_overlapping_answers_dedup(self, tiny_graph):
        matches = Evaluator(tiny_graph).eval_pattern(parse_pattern("[->] + [->]"))
        assert len(matches) == 1


class TestConditioned:
    def test_filters_by_property(self, diamond_graph):
        matches = Evaluator(diamond_graph).eval_pattern(
            parse_pattern("[(x:S) -> () -> (y:T)] << x.k = y.k >>")
        )
        assert len(matches) == 2  # both 2-hop paths; k matches (1 = 1)

    def test_condition_can_empty_answers(self, diamond_graph):
        matches = Evaluator(diamond_graph).eval_pattern(
            parse_pattern("[(x:S) -> (y:M)] << x.k = y.k >>")
        )
        assert not matches  # S has k=1, M has k=2

    def test_condition_against_constant(self, diamond_graph):
        matches = Evaluator(diamond_graph).eval_pattern(
            parse_pattern("(x:M) << x.k = 2 >>")
        )
        assert len(matches) == 2


class TestRepetition:
    def test_exact_power(self, chain5):
        matches = Evaluator(chain5).eval_pattern(parse_pattern("->{2}"))
        assert all(len(p) == 2 for p in paths_of(matches))
        assert len(matches) == 4  # chain of 5 edges has 4 two-hop windows

    def test_range(self, chain5):
        matches = Evaluator(chain5).eval_pattern(parse_pattern("->{2,3}"))
        assert {len(p) for p in paths_of(matches)} == {2, 3}

    def test_power_zero_matches_every_node_with_empty_groups(self, chain5):
        matches = Evaluator(chain5).eval_pattern(parse_pattern("-[e]->{0,1}"))
        zero = [(p, mu) for p, mu in matches if p.is_edgeless]
        assert len(zero) == 6
        for _, mu in zero:
            assert mu["e"] == GroupValue()

    def test_group_variable_collects_edges_in_order(self, chain5):
        matches = Evaluator(chain5).eval_pattern(
            parse_pattern("(s) -[e]->{2,2} (t)")
        )
        for path, mu in matches:
            assert mu["e"].values == path.edges

    def test_kleene_star_on_cycle_is_bounded_by_max_length(self, cycle4):
        matches = Evaluator(cycle4).eval_pattern(parse_pattern("->*"), max_length=6)
        lengths = {len(p) for p in paths_of(matches)}
        assert lengths == set(range(7))

    def test_nested_repetition_nests_groups(self, chain5):
        matches = Evaluator(chain5).eval_pattern(
            parse_pattern("[-[e]->{1,1}]{2,2}")
        )
        for _, mu in matches:
            outer = mu["e"]
            assert isinstance(outer, GroupValue) and len(outer) == 2
            for _, inner in outer:
                assert isinstance(inner, GroupValue) and len(inner) == 1

    def test_unbounded_upper_with_lower(self, cycle4):
        matches = Evaluator(cycle4).eval_pattern(parse_pattern("->{3,}"), max_length=5)
        assert {len(p) for p in paths_of(matches)} == {3, 4, 5}

    def test_zero_zero_is_just_nodes(self, chain5):
        matches = Evaluator(chain5).eval_pattern(parse_pattern("->{0,0}"))
        assert all(p.is_edgeless for p in paths_of(matches))
        assert len(matches) == 6


class TestEdgelessRepetition:
    """Repetition over bodies that may match edgeless paths — where
    the three collect approaches differ."""

    def test_grouping_mode_terminates_and_groups(self, tiny_graph):
        matches = Evaluator(tiny_graph).eval_pattern(parse_pattern("(x){1,}"))
        # Each node yields one answer: runs of (x) at the same node
        # unify into a single group entry.
        assert len(matches) == 2
        for path, mu in matches:
            assert path.is_edgeless
            assert len(mu["x"]) == 1

    def test_runtime_mode_drops_edgeless_powers(self, tiny_graph):
        config = EngineConfig(collect_mode=CollectMode.RUNTIME)
        matches = Evaluator(tiny_graph, config).eval_pattern(
            parse_pattern("(x){1,}")
        )
        assert not matches  # paper: pi may match while pi{1,1} has none

    def test_runtime_mode_keeps_power_zero(self, tiny_graph):
        config = EngineConfig(collect_mode=CollectMode.RUNTIME)
        matches = Evaluator(tiny_graph, config).eval_pattern(
            parse_pattern("(x){0,}")
        )
        assert len(matches) == 2
        assert all(mu["x"] == GroupValue() for _, mu in matches)

    def test_syntactic_mode_rejects_pattern(self, tiny_graph):
        from repro.errors import CollectError

        config = EngineConfig(collect_mode=CollectMode.SYNTACTIC)
        with pytest.raises(CollectError):
            Evaluator(tiny_graph, config).eval_pattern(parse_pattern("(x){1,}"))

    def test_mixed_edgeless_and_edges(self, tiny_graph):
        # body: node or edge; grouping merges consecutive node-matches.
        matches = Evaluator(tiny_graph).eval_pattern(
            parse_pattern("[[()] + [->]]{1,}"), max_length=1
        )
        assert matches
        for path, mu in matches:
            assert len(path) <= 1

    def test_grouping_agrees_with_runtime_on_positive_bodies(self, diamond_graph):
        pattern = parse_pattern("-[e]->{1,2}")
        grouping = Evaluator(diamond_graph).eval_pattern(pattern)
        runtime = Evaluator(
            diamond_graph, EngineConfig(collect_mode=CollectMode.RUNTIME)
        ).eval_pattern(pattern)
        assert grouping == runtime
