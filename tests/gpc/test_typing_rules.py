"""The Figure 2 typing rules, Proposition 2, and Proposition 4."""

import pytest

from repro.errors import (
    GPCTypeError,
    IllegalJoinError,
    TypeMismatchError,
    UnboundVariableError,
)
from repro.gpc import ast
from repro.gpc.conditions_ast import (
    And,
    Not,
    Or,
    PropertyEqualsConst,
    PropertyEqualsProperty,
)
from repro.gpc.parser import parse_pattern, parse_query
from repro.gpc.typing import (
    check_condition,
    concat_schemas,
    infer_schema,
    is_well_typed,
    join_schemas,
    union_schemas,
)
from repro.gpc.types import (
    EDGE,
    GroupType,
    MaybeType,
    NODE,
    PATH,
    maybe_wrap,
)


class TestAtomicRules:
    def test_node_variable_types_node(self):
        assert infer_schema(ast.node("x")) == {"x": NODE}

    def test_labeled_node_same(self):
        assert infer_schema(ast.node("x", "A")) == {"x": NODE}

    def test_edge_variable_types_edge(self):
        assert infer_schema(ast.forward("e")) == {"e": EDGE}
        assert infer_schema(ast.backward("e", "a")) == {"e": EDGE}
        assert infer_schema(ast.undirected("e")) == {"e": EDGE}

    def test_anonymous_patterns_bind_nothing(self):
        assert infer_schema(ast.node()) == {}
        assert infer_schema(ast.forward()) == {}


class TestPathNamingRule:
    def test_name_types_path(self):
        query = parse_query("p = TRAIL (x) -> (y)")
        schema = infer_schema(query)
        assert schema["p"] == PATH
        assert schema["x"] == NODE

    def test_name_must_not_occur_in_pattern(self):
        query = ast.PatternQuery(ast.Restrictor.TRAIL, ast.node("x"), name="x")
        with pytest.raises(TypeMismatchError):
            infer_schema(query)

    def test_restrictor_preserves_schema(self):
        pattern = parse_pattern("(x) -[e]-> (y)")
        query = ast.PatternQuery(ast.Restrictor.SHORTEST, pattern)
        assert infer_schema(query) == infer_schema(pattern)


class TestRepetitionRule:
    def test_group_wrapping(self):
        pattern = parse_pattern("[-[e]-> (y)]{1,3}")
        schema = infer_schema(pattern)
        assert schema == {"e": GroupType(EDGE), "y": GroupType(NODE)}

    def test_nested_groups(self):
        pattern = parse_pattern("[[-[e]->]{1,2}]{1,2}")
        assert infer_schema(pattern) == {"e": GroupType(GroupType(EDGE))}

    def test_group_of_maybe(self):
        pattern = parse_pattern("[[(x) ->] + [->]]{1,2}")
        assert infer_schema(pattern) == {"x": GroupType(MaybeType(NODE))}


class TestUnionRules:
    def test_same_type_passes_through(self):
        pattern = parse_pattern("[(x) ->] + [(x) <-]")
        assert infer_schema(pattern) == {"x": NODE}

    def test_one_sided_variable_becomes_maybe(self):
        pattern = parse_pattern("[(x) -> (z)] + [-> (z)]")
        schema = infer_schema(pattern)
        assert schema["x"] == MaybeType(NODE)
        assert schema["z"] == NODE

    def test_maybe_absorbs(self):
        # x is Maybe on the left (nested union), plain on the right.
        left = parse_pattern("[(x) ->] + [->]")
        pattern = ast.Union(left, ast.node("x"))
        assert infer_schema(pattern)["x"] == MaybeType(NODE)

    def test_no_double_maybe(self):
        # One-sided Maybe stays Maybe (tau? of Maybe is Maybe) — Prop 4.
        inner = parse_pattern("[(x) ->] + [->]")  # x: Maybe(Node)
        pattern = ast.Union(inner, ast.forward())
        assert infer_schema(pattern)["x"] == MaybeType(NODE)

    def test_conflicting_types_rejected(self):
        pattern = ast.Union(ast.node("x"), ast.forward("x"))
        with pytest.raises(TypeMismatchError):
            infer_schema(pattern)

    def test_group_vs_plain_rejected(self):
        pattern = ast.Union(
            ast.Repeat(ast.forward("e"), 1, 2), ast.forward("e")
        )
        with pytest.raises(TypeMismatchError):
            infer_schema(pattern)


class TestConcatenationRules:
    def test_shared_node_variable_joins(self):
        pattern = parse_pattern("(x) -> (y) <- (x)")
        assert infer_schema(pattern)["x"] == NODE

    def test_shared_edge_variable_joins(self):
        pattern = ast.Concat(ast.forward("e"), ast.backward("e"))
        assert infer_schema(pattern)["e"] == EDGE

    def test_node_edge_clash_rejected(self):
        # The paper's example: (x) -[x]-> () is not well-typed.
        pattern = parse_pattern("(x) -[x]-> ()")
        with pytest.raises(TypeMismatchError):
            infer_schema(pattern)

    def test_shared_group_variable_rejected(self):
        pattern = ast.Concat(
            ast.Repeat(ast.forward("e"), 1, 2),
            ast.Repeat(ast.forward("e"), 1, 2),
        )
        with pytest.raises(IllegalJoinError):
            infer_schema(pattern)

    def test_shared_maybe_variable_rejected(self):
        maybe_side = parse_pattern("[(x) ->] + [->]")
        pattern = ast.Concat(maybe_side, maybe_side)
        with pytest.raises(IllegalJoinError):
            infer_schema(pattern)

    def test_disjoint_variables_merge(self):
        pattern = parse_pattern("(x) -[e]-> (y)")
        assert set(infer_schema(pattern)) == {"x", "e", "y"}


class TestConditionRules:
    def test_condition_over_singletons_ok(self):
        pattern = parse_pattern("[(x) -[e]-> (y)] << x.a = y.b AND e.c = 1 >>")
        assert is_well_typed(pattern)

    def test_unbound_variable_rejected(self):
        pattern = ast.Conditioned(
            ast.node("x"), PropertyEqualsProperty("x", "a", "zz", "b")
        )
        with pytest.raises(UnboundVariableError):
            infer_schema(pattern)

    def test_group_variable_in_condition_rejected(self):
        # The paper's example: conditioning x.a = y.a over a group y.
        pattern = ast.Conditioned(
            parse_pattern("(x:A) -[y]->{1,} (z:B)"),
            PropertyEqualsProperty("x", "a", "y", "a"),
        )
        with pytest.raises(GPCTypeError):
            infer_schema(pattern)

    def test_maybe_variable_in_condition_rejected(self):
        maybe_pattern = parse_pattern("[(x) ->] + [->]")
        pattern = ast.Conditioned(
            maybe_pattern, PropertyEqualsConst("x", "a", 1)
        )
        with pytest.raises(GPCTypeError):
            infer_schema(pattern)

    def test_boolean_connectives_propagate(self):
        schema = {"x": NODE}
        condition = And(
            Or(
                PropertyEqualsConst("x", "a", 1),
                Not(PropertyEqualsConst("x", "b", 2)),
            ),
            PropertyEqualsConst("x", "c", 3),
        )
        check_condition(schema, condition)  # should not raise

    def test_conditioning_preserves_schema(self):
        pattern = parse_pattern("(x) -[e]-> (y)")
        conditioned = ast.Conditioned(pattern, PropertyEqualsConst("x", "a", 1))
        assert infer_schema(conditioned) == infer_schema(pattern)


class TestJoinRules:
    def test_shared_singleton_ok(self):
        query = parse_query("TRAIL (x) -> (y), SIMPLE (y) -> (z)")
        schema = infer_schema(query)
        assert schema["y"] == NODE

    def test_shared_path_name_rejected(self):
        query = parse_query("p = TRAIL (x), p = TRAIL (y)")
        with pytest.raises(IllegalJoinError):
            infer_schema(query)

    def test_shared_group_rejected(self):
        query = parse_query("TRAIL -[e]->{1,2}, TRAIL -[e]->{1,2}")
        with pytest.raises(IllegalJoinError):
            infer_schema(query)

    def test_type_clash_across_join_rejected(self):
        query = parse_query("TRAIL (x), TRAIL -[x]->")
        with pytest.raises(TypeMismatchError):
            infer_schema(query)


class TestProposition2:
    """Unique typing: every variable gets exactly one type."""

    @pytest.mark.parametrize(
        "text",
        [
            "(x) -> (y)",
            "[(x) ->] + [(x) <-]",
            "[-[e]-> (y)]{1,3}",
            "[(x) -> (z)] + [-> (z)]",
            "[(x) -[e]-> (y)] << x.a = y.b >>",
        ],
    )
    def test_schema_covers_exactly_pattern_variables(self, text):
        pattern = parse_pattern(text)
        schema = infer_schema(pattern)
        assert set(schema) == set(ast.variables(pattern))

    def test_schema_deterministic(self):
        pattern = parse_pattern("[(x) -> (z)] + [-> (z)]")
        assert infer_schema(pattern) == infer_schema(pattern)


class TestProposition4:
    """Associativity/commutativity wrt the type system; no Maybe(Maybe)."""

    def _schemas_equal(self, p1, p2):
        try:
            s1 = infer_schema(p1)
        except GPCTypeError:
            s1 = None
        try:
            s2 = infer_schema(p2)
        except GPCTypeError:
            s2 = None
        return s1 == s2

    def test_union_commutative(self):
        cases = [
            (ast.node("x"), ast.forward("e")),
            (parse_pattern("[(x) ->] + [->]"), ast.node("x")),
            (ast.node("x"), ast.node()),
        ]
        for a, b in cases:
            assert self._schemas_equal(ast.Union(a, b), ast.Union(b, a))

    def test_union_associative(self):
        a = ast.node("x")
        b = parse_pattern("(x) ->")
        c = ast.forward("e")
        assert self._schemas_equal(
            ast.Union(ast.Union(a, b), c), ast.Union(a, ast.Union(b, c))
        )

    def test_concat_commutative_wrt_types(self):
        a = parse_pattern("(x) ->")
        b = parse_pattern("(y) <-")
        assert self._schemas_equal(ast.Concat(a, b), ast.Concat(b, a))

    def test_concat_associative_wrt_types(self):
        a, b, c = ast.node("x"), ast.forward("e"), ast.node("y")
        assert self._schemas_equal(
            ast.Concat(ast.Concat(a, b), c), ast.Concat(a, ast.Concat(b, c))
        )

    def test_no_maybe_maybe_derivable(self):
        # Deliberately try to force Maybe(Maybe(tau)).
        inner = ast.Union(ast.node("x"), ast.forward())  # x: Maybe(Node)
        outer = ast.Union(inner, ast.forward())  # x still Maybe(Node)
        schema = infer_schema(outer)
        assert schema["x"] == MaybeType(NODE)
        assert not isinstance(schema["x"].inner, MaybeType)

    def test_maybe_wrap_idempotent(self):
        assert maybe_wrap(maybe_wrap(NODE)) == MaybeType(NODE)


class TestSchemaCombinators:
    """Remark 6: sch is compositional through pure combinators."""

    def test_union_combinator_matches_inference(self):
        left = parse_pattern("(x) -> (y)")
        right = parse_pattern("(y) <- (z)")
        assert union_schemas(
            infer_schema(left), infer_schema(right)
        ) == infer_schema(ast.Union(left, right))

    def test_concat_combinator_matches_inference(self):
        left = parse_pattern("(x) ->")
        right = parse_pattern("(x) <-")
        assert concat_schemas(
            infer_schema(left), infer_schema(right)
        ) == infer_schema(ast.Concat(left, right))

    def test_join_combinator_matches_inference(self):
        q1 = parse_query("TRAIL (x) -> (y)")
        q2 = parse_query("SIMPLE (y) <- (z)")
        assert join_schemas(
            infer_schema(q1), infer_schema(q2)
        ) == infer_schema(ast.Join(q1, q2))
