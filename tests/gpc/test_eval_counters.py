"""The engine's work counters: every counter field is exercised by a
query shape that provably does that kind of work, increments land on
the ambient struct, and ``explain(analyze=...)`` reports them."""

from __future__ import annotations

from repro.gpc.engine import Evaluator
from repro.gpc.parser import parse_query
from repro.graph.generators import social_network
from repro.obs import EvalCounters, use_counters
from repro.service import GraphService


def _evaluate(text: str, graph=None) -> EvalCounters:
    graph = graph if graph is not None else social_network(
        num_people=14, friend_degree=2, seed=9
    )
    counters = EvalCounters()
    with use_counters(counters):
        Evaluator(graph).evaluate(parse_query(text))
    return counters


class TestCounterSources:
    def test_shortest_counts_nfa_work_and_deepening(self):
        counters = _evaluate(
            "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)"
        )
        assert counters.nfa_states_expanded > 0
        assert counters.nfa_transitions > 0
        assert counters.deepening_rounds > 0

    def test_multi_pattern_counts_join_rows(self):
        counters = _evaluate(
            "TRAIL (x:Person) -[:knows]-> (y:Person), "
            "TRAIL (y:Person) -[:lives_in]-> (c:City)"
        )
        assert counters.join_build_rows > 0
        assert counters.join_probe_rows > 0

    def test_conditioned_pattern_counts_condition_evals(self):
        counters = _evaluate(
            "TRAIL [ (x:Person) -[e:knows]-> (y:Person) ]"
            " << x.name = y.name >>"
        )
        assert counters.condition_evals > 0

    def test_planner_prunes_seeds(self):
        counters = _evaluate(
            "SHORTEST (x:City) <-[:lives_in]- (y:Person)"
        )
        # Cities are a strict subset of the nodes: the planner's
        # candidate analysis must have discarded the Person seeds.
        assert counters.seeds_pruned > 0

    def test_trail_without_shortest_does_no_nfa_work(self):
        counters = _evaluate("TRAIL (x:Person) -[:knows]-> (y:Person)")
        assert counters.nfa_states_expanded == 0
        assert counters.deepening_rounds == 0

    def test_no_ambient_struct_is_harmless(self):
        graph = social_network(num_people=10, seed=3)
        result = Evaluator(graph).evaluate(
            parse_query("SHORTEST (x:Person) -[:knows]->{1,} (y:Person)")
        )
        assert result  # evaluation unaffected when nobody is counting


class TestServiceAggregation:
    def test_service_stats_accumulate_across_queries(self):
        service = GraphService(social_network(num_people=14, seed=9))
        service.evaluate(
            "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
            use_cache=False,
        )
        first = service.stats.engine.nfa_states_expanded
        assert first > 0
        service.evaluate(
            "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
            use_cache=False,
        )
        assert service.stats.engine.nfa_states_expanded == 2 * first
        service.close()

    def test_explain_analyze_reports_observed_work(self):
        service = GraphService(social_network(num_people=14, seed=9))
        plain = service.explain(
            "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)"
        )
        analyzed = service.explain(
            "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)", analyze=True
        )
        assert "observed execution" not in plain
        assert "observed execution" in analyzed
        assert "nfa_states_expanded" in analyzed
        assert "answers:" in analyzed
        service.close()
