"""Differential suite: planned evaluation == naive evaluation.

Every planner optimisation (hash joins, cardinality-ordered join
sides, endpoint-pruned ``shortest`` starts) must be answer-preserving.
This suite checks frozenset equality of answers between a planned
evaluator (``use_planner=True``, the default) and a naive one
(``use_planner=False``: nested-loop joins, all-nodes shortest starts)
over random graphs and the structured generator families.
"""

import pytest

from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.parser import parse_query
from repro.graph.generators import (
    random_multigraph,
    social_network,
    two_cliques_bridge,
)

NAIVE = EngineConfig(use_planner=False)


def assert_equivalent(graph, text):
    query = parse_query(text)
    naive = Evaluator(graph, NAIVE).evaluate(query)
    planned = Evaluator(graph).evaluate(query)
    assert planned == naive, (
        f"planner changed answers for {text!r}: "
        f"{len(planned)} planned vs {len(naive)} naive"
    )
    return naive


JOIN_QUERIES = [
    # shared node variable
    "TRAIL (x:A) -[:a]-> (y:B), TRAIL (y:B) -[:b]-> (z)",
    # shared node + edge variable on both sides
    "TRAIL (x) -[e:a]-> (y), TRAIL (x) -[e:a]-> (y)",
    # no shared variables: cross product
    "TRAIL (x:A) -[:a]-> (y), SIMPLE (u:B) -[:b]-> (v)",
    # three-way join, left-deep
    "TRAIL (x:A) -[:a]-> (y), TRAIL (y) -[:b]-> (z), TRAIL (z) -[:a]-> (w)",
    # named pattern joined on a node variable
    "p = TRAIL (x:A) -[:a]-> (y), TRAIL (y) ~[:a]~ (z)",
    # join where one side is empty (no such label)
    "TRAIL (x:A) -[:a]-> (y), TRAIL (u:NoSuchLabel) -[:a]-> (v)",
]

SHORTEST_QUERIES = [
    # label-pruned start and end
    "SHORTEST (x:A) -[:a]-> (y:B)",
    # labeled start, repetition, unconstrained end
    "SHORTEST (x:A) [-[:a]-> + -[:b]->]{1,3} (y)",
    # unconstrained start (no pruning possible)
    "SHORTEST (x) -[:a]->{1,2} (y:B)",
    # union at the front: both branches contribute candidates
    "SHORTEST [(x:A) -[:a]-> (y) + (x:B) -[:b]-> (y)]",
    # zero-length prefix: conjoined constraint
    "SHORTEST (w) (x:A) -[:a]-> (y)",
    # property-constrained start via condition
    "SHORTEST [(x:A) -[:a]->{1,2} (y)] << x.k = 1 >>",
    # condition under NOT: must not prune (required atoms only)
    "SHORTEST [(x:A) -[:a]-> (y)] << NOT x.k = 1 >>",
    # repetition with lower bound 0: start unconstrained
    "SHORTEST [(x:A) -[:a]-> (y)]{0,2}",
    # repetition with lower bound 1: body constraint applies
    "SHORTEST [(x:A) -[:a]-> (y)]{1,2}",
    # backward and undirected steps
    "SHORTEST (x:B) <-[:a]- (y:A)",
    "SHORTEST (x:A) ~[:b]~ (y)",
]

MIXED_QUERIES = [
    # join of a shortest and a trail query on a shared variable
    "SHORTEST (x:A) -[:a]->{1,2} (y:B), TRAIL (y:B) -[:b]-> (z)",
]


@pytest.fixture(scope="module", params=[0, 1, 2, 3])
def random_graph(request):
    return random_multigraph(
        num_nodes=9,
        num_directed=18,
        num_undirected=4,
        node_labels=("A", "B", "C"),
        edge_labels=("a", "b"),
        seed=request.param,
    )


class TestRandomGraphEquivalence:
    @pytest.mark.parametrize("text", JOIN_QUERIES)
    def test_joins(self, random_graph, text):
        assert_equivalent(random_graph, text)

    @pytest.mark.parametrize("text", SHORTEST_QUERIES)
    def test_shortest(self, random_graph, text):
        assert_equivalent(random_graph, text)

    @pytest.mark.parametrize("text", MIXED_QUERIES)
    def test_mixed(self, random_graph, text):
        assert_equivalent(random_graph, text)


class TestStructuredGraphEquivalence:
    def test_social_network_joins(self):
        graph = social_network(num_people=14, friend_degree=2, seed=7)
        answers = assert_equivalent(
            graph,
            "TRAIL (x:Person) -[:knows]-> (y:Person), "
            "TRAIL (y:Person) -[:lives_in]-> (c:City)",
        )
        assert answers  # the workload must actually produce joins

    def test_social_network_shortest(self):
        graph = social_network(num_people=14, friend_degree=2, seed=7)
        answers = assert_equivalent(
            graph, "SHORTEST (x:Person) -[:knows]->{1,3} (y:City)"
        )
        assert answers == frozenset()  # knows never reaches a City
        answers = assert_equivalent(
            graph, "SHORTEST (c:City) <-[:lives_in]- (x:Person)"
        )
        assert answers

    def test_two_cliques_bridge(self):
        graph = two_cliques_bridge(3)
        answers = assert_equivalent(
            graph,
            "TRAIL (x:L) -[:c]-> (y:L), TRAIL (y:L) -[:bridge]-> (z:R)",
        )
        assert answers

    def test_hash_join_nonempty_on_random_graphs(self):
        # Guard against the equivalence passing vacuously: at least one
        # seed must yield non-empty join results.
        total = 0
        for seed in range(4):
            graph = random_multigraph(
                num_nodes=9, num_directed=18, num_undirected=4, seed=seed
            )
            total += len(
                assert_equivalent(
                    graph, "TRAIL (x:A) -[:a]-> (y:B), TRAIL (y:B) -[:b]-> (z)"
                )
            )
        assert total > 0

    def test_empty_side_short_circuit_still_validates(self):
        # The skipped side of an empty join must still raise the
        # validation errors naive evaluation would raise — query
        # validity cannot be data-dependent.
        from repro.errors import CollectError
        from repro.gpc.collect import CollectMode

        graph = social_network(num_people=6, seed=0)
        config = EngineConfig(collect_mode=CollectMode.SYNTACTIC)
        # Left side is empty (no :Ghost); right side violates the
        # Approach 1 rule (repetition body may match an edgeless path).
        query = parse_query("TRAIL (x:Ghost) -[:a]-> (y), TRAIL (u) (v){0,2} (w)")
        with pytest.raises(CollectError):
            Evaluator(graph, EngineConfig(
                collect_mode=CollectMode.SYNTACTIC, use_planner=False
            )).evaluate(query)
        with pytest.raises(CollectError):
            Evaluator(graph, config).evaluate(query)

    def test_property_pruned_shortest_nonempty(self):
        total = 0
        for seed in range(4):
            graph = random_multigraph(
                num_nodes=9, num_directed=18, num_undirected=4, seed=seed
            )
            total += len(
                assert_equivalent(
                    graph, "SHORTEST [(x) -[:a]->{1,2} (y)] << x.k = 1 >>"
                )
            )
        assert total > 0
