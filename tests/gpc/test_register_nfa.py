"""The register-NFA shortest engine: exact pair lengths and witness
enumeration."""

import pytest

from repro.errors import (
    DeadlineExceededError,
    EvaluationError,
    EvaluationLimitError,
)
from repro.graph.builder import GraphBuilder
from repro.graph.generators import chain_graph, cycle_graph, theorem13_gadget
from repro.graph.ids import NodeId as N
from repro.graph.snapshot import GraphSnapshot
from repro.gpc.parser import parse_pattern
from repro.gpc.register_nfa import (
    UnsupportedPattern,
    compile_register_nfa,
    dense_shortest_pair_lengths,
    enumerate_exact_length_walks,
    shortest_pair_lengths,
)


class TestPairLengths:
    def test_chain_distances(self):
        graph = chain_graph(4)
        nfa = compile_register_nfa(parse_pattern("->{1,}"))
        best = shortest_pair_lengths(graph, nfa, N("n0"))
        assert best == {
            N("n1"): 1,
            N("n2"): 2,
            N("n3"): 3,
            N("n4"): 4,
        }

    def test_star_includes_zero(self):
        graph = chain_graph(2)
        nfa = compile_register_nfa(parse_pattern("->{0,}"))
        best = shortest_pair_lengths(graph, nfa, N("n0"))
        assert best[N("n0")] == 0

    def test_label_constraints_respected(self):
        graph = (
            GraphBuilder()
            .edge("a", "b", "x")
            .edge("b", "c", "y")
            .build()
        )
        nfa = compile_register_nfa(parse_pattern("-[:x]-> -[:y]->"))
        best = shortest_pair_lengths(graph, nfa, N("a"))
        assert best == {N("c"): 2}

    def test_node_label_test(self):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "B")
            .node("c", "A")
            .edge("a", "b")
            .edge("b", "c")
            .build()
        )
        nfa = compile_register_nfa(parse_pattern("(:A) ->{1,} (:A)"))
        best = shortest_pair_lengths(graph, nfa, N("a"))
        assert best == {N("c"): 2}
        assert shortest_pair_lengths(graph, nfa, N("b")) == {}

    def test_variable_join_enforced(self):
        # (z) -> () -> (z): must return to the starting node.
        graph = cycle_graph(3)
        nfa = compile_register_nfa(parse_pattern("(z) -> () -> (z)"))
        assert shortest_pair_lengths(graph, nfa, N("n0")) == {}
        two_cycle = cycle_graph(2)
        assert shortest_pair_lengths(two_cycle, nfa, N("n0")) == {N("n0"): 2}

    def test_edge_variable_join(self):
        # -[e]-> <-[e]-: traverse the same edge out and back.
        graph = (
            GraphBuilder().edge("a", "b", key="e1").edge("a", "b", key="e2").build()
        )
        nfa = compile_register_nfa(parse_pattern("-[e]-> <-[e]-"))
        best = shortest_pair_lengths(graph, nfa, N("a"))
        assert best == {N("a"): 2}

    def test_registers_reset_between_iterations(self):
        # [(z) -> (z)]{2,2} would need two self-loops; with the reset,
        # [(z) ->]{2,2} allows different z per iteration.
        graph = chain_graph(2)
        nfa = compile_register_nfa(parse_pattern("[(z) ->]{2,2}"))
        best = shortest_pair_lengths(graph, nfa, N("n0"))
        assert best == {N("n2"): 2}

    def test_condition_checked(self):
        graph = (
            GraphBuilder()
            .node("a", k=1)
            .node("b", k=2)
            .node("c", k=1)
            .edge("a", "b")
            .edge("b", "c")
            .build()
        )
        nfa = compile_register_nfa(
            parse_pattern("[(x) ->{1,} (y)] << x.k = y.k >>")
        )
        best = shortest_pair_lengths(graph, nfa, N("a"))
        assert best == {N("c"): 2}

    def test_unsupported_extension_raises(self):
        from repro.extensions.arithmetic import ArithConditioned, Count, TermConst

        pattern = ArithConditioned(
            parse_pattern("-[e]->{1,}"), Count("e"), TermConst(2)
        )
        with pytest.raises(UnsupportedPattern):
            compile_register_nfa(pattern)


class TestWitnessEnumeration:
    def test_chain_witness(self):
        graph = chain_graph(3)
        nfa = compile_register_nfa(parse_pattern("->{1,}"))
        walks = enumerate_exact_length_walks(graph, nfa, N("n0"), N("n2"), 2)
        assert len(walks) == 1
        assert walks[0].src == N("n0") and walks[0].tgt == N("n2")

    def test_gadget_all_parallel_choices(self):
        graph = theorem13_gadget()
        nfa = compile_register_nfa(parse_pattern("->{3,3}"))
        walks = enumerate_exact_length_walks(graph, nfa, N("u"), N("v"), 3)
        assert len(walks) == 8  # 2 parallel edges at each of 3 steps

    def test_wrong_length_gives_nothing(self):
        graph = chain_graph(3)
        nfa = compile_register_nfa(parse_pattern("->{1,}"))
        assert not enumerate_exact_length_walks(graph, nfa, N("n0"), N("n2"), 1)

    def test_direction_pruning(self):
        graph = chain_graph(3)
        nfa = compile_register_nfa(parse_pattern("<-{1,}"))
        walks = enumerate_exact_length_walks(graph, nfa, N("n2"), N("n0"), 2)
        assert len(walks) == 1


class TestCheckErrorPropagation:
    """Errors raised while evaluating a ``_Check`` condition.

    The search swallows :class:`EvaluationError` from malformed
    conditions (an unsatisfiable check just kills the run), but
    deadline expiry and engine safety limits are *control flow*: they
    must escape the search so the service can answer 504 / 422 instead
    of silently returning a truncated answer set.
    """

    def _graph(self):
        return (
            GraphBuilder()
            .node("a", k=1)
            .node("b", k=1)
            .edge("a", "b")
            .build()
        )

    def _nfa(self):
        # Two-variable condition: never pushable, always a _Check.
        return compile_register_nfa(
            parse_pattern("[(x) ->{1,} (y)] << x.k = y.k >>")
        )

    @pytest.mark.parametrize(
        "error", [DeadlineExceededError, EvaluationLimitError]
    )
    def test_generic_search_propagates(self, error, monkeypatch):
        def boom(graph, assignment, condition):
            raise error("expired inside a CHECK")

        monkeypatch.setattr("repro.gpc.register_nfa.satisfies", boom)
        with pytest.raises(error):
            shortest_pair_lengths(self._graph(), self._nfa(), N("a"))

    @pytest.mark.parametrize(
        "error", [DeadlineExceededError, EvaluationLimitError]
    )
    def test_dense_search_propagates(self, error, monkeypatch):
        def boom(graph, assignment, condition):
            raise error("expired inside a CHECK")

        monkeypatch.setattr("repro.gpc.register_nfa.satisfies", boom)
        snapshot = GraphSnapshot(self._graph())
        with pytest.raises(error):
            dense_shortest_pair_lengths(snapshot, self._nfa(), N("a"))

    def test_plain_evaluation_errors_still_swallowed(self, monkeypatch):
        def boom(graph, assignment, condition):
            raise EvaluationError("malformed condition")

        monkeypatch.setattr("repro.gpc.register_nfa.satisfies", boom)
        graph = self._graph()
        assert shortest_pair_lengths(graph, self._nfa(), N("a")) == {}
        snapshot = GraphSnapshot(graph)
        assert dense_shortest_pair_lengths(snapshot, self._nfa(), N("a")) == {}
