"""AST construction, validation, and structural queries."""

import pytest

from repro.errors import GPCError
from repro.gpc import ast
from repro.gpc.conditions_ast import PropertyEqualsConst, PropertyEqualsProperty


class TestDescriptors:
    def test_empty_descriptor(self):
        d = ast.Descriptor()
        assert d.is_empty
        assert str(d) == ""

    def test_full_descriptor(self):
        d = ast.Descriptor("x", "A")
        assert str(d) == "x:A"

    def test_empty_string_variable_rejected(self):
        with pytest.raises(GPCError):
            ast.Descriptor(variable="")

    def test_empty_string_label_rejected(self):
        with pytest.raises(GPCError):
            ast.Descriptor(label="")


class TestConstructors:
    def test_node_helpers(self):
        assert ast.node().descriptor.is_empty
        assert ast.node("x").variable == "x"
        assert ast.node(label="A").label == "A"
        assert ast.node("x", "A") == ast.NodePattern(ast.Descriptor("x", "A"))

    def test_edge_helpers(self):
        assert ast.forward().direction is ast.Direction.FORWARD
        assert ast.backward("e").variable == "e"
        assert ast.undirected(label="b").label == "b"

    def test_concat_left_associates(self):
        a, b, c = ast.node("a"), ast.node("b"), ast.node("c")
        assert ast.concat(a, b, c) == ast.Concat(ast.Concat(a, b), c)

    def test_union_left_associates(self):
        a, b, c = ast.node("a"), ast.node("b"), ast.node("c")
        assert ast.union(a, b, c) == ast.Union(ast.Union(a, b), c)

    def test_empty_concat_rejected(self):
        with pytest.raises(GPCError):
            ast.concat()
        with pytest.raises(GPCError):
            ast.union()


class TestRepeat:
    def test_bounds_validated(self):
        with pytest.raises(GPCError):
            ast.Repeat(ast.forward(), -1, 2)
        with pytest.raises(GPCError):
            ast.Repeat(ast.forward(), 3, 2)

    def test_unbounded(self):
        r = ast.Repeat(ast.forward(), 0, None)
        assert r.is_unbounded

    def test_exact_bounds(self):
        r = ast.Repeat(ast.forward(), 2, 2)
        assert not r.is_unbounded


class TestRestrictor:
    def test_five_legal_forms(self):
        assert str(ast.Restrictor.SIMPLE) == "simple"
        assert str(ast.Restrictor.TRAIL) == "trail"
        assert str(ast.Restrictor.SHORTEST) == "shortest"
        assert str(ast.Restrictor.SHORTEST_SIMPLE) == "shortest simple"
        assert str(ast.Restrictor.SHORTEST_TRAIL) == "shortest trail"

    def test_empty_restrictor_rejected(self):
        with pytest.raises(GPCError):
            ast.Restrictor()

    def test_unknown_mode_rejected(self):
        with pytest.raises(GPCError):
            ast.Restrictor(mode="weird")


class TestVariables:
    def test_atomic(self):
        assert ast.variables(ast.node("x")) == frozenset({"x"})
        assert ast.variables(ast.node()) == frozenset()
        assert ast.variables(ast.forward("e")) == frozenset({"e"})

    def test_composites(self):
        pattern = ast.concat(
            ast.node("x"), ast.forward("e"), ast.node("y")
        )
        assert ast.variables(pattern) == frozenset({"x", "e", "y"})

    def test_condition_variables_included(self):
        pattern = ast.Conditioned(
            ast.node("x"), PropertyEqualsProperty("x", "a", "y", "b")
        )
        assert ast.variables(pattern) == frozenset({"x", "y"})

    def test_query_name_included(self):
        query = ast.PatternQuery(ast.Restrictor.TRAIL, ast.node("x"), name="p")
        assert ast.variables(query) == frozenset({"x", "p"})

    def test_join(self):
        q1 = ast.PatternQuery(ast.Restrictor.TRAIL, ast.node("x"))
        q2 = ast.PatternQuery(ast.Restrictor.SIMPLE, ast.node("y"))
        assert ast.variables(ast.Join(q1, q2)) == frozenset({"x", "y"})


class TestSubpatternsAndSize:
    def test_iter_subpatterns_counts(self):
        pattern = ast.Union(
            ast.Concat(ast.node(), ast.forward()),
            ast.Repeat(ast.node(), 0, 1),
        )
        subs = list(ast.iter_subpatterns(pattern))
        # Union, Concat, two leaf nodes, one edge, Repeat, Repeat body.
        assert len(subs) == 6
        assert pattern in subs

    def test_pattern_size_counts_bound_bits(self):
        small = ast.Repeat(ast.forward(), 1, 2)
        large = ast.Repeat(ast.forward(), 1, 2**20)
        assert ast.pattern_size(large) > ast.pattern_size(small)

    def test_pattern_size_monotone_in_structure(self):
        atom = ast.node()
        assert ast.pattern_size(ast.Concat(atom, atom)) > ast.pattern_size(atom)

    def test_condition_str_forms(self):
        c = PropertyEqualsConst("x", "a", 5)
        assert "x.a" in str(c)


class TestHashability:
    def test_patterns_are_hashable_and_comparable(self):
        a = ast.concat(ast.node("x"), ast.forward(), ast.node("y"))
        b = ast.concat(ast.node("x"), ast.forward(), ast.node("y"))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_different_patterns_differ(self):
        assert ast.node("x") != ast.node("y")
        assert ast.forward() != ast.backward()
