"""Engine configuration knobs, limit errors, and the explain module."""

import pytest

from repro.errors import EvaluationLimitError
from repro.graph.generators import chain_graph, complete_graph, cycle_graph
from repro.gpc.engine import EngineConfig, Evaluator, evaluate
from repro.gpc.explain import explain, explain_pattern, explain_query
from repro.gpc.parser import parse_pattern, parse_query


class TestEngineLimits:
    def test_intermediate_result_limit(self):
        graph = complete_graph(5)
        config = EngineConfig(max_intermediate_results=10)
        with pytest.raises(EvaluationLimitError):
            Evaluator(graph, config).eval_pattern(
                parse_pattern("->{1,}"), max_length=5
            )

    def test_default_pattern_bound_is_edge_count(self, cycle4):
        matches = Evaluator(cycle4).eval_pattern(parse_pattern("->{1,}"))
        assert max(len(p) for p, _ in matches) == cycle4.num_edges

    def test_max_pattern_length_config(self, cycle4):
        config = EngineConfig(max_pattern_length=2)
        matches = Evaluator(cycle4, config).eval_pattern(parse_pattern("->{1,}"))
        assert max(len(p) for p, _ in matches) == 2

    def test_explicit_bound_overrides_config(self, cycle4):
        config = EngineConfig(max_pattern_length=2)
        matches = Evaluator(cycle4, config).eval_pattern(
            parse_pattern("->{1,}"), max_length=3
        )
        assert max(len(p) for p, _ in matches) == 3

    def test_automaton_state_limit(self):
        graph = chain_graph(2)
        config = EngineConfig(automaton_state_limit=5)
        with pytest.raises(EvaluationLimitError):
            evaluate(parse_query("SHORTEST ->{1,}"), graph, config)

    def test_power_iteration_limit(self):
        graph = cycle_graph(2)
        config = EngineConfig(max_power_iterations=2)
        with pytest.raises(EvaluationLimitError):
            # lower bound 5 needs 5 power iterations > 2.
            Evaluator(graph, config).eval_pattern(
                parse_pattern("->{5,5}"), max_length=5
            )

    def test_memoization_shares_work(self, cycle4):
        evaluator = Evaluator(cycle4)
        pattern = parse_pattern("->{1,}")
        first = evaluator.eval_pattern(pattern, max_length=3)
        second = evaluator.eval_pattern(pattern, max_length=3)
        assert first is second  # memo returns the same frozenset


class TestConfigPlanMismatch:
    """``Evaluator(graph, config=A, plan=compiled_with_B)`` used to
    silently evaluate under A while running B's automata."""

    def test_disagreeing_config_and_plan_raise(self, cycle4):
        from repro.gpc.engine import QueryPlan

        plan = QueryPlan(EngineConfig(automaton_state_limit=10))
        with pytest.raises(ValueError, match="disagrees"):
            Evaluator(cycle4, EngineConfig(), plan=plan)

    def test_matching_config_and_plan_are_fine(self, cycle4):
        from repro.gpc.engine import QueryPlan

        config = EngineConfig(max_pattern_length=2)
        evaluator = Evaluator(cycle4, config, plan=QueryPlan(config))
        assert evaluator.config == config

    def test_plan_alone_supplies_its_config(self, cycle4):
        from repro.gpc.engine import QueryPlan

        config = EngineConfig(shortest_deepening_limit=7)
        evaluator = Evaluator(cycle4, plan=QueryPlan(config))
        assert evaluator.config == config

    def test_config_alone_builds_matching_plan(self, cycle4):
        config = EngineConfig(shortest_deepening_limit=7)
        evaluator = Evaluator(cycle4, config)
        assert evaluator.plan.config == config


class TestExplainPattern:
    def test_well_typed_report(self):
        report = explain_pattern(parse_pattern("(x) -[e]->{1,3} (y)"))
        assert report.well_typed
        assert report.min_length == 1
        assert report.max_length == 3
        assert set(report.schema) == {"x", "e", "y"}
        assert "Group(Edge)" in report.render()

    def test_ill_typed_report(self):
        report = explain_pattern(parse_pattern("(x) -[x]-> ()"))
        assert not report.well_typed
        assert report.type_error
        assert "ILL-TYPED" in report.render()

    def test_gql_rule_flag(self):
        good = explain_pattern(parse_pattern("->{0,}"))
        bad = explain_pattern(parse_pattern("(x){1,}"))
        assert good.gql_repetition_legal
        assert not bad.gql_repetition_legal
        assert "VIOLATED" in bad.render()

    def test_unbounded_length_rendering(self):
        report = explain_pattern(parse_pattern("->*"))
        assert report.max_length is None
        assert "unbounded" in report.render()


class TestExplainQuery:
    def test_per_item_strategies(self):
        query = parse_query("TRAIL (x) -> (y), SHORTEST (y) ->{1,} (z)")
        report = explain_query(query)
        strategies = [s for s, _ in report.items]
        assert "filter trails" in strategies[0]
        assert "register-NFA" in strategies[1]

    def test_shortest_trail_strategy(self):
        query = parse_query("SHORTEST TRAIL ->{1,}")
        report = explain_query(query)
        assert "per-pair minima" in report.items[0][0]

    def test_explain_dispatches(self):
        assert "query:" in explain(parse_query("TRAIL (x)"))
        assert "pattern:" in explain(parse_pattern("(x)"))


class TestLenientShortest:
    def test_lenient_mode_returns_partial(self):
        # A pattern whose register search finds a pair but whose
        # grouping-collect probe would exceed the limit cannot easily
        # be constructed from well-typed core patterns; instead check
        # the flag exists and default strictness raises on automaton
        # blow-ups handled above. Here: lenient + tiny limit on a
        # normal query still returns answers.
        graph = chain_graph(3)
        config = EngineConfig(lenient_shortest=True, shortest_deepening_limit=8)
        answers = evaluate(parse_query("SHORTEST ->{1,}"), graph, config)
        assert answers
