"""The Answer type, projection, and pretty-printer edge cases."""

import pytest

from repro.errors import EvaluationError
from repro.graph.ids import DirectedEdgeId as E, NodeId as N
from repro.graph.paths import Path
from repro.gpc import ast
from repro.gpc.answers import Answer, project, sort_answers
from repro.gpc.assignments import Assignment
from repro.gpc.conditions_ast import (
    And,
    Not,
    Or,
    PropertyEqualsConst,
    PropertyEqualsProperty,
)
from repro.gpc.parser import parse_condition, parse_pattern, parse_query
from repro.gpc.pretty import pretty, pretty_condition


def answer(path_elems, **bindings):
    return Answer((Path.of(*path_elems),), Assignment(bindings))


class TestAnswer:
    def test_single_path_access(self):
        a = answer([N("u")], x=N("u"))
        assert a.path == Path.node(N("u"))
        assert a["x"] == N("u")

    def test_multi_path_access_guarded(self):
        a = Answer(
            (Path.node(N("u")), Path.node(N("v"))), Assignment({})
        )
        with pytest.raises(EvaluationError):
            _ = a.path

    def test_empty_paths_rejected(self):
        with pytest.raises(EvaluationError):
            Answer((), Assignment({}))

    def test_combine_unifies(self):
        a = answer([N("u")], x=N("u"))
        b = answer([N("v")], x=N("u"), y=N("v"))
        combined = a.combine(b)
        assert combined is not None
        assert len(combined.paths) == 2
        assert combined["y"] == N("v")

    def test_combine_conflict_none(self):
        a = answer([N("u")], x=N("u"))
        b = answer([N("v")], x=N("v"))
        assert a.combine(b) is None

    def test_hashable(self):
        a = answer([N("u")], x=N("u"))
        b = answer([N("u")], x=N("u"))
        assert len({a, b}) == 1


class TestProjectAndSort:
    def test_project(self):
        answers = [
            answer([N("u")], x=N("u"), y=N("v")),
            answer([N("w")], x=N("w"), y=N("v")),
        ]
        assert project(answers, ("x",)) == frozenset({(N("u"),), (N("w"),)})
        assert project(answers, ("y", "x")) == frozenset(
            {(N("v"), N("u")), (N("v"), N("w"))}
        )

    def test_sort_is_radix_on_paths(self):
        short = answer([N("z")])
        long = Answer(
            (Path.of(N("a"), E("e"), N("b")),), Assignment({})
        )
        assert sort_answers([long, short]) == [short, long]

    def test_sort_deterministic(self):
        answers = [
            answer([N("u")], x=N("u")),
            answer([N("u")], x=N("v")),
        ]
        assert sort_answers(answers) == sort_answers(list(reversed(answers)))


class TestPrettyConditions:
    @pytest.mark.parametrize(
        "condition",
        [
            PropertyEqualsConst("x", "k", 5),
            PropertyEqualsConst("x", "k", -5),
            PropertyEqualsConst("x", "k", 1.5),
            PropertyEqualsConst("x", "k", True),
            PropertyEqualsConst("x", "k", False),
            PropertyEqualsConst("x", "name", "Ann"),
            PropertyEqualsConst("x", "name", "O'Hara"),
            PropertyEqualsConst("x", "name", "back\\slash"),
            PropertyEqualsProperty("x", "a", "y", "b"),
            And(
                PropertyEqualsConst("x", "a", 1),
                Or(
                    PropertyEqualsConst("x", "b", 2),
                    Not(PropertyEqualsConst("x", "c", 3)),
                ),
            ),
        ],
    )
    def test_condition_round_trip(self, condition):
        assert parse_condition(pretty_condition(condition)) == condition


class TestPrettyPatterns:
    @pytest.mark.parametrize(
        "text",
        [
            "(x:A) -> (y)",
            "[(a) + (b)] (c)",
            "(a) [(b) + (c)]",
            "[(a) (b)]{1,2}",
            "->* <-{2,} ~{3}",
            "[[(x) ->] + [<-]]{0,2}",
            "[(x) -[e]-> (y)] << x.k = y.k >>",
        ],
    )
    def test_round_trip_via_text(self, text):
        pattern = parse_pattern(text)
        assert parse_pattern(pretty(pattern)) == pattern

    def test_union_right_nesting_bracketed(self):
        # Right-nested union must print brackets to survive re-parsing
        # (the parser is left-associative).
        pattern = ast.Union(
            ast.node("a"), ast.Union(ast.node("b"), ast.node("c"))
        )
        assert parse_pattern(pretty(pattern)) == pattern

    def test_concat_right_nesting_bracketed(self):
        pattern = ast.Concat(
            ast.node("a"), ast.Concat(ast.node("b"), ast.node("c"))
        )
        assert parse_pattern(pretty(pattern)) == pattern

    def test_query_forms(self):
        for text in [
            "TRAIL (x)",
            "p = SHORTEST TRAIL (x) -> (y)",
            "TRAIL (x), SIMPLE (y)",
        ]:
            query = parse_query(text)
            assert parse_query(pretty(query)) == query
