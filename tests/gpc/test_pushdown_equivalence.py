"""Differential equivalence: predicate pushdown on vs off vs seed.

Pushdown rewrites condition-bearing ``shortest`` plans — atoms lifted
to bind/step sites, bitmask probes, the register-free flat lane — and
every rewrite must be answer-preserving. Random graphs and mutation
chains are generated from a hypothesis-drawn seed; each query runs
three ways — pushdown on (masks + flat lane), pushdown off (the seed
dense search), and the tuple-dict :class:`LegacyGraphSnapshot` — and
the answer frozensets are compared for exact equality.

The mutation chains matter: ``derive`` patches masked rows copy-on-
write, so stale bitmask bits would surface here as on/off divergence.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.parser import parse_query
from repro.graph import GraphSnapshot, PropertyGraph
from repro.graph.snapshot_legacy import LegacyGraphSnapshot

#: Condition-bearing and register-free shapes: pushable single-variable
#: atoms (on nodes and edges, at bind sites and step sites), residues
#: the pushdown must keep (two-variable, repeat-scoped, negated),
#: unions, undirected steps, and pure RPQs that ride the flat lane.
QUERY_TEXTS = (
    "SHORTEST [(x:P) -> (m) ->{1,} (y)] << m.k = 1 >>",
    "SHORTEST [(x) -[e:r]-> (y)] << e.w = 1 >>",
    "SHORTEST [(x:P) -[:r]->{1,} (y)] << x.k = 0 >>",
    "SHORTEST [(x) -> (m) -> (y)] << m.k = 1 AND x.k = 2 >>",
    "SHORTEST [(x) -> (y)] << x.k = y.k >>",
    "SHORTEST [(x) ->{0,2} (y:Q)] << y.k = 2 >>",
    "SHORTEST [(x:P) -[:r]-> (m) + (x:P) -[:s]-> (m)] << m.k = 1 >>",
    "SHORTEST [(x) ~[:m]~ (y)] << y.k = 0 >>",
    "SHORTEST [(x) -> (m) ->{1,} (y)] << NOT m.k = 1 >>",
    "SHORTEST (x:P) -[:r]->{1,} (y:Q)",
    "SHORTEST (x) ->{1,3} (y:P)",
)
QUERIES = tuple(parse_query(text) for text in QUERY_TEXTS)

PUSH_ON = EngineConfig(use_pushdown=True)
PUSH_OFF = EngineConfig(use_pushdown=False)


def random_graph(rng: random.Random) -> PropertyGraph:
    graph = PropertyGraph()
    handles = [
        graph.add_node(
            f"n{i}",
            labels=rng.choice([(), ("P",), ("Q",), ("P", "Q")]),
            properties=rng.choice([None, {"k": rng.randrange(3)}]),
        )
        for i in range(rng.randrange(3, 10))
    ]
    for i in range(rng.randrange(2, 18)):
        graph.add_edge(
            f"e{i}",
            rng.choice(handles),
            rng.choice(handles),
            labels=rng.choice([("r",), ("s",), ("r", "s"), ()]),
            properties=rng.choice([None, {"w": rng.randrange(3)}]),
        )
    for i in range(rng.randrange(0, 4)):
        graph.add_undirected_edge(
            f"u{i}", rng.choice(handles), rng.choice(handles), labels=("m",)
        )
    return graph


def mutate(rng: random.Random, graph: PropertyGraph) -> None:
    """Mutations biased toward masked state: property writes/removals
    flip mask bits, node removal clears them, re-add shadows rows."""
    nodes = sorted(graph.nodes)
    dedges = sorted(graph.directed_edges)
    op = rng.randrange(7)
    if op == 0 and nodes:
        graph.set_property(rng.choice(nodes), "k", rng.randrange(3))
    elif op == 1 and dedges:
        graph.set_property(rng.choice(dedges), "w", rng.randrange(3))
    elif op == 2 and nodes:
        victim = rng.choice(nodes)
        if graph.get_property(victim, "k") is not None:
            graph.remove_property(victim, "k")
    elif op == 3 and len(nodes) > 3:
        graph.remove_node(rng.choice(nodes))
    elif op == 4:
        graph.add_node(
            f"m{graph.version}",
            labels=rng.choice([("P",), ("Q",)]),
            properties={"k": rng.randrange(3)},
        )
    elif op == 5 and len(nodes) >= 2:
        graph.add_edge(
            f"me{graph.version}",
            rng.choice(nodes),
            rng.choice(nodes),
            labels=rng.choice([("r",), ("s",)]),
            properties={"w": rng.randrange(3)},
        )
    else:
        victim = rng.choice(nodes)
        graph.remove_node(victim)
        graph.add_node(
            victim.key,
            labels=rng.choice([(), ("P",)]),
            properties={"k": rng.randrange(3)},
        )


def assert_same_answers(graph: PropertyGraph, csr_view=None) -> None:
    csr = csr_view if csr_view is not None else GraphSnapshot(graph)
    legacy = LegacyGraphSnapshot(graph)
    pushed = Evaluator(csr, PUSH_ON)
    unpushed = Evaluator(csr, PUSH_OFF)
    seed_eval = Evaluator(legacy, PUSH_OFF)
    for text, query in zip(QUERY_TEXTS, QUERIES):
        on = pushed.evaluate(query)
        off = unpushed.evaluate(query)
        seed = seed_eval.evaluate(query)
        assert on == off, f"pushdown changed answers: {text}"
        assert on == seed, f"dense diverged from seed layout: {text}"


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_pushdown_matches_on_static_snapshots(seed):
    rng = random.Random(seed)
    assert_same_answers(random_graph(rng))


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_pushdown_matches_across_mutation_chains(seed):
    """Derived snapshots patch cached masks copy-on-write; answers
    must stay equal after chains that rewrite masked rows."""
    rng = random.Random(seed)
    graph = random_graph(rng)
    graph.snapshot()  # force the derive path for later versions
    for _ in range(rng.randrange(1, 6)):
        mutate(rng, graph)
        assert_same_answers(graph, graph.snapshot())
