"""Condition satisfaction (mu |= theta) and the min-length analysis."""

import pytest

from repro.errors import CollectError, EvaluationError
from repro.graph.builder import GraphBuilder
from repro.graph.ids import NodeId as N
from repro.gpc.assignments import Assignment
from repro.gpc.conditions import satisfies
from repro.gpc.conditions_ast import (
    And,
    Not,
    Or,
    PropertyEqualsConst,
    PropertyEqualsProperty,
)
from repro.gpc.minlength import (
    max_path_length,
    may_match_edgeless,
    min_path_length,
    validate_approach1,
)
from repro.gpc.parser import parse_pattern
from repro.gpc.values import Nothing


@pytest.fixture
def graph():
    return (
        GraphBuilder()
        .node("a", "P", k=1, name="Ann")
        .node("b", "P", k=1)
        .node("c", "P", k=2)
        .build()
    )


class TestAtomicConditions:
    def test_const_equal(self, graph):
        mu = Assignment({"x": N("a")})
        assert satisfies(graph, mu, PropertyEqualsConst("x", "k", 1))
        assert not satisfies(graph, mu, PropertyEqualsConst("x", "k", 2))

    def test_undefined_property_is_false(self, graph):
        mu = Assignment({"x": N("b")})
        assert not satisfies(graph, mu, PropertyEqualsConst("x", "name", "Ann"))

    def test_property_equals_property(self, graph):
        mu = Assignment({"x": N("a"), "y": N("b")})
        assert satisfies(graph, mu, PropertyEqualsProperty("x", "k", "y", "k"))
        mu2 = Assignment({"x": N("a"), "y": N("c")})
        assert not satisfies(graph, mu2, PropertyEqualsProperty("x", "k", "y", "k"))

    def test_both_sides_undefined_is_false(self, graph):
        # delta undefined on both sides: condition is false, not true.
        mu = Assignment({"x": N("b"), "y": N("c")})
        assert not satisfies(
            graph, mu, PropertyEqualsProperty("x", "name", "y", "name")
        )


class TestBooleanConnectives:
    def test_and_or(self, graph):
        mu = Assignment({"x": N("a")})
        k1 = PropertyEqualsConst("x", "k", 1)
        k2 = PropertyEqualsConst("x", "k", 2)
        assert satisfies(graph, mu, And(k1, k1))
        assert not satisfies(graph, mu, And(k1, k2))
        assert satisfies(graph, mu, Or(k2, k1))
        assert not satisfies(graph, mu, Or(k2, k2))

    def test_negation_is_complement(self, graph):
        mu = Assignment({"x": N("a")})
        assert satisfies(graph, mu, Not(PropertyEqualsConst("x", "k", 2)))

    def test_negation_of_undefined_is_true(self, graph):
        # The paper's semantics: mu |= not theta iff mu |/= theta, so
        # negating an undefined comparison yields TRUE.
        mu = Assignment({"x": N("b")})
        assert satisfies(graph, mu, Not(PropertyEqualsConst("x", "name", "Ann")))


class TestConditionErrors:
    def test_unbound_variable(self, graph):
        with pytest.raises(EvaluationError):
            satisfies(graph, Assignment({}), PropertyEqualsConst("x", "k", 1))

    def test_non_singleton_value(self, graph):
        mu = Assignment({"x": Nothing})
        with pytest.raises(EvaluationError):
            satisfies(graph, mu, PropertyEqualsConst("x", "k", 1))


class TestMinLength:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("()", 0),
            ("->", 1),
            ("(x) -> (y)", 1),
            ("-> <- ~", 3),
            ("[->] + [()]", 0),
            ("[-> ->] + [->]", 1),
            ("->{2,5}", 2),
            ("->{0,5}", 0),
            ("[-> ->]{3,}", 6),
            ("[() ->] << a.k = 1 >>", 1),
            ("[[->] + [()]]{4,4}", 0),
        ],
    )
    def test_min(self, text, expected):
        pattern = parse_pattern(text.replace("a.k", "x.k").replace("(x)", "(x)"))
        # conditions need bound vars; rewrite the conditioned case
        if "<<" in text:
            pattern = parse_pattern("[(x) ->] << x.k = 1 >>")
        assert min_path_length(pattern) == expected

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("()", 0),
            ("->", 1),
            ("-> <-", 2),
            ("[->] + [-> ->]", 2),
            ("->{2,5}", 5),
            ("->{2,}", None),
            ("()*", 0),
            ("[()]{0,}", 0),
        ],
    )
    def test_max(self, text, expected):
        assert max_path_length(parse_pattern(text)) == expected

    def test_may_match_edgeless(self):
        assert may_match_edgeless(parse_pattern("()"))
        assert not may_match_edgeless(parse_pattern("->"))
        assert may_match_edgeless(parse_pattern("->{0,3}"))


class TestApproach1Validation:
    def test_edge_body_allowed(self):
        validate_approach1(parse_pattern("->{0,}"))

    def test_node_body_rejected(self):
        with pytest.raises(CollectError):
            validate_approach1(parse_pattern("(x){1,2}"))

    def test_union_with_edgeless_branch_rejected(self):
        with pytest.raises(CollectError):
            validate_approach1(parse_pattern("[[->] + [()]]{1,2}"))

    def test_nested_offender_found(self):
        with pytest.raises(CollectError):
            validate_approach1(parse_pattern("(a) -> [()]{1,3} (b)"))

    def test_zero_width_repetition_of_edges_ok(self):
        # pi{0,m} is fine as long as the body itself needs an edge.
        validate_approach1(parse_pattern("[-> <-]{0,5}"))

    def test_repetition_of_positive_repetition_ok(self):
        validate_approach1(parse_pattern("[->{1,2}]{0,}"))

    def test_repetition_of_star_rejected(self):
        # inner star may match edgeless -> outer repetition forbidden.
        with pytest.raises(CollectError):
            validate_approach1(parse_pattern("[->*]{1,2}"))
