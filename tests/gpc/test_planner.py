"""Unit tests for the query planner (:mod:`repro.gpc.planner`)."""

import pytest

from repro.gpc.parser import parse_pattern, parse_query
from repro.gpc.planner import (
    estimate_pattern_cardinality,
    estimate_query_cardinality,
    explain_plan,
    join_shared_variables,
    plan_shortest,
)
from repro.graph.generators import social_network, two_cliques_bridge


@pytest.fixture(scope="module")
def social():
    return social_network(num_people=12, friend_degree=2, seed=5)


@pytest.fixture(scope="module")
def social_snapshot(social):
    return social.snapshot()


class TestLeadingConstraints:
    def constraint(self, text):
        return plan_shortest(parse_pattern(text)).start

    def labels_of(self, constraint):
        assert constraint.alternatives is not None
        return {alt.labels for alt in constraint.alternatives}

    def test_labeled_node(self):
        constraint = self.constraint("(x:Person) -[:knows]-> (y)")
        assert self.labels_of(constraint) == {frozenset({"Person"})}

    def test_unlabeled_node_is_unconstrained(self):
        constraint = self.constraint("(x) -[:knows]-> (y:Person)")
        assert not constraint.constrains

    def test_bare_edge_is_unconstrained(self):
        assert not self.constraint("-[:knows]->").constrains

    def test_union_contributes_both_branches(self):
        constraint = self.constraint(
            "[(x:Person) -[:knows]-> (y) + (c:City) <-[:lives_in]- (y)]"
        )
        assert self.labels_of(constraint) == {
            frozenset({"Person"}),
            frozenset({"City"}),
        }

    def test_union_with_unconstrained_branch(self):
        constraint = self.constraint("[(x:Person) -> (y) + (x) -> (y)]")
        assert not constraint.constrains

    def test_zero_length_prefix_conjoins(self):
        # (x) always matches a single node, so the start node must also
        # satisfy the next factor's leading constraint.
        constraint = self.constraint("(x) (y:Person) -[:knows]-> (z)")
        assert self.labels_of(constraint) == {frozenset({"Person"})}

    def test_condition_adds_property_constraint(self):
        constraint = self.constraint(
            "[(x:Person) -[:knows]-> (y)] << x.age = 30 >>"
        )
        (alt,) = constraint.alternatives
        assert alt.labels == frozenset({"Person"})
        assert alt.properties == frozenset({("age", 30)})

    def test_condition_under_or_is_not_required(self):
        constraint = self.constraint(
            "[(x:Person) -[:knows]-> (y)] << x.age = 30 OR y.age = 30 >>"
        )
        (alt,) = constraint.alternatives
        assert alt.properties == frozenset()

    def test_condition_under_not_is_not_required(self):
        constraint = self.constraint(
            "[(x:Person) -[:knows]-> (y)] << NOT x.age = 30 >>"
        )
        (alt,) = constraint.alternatives
        assert alt.properties == frozenset()

    def test_property_only_constraint_without_label(self):
        constraint = self.constraint("[(x) -[:knows]-> (y)] << x.age = 30 >>")
        (alt,) = constraint.alternatives
        assert alt.labels == frozenset()
        assert alt.properties == frozenset({("age", 30)})
        assert constraint.constrains

    def test_repeat_lower_zero_is_unconstrained(self):
        assert not self.constraint("[(x:Person) -[:knows]-> (y)]{0,3}").constrains

    def test_repeat_lower_one_uses_body(self):
        constraint = self.constraint("[(x:Person) -[:knows]-> (y)]{1,3}")
        assert self.labels_of(constraint) == {frozenset({"Person"})}

    def test_repeat_strips_group_variables(self):
        constraint = self.constraint("[(x:Person) -[:knows]-> (y)]{1,3}")
        (alt,) = constraint.alternatives
        assert alt.variable is None


class TestTrailingConstraints:
    def test_trailing_label(self):
        plan = plan_shortest(parse_pattern("(x:Person) -[:lives_in]-> (c:City)"))
        (alt,) = plan.end.alternatives
        assert alt.labels == frozenset({"City"})

    def test_trailing_zero_length_suffix_conjoins(self):
        plan = plan_shortest(parse_pattern("(x:Person) -[:knows]-> (y:Person) (z)"))
        (alt,) = plan.end.alternatives
        assert alt.labels == frozenset({"Person"})


class TestCandidateNodes:
    def test_label_candidates_match_index(self, social_snapshot):
        constraint = plan_shortest(
            parse_pattern("(c:City) <-[:lives_in]- (p)")
        ).start
        candidates = constraint.candidate_nodes(social_snapshot)
        assert candidates == tuple(
            sorted(social_snapshot.nodes_with_label("City"))
        )

    def test_unconstrained_returns_none(self, social_snapshot):
        constraint = plan_shortest(parse_pattern("(x) -> (y)")).start
        assert constraint.candidate_nodes(social_snapshot) is None

    def test_property_candidates_filter(self, social_snapshot):
        pattern = parse_pattern("[(x:Person) -[:knows]-> (y)] << x.age = 30 >>")
        candidates = plan_shortest(pattern).start.candidate_nodes(
            social_snapshot
        )
        assert candidates is not None
        for node in candidates:
            assert social_snapshot.get_property(node, "age") == 30
        # ... and no qualifying node was dropped.
        expected = [
            node
            for node in social_snapshot.nodes_with_label("Person")
            if social_snapshot.get_property(node, "age") == 30
        ]
        assert sorted(candidates) == sorted(expected)

    def test_works_on_mutable_graph_too(self, social):
        constraint = plan_shortest(
            parse_pattern("(c:City) <-[:lives_in]- (p)")
        ).start
        candidates = constraint.candidate_nodes(social)
        assert candidates == tuple(sorted(social.nodes_with_label("City")))


class TestJoinVariables:
    def test_shared_singleton_variable(self):
        query = parse_query(
            "TRAIL (x:Person) -[:knows]-> (y:Person), "
            "TRAIL (y:Person) -[:lives_in]-> (c:City)"
        )
        assert join_shared_variables(query) == ("y",)

    def test_disjoint_schemas(self):
        query = parse_query("TRAIL (x) -> (y), TRAIL (a) -> (b)")
        assert join_shared_variables(query) == ()

    def test_multiple_shared_variables(self):
        query = parse_query(
            "TRAIL (x) -[e:knows]-> (y), TRAIL (x) -[e:knows]-> (y)"
        )
        assert join_shared_variables(query) == ("e", "x", "y")


class TestCardinalityEstimates:
    def test_labeled_node_uses_label_count(self, social_snapshot):
        est = estimate_pattern_cardinality(parse_pattern("(c:City)"), social_snapshot)
        assert est == social_snapshot.num_nodes_with_label("City")

    def test_unlabeled_node_uses_node_count(self, social_snapshot):
        est = estimate_pattern_cardinality(parse_pattern("(x)"), social_snapshot)
        assert est == social_snapshot.num_nodes

    def test_labeled_edge_uses_edge_count(self, social_snapshot):
        est = estimate_pattern_cardinality(
            parse_pattern("-[:lives_in]->"), social_snapshot
        )
        assert est == social_snapshot.num_directed_edges_with_label("lives_in")

    def test_union_adds(self, social_snapshot):
        single = estimate_pattern_cardinality(
            parse_pattern("-[:knows]->"), social_snapshot
        )
        double = estimate_pattern_cardinality(
            parse_pattern("[-[:knows]-> + -[:knows]->]"), social_snapshot
        )
        assert double == 2 * single

    def test_selective_side_estimated_cheaper(self, social_snapshot):
        query = parse_query(
            "TRAIL (x:Person) -[:knows]-> (y:Person), "
            "TRAIL (y:Person) -[:lives_in]-> (c:City)"
        )
        left = estimate_query_cardinality(query.left, social_snapshot)
        right = estimate_query_cardinality(query.right, social_snapshot)
        # lives_in is one edge per person; knows has friend_degree per
        # person — the estimator must order them accordingly.
        assert right < left

    def test_unbounded_repeat_saturates(self, social_snapshot):
        est = estimate_pattern_cardinality(
            parse_pattern("-[:knows]->{0,}"), social_snapshot
        )
        assert est > 0

    def test_huge_fixed_repeat_saturates_without_overflow(self):
        # factor > 1 with a very large lower bound used to raise
        # OverflowError from float pow before the cap could clamp it.
        graph = social_network(num_people=40, friend_degree=10, seed=1)
        est = estimate_pattern_cardinality(
            parse_pattern("-[:knows]->{600,600}"), graph
        )
        assert est == 1e18

    def test_tiny_factor_huge_repeat_underflows_to_floor(self, social_snapshot):
        est = estimate_pattern_cardinality(
            parse_pattern("-[:married]->{900,900}"), social_snapshot
        )
        assert est >= 1.0


class TestExplainPlan:
    def test_mentions_hash_join_and_shared_vars(self, social):
        query = parse_query(
            "TRAIL (x:Person) -[:knows]-> (y:Person), "
            "TRAIL (y:Person) -[:lives_in]-> (c:City)"
        )
        text = explain_plan(query, social)
        assert "hash join on [y]" in text
        assert "evaluate" in text and "first" in text

    def test_mentions_start_pruning(self, social):
        query = parse_query("SHORTEST (c:City) <-[:lives_in]- (p:Person)")
        text = explain_plan(query, social)
        assert "register-NFA shortest" in text
        assert ":City" in text and "starts" in text

    def test_graph_free_explain(self):
        query = parse_query("SHORTEST (c:City) <-[:lives_in]- (p:Person)")
        text = explain_plan(query)
        assert ":City" in text and "nodes)" not in text

    def test_cross_product_named(self):
        query = parse_query("TRAIL (x) -> (y), TRAIL (a) -> (b)")
        assert "cross product" in explain_plan(query)

    def test_queryplan_and_prepared_expose_explain(self, social):
        from repro.gpc.engine import QueryPlan
        from repro.service import PreparedQuery

        query = parse_query("SHORTEST (c:City) <-[:lives_in]- (p:Person)")
        via_plan = QueryPlan().explain(query, social)
        via_prepared = PreparedQuery(query).explain(social)
        assert via_plan == via_prepared
        assert "plan:" in via_plan


class TestPlanMemoisation:
    def test_shortest_plan_memoised(self):
        from repro.gpc.engine import QueryPlan

        plan = QueryPlan()
        pattern = parse_pattern("(x:L) -[:c]-> (y:L)")
        assert plan.shortest_plan(pattern) is plan.shortest_plan(pattern)

    def test_join_variables_memoised(self):
        from repro.gpc.engine import QueryPlan

        plan = QueryPlan()
        query = parse_query("TRAIL (x:L) -[:c]-> (y:L), TRAIL (y:L) -[:c]-> (z:L)")
        assert plan.join_variables(query) is plan.join_variables(query)

    def test_precompile_populates_analyses(self):
        from repro.gpc.engine import QueryPlan

        plan = QueryPlan()
        query = parse_query(
            "SHORTEST (x:L) -[:c]-> (y:L), TRAIL (y:L) -[:c]-> (z:L)"
        )
        plan.precompile(query)
        assert query in plan._join_variables
        assert query.left.pattern in plan._shortest_plans

    def test_prepared_execution_never_reinfers_schemas(self, social, monkeypatch):
        # Per-execution cardinality estimation must go through the
        # plan's join_variables memo, not re-run infer_schema.
        import repro.gpc.planner as planner_module
        from repro.service import PreparedQuery

        prepared = PreparedQuery(
            "TRAIL (x:Person) -[:knows]-> (y:Person), "
            "TRAIL (y:Person) -[:knows]-> (z:Person), "
            "TRAIL (z:Person) -[:lives_in]-> (c:City)"
        )
        calls = []
        real = planner_module.infer_schema
        monkeypatch.setattr(
            planner_module,
            "infer_schema",
            lambda expr: calls.append(expr) or real(expr),
        )
        for _ in range(3):
            prepared.execute(social)
        assert calls == []
        # explain() on a prepared plan reuses the memos too.
        prepared.explain(social)
        assert calls == []


class TestBridgeGraphSanity:
    def test_bridge_join_order(self):
        graph = two_cliques_bridge(4)
        query = parse_query(
            "TRAIL (x:L) -[:c]-> (y:L), TRAIL (a:L) -[b:bridge]-> (z:R)"
        )
        snapshot = graph.snapshot()
        left = estimate_query_cardinality(query.left, snapshot)
        right = estimate_query_cardinality(query.right, snapshot)
        assert right < left  # one bridge edge vs a whole clique
