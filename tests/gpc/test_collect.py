"""The collect operator: equation (3), Figure 3 grouping, all three
approaches, and the incremental accumulator."""

import pytest

from repro.errors import CollectError
from repro.graph.ids import DirectedEdgeId as E, NodeId as N
from repro.graph.paths import Path
from repro.gpc.assignments import Assignment
from repro.gpc.collect import (
    CollectAccumulator,
    CollectMode,
    collect,
    collect_grouping,
    collect_simple,
    empty_group_assignment,
    refactorize,
)
from repro.gpc.values import GroupValue, Nothing


def edge_path(a, e, b):
    return Path.of(N(a), E(e), N(b))


def node_path(a):
    return Path.node(N(a))


class TestRefactorize:
    def test_all_positive(self):
        assert refactorize([1, 2, 1]) == [(0, 1), (1, 2), (2, 3)]

    def test_figure3_shape(self):
        # Figure 3: p1 p2 [p3 p4 p5] p6 p7 p8 [p9 p10] with edgeless
        # factors p3..p5, p7, p9..p10 grouped.
        lengths = [1, 1, 0, 0, 0, 1, 0, 1, 0, 0]
        assert refactorize(lengths) == [
            (0, 1),
            (1, 2),
            (2, 5),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 10),
        ]

    def test_leading_and_trailing_edgeless(self):
        assert refactorize([0, 1, 0]) == [(0, 1), (1, 2), (2, 3)]

    def test_all_edgeless_single_group(self):
        assert refactorize([0, 0, 0]) == [(0, 3)]

    def test_empty(self):
        assert refactorize([]) == []


class TestCollectSimple:
    def test_equation3(self):
        factors = [
            (edge_path("a", "e1", "b"), Assignment({"x": E("e1")})),
            (edge_path("b", "e2", "c"), Assignment({"x": E("e2")})),
        ]
        mu = collect_simple(factors, ["x"])
        assert mu["x"] == GroupValue(
            (
                (edge_path("a", "e1", "b"), E("e1")),
                (edge_path("b", "e2", "c"), E("e2")),
            )
        )

    def test_multiple_variables(self):
        factors = [
            (
                edge_path("a", "e1", "b"),
                Assignment({"x": E("e1"), "y": N("a")}),
            ),
        ]
        mu = collect_simple(factors, ["x", "y"])
        assert len(mu["x"]) == 1
        assert mu["y"].values == (N("a"),)

    def test_empty_domain(self):
        factors = [(edge_path("a", "e1", "b"), Assignment({}))]
        assert collect_simple(factors, []) == Assignment({})


class TestCollectGrouping:
    def test_no_edgeless_matches_equation3(self):
        factors = [
            (edge_path("a", "e1", "b"), Assignment({"x": E("e1")})),
            (edge_path("b", "e2", "c"), Assignment({"x": E("e2")})),
        ]
        assert collect_grouping(factors, ["x"]) == collect_simple(factors, ["x"])

    def test_edgeless_run_unified(self):
        factors = [
            (node_path("a"), Assignment({"x": N("a")})),
            (node_path("a"), Assignment({"x": N("a")})),
            (edge_path("a", "e1", "b"), Assignment({"x": E("e1")})),
        ]
        mu = collect_grouping(factors, ["x"])
        assert mu is not None
        assert mu["x"].entries == (
            (node_path("a"), N("a")),
            (edge_path("a", "e1", "b"), E("e1")),
        )

    def test_unification_failure_undefined(self):
        factors = [
            (node_path("a"), Assignment({"x": N("a")})),
            (node_path("a"), Assignment({"x": Nothing})),
        ]
        assert collect_grouping(factors, ["x"]) is None

    def test_separated_edgeless_not_grouped(self):
        factors = [
            (node_path("a"), Assignment({"x": N("a")})),
            (edge_path("a", "e1", "a"), Assignment({"x": E("e1")})),
            (node_path("a"), Assignment({"x": N("a")})),
        ]
        mu = collect_grouping(factors, ["x"])
        assert mu is not None
        assert len(mu["x"]) == 3


class TestCollectModes:
    def _edgeless_factors(self):
        return [(node_path("a"), Assignment({"x": N("a")}))]

    def test_syntactic_mode_raises_on_edgeless(self):
        with pytest.raises(CollectError):
            collect(self._edgeless_factors(), ["x"], CollectMode.SYNTACTIC)

    def test_runtime_mode_undefined_on_edgeless(self):
        assert collect(self._edgeless_factors(), ["x"], CollectMode.RUNTIME) is None

    def test_grouping_mode_defined_on_edgeless(self):
        mu = collect(self._edgeless_factors(), ["x"], CollectMode.GROUPING)
        assert mu is not None

    def test_all_modes_agree_without_edgeless(self):
        factors = [
            (edge_path("a", "e1", "b"), Assignment({"x": E("e1")})),
        ]
        results = {
            mode: collect(factors, ["x"], mode)
            for mode in CollectMode
        }
        assert len(set(results.values())) == 1

    def test_empty_factors_rejected(self):
        with pytest.raises(CollectError):
            collect([], ["x"])


class TestEmptyGroupAssignment:
    def test_zero_power_binding(self):
        mu = empty_group_assignment(["x", "y"])
        assert mu["x"] == GroupValue()
        assert mu["y"] == GroupValue()

    def test_empty_domain(self):
        assert empty_group_assignment([]) == Assignment({})


class TestAccumulator:
    def test_matches_batch_grouping(self):
        factor_lists = [
            [
                (edge_path("a", "e1", "b"), Assignment({"x": E("e1")})),
                (node_path("b"), Assignment({"x": N("b")})),
                (node_path("b"), Assignment({"x": N("b")})),
                (edge_path("b", "e2", "c"), Assignment({"x": E("e2")})),
            ],
            [
                (node_path("a"), Assignment({"x": N("a")})),
                (edge_path("a", "e1", "b"), Assignment({"x": E("e1")})),
            ],
        ]
        for factors in factor_lists:
            acc = CollectAccumulator(mode=CollectMode.GROUPING)
            for path, mu in factors:
                acc = acc.extend(path, mu)
                assert acc is not None
            assert acc.finalize(["x"]) == collect_grouping(factors, ["x"])

    def test_detects_unification_failure(self):
        acc = CollectAccumulator(mode=CollectMode.GROUPING)
        acc = acc.extend(node_path("a"), Assignment({"x": N("a")}))
        assert acc is not None
        assert acc.extend(node_path("a"), Assignment({"x": Nothing})) is None

    def test_runtime_mode_drops_edgeless(self):
        acc = CollectAccumulator(mode=CollectMode.RUNTIME)
        assert acc.extend(node_path("a"), Assignment({})) is None

    def test_syntactic_mode_raises(self):
        acc = CollectAccumulator(mode=CollectMode.SYNTACTIC)
        with pytest.raises(CollectError):
            acc.extend(node_path("a"), Assignment({}))

    def test_state_hashable_for_dedup(self):
        a1 = CollectAccumulator().extend(node_path("a"), Assignment({}))
        a2 = CollectAccumulator().extend(node_path("a"), Assignment({}))
        assert a1 == a2
        assert len({a1, a2}) == 1
