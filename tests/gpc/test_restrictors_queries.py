"""Restrictors, query evaluation, joins, and Theorem 10 finiteness."""

import pytest

from repro.errors import GPCTypeError
from repro.graph.builder import GraphBuilder
from repro.graph.generators import cycle_graph
from repro.graph.ids import NodeId as N
from repro.graph.paths import Path, is_simple, is_trail
from repro.gpc.engine import evaluate
from repro.gpc.parser import parse_query


class TestTrail:
    def test_no_repeated_edges(self, cycle4):
        answers = evaluate(parse_query("TRAIL ->{1,}"), cycle4)
        assert answers
        for answer in answers:
            assert is_trail(answer.path)

    def test_trail_allows_node_revisits(self):
        # Figure-eight: two loops sharing a node; a trail can visit the
        # shared node twice.
        g = (
            GraphBuilder()
            .edge("c", "a1", "e")
            .edge("a1", "c", "e")
            .edge("c", "b1", "e")
            .edge("b1", "c", "e")
            .build()
        )
        answers = evaluate(parse_query("TRAIL (x) ->{4,4} (x)"), g)
        assert any(not is_simple(a.path) for a in answers)

    def test_edge_count_bound(self, cycle4):
        answers = evaluate(parse_query("TRAIL ->{1,}"), cycle4)
        assert max(len(a.path) for a in answers) <= cycle4.num_edges


class TestSimple:
    def test_no_repeated_nodes(self, cycle4):
        answers = evaluate(parse_query("SIMPLE ->{1,}"), cycle4)
        for answer in answers:
            assert is_simple(answer.path)

    def test_simple_strictly_fewer_than_trail_on_cycles(self, cycle4):
        trails = evaluate(parse_query("TRAIL ->{1,}"), cycle4)
        simples = evaluate(parse_query("SIMPLE ->{1,}"), cycle4)
        assert {a.path for a in simples} < {a.path for a in trails}

    def test_cycle_is_not_simple(self, cycle4):
        answers = evaluate(parse_query("SIMPLE (x) ->{1,} (x)"), cycle4)
        assert not answers


class TestShortest:
    def test_keeps_min_per_endpoint_pair(self, diamond_graph):
        answers = evaluate(parse_query("SHORTEST (:S) ->{1,} (:T)"), diamond_graph)
        # s -> t: direct edge (length 1) beats the 2-hop detours.
        s_to_t = [a for a in answers if a.path.src == N("s") and a.path.tgt == N("t")]
        assert len(s_to_t) == 1
        assert len(s_to_t[0].path) == 1

    def test_all_minimal_witnesses_kept(self, diamond_graph):
        answers = evaluate(parse_query("SHORTEST (:S) -[:e]->{1,} (:T)"), diamond_graph)
        # without the direct edge label, both 2-hop paths are minimal
        s_to_t = [a for a in answers if a.path.tgt == N("t") and a.path.src == N("s")]
        assert len(s_to_t) == 2
        assert all(len(a.path) == 2 for a in s_to_t)

    def test_shortest_with_condition_skips_shorter_nonmatching(self):
        g = (
            GraphBuilder()
            .node("s", "S", k=1)
            .node("m", "M", k=9)
            .node("t", "T", k=1)
            .edge("s", "t", "e", key="direct")
            .edge("s", "m", "e", key="h1")
            .edge("m", "t", "e", key="h2")
            .node("u", "U")
            .build()
        )
        # Require an intermediate node with k=9: the direct edge does
        # not qualify; shortest must be the 2-hop path.
        answers = evaluate(
            parse_query("SHORTEST [(x:S) -> (m) -> (y:T)] << m.k = 9 >>"), g
        )
        assert len(answers) == 1
        assert len(next(iter(answers)).path) == 2

    def test_shortest_trail_and_shortest_simple(self, cycle4):
        st = evaluate(parse_query("SHORTEST TRAIL ->{1,}"), cycle4)
        ss = evaluate(parse_query("SHORTEST SIMPLE ->{1,}"), cycle4)
        for answers in (st, ss):
            by_pair = {}
            for a in answers:
                key = (a.path.src, a.path.tgt)
                by_pair.setdefault(key, set()).add(len(a.path))
            assert all(len(lengths) == 1 for lengths in by_pair.values())

    def test_shortest_includes_edgeless_for_zero_star(self, cycle4):
        answers = evaluate(parse_query("SHORTEST ->{0,}"), cycle4)
        # (u, u) pairs are witnessed by the length-0 path.
        self_pairs = [a for a in answers if a.path.src == a.path.tgt]
        assert all(a.path.is_edgeless for a in self_pairs)
        assert len(self_pairs) == 4

    def test_theorem13_gadget_exponential_witnesses(self, gadget13):
        answers = evaluate(parse_query("p = SHORTEST () ->{3,3} ()"), gadget13)
        # per (start, end) pair there are 2^3 = 8 parallel label choices
        by_pair = {}
        for a in answers:
            by_pair.setdefault((a.path.src, a.path.tgt), []).append(a)
        assert all(len(v) == 8 for v in by_pair.values())


class TestTheorem10Finiteness:
    """Every query returns a finite answer set, even on cyclic graphs
    where the unrestricted pattern denotation is infinite."""

    @pytest.mark.parametrize(
        "query_text",
        [
            "TRAIL ->{0,}",
            "SIMPLE ->{0,}",
            "SHORTEST ->{0,}",
            "SHORTEST TRAIL ->{1,}",
            "SHORTEST SIMPLE ->{1,}",
        ],
    )
    def test_finite_on_cycles(self, query_text):
        for size in (1, 2, 5):
            graph = cycle_graph(size)
            answers = evaluate(parse_query(query_text), graph)
            assert isinstance(answers, frozenset)
            assert len(answers) < 10_000

    def test_self_loop_graph(self):
        graph = cycle_graph(1)  # a single node with a self-loop
        answers = evaluate(parse_query("TRAIL ->{1,}"), graph)
        assert len(answers) == 1  # the loop can be used once


class TestNamedQueries:
    def test_name_binds_whole_path(self, tiny_graph):
        answers = evaluate(parse_query("p = TRAIL (x) -[e]-> (y)"), tiny_graph)
        ((answer),) = answers
        assert answer["p"] == answer.path
        assert isinstance(answer["p"], Path)


class TestJoins:
    def test_join_shares_node_variable(self, diamond_graph):
        answers = evaluate(
            parse_query("TRAIL (x:S) -> (y:M), TRAIL (y:M) -> (z:T)"),
            diamond_graph,
        )
        assert len(answers) == 2
        for answer in answers:
            assert len(answer.paths) == 2
            assert answer.paths[0].tgt == answer.paths[1].src == answer["y"]

    def test_join_without_shared_variables_is_cartesian(self, tiny_graph):
        answers = evaluate(parse_query("TRAIL (x), TRAIL (y)"), tiny_graph)
        assert len(answers) == 4

    def test_conflicting_join_empty(self, diamond_graph):
        answers = evaluate(
            parse_query("TRAIL (y:S) -> (:M), TRAIL (y:T) -> ()"), diamond_graph
        )
        assert not answers

    def test_join_path_tuples_concatenate(self, tiny_graph):
        answers = evaluate(
            parse_query("TRAIL (x) -> (y), TRAIL (y) <- (x), TRAIL (x)"),
            tiny_graph,
        )
        for answer in answers:
            assert len(answer.paths) == 3


class TestIllTypedQueriesRejected:
    @pytest.mark.parametrize(
        "query_text",
        [
            "TRAIL (x) -[x]-> ()",
            "TRAIL -[e]->{1,2} -[e]->",
            "x = TRAIL (x)",
            "TRAIL [(x) -[y]->{1,} (z)] << x.a = y.a >>",
        ],
    )
    def test_rejected(self, tiny_graph, query_text):
        with pytest.raises(GPCTypeError):
            evaluate(parse_query(query_text), tiny_graph)


class TestProposition9:
    """Answers conform to the schema and their paths are graph paths."""

    @pytest.mark.parametrize(
        "query_text",
        [
            "TRAIL (x) -[e]-> (y)",
            "p = SHORTEST (x) ->{0,} (y)",
            "TRAIL [(x) ->] + [<- (y)]",
            "SIMPLE -[e]->{1,3}",
        ],
    )
    def test_conformance(self, diamond_graph, query_text):
        from repro.graph.paths import path_in_graph
        from repro.gpc.typing import infer_schema

        query = parse_query(query_text)
        schema = infer_schema(query)
        answers = evaluate(query, diamond_graph)
        assert answers
        for answer in answers:
            assert answer.assignment.conforms_to(schema)
            for path in answer.paths:
                assert path_in_graph(path, diamond_graph)
