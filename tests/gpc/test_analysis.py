"""Unit tests for the static analyzer (:mod:`repro.gpc.analysis`).

The differential/soundness half lives in
``tests/properties/test_property_analysis.py``; this file pins the
individual pieces: condition simplification rules, diagnostic codes,
the engine's short-circuit and counters, explain output, plan
memoisation, and the lint surfaces (service, cluster, CLI).
"""

from __future__ import annotations

import pytest

from repro.errors import CollectError
from repro.extensions.label_expressions import (
    LabelAnd,
    LabelAtom,
    LabelNot,
    LabelOr,
    NodeWithLabelExpr,
    label_expr_satisfiable,
)
from repro.gpc import ast
from repro.gpc import analysis as an
from repro.gpc.analysis import (
    Diagnostic,
    analyze_query,
    lint_query,
    render_diagnostics,
    simplify_condition,
)
from repro.gpc.collect import CollectMode
from repro.gpc.conditions_ast import And, Not, Or, PropertyEqualsConst
from repro.gpc.engine import EngineConfig, Evaluator, QueryPlan
from repro.gpc.parser import parse_query
from repro.graph import GraphBuilder
from repro.obs import EvalCounters, use_counters
from repro.service import GraphService


def atom(variable: str, key: str, constant: object) -> PropertyEqualsConst:
    return PropertyEqualsConst(variable, key, constant)


A = atom("x", "k", 1)
B = atom("y", "k", 2)


def small_graph():
    builder = GraphBuilder()
    builder.node("a", "P", k=1)
    builder.node("b", "Q", k=2)
    builder.edge("a", "b", "r")
    return builder.build()


class TestSimplifyCondition:
    def test_atom_is_returned_unchanged(self):
        assert simplify_condition(A) is A

    def test_unchanged_tree_is_same_object(self):
        condition = And(A, B)
        assert simplify_condition(condition) is condition

    def test_double_negation(self):
        assert simplify_condition(Not(Not(A))) is A

    def test_dedup_along_spine(self):
        assert simplify_condition(And(A, And(B, A))) == And(A, B)

    def test_complement_pair_and_is_false(self):
        assert simplify_condition(And(A, Not(A))) is False

    def test_complement_pair_or_is_true(self):
        assert simplify_condition(Or(A, Not(A))) is True

    def test_constant_conflict_is_false(self):
        assert simplify_condition(And(A, atom("x", "k", 0))) is False

    def test_constant_conflict_only_on_and_spine(self):
        condition = Or(A, atom("x", "k", 0))
        assert simplify_condition(condition) is condition

    def test_collapse_to_single_part(self):
        assert simplify_condition(And(A, A)) is A

    def test_nested_spine_surfaced_by_rewrite_is_flattened(self):
        # NOT NOT (a AND b) under an AND: the inner spine must merge.
        assert simplify_condition(And(Not(Not(And(A, B))), A)) == And(A, B)

    def test_false_absorbs_and_true_absorbs_or(self):
        assert simplify_condition(And(A, And(B, Not(B)))) is False
        assert simplify_condition(Or(A, Or(B, Not(B)))) is True

    def test_non_condition_raises(self):
        with pytest.raises(TypeError):
            simplify_condition("not a condition")


class TestDiagnosticCodes:
    def lint(self, text: str) -> set[str]:
        return {d.code for d in lint_query(text)}

    def test_parse_error_is_gpc000(self):
        (diagnostic,) = lint_query("TRAIL (x:")
        assert diagnostic.code == an.PARSE_ERROR
        assert diagnostic.severity == "error"
        assert diagnostic.span == "TRAIL (x:"

    def test_type_error_is_gpc001(self):
        # `x` is both a node and an edge variable: ill-typed.
        (diagnostic,) = lint_query("TRAIL (x) -[x:r]-> (y)")
        assert diagnostic.code == an.TYPE_ERROR
        assert diagnostic.severity == "error"

    def test_provably_empty_condition(self):
        codes = self.lint(
            "TRAIL [(x:P) -[:r]-> (y)] << x.k = 0 AND x.k = 1 >>"
        )
        assert an.PROVABLY_EMPTY in codes
        assert an.ALWAYS_FALSE_CONDITION in codes

    def test_dead_union_branch(self):
        codes = self.lint(
            "TRAIL [(x:P) << x.k = 0 AND x.k = 1 >> + (x:P)] -[:r]-> (y)"
        )
        assert an.DEAD_UNION_BRANCH in codes
        assert an.PROVABLY_EMPTY not in codes

    def test_condition_simplified_info(self):
        codes = self.lint(
            "TRAIL [(x:P) -[:r]-> (y)] << x.k = 1 AND x.k = 1 >>"
        )
        assert an.CONDITION_SIMPLIFIED in codes

    def test_tautology_dropped(self):
        codes = self.lint(
            "TRAIL [(x:P) -[:r]-> (y)] << x.k = 1 OR NOT x.k = 1 >>"
        )
        assert an.TAUTOLOGY_DROPPED in codes

    def test_unanchored_shortest_warns(self):
        codes = self.lint("SHORTEST (x) -[:r]->{1,} (y)")
        assert an.UNANCHORED_SHORTEST in codes

    def test_anchored_shortest_does_not_warn(self):
        codes = self.lint("SHORTEST (x:P) -[:r]->{1,} (y)")
        assert an.UNANCHORED_SHORTEST not in codes

    def test_unbounded_repeat(self):
        codes = self.lint("TRAIL (x:P) -[:r]->{1,} (y)")
        assert an.UNBOUNDED_REPEAT in codes

    def test_edgeless_repeat_body(self):
        codes = self.lint("TRAIL [(x)]{1,2} (y)")
        assert an.EDGELESS_REPEAT_BODY in codes

    def test_repeat_only_zero(self):
        codes = self.lint(
            "TRAIL (s) [[(x:P) -[:r]-> (y)] << x.k = 0 AND x.k = 1 >>]{0,2} (t)"
        )
        assert an.REPEAT_ONLY_ZERO in codes

    def test_atom_under_or_not_on_spine(self):
        codes = self.lint(
            "SHORTEST [(x:P) -[:r]-> (y)] << x.k = 1 OR y.k = 2 >>"
        )
        assert an.ATOM_NOT_ON_SPINE in codes

    def test_atom_variable_rebinds(self):
        # `x` binds inside an extension construct, opaque to the
        # register compiler's push environment.
        pattern = ast.Conditioned(
            NodeWithLabelExpr(LabelAtom("P"), "x"),
            PropertyEqualsConst("x", "k", 1),
        )
        query = ast.PatternQuery(ast.Restrictor.TRAIL, pattern)
        codes = {d.code for d in analyze_query(query).diagnostics}
        assert an.ATOM_VARIABLE_REBINDS in codes

    def test_clean_query_is_quiet(self):
        assert lint_query("TRAIL (x:P) -[:r]-> (y:Q)") == ()

    def test_lint_accepts_ast_queries(self):
        query = parse_query(
            "TRAIL [(x:P) -[:r]-> (y)] << x.k = 0 AND x.k = 1 >>"
        )
        codes = {d.code for d in lint_query(query)}
        assert an.PROVABLY_EMPTY in codes


class TestJoinAnalysis:
    def test_join_contradiction_is_provably_empty(self):
        left = parse_query("TRAIL [(x:P)] << x.k = 0 >>")
        right = parse_query("TRAIL [(x:P)] << x.k = 1 >>")
        verdict = analyze_query(ast.Join(left, right))
        assert verdict.provably_empty
        messages = [d.message for d in verdict.diagnostics]
        assert any("contradictory constraints" in m for m in messages)

    def test_join_without_shared_constraints_is_fine(self):
        left = parse_query("TRAIL [(x:P)] << x.k = 0 >>")
        right = parse_query("TRAIL [(y:P)] << y.k = 1 >>")
        verdict = analyze_query(ast.Join(left, right))
        assert not verdict.provably_empty

    def test_comma_join_syntax_reaches_join_analysis(self):
        verdict = analyze_query(
            parse_query(
                "TRAIL [(x:P)] << x.k = 0 >>, TRAIL [(x:P)] << x.k = 1 >>"
            )
        )
        assert verdict.provably_empty

    def test_join_evaluates_empty(self):
        query = parse_query(
            "TRAIL [(x:P)] << x.k = 0 >>, TRAIL [(x:P)] << x.k = 1 >>"
        )
        graph = small_graph()
        assert Evaluator(graph).evaluate(query) == frozenset()
        off = Evaluator(graph, EngineConfig(use_analysis=False))
        assert off.evaluate(query) == frozenset()


class TestLabelExpressionExtension:
    def unsat_node(self) -> NodeWithLabelExpr:
        return NodeWithLabelExpr(
            LabelAnd(LabelAtom("A"), LabelNot(LabelAtom("A"))), "x"
        )

    def test_label_expr_satisfiable(self):
        assert label_expr_satisfiable(LabelOr(LabelAtom("A"), LabelAtom("B")))
        assert not label_expr_satisfiable(
            LabelAnd(LabelAtom("A"), LabelNot(LabelAtom("A")))
        )

    def test_atom_cap_is_conservative(self):
        unsat = LabelAnd(LabelAtom("A"), LabelNot(LabelAtom("A")))
        assert label_expr_satisfiable(unsat, atom_cap=0)

    def test_unsat_extension_proves_query_empty(self):
        query = ast.PatternQuery(
            ast.Restrictor.TRAIL, self.unsat_node()
        )
        verdict = analyze_query(query)
        assert verdict.provably_empty
        messages = [d.message for d in verdict.diagnostics]
        assert any("extension construct is unsatisfiable" in m for m in messages)

    def test_unsat_extension_short_circuits_evaluation(self):
        query = ast.PatternQuery(
            ast.Restrictor.TRAIL, self.unsat_node()
        )
        graph = small_graph()
        counters = EvalCounters()
        with use_counters(counters):
            assert Evaluator(graph).evaluate(query) == frozenset()
        assert counters.queries_proven_empty == 1


class TestEngineIntegration:
    EMPTY = "TRAIL [(x:P) -[:r]-> (y)] << x.k = 0 AND x.k = 1 >>"
    SIMPLIFIABLE = "TRAIL [(x:P) -[:r]-> (y)] << x.k = 1 AND x.k = 1 >>"
    DEAD_BRANCH = (
        "TRAIL [(x:P) << x.k = 0 AND x.k = 1 >> + (x:P)] -[:r]-> (y)"
    )

    def test_short_circuit_counts(self):
        counters = EvalCounters()
        with use_counters(counters):
            result = Evaluator(small_graph()).evaluate(
                parse_query(self.EMPTY)
            )
        assert result == frozenset()
        assert counters.queries_proven_empty == 1

    def test_simplified_query_counts(self):
        counters = EvalCounters()
        with use_counters(counters):
            Evaluator(small_graph()).evaluate(parse_query(self.SIMPLIFIABLE))
        assert counters.conditions_simplified == 1
        assert counters.queries_proven_empty == 0

    def test_dead_branch_counts(self):
        counters = EvalCounters()
        with use_counters(counters):
            Evaluator(small_graph()).evaluate(parse_query(self.DEAD_BRANCH))
        assert counters.dead_branches_pruned == 1

    def test_analysis_off_counts_nothing(self):
        counters = EvalCounters()
        evaluator = Evaluator(small_graph(), EngineConfig(use_analysis=False))
        with use_counters(counters):
            evaluator.evaluate(parse_query(self.EMPTY))
        assert counters.queries_proven_empty == 0

    def test_proven_empty_still_validates_collect(self):
        # The pruned evaluation must not skip the SYNTACTIC collect
        # check: query validity cannot depend on the analyzer.
        query = parse_query(
            "TRAIL (s) [[(x)] << x.k = 0 AND x.k = 1 >>]{1,2} (t)"
        )
        config = EngineConfig(collect_mode=CollectMode.SYNTACTIC)
        with pytest.raises(CollectError):
            Evaluator(small_graph(), config).evaluate(query)

    def test_plan_memoises_analysis(self):
        plan = QueryPlan()
        query = parse_query(self.EMPTY)
        assert plan.analysis(query) is plan.analysis(query)

    def test_plan_reports_regardless_of_flag(self):
        plan = QueryPlan(EngineConfig(use_analysis=False))
        query = parse_query(self.EMPTY)
        assert plan.provably_empty(query)
        assert any(
            d.code == an.PROVABLY_EMPTY for d in plan.diagnostics(query)
        )

    def test_explain_mentions_short_circuit_and_diagnostics(self):
        plan = QueryPlan()
        report = plan.explain(parse_query(self.EMPTY))
        assert "provably empty" in report
        assert f"[{an.PROVABLY_EMPTY}]" in report

    def test_explain_on_clean_query_says_no_diagnostics(self):
        plan = QueryPlan()
        report = plan.explain(parse_query("TRAIL (x:P) -[:r]-> (y:Q)"))
        assert "diagnostics: none" in report


class TestRenderers:
    def test_diagnostic_render_and_dict(self):
        diagnostic = Diagnostic("GPC999", "info", "msg", "(x)")
        assert diagnostic.render() == "[GPC999] info: msg (at: (x))"
        assert diagnostic.as_dict() == {
            "code": "GPC999",
            "severity": "info",
            "message": "msg",
            "span": "(x)",
        }

    def test_render_diagnostics(self):
        assert render_diagnostics(()) == "diagnostics: none"
        rendered = render_diagnostics(
            (Diagnostic("GPC999", "info", "msg", "(x)"),)
        )
        assert rendered.startswith("diagnostics:\n  [GPC999]")


class TestServiceLint:
    def test_prepared_query_exposes_diagnostics(self):
        service = GraphService(small_graph())
        prepared = service.prepare(
            "TRAIL [(x:P) -[:r]-> (y)] << x.k = 0 AND x.k = 1 >>"
        )
        assert prepared.analysis.provably_empty
        assert any(
            d.code == an.PROVABLY_EMPTY for d in prepared.diagnostics
        )

    def test_service_lint_well_formed(self):
        service = GraphService(small_graph())
        diagnostics = service.lint(
            "TRAIL [(x:P) -[:r]-> (y)] << x.k = 0 AND x.k = 1 >>"
        )
        assert any(d.code == an.PROVABLY_EMPTY for d in diagnostics)

    def test_service_lint_is_total_on_parse_errors(self):
        service = GraphService(small_graph())
        diagnostics = service.lint("TRAIL (x:")
        assert [d.code for d in diagnostics] == [an.PARSE_ERROR]

    def test_cluster_service_lint(self):
        from repro.cluster import ClusterService

        with ClusterService(small_graph(), backend="serial") as cluster:
            diagnostics = cluster.lint(
                "TRAIL [(x:P) -[:r]-> (y)] << x.k = 0 AND x.k = 1 >>"
            )
            assert any(d.code == an.PROVABLY_EMPTY for d in diagnostics)
            assert [d.code for d in cluster.lint("TRAIL (x:")] == [
                an.PARSE_ERROR
            ]


class TestLintCli:
    def run(self, argv, capsys):
        from repro.lint import main

        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "queries.gpc"
        path.write_text(
            "# a comment\n\nTRAIL (x:P) -[:r]-> (y:Q)\n", encoding="utf-8"
        )
        code, out, _ = self.run([str(path)], capsys)
        assert code == 0
        assert out == ""

    def test_error_diagnostic_exits_one(self, tmp_path, capsys):
        path = tmp_path / "queries.gpc"
        path.write_text("TRAIL (x:\n", encoding="utf-8")
        code, out, _ = self.run([str(path)], capsys)
        assert code == 1
        assert "[GPC000]" in out
        assert f"{path}:1:" in out

    def test_strict_fails_on_warnings(self, tmp_path, capsys):
        path = tmp_path / "queries.gpc"
        path.write_text("SHORTEST (x) -[:r]->{1,} (y)\n", encoding="utf-8")
        code, _, _ = self.run([str(path)], capsys)
        assert code == 0
        code, out, _ = self.run(["--strict", str(path)], capsys)
        assert code == 1
        assert f"[{an.UNANCHORED_SHORTEST}]" in out

    def test_json_output(self, tmp_path, capsys):
        import json

        path = tmp_path / "queries.gpc"
        path.write_text("TRAIL (x:\n", encoding="utf-8")
        code, out, _ = self.run(["--format", "json", str(path)], capsys)
        assert code == 1
        payload = json.loads(out)
        assert payload[0]["line"] == 1
        assert payload[0]["diagnostics"][0]["code"] == an.PARSE_ERROR

    def test_unreadable_file_exits_two(self, tmp_path, capsys):
        code, _, err = self.run([str(tmp_path / "missing.gpc")], capsys)
        assert code == 2
        assert "cannot read" in err
