"""Composite patterns over mixed (directed + undirected) graphs.

The paper's data model allows directed and undirected edges to
coexist; these tests exercise the combinations the rest of the suite
does not: undirected edges under repetition, direction unions, shortest
over mixed connectivity, and joins mixing edge sorts.
"""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.ids import NodeId as N, UndirectedEdgeId as U
from repro.graph.paths import is_trail
from repro.gpc.engine import Evaluator, evaluate
from repro.gpc.parser import parse_pattern, parse_query


@pytest.fixture
def mixed_path_graph():
    """a -d-> b ~u~ c -d-> d : alternating directed/undirected chain."""
    return (
        GraphBuilder()
        .node("a", "A")
        .node("b")
        .node("c")
        .node("d", "D")
        .edge("a", "b", "r", key="d1")
        .undirected("b", "c", "u", key="u1")
        .edge("c", "d", "r", key="d2")
        .build()
    )


class TestUndirectedInComposites:
    def test_mixed_chain_concatenation(self, mixed_path_graph):
        matches = Evaluator(mixed_path_graph).eval_pattern(
            parse_pattern("(x:A) -> ~ -> (y:D)")
        )
        assert len(matches) == 1
        ((path, mu),) = matches
        assert path.src == N("a") and path.tgt == N("d")
        assert len(path) == 3

    def test_undirected_under_repetition(self):
        graph = (
            GraphBuilder()
            .undirected("a", "b", "u")
            .undirected("b", "c", "u")
            .build()
        )
        matches = Evaluator(graph).eval_pattern(parse_pattern("~{2,2}"))
        # walks of two undirected steps: a-b-c, c-b-a, a-b-a, b-a-b,
        # b-c-b, c-b-c.
        assert len(matches) == 6

    def test_direction_union_step(self, mixed_path_graph):
        # one step by any means, starting from b.
        matches = Evaluator(mixed_path_graph).eval_pattern(
            parse_pattern("(x) [-> + <- + ~] (y)")
        )
        from_b = {mu["y"] for _, mu in matches if mu["x"] == N("b")}
        assert from_b == {N("a"), N("c")}

    def test_any_direction_star_reaches_everything(self, mixed_path_graph):
        answers = evaluate(
            parse_query("SHORTEST (x:A) [-> + <- + ~]{0,} (y)"),
            mixed_path_graph,
        )
        assert {a["y"] for a in answers} == mixed_path_graph.nodes

    def test_shortest_across_mixed_edges(self, mixed_path_graph):
        answers = evaluate(
            parse_query("SHORTEST (x:A) [-> + ~]{1,} (y:D)"), mixed_path_graph
        )
        assert len(answers) == 1
        assert len(next(iter(answers)).path) == 3

    def test_trail_counts_undirected_edges_once(self):
        # A single undirected edge cannot be used twice in a trail.
        graph = GraphBuilder().undirected("a", "b", "u").build()
        answers = evaluate(parse_query("TRAIL ~{1,}"), graph)
        assert {len(a.path) for a in answers} == {1}

    def test_undirected_variable_binds_edge(self, mixed_path_graph):
        matches = Evaluator(mixed_path_graph).eval_pattern(
            parse_pattern("(b) ~[e:u]~ (c)")
        )
        values = {mu["e"] for _, mu in matches}
        assert values == {U("u1")}

    def test_join_across_edge_sorts(self, mixed_path_graph):
        answers = evaluate(
            parse_query("TRAIL (x:A) -> (m), TRAIL (m) ~ (n)"),
            mixed_path_graph,
        )
        assert len(answers) == 1
        answer = next(iter(answers))
        assert answer["m"] == N("b") and answer["n"] == N("c")

    def test_register_engine_handles_undirected(self):
        from repro.gpc.register_nfa import (
            compile_register_nfa,
            shortest_pair_lengths,
        )

        graph = (
            GraphBuilder()
            .undirected("a", "b", "u")
            .undirected("b", "c", "u")
            .build()
        )
        nfa = compile_register_nfa(parse_pattern("~[:u]~{1,}"))
        best = shortest_pair_lengths(graph, nfa, N("a"))
        assert best == {N("a"): 2, N("b"): 1, N("c"): 2}

    def test_undirected_self_loop_trail(self, mixed_graph):
        answers = evaluate(parse_query("TRAIL (w:M) ~ (w)"), mixed_graph)
        assert len(answers) == 1
        assert all(is_trail(a.path) for a in answers)
