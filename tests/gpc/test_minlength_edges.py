"""Edge-case tests for the syntactic length analysis
(:mod:`repro.gpc.minlength`): extension constructs, zero-width
repetitions, nested unions, unbounded uppers, and the Approach 1
validation over all of them.
"""

from __future__ import annotations

import pytest

from repro.errors import CollectError
from repro.extensions.arithmetic import ArithConditioned, Count, TermConst
from repro.extensions.label_expressions import (
    EdgeWithLabelExpr,
    LabelAtom,
    NodeWithLabelExpr,
)
from repro.extensions.mixed_restrictors import (
    RestrictedSubpattern,
    WitnessMarked,
)
from repro.gpc import ast
from repro.gpc.minlength import (
    max_path_length,
    may_match_edgeless,
    min_path_length,
    validate_approach1,
)
from repro.gpc.parser import parse_query


def pattern_of(text: str) -> ast.Pattern:
    return parse_query(text).pattern


NODE = pattern_of("TRAIL (x)")
EDGE_HOP = pattern_of("TRAIL (x) -[:r]-> (y)")


class TestCoreShapes:
    def test_zero_width_repeat(self):
        repeat = ast.Repeat(NODE, 0, 0)
        assert min_path_length(repeat) == 0
        assert max_path_length(repeat) == 0
        assert may_match_edgeless(repeat)

    def test_edgeless_body_any_bounds_has_max_zero(self):
        # inner max 0: m * 0 = 0 even with m = None (unbounded).
        repeat = ast.Repeat(NODE, 2, None)
        assert min_path_length(repeat) == 0
        assert max_path_length(repeat) == 0

    def test_unbounded_upper_is_none(self):
        assert max_path_length(pattern_of("TRAIL (x) -[:r]->{1,} (y)")) is None

    def test_bounded_repeat_multiplies(self):
        pattern = pattern_of("TRAIL (s) [(x) -[:r]-> (y) -[:s]-> (z)]{2,3} (t)")
        assert min_path_length(pattern) == 4
        assert max_path_length(pattern) == 6

    def test_nested_union_min_max(self):
        # (1 hop | (2 hops | 3 hops)): min 1, max 3.
        pattern = pattern_of(
            "TRAIL [(a) -[:r]-> (b)"
            " + [(a) -[:r]-> (b) -[:r]-> (c)"
            " + (a) -[:r]-> (b) -[:r]-> (c) -[:r]-> (d)]]"
        )
        assert min_path_length(pattern) == 1
        assert max_path_length(pattern) == 3

    def test_union_with_unbounded_branch(self):
        pattern = pattern_of("TRAIL [(x) -[:r]-> (y) + (x) -[:r]->{1,} (y)]")
        assert min_path_length(pattern) == 1
        assert max_path_length(pattern) is None

    def test_conditioned_is_neutral(self):
        pattern = pattern_of("TRAIL [(x) -[:r]-> (y)] << x.k = 1 >>")
        assert min_path_length(pattern) == 1
        assert max_path_length(pattern) == 1

    def test_non_pattern_raises(self):
        with pytest.raises(TypeError):
            min_path_length("nope")
        with pytest.raises(TypeError):
            max_path_length("nope")


class TestExtensionHooks:
    def test_node_with_label_expr_is_width_zero(self):
        node = NodeWithLabelExpr(LabelAtom("P"), "x")
        assert min_path_length(node) == 0
        assert max_path_length(node) == 0
        assert may_match_edgeless(node)

    def test_edge_with_label_expr_is_width_one(self):
        edge = EdgeWithLabelExpr(ast.Direction.FORWARD, LabelAtom("r"), "e")
        assert min_path_length(edge) == 1
        assert max_path_length(edge) == 1
        assert not may_match_edgeless(edge)

    def test_arith_conditioned_delegates_to_child(self):
        wrapped = ArithConditioned(EDGE_HOP, Count("x"), TermConst(1))
        assert min_path_length(wrapped) == 1
        assert max_path_length(wrapped) == 1

    def test_restricted_subpattern_delegates_to_child(self):
        wrapped = RestrictedSubpattern(ast.Restrictor.TRAIL, EDGE_HOP)
        assert min_path_length(wrapped) == 1
        assert max_path_length(wrapped) == 1

    def test_witness_marked_delegates_to_child(self):
        unbounded = pattern_of("TRAIL (x) -[:r]->{2,} (y)")
        wrapped = WitnessMarked(unbounded, "w")
        assert min_path_length(wrapped) == 2
        assert max_path_length(wrapped) is None

    def test_extension_inside_concat_and_repeat(self):
        node = NodeWithLabelExpr(LabelAtom("P"), "x")
        concat = ast.Concat(node, EDGE_HOP)
        assert min_path_length(concat) == 1
        # A repeat whose body is the width-0 extension stays width 0.
        assert max_path_length(ast.Repeat(node, 0, None)) == 0


class TestValidateApproach1:
    def test_edgeless_repeat_body_rejected(self):
        with pytest.raises(CollectError):
            validate_approach1(ast.Repeat(NODE, 1, 2))

    def test_extension_edgeless_body_rejected(self):
        body = NodeWithLabelExpr(LabelAtom("P"), "x")
        with pytest.raises(CollectError):
            validate_approach1(ast.Repeat(body, 0, 3))

    def test_nested_repeat_body_rejected(self):
        # The outer body has positive width, the inner body does not.
        inner = ast.Repeat(NODE, 1, 2)
        outer = ast.Repeat(ast.Concat(inner, EDGE_HOP), 1, 2)
        with pytest.raises(CollectError):
            validate_approach1(outer)

    def test_positive_width_bodies_accepted(self):
        validate_approach1(
            pattern_of("TRAIL (s) [(x) -[:r]-> (y)]{0,3} (t)")
        )
