"""Fingerprint stability: canonicalisation must be a projection.

The insights registry keys every aggregate by query fingerprint, so
the fingerprint must be *stable* — parse → ``pretty`` → parse lands on
the same fingerprint (idempotence), whitespace variants collapse, and
queries differing only in condition constants collapse. Checked over
the deterministic query families from the planner equivalence suite
and property-tested over the random expression generators.
"""

import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpc import ast
from repro.gpc.conditions_ast import PropertyEqualsConst
from repro.gpc.parser import parse_query
from repro.gpc.pretty import pretty
from repro.obs.insights import query_fingerprint

from test_planner_equivalence import (
    JOIN_QUERIES,
    MIXED_QUERIES,
    SHORTEST_QUERIES,
)

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "properties")
)
from strategies import conditions_for, restrictors, well_typed_patterns

ALL_QUERIES = JOIN_QUERIES + SHORTEST_QUERIES + MIXED_QUERIES

CONDITIONED_QUERIES = [
    "TRAIL (x:A) -[:a]-> (y) << x.k = 1 >>",
    "SHORTEST (x:A) -[:a]->{1,2} (y) << x.k = 'v' AND y.m = 2 >>",
    "TRAIL (x) -[:a]-> (y) << NOT x.k = TRUE >>",
]


@pytest.mark.parametrize("text", ALL_QUERIES + CONDITIONED_QUERIES)
class TestDeterministicFamilies:
    def test_parse_pretty_parse_round_trips(self, text):
        fingerprint, canonical = query_fingerprint(text)
        assert query_fingerprint(canonical) == (fingerprint, canonical)

    def test_whitespace_variants_collapse(self, text):
        squeezed = " ".join(text.split())
        padded = text.replace(" ", "  ")
        assert (
            query_fingerprint(text)
            == query_fingerprint(squeezed)
            == query_fingerprint(padded)
        )

    def test_ast_and_text_agree(self, text):
        assert query_fingerprint(parse_query(text)) == query_fingerprint(text)


@pytest.mark.parametrize("text", CONDITIONED_QUERIES)
def test_constant_rewrites_collapse(text):
    """Swapping every constant for another value keeps the fingerprint."""
    query = parse_query(text)
    rewritten = _replace_constants(query, 99)
    restrung = _replace_constants(query, "other")
    assert (
        query_fingerprint(query)
        == query_fingerprint(rewritten)
        == query_fingerprint(restrung)
    )


def _replace_constants(node, value):
    """Structurally rewrite every PropertyEqualsConst constant."""
    if isinstance(node, PropertyEqualsConst):
        return PropertyEqualsConst(node.variable, node.key, value)
    if isinstance(node, ast.Join):
        return ast.Join(
            _replace_constants(node.left, value),
            _replace_constants(node.right, value),
        )
    if isinstance(node, ast.PatternQuery):
        return ast.PatternQuery(
            node.restrictor, _replace_constants(node.pattern, value), node.name
        )
    if isinstance(node, ast.Conditioned):
        return ast.Conditioned(
            _replace_constants(node.pattern, value),
            _replace_constants(node.condition, value),
        )
    if isinstance(node, (ast.Union, ast.Concat)):
        return type(node)(
            _replace_constants(node.left, value),
            _replace_constants(node.right, value),
        )
    if isinstance(node, ast.Repeat):
        return ast.Repeat(
            _replace_constants(node.pattern, value), node.lower, node.upper
        )
    if hasattr(node, "left") and hasattr(node, "right"):  # And / Or
        return type(node)(
            _replace_constants(node.left, value),
            _replace_constants(node.right, value),
        )
    if hasattr(node, "inner"):  # Not
        return type(node)(_replace_constants(node.inner, value))
    return node


@st.composite
def pattern_queries(draw):
    """Random well-typed single-item queries, optionally conditioned."""
    pattern = draw(well_typed_patterns())
    restrictor = draw(restrictors())
    from repro.gpc.typing import infer_schema

    schema = infer_schema(pattern)
    singleton_vars = sorted(
        name for name, kind in schema.items() if "Maybe" not in str(kind)
    )
    if singleton_vars and draw(st.booleans()):
        condition = draw(conditions_for(singleton_vars))
        pattern = ast.Conditioned(pattern, condition)
    return ast.PatternQuery(restrictor, pattern)


@settings(max_examples=120, deadline=None)
@given(query=pattern_queries())
def test_fingerprint_idempotent_on_random_queries(query):
    """canonical(canonical(q)) == canonical(q) for arbitrary queries."""
    try:
        rendered = pretty(query)
    except TypeError:
        return  # unrenderable extension shapes fall back to repr
    fingerprint, canonical = query_fingerprint(query)
    assert query_fingerprint(canonical) == (fingerprint, canonical)
    assert query_fingerprint(rendered) == (fingerprint, canonical)


@settings(max_examples=120, deadline=None)
@given(query=pattern_queries(), replacement=st.integers(0, 1000))
def test_fingerprint_constant_invariant_on_random_queries(
    query, replacement
):
    """Random constant rewrites never move a query's fingerprint."""
    rewritten = _replace_constants(query, replacement)
    assert query_fingerprint(rewritten) == query_fingerprint(query)
