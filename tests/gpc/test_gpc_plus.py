"""GPC+ — projection rules and top-level union (Section 6)."""

import pytest

from repro.errors import GPCTypeError
from repro.graph.builder import GraphBuilder
from repro.graph.ids import NodeId as N
from repro.gpc.gpc_plus import GPCPlusQuery, Rule
from repro.gpc.parser import parse_query


@pytest.fixture
def graph():
    return (
        GraphBuilder()
        .node("a", "A")
        .node("b", "B")
        .node("c", "C")
        .edge("a", "b", "r")
        .edge("b", "c", "r")
        .build()
    )


class TestRuleValidation:
    def test_head_must_be_bound(self):
        with pytest.raises(GPCTypeError):
            Rule(("zz",), parse_query("TRAIL (x)"))

    def test_arity_must_agree(self):
        r1 = Rule(("x",), parse_query("TRAIL (x)"))
        r2 = Rule(("x", "y"), parse_query("TRAIL (x) -> (y)"))
        with pytest.raises(GPCTypeError):
            GPCPlusQuery((r1, r2))

    def test_empty_rules_rejected(self):
        with pytest.raises(GPCTypeError):
            GPCPlusQuery(())

    def test_arity_property(self):
        q = GPCPlusQuery((Rule(("x", "y"), parse_query("TRAIL (x) -> (y)")),))
        assert q.arity == 2


class TestEvaluation:
    def test_projection(self, graph):
        q = GPCPlusQuery(
            (Rule(("x", "y"), parse_query("SHORTEST (x) ->{1,} (y)")),)
        )
        result = q.evaluate(graph)
        assert (N("a"), N("c")) in result
        assert (N("a"), N("b")) in result
        assert (N("b"), N("a")) not in result

    def test_union_of_rules(self, graph):
        q = GPCPlusQuery(
            (
                Rule(("x",), parse_query("TRAIL (x:A)")),
                Rule(("x",), parse_query("TRAIL (x:C)")),
            )
        )
        assert q.evaluate(graph) == frozenset({(N("a"),), (N("c"),)})

    def test_projection_dedups(self, graph):
        # Two distinct witnessing paths project to the same tuple.
        q = GPCPlusQuery(
            (Rule(("x",), parse_query("SHORTEST (x) ->{0,} ()")),)
        )
        result = q.evaluate(graph)
        assert len(result) == 3

    def test_repeated_head_variable(self, graph):
        q = GPCPlusQuery(
            (Rule(("x", "x"), parse_query("TRAIL (x:A)")),)
        )
        assert q.evaluate(graph) == frozenset({(N("a"), N("a"))})

    def test_join_rule(self, graph):
        q = GPCPlusQuery(
            (
                Rule(
                    ("x", "z"),
                    parse_query("TRAIL (x) -[:r]-> (y), TRAIL (y) -[:r]-> (z)"),
                ),
            )
        )
        assert q.evaluate(graph) == frozenset({(N("a"), N("c"))})
