"""QueryFootprint derivation and its soundness against delta summaries.

The contract under test: ``footprint.affected_by(summary) is False``
must imply the query's answers are identical before and after the
mutations the summary fingerprints. The randomized suite checks that
implication directly against the engine.
"""

from __future__ import annotations

import random

import pytest

from repro.extensions import ArithConditioned, PropertyTerm, TermConst
from repro.gpc import ast
from repro.gpc.conditions_ast import PropertyEqualsConst
from repro.gpc.engine import Evaluator
from repro.gpc.footprint import (
    BOTTOM,
    QueryFootprint,
    pattern_footprint,
    query_footprint,
)
from repro.gpc.parser import parse_query
from repro.graph.delta import DeltaSummary, summarize_deltas
from repro.graph.property_graph import PropertyGraph


def fp(text: str) -> QueryFootprint:
    return query_footprint(parse_query(text))


class TestDerivation:
    def test_labelled_edge_query(self):
        footprint = fp("TRAIL (x:Person) -[e:knows]-> (y:Person)")
        # min length 1 => node mutations alone can never matter.
        assert footprint.node_labels == frozenset()
        assert footprint.dedge_labels == {"knows"}
        assert footprint.uedge_labels == frozenset()
        assert footprint.property_keys == frozenset()

    def test_single_node_query_reads_its_label(self):
        footprint = fp("TRAIL (x:Person)")
        assert footprint.node_labels == {"Person"}
        assert footprint.dedge_labels == frozenset()

    def test_unlabelled_patterns_read_whole_classes(self):
        footprint = fp("SIMPLE (x) ->{1,} (y)")
        assert footprint.node_labels == frozenset()  # min length 1
        assert footprint.dedge_labels is None
        footprint = fp("TRAIL (x)")
        assert footprint.node_labels is None

    def test_backward_edges_read_directed_class(self):
        footprint = fp("TRAIL (x) <-[:knows]- (y)")
        assert footprint.dedge_labels == {"knows"}
        assert footprint.uedge_labels == frozenset()

    def test_undirected_edges_read_undirected_class(self):
        footprint = fp("TRAIL (x) ~[:married]~ (y)")
        assert footprint.uedge_labels == {"married"}
        assert footprint.dedge_labels == frozenset()

    def test_conditions_contribute_property_keys(self):
        footprint = fp(
            "p = TRAIL [ (x:A) -[e:r]-> (y:B) ] << x.team = y.team >>"
        )
        assert footprint.property_keys == {"team"}
        footprint = fp("TRAIL [ (x:A) ] << x.a = 1 >>")
        assert footprint.property_keys == {"a"}

    def test_condition_keys_split_by_variable_class(self):
        footprint = fp("TRAIL [ (x:A) -[e:r]-> (y:B) ] << x.team = 1 >>")
        assert footprint.node_keys == {"team"}
        assert footprint.edge_keys == frozenset()
        footprint = fp("TRAIL [ (x:A) -[e:r]-> (y:B) ] << e.w = 1 >>")
        assert footprint.node_keys == frozenset()
        assert footprint.edge_keys == {"w"}

    def test_cross_class_comparison_splits_sides(self):
        footprint = fp(
            "p = TRAIL [ (x:A) -[e:r]-> (y:B) ] << x.cost = e.cost >>"
        )
        assert footprint.node_keys == {"cost"}
        assert footprint.edge_keys == {"cost"}

    def test_unknown_variable_keys_land_in_both_classes(self):
        # A condition over a variable the pattern never binds: no class
        # can be proven, so the key must guard both.
        condition = PropertyEqualsConst("ghost", "k", 1)
        pattern = ast.Conditioned(ast.node("x", "A"), condition)
        footprint = pattern_footprint(pattern)
        assert footprint.node_keys == {"k"}
        assert footprint.edge_keys == {"k"}

    def test_zero_repetition_reads_all_nodes(self):
        footprint = fp("SHORTEST (x:A) ->{0,3} (y:B)")
        assert footprint.node_labels is None  # {0,..} matches any node

    def test_join_merges_sides(self):
        footprint = fp("TRAIL (a:A) -[:r]-> (b), TRAIL (b) ~[:m]~ (c)")
        assert footprint.dedge_labels == {"r"}
        assert footprint.uedge_labels == {"m"}

    def test_union_merges_branches(self):
        footprint = fp("SIMPLE (x:P) + [(y:Q) -[:r]-> (z:Q)]")
        assert footprint.node_labels == {"P", "Q"}
        assert footprint.dedge_labels == {"r"}

    def test_extension_patterns_collapse_to_bottom(self):
        pattern = ArithConditioned(
            ast.forward("e", "r"),
            left=PropertyTerm("e", "w"),
            right=TermConst(1),
        )
        assert pattern_footprint(pattern).is_bottom
        query = ast.PatternQuery(ast.Restrictor.TRAIL, pattern)
        assert query_footprint(query).is_bottom

    def test_non_query_input_is_bottom(self):
        assert query_footprint(object()) is BOTTOM


class TestAffectedBy:
    summary_knows = DeltaSummary(
        dedges_changed=True, dedge_labels=frozenset({"knows"})
    )
    summary_node_p = DeltaSummary(
        nodes_changed=True, node_labels=frozenset({"P"})
    )
    summary_props = DeltaSummary(node_property_keys=frozenset({"age"}))

    def test_disjoint_labels_do_not_affect(self):
        footprint = fp("TRAIL (x) -[:likes]-> (y)")
        assert not footprint.affected_by(self.summary_knows)
        assert not footprint.affected_by(self.summary_node_p)
        assert not footprint.affected_by(self.summary_props)

    def test_intersecting_labels_affect(self):
        footprint = fp("TRAIL (x) -[:knows]-> (y)")
        assert footprint.affected_by(self.summary_knows)

    def test_unbounded_class_affected_by_any_change_in_class(self):
        footprint = fp("TRAIL (x) -> (y)")
        assert footprint.affected_by(self.summary_knows)
        unlabelled = DeltaSummary(dedges_changed=True)
        assert footprint.affected_by(unlabelled)

    def test_bottom_affected_by_everything(self):
        assert BOTTOM.affected_by(self.summary_props)
        assert BOTTOM.affected_by(self.summary_node_p)

    def test_empty_summary_affects_nothing(self):
        assert not BOTTOM.affected_by(DeltaSummary())

    def test_property_keys_matter_only_when_read(self):
        reader = fp("TRAIL [ (x:P) ] << x.age = 3 >>")
        assert reader.affected_by(self.summary_props)
        other = fp("TRAIL [ (x:P) ] << x.name = 'a' >>")
        assert not other.affected_by(self.summary_props)

    def test_property_keys_do_not_cross_element_classes(self):
        # Same key, different class: an edge-property mutation cannot
        # invalidate a query that only reads the key off nodes.
        node_reader = fp("TRAIL [ (x:P) -[e:r]-> (y) ] << x.age = 3 >>")
        edge_summary = DeltaSummary(edge_property_keys=frozenset({"age"}))
        assert not node_reader.affected_by(edge_summary)
        node_summary = DeltaSummary(node_property_keys=frozenset({"age"}))
        assert node_reader.affected_by(node_summary)

        edge_reader = fp("TRAIL [ (x:P) -[e:r]-> (y) ] << e.age = 3 >>")
        assert edge_reader.affected_by(edge_summary)
        assert not edge_reader.affected_by(node_summary)


# ---------------------------------------------------------------------------
# Randomized soundness: disjoint footprint => identical answers
# ---------------------------------------------------------------------------

SOUNDNESS_QUERIES = [
    "TRAIL (x:P) -[e:r]-> (y:P)",
    "TRAIL (x:P)",
    "TRAIL (x)",
    "SIMPLE (x) ~[:m]~ (y)",
    "SHORTEST (x:P) -[:r]->{1,3} (y)",
    "TRAIL [ (x:P) -[e:r]-> (y:P) ] << x.k = 1 >>",
    "TRAIL (a:P) -[:r]-> (b), TRAIL (b:P) -[:s]-> (c)",
    "SIMPLE (x:Q) + [(y:P) -[:r]-> (z)]",
]


def _random_mutation(rng: random.Random, graph: PropertyGraph) -> None:
    nodes = sorted(graph.nodes)
    op = rng.randrange(6)
    if op == 0:
        graph.add_node(
            f"n{graph.version}",
            labels=rng.choice([(), ("P",), ("Q",)]),
            properties=rng.choice([None, {"k": 1}]),
        )
    elif op == 1:
        graph.add_edge(
            f"e{graph.version}",
            rng.choice(nodes),
            rng.choice(nodes),
            labels=rng.choice([(), ("r",), ("s",)]),
        )
    elif op == 2:
        graph.add_undirected_edge(
            f"u{graph.version}",
            rng.choice(nodes),
            rng.choice(nodes),
            labels=rng.choice([(), ("m",)]),
        )
    elif op == 3:
        graph.set_property(
            rng.choice(nodes), rng.choice(["k", "z"]), rng.randrange(3)
        )
    elif op == 4:
        edges = sorted(graph.directed_edges)
        if edges:
            graph.remove_edge(rng.choice(edges))
    else:
        if len(nodes) > 3:
            graph.remove_node(rng.choice(nodes))


@pytest.mark.parametrize("seed", range(12))
def test_disjoint_footprint_implies_equal_answers(seed):
    """The invariant the semantic cache relies on, checked end to end:
    if the footprint does not intersect the mutation summary, the
    answer sets before and after must be frozenset-identical."""
    rng = random.Random(seed)
    graph = PropertyGraph()
    for i in range(6):
        graph.add_node(f"b{i}", labels=("P",) if i % 2 else ("Q",),
                       properties={"k": i % 2})
    nodes = sorted(graph.nodes)
    for i in range(6):
        graph.add_edge(f"be{i}", rng.choice(nodes), rng.choice(nodes),
                       labels=("r",) if i % 2 else ("s",))
    graph.add_undirected_edge("bu", nodes[0], nodes[1], labels=("m",))

    queries = [parse_query(text) for text in SOUNDNESS_QUERIES]
    footprints = [query_footprint(query) for query in queries]
    before = [Evaluator(graph).evaluate(query) for query in queries]

    for _ in range(15):
        start = graph.version
        _random_mutation(rng, graph)
        summary = summarize_deltas(graph.deltas_since(start))
        after = [Evaluator(graph).evaluate(query) for query in queries]
        for query, footprint, old, new in zip(
            queries, footprints, before, after
        ):
            if not footprint.affected_by(summary):
                assert old == new, (
                    f"footprint claimed {query} unaffected by "
                    f"{summary.describe()} but answers changed"
                )
        before = after
