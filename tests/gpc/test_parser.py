"""Concrete syntax: the lexer and recursive-descent parser."""

import pytest

from repro.errors import ParseError
from repro.gpc import ast
from repro.gpc.conditions_ast import (
    And,
    Not,
    Or,
    PropertyEqualsConst,
    PropertyEqualsProperty,
)
from repro.gpc.parser import parse_condition, parse_pattern, parse_query, tokenize


class TestNodePatterns:
    def test_anonymous(self):
        assert parse_pattern("()") == ast.node()

    def test_variable_only(self):
        assert parse_pattern("(x)") == ast.node("x")

    def test_label_only(self):
        assert parse_pattern("(:Person)") == ast.node(label="Person")

    def test_both(self):
        assert parse_pattern("(x:Person)") == ast.node("x", "Person")

    def test_whitespace_tolerated(self):
        assert parse_pattern("(  x : Person )") == ast.node("x", "Person")


class TestEdgePatterns:
    def test_bare_arrows(self):
        assert parse_pattern("->") == ast.forward()
        assert parse_pattern("<-") == ast.backward()
        assert parse_pattern("~") == ast.undirected()

    def test_bracketed_forward(self):
        assert parse_pattern("-[e:knows]->") == ast.forward("e", "knows")
        assert parse_pattern("-[e]->") == ast.forward("e")
        assert parse_pattern("-[:knows]->") == ast.forward(label="knows")
        assert parse_pattern("-[]->") == ast.forward()

    def test_bracketed_backward(self):
        assert parse_pattern("<-[e:knows]-") == ast.backward("e", "knows")

    def test_bracketed_undirected(self):
        assert parse_pattern("~[e:knows]~") == ast.undirected("e", "knows")


class TestOperators:
    def test_concatenation(self):
        assert parse_pattern("(x) -> (y)") == ast.concat(
            ast.node("x"), ast.forward(), ast.node("y")
        )

    def test_union_lowest_precedence(self):
        parsed = parse_pattern("(x) -> (y) + (z)")
        assert isinstance(parsed, ast.Union)
        assert parsed.right == ast.node("z")

    def test_union_left_associates(self):
        parsed = parse_pattern("(a) + (b) + (c)")
        assert parsed == ast.Union(
            ast.Union(ast.node("a"), ast.node("b")), ast.node("c")
        )

    def test_brackets_group(self):
        parsed = parse_pattern("[(a) + (b)] (c)")
        assert isinstance(parsed, ast.Concat)
        assert isinstance(parsed.left, ast.Union)

    def test_paper_precedence_example(self):
        # pi pi'<theta> + pi'' == [pi [pi'<theta>]] + pi''
        parsed = parse_pattern("(a) (b) << b.k = 1 >> + (c)")
        assert isinstance(parsed, ast.Union)
        concat = parsed.left
        assert isinstance(concat, ast.Concat)
        assert isinstance(concat.right, ast.Conditioned)


class TestRepetition:
    def test_star(self):
        assert parse_pattern("->*") == ast.Repeat(ast.forward(), 0, None)

    def test_range(self):
        assert parse_pattern("->{2,5}") == ast.Repeat(ast.forward(), 2, 5)

    def test_range_dotdot(self):
        assert parse_pattern("->{2..5}") == ast.Repeat(ast.forward(), 2, 5)

    def test_exact(self):
        assert parse_pattern("->{3}") == ast.Repeat(ast.forward(), 3, 3)

    def test_lower_only(self):
        assert parse_pattern("->{2,}") == ast.Repeat(ast.forward(), 2, None)

    def test_upper_only(self):
        assert parse_pattern("->{,4}") == ast.Repeat(ast.forward(), 0, 4)

    def test_nested_repetition(self):
        parsed = parse_pattern("[->{1,2}]{3,4}")
        assert parsed == ast.Repeat(ast.Repeat(ast.forward(), 1, 2), 3, 4)

    def test_postfix_chains(self):
        parsed = parse_pattern("(x)*{1,2}")
        assert parsed == ast.Repeat(ast.Repeat(ast.node("x"), 0, None), 1, 2)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(Exception):
            parse_pattern("->{5,2}")


class TestConditions:
    def test_const_comparison(self):
        parsed = parse_pattern("(x) << x.age = 42 >>")
        assert parsed == ast.Conditioned(
            ast.node("x"), PropertyEqualsConst("x", "age", 42)
        )

    def test_string_constant(self):
        parsed = parse_condition("x.name = 'Ann'")
        assert parsed == PropertyEqualsConst("x", "name", "Ann")

    def test_double_quoted_string(self):
        assert parse_condition('x.name = "Bo"') == PropertyEqualsConst(
            "x", "name", "Bo"
        )

    def test_escaped_quote(self):
        assert parse_condition(r"x.name = 'O\'Hara'") == PropertyEqualsConst(
            "x", "name", "O'Hara"
        )

    def test_float_and_negative(self):
        assert parse_condition("x.v = 1.5") == PropertyEqualsConst("x", "v", 1.5)
        assert parse_condition("x.v = -3") == PropertyEqualsConst("x", "v", -3)

    def test_booleans(self):
        assert parse_condition("x.f = TRUE") == PropertyEqualsConst("x", "f", True)
        assert parse_condition("x.f = false") == PropertyEqualsConst("x", "f", False)

    def test_property_comparison(self):
        assert parse_condition("x.a = y.b") == PropertyEqualsProperty(
            "x", "a", "y", "b"
        )

    def test_boolean_structure(self):
        parsed = parse_condition("x.a = 1 AND x.b = 2 OR NOT x.c = 3")
        # AND binds tighter than OR.
        assert isinstance(parsed, Or)
        assert isinstance(parsed.left, And)
        assert isinstance(parsed.right, Not)

    def test_parentheses(self):
        parsed = parse_condition("x.a = 1 AND (x.b = 2 OR x.c = 3)")
        assert isinstance(parsed, And)
        assert isinstance(parsed.right, Or)

    def test_keywords_case_insensitive(self):
        parsed = parse_condition("x.a = 1 and x.b = 2")
        assert isinstance(parsed, And)


class TestQueries:
    def test_restrictor_required(self):
        with pytest.raises(ParseError):
            parse_query("(x) -> (y)")

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("SIMPLE (x)", ast.Restrictor.SIMPLE),
            ("TRAIL (x)", ast.Restrictor.TRAIL),
            ("SHORTEST (x)", ast.Restrictor.SHORTEST),
            ("SHORTEST SIMPLE (x)", ast.Restrictor.SHORTEST_SIMPLE),
            ("shortest trail (x)", ast.Restrictor.SHORTEST_TRAIL),
        ],
    )
    def test_restrictors(self, text, expected):
        query = parse_query(text)
        assert isinstance(query, ast.PatternQuery)
        assert query.restrictor == expected

    def test_named_query(self):
        query = parse_query("p = TRAIL (x) -> (y)")
        assert query.name == "p"

    def test_join(self):
        query = parse_query("TRAIL (x) -> (y), SIMPLE (y) -> (z)")
        assert isinstance(query, ast.Join)
        assert isinstance(query.left, ast.PatternQuery)
        assert isinstance(query.right, ast.PatternQuery)

    def test_three_way_join_left_associates(self):
        query = parse_query("TRAIL (x), TRAIL (y), TRAIL (z)")
        assert isinstance(query, ast.Join)
        assert isinstance(query.left, ast.Join)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "(",
            "(x",
            "(x:)",
            "(:)",
            "->{",
            "->{a}",
            "(x) <<",
            "(x) << x.a >>",
            "(x) << x = 1 >>",
            "(x))",
            "[(x)",
            "(x) @ (y)",
            "-[x:]->",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(ParseError):
            parse_pattern(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as exc:
            parse_pattern("(x) @")
        assert exc.value.position is not None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("TRAIL (x) extra_tokens =")


class TestTokenizer:
    def test_edge_tokens_disambiguated(self):
        kinds = [t.kind.value for t in tokenize("-[x]-> <-[y]- ~[z]~")]
        assert "-[" in kinds and "]->" in kinds
        assert "<-[" in kinds and "]-" in kinds
        assert "~[" in kinds and "]~" in kinds

    def test_condition_brackets_vs_arrows(self):
        kinds = [t.kind.value for t in tokenize("-> << >> <-")]
        assert kinds[:4] == ["->", "<<", ">>", "<-"]

    def test_negative_number_vs_edge(self):
        tokens = tokenize("x.a = -5")
        assert tokens[-2].kind.value == "number"
        assert tokens[-2].text == "-5"
