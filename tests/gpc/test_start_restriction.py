"""The engine's ``start_restriction`` seam (scatter/gather soundness).

The contract under test, for every query ``q`` and node set ``R``::

    evaluate(q, start_restriction=R)
      == {a in evaluate(q) : a.paths[0].src in R}

and hence, for any partition ``R_1 | ... | R_k`` of the node set, the
union of the restricted answer sets is exactly the full answer set —
the property that makes :mod:`repro.cluster`'s partitioned evaluation
lossless.
"""

from __future__ import annotations

import pytest

from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.parser import parse_query
from repro.graph.builder import GraphBuilder
from repro.graph.generators import random_multigraph, social_network
from repro.service import PreparedQuery

#: Queries covering every evaluation route the restriction threads
#: through: trail/simple filters, register-NFA shortest, shortest
#: trail, the bounded shortest fallback, and both join sides.
QUERIES = [
    "TRAIL (x:Person) -[e:knows]-> (y:Person)",
    "SIMPLE (x) ->{1,2} (y)",
    "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
    "SHORTEST TRAIL (x) -> () -> (y)",
    "TRAIL (x:Person) -[:knows]-> (y:Person), TRAIL (y:Person) -[:lives_in]-> (c:City)",
    "p = TRAIL [ (x:Person) -[e:knows]->{1,2} (y:Person) ] << x.team = y.team >>",
]


@pytest.fixture(scope="module")
def graph():
    g = social_network(num_people=12, friend_degree=2, seed=7)
    # Give the join queries property fodder.
    for i, node in enumerate(sorted(g.nodes_with_label("Person"))):
        g.set_property(node, "team", "db" if i % 2 else "ml")
    return g


def _full_and_restricted(graph, text, restriction, config=None):
    query = parse_query(text)
    full = Evaluator(graph, config).evaluate(query)
    restricted = Evaluator(graph, config).evaluate(
        query, start_restriction=restriction
    )
    return full, restricted


class TestRestrictionIsAFilter:
    @pytest.mark.parametrize("text", QUERIES)
    def test_matches_post_filter(self, graph, text):
        nodes = sorted(graph.nodes)
        restriction = frozenset(nodes[: len(nodes) // 2])
        full, restricted = _full_and_restricted(graph, text, restriction)
        assert restricted == frozenset(
            a for a in full if a.paths[0].src in restriction
        )

    @pytest.mark.parametrize("text", QUERIES)
    def test_matches_post_filter_without_planner(self, graph, text):
        nodes = sorted(graph.nodes)
        restriction = frozenset(nodes[len(nodes) // 3:])
        config = EngineConfig(use_planner=False)
        full, restricted = _full_and_restricted(
            graph, text, restriction, config
        )
        assert restricted == frozenset(
            a for a in full if a.paths[0].src in restriction
        )

    def test_empty_restriction_is_empty(self, graph):
        for text in QUERIES:
            _, restricted = _full_and_restricted(graph, text, frozenset())
            assert restricted == frozenset()

    def test_full_restriction_is_identity(self, graph):
        restriction = frozenset(graph.nodes)
        for text in QUERIES:
            full, restricted = _full_and_restricted(graph, text, restriction)
            assert restricted == full


class TestPartitionUnion:
    @pytest.mark.parametrize("parts", [2, 3, 5])
    @pytest.mark.parametrize("text", QUERIES)
    def test_union_over_partition_is_lossless(self, graph, text, parts):
        nodes = sorted(graph.nodes)
        cells = [frozenset(nodes[i::parts]) for i in range(parts)]
        query = parse_query(text)
        full = Evaluator(graph).evaluate(query)
        shards = [
            Evaluator(graph).evaluate(query, start_restriction=cell)
            for cell in cells
        ]
        assert frozenset().union(*shards) == full
        # Disjoint seed cells produce disjoint answer sets.
        for i in range(parts):
            for j in range(i + 1, parts):
                assert not (shards[i] & shards[j])

    def test_random_graphs(self):
        for seed in range(3):
            graph = random_multigraph(
                num_nodes=8, num_directed=14, num_undirected=4, seed=seed
            )
            nodes = sorted(graph.nodes)
            cells = [frozenset(nodes[0::2]), frozenset(nodes[1::2])]
            for text in ["TRAIL (x) -> (y)", "SHORTEST (x) ->{1,} (y)"]:
                query = parse_query(text)
                full = Evaluator(graph).evaluate(query)
                union = frozenset().union(
                    *(
                        Evaluator(graph).evaluate(
                            query, start_restriction=cell
                        )
                        for cell in cells
                    )
                )
                assert union == full


class TestJoinRestriction:
    def test_restriction_applies_to_leftmost_side_only(self):
        graph = (
            GraphBuilder()
            .node("a", "P")
            .node("b", "P")
            .node("c", "Q")
            .edge("a", "b", "r")
            .edge("b", "c", "s")
            .build()
        )
        query = parse_query("TRAIL (x:P) -[:r]-> (y:P), TRAIL (y:P) -[:s]-> (z:Q)")
        full = Evaluator(graph).evaluate(query)
        assert len(full) == 1
        (answer,) = full
        left_src = answer.paths[0].src
        right_src = answer.paths[1].src
        assert left_src != right_src
        # Restricting to the left source keeps the answer...
        kept = Evaluator(graph).evaluate(
            query, start_restriction=frozenset([left_src])
        )
        assert kept == full
        # ...restricting to the right side's source alone drops it.
        dropped = Evaluator(graph).evaluate(
            query, start_restriction=frozenset([right_src])
        )
        assert dropped == frozenset()


class TestPreparedPassthrough:
    def test_prepared_execute_restricts(self, graph):
        prepared = PreparedQuery(QUERIES[2])
        nodes = sorted(graph.nodes)
        restriction = frozenset(nodes[::2])
        full = prepared.execute(graph)
        restricted = prepared.execute(graph, start_restriction=restriction)
        assert restricted == frozenset(
            a for a in full if a.paths[0].src in restriction
        )

    def test_restriction_accepts_any_collection(self, graph):
        prepared = PreparedQuery(QUERIES[0])
        nodes = sorted(graph.nodes)
        as_list = prepared.execute(graph, start_restriction=list(nodes))
        assert as_list == prepared.execute(graph)
