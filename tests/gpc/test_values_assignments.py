"""Values (Definition 7) and assignments (unification algebra)."""

import pytest

from repro.errors import EvaluationError
from repro.graph.ids import DirectedEdgeId as E, NodeId as N, UndirectedEdgeId as U
from repro.graph.paths import Path
from repro.gpc.assignments import EMPTY_ASSIGNMENT, Assignment, unify_all
from repro.gpc.types import (
    EDGE,
    GroupType,
    MaybeType,
    NODE,
    PATH,
)
from repro.gpc.values import GroupValue, Nothing, NothingType, conforms


class TestNothing:
    def test_singleton(self):
        assert NothingType() is Nothing

    def test_equality_and_hash(self):
        assert Nothing == NothingType()
        assert hash(Nothing) == hash(NothingType())

    def test_falsy(self):
        assert not Nothing

    def test_repr(self):
        assert repr(Nothing) == "Nothing"


class TestGroupValue:
    def test_empty(self):
        g = GroupValue()
        assert len(g) == 0
        assert list(g) == []

    def test_entries_access(self):
        p = Path.node(N("u"))
        g = GroupValue(((p, N("u")),))
        assert g[0] == (p, N("u"))
        assert g.values == (N("u"),)
        assert g.paths == (p,)

    def test_append_returns_new(self):
        g = GroupValue()
        g2 = g.append(Path.node(N("u")), N("u"))
        assert len(g) == 0
        assert len(g2) == 1

    def test_invalid_entry_rejected(self):
        with pytest.raises(TypeError):
            GroupValue(((N("u"), N("u")),))

    def test_hashable(self):
        p = Path.node(N("u"))
        assert hash(GroupValue(((p, N("u")),))) == hash(GroupValue(((p, N("u")),)))


class TestConforms:
    def test_atomic_types(self):
        assert conforms(N("u"), NODE)
        assert not conforms(E("e"), NODE)
        assert conforms(E("e"), EDGE)
        assert conforms(U("e"), EDGE)
        assert not conforms(N("u"), EDGE)
        assert conforms(Path.node(N("u")), PATH)
        assert not conforms(N("u"), PATH)

    def test_maybe(self):
        assert conforms(Nothing, MaybeType(NODE))
        assert conforms(N("u"), MaybeType(NODE))
        assert not conforms(E("e"), MaybeType(NODE))

    def test_group(self):
        p = Path.node(N("u"))
        good = GroupValue(((p, N("u")),))
        assert conforms(good, GroupType(NODE))
        assert not conforms(good, GroupType(EDGE))
        assert conforms(GroupValue(), GroupType(EDGE))

    def test_nested_group(self):
        p = Path.node(N("u"))
        nested = GroupValue(((p, GroupValue(((p, E("e")),))),))
        assert conforms(nested, GroupType(GroupType(EDGE)))


class TestAssignment:
    def test_mapping_protocol(self):
        mu = Assignment({"x": N("u")})
        assert mu["x"] == N("u")
        assert "x" in mu
        assert len(mu) == 1
        assert list(mu) == ["x"]
        assert mu.domain == frozenset({"x"})

    def test_immutability(self):
        mu = Assignment({"x": N("u")})
        with pytest.raises(AttributeError):
            mu._lookup = {}

    def test_bind_new(self):
        mu = EMPTY_ASSIGNMENT.bind("x", N("u"))
        assert mu["x"] == N("u")
        assert len(EMPTY_ASSIGNMENT) == 0

    def test_bind_same_value_noop(self):
        mu = Assignment({"x": N("u")})
        assert mu.bind("x", N("u")) is mu

    def test_bind_conflict_raises(self):
        mu = Assignment({"x": N("u")})
        with pytest.raises(EvaluationError):
            mu.bind("x", N("v"))

    def test_equality_order_independent(self):
        a = Assignment({"x": N("u"), "y": N("v")})
        b = Assignment({"y": N("v"), "x": N("u")})
        assert a == b
        assert hash(a) == hash(b)

    def test_project_and_drop(self):
        mu = Assignment({"x": N("u"), "y": N("v")})
        assert mu.project(["x"]) == Assignment({"x": N("u")})
        assert mu.drop(["x"]) == Assignment({"y": N("v")})


class TestUnification:
    def test_disjoint_domains_unify(self):
        a = Assignment({"x": N("u")})
        b = Assignment({"y": N("v")})
        assert a.unify(b) == Assignment({"x": N("u"), "y": N("v")})

    def test_agreeing_overlap_unifies(self):
        a = Assignment({"x": N("u"), "y": N("v")})
        b = Assignment({"x": N("u"), "z": N("w")})
        merged = a.unify(b)
        assert merged is not None and merged.domain == frozenset({"x", "y", "z"})

    def test_conflict_returns_none(self):
        a = Assignment({"x": N("u")})
        b = Assignment({"x": N("v")})
        assert a.unify(b) is None
        assert not a.unifies_with(b)

    def test_empty_is_unit(self):
        a = Assignment({"x": N("u")})
        assert a.unify(EMPTY_ASSIGNMENT) == a
        assert EMPTY_ASSIGNMENT.unify(a) == a

    def test_nothing_values_unify_strictly(self):
        # Default unification treats Nothing like any other value.
        a = Assignment({"x": Nothing})
        b = Assignment({"x": N("v")})
        assert a.unify(b) is None

    def test_weak_unification_allows_nothing(self):
        # Remark 8's weaker notion.
        a = Assignment({"x": Nothing, "y": N("u")})
        b = Assignment({"x": N("v"), "y": N("u")})
        assert a.weak_unifies_with(b)
        merged = a.weak_unify(b)
        assert merged == Assignment({"x": N("v"), "y": N("u")})

    def test_weak_unification_still_rejects_conflicts(self):
        a = Assignment({"x": N("u")})
        b = Assignment({"x": N("v")})
        assert a.weak_unify(b) is None

    def test_unify_all_family(self):
        family = [
            Assignment({"x": N("u")}),
            Assignment({"y": N("v")}),
            Assignment({"x": N("u"), "z": N("w")}),
        ]
        merged = unify_all(family)
        assert merged is not None and merged.domain == frozenset({"x", "y", "z"})

    def test_unify_all_conflict(self):
        family = [Assignment({"x": N("u")}), Assignment({"x": N("v")})]
        assert unify_all(family) is None

    def test_unify_all_associativity(self):
        a = Assignment({"x": N("u")})
        b = Assignment({"y": N("v")})
        c = Assignment({"x": N("u"), "y": N("v"), "z": N("w")})
        assert unify_all([a, b, c]) == unify_all([c, b, a])


class TestConformsToSchema:
    def test_domain_must_match(self):
        mu = Assignment({"x": N("u")})
        assert mu.conforms_to({"x": NODE})
        assert not mu.conforms_to({"x": NODE, "y": EDGE})
        assert not mu.conforms_to({})

    def test_types_must_match(self):
        mu = Assignment({"x": N("u")})
        assert not mu.conforms_to({"x": EDGE})
