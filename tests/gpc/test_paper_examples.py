"""The worked examples of Section 3, end to end.

Each test builds the situation the paper describes and checks the
behaviour the prose claims.
"""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.ids import DirectedEdgeId as E, NodeId as N
from repro.gpc.engine import Evaluator, evaluate
from repro.gpc.parser import parse_pattern, parse_query
from repro.gpc.values import GroupValue, Nothing


class TestTriangleImplicitJoin:
    """(x1:A) -y1-> (x2:B) <-y2- (x3:C) -y3-> (x1): a path from an
    A-node back to itself via B and C, with an implicit join on x1."""

    @pytest.fixture
    def graph(self):
        return (
            GraphBuilder()
            .node("a", "A")
            .node("b", "B")
            .node("c", "C")
            .edge("a", "b", key="y1")
            .edge("c", "b", key="y2")
            .edge("c", "a", key="y3")
            .build()
        )

    def test_matches_cycle(self, graph):
        pattern = parse_pattern(
            "(x1:A) -[y1]-> (x2:B) <-[y2]- (x3:C) -[y3]-> (x1)"
        )
        matches = Evaluator(graph).eval_pattern(pattern)
        assert len(matches) == 1
        ((path, mu),) = matches
        assert path.src == path.tgt == N("a")
        assert mu["x1"] == N("a")
        assert len(path) == 3

    def test_join_enforced(self, graph):
        # Redirect y3 to b: no match, the path cannot return to x1.
        broken = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "B")
            .node("c", "C")
            .edge("a", "b", key="y1")
            .edge("c", "b", key="y2")
            .edge("c", "b", key="y3")
            .build()
        )
        pattern = parse_pattern(
            "(x1:A) -[y1]-> (x2:B) <-[y2]- (x3:C) -[y3]-> (x1)"
        )
        assert not Evaluator(broken).eval_pattern(pattern)


class TestOptionalPattern:
    """(x:A) -> (z:B) [<- (u:C) + ()]: binds u when the B-node has an
    incoming C-edge, and Nothing otherwise."""

    def _pattern(self):
        return parse_pattern("(x:A) -> (z:B) [[<- (u:C)] + [()]]")

    def test_u_bound_when_c_edge_exists(self):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "B")
            .node("c", "C")
            .edge("a", "b")
            .edge("c", "b")
            .build()
        )
        matches = Evaluator(graph).eval_pattern(self._pattern())
        values = {mu["u"] for _, mu in matches}
        assert values == {N("c"), Nothing}

    def test_u_nothing_when_no_c_edge(self):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "B")
            .edge("a", "b")
            .build()
        )
        matches = Evaluator(graph).eval_pattern(self._pattern())
        assert len(matches) == 1
        ((_, mu),) = matches
        assert mu["u"] == Nothing
        assert mu["x"] == N("a")


class TestGroupVariableExample:
    """(x:A) -y->{1,} (z:B): y binds the list of edges on the path."""

    def test_y_binds_edge_list(self, chain5):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("m1")
            .node("b", "B")
            .edge("a", "m1", key="e1")
            .edge("m1", "b", key="e2")
            .build()
        )
        matches = Evaluator(graph).eval_pattern(
            parse_pattern("(x:A) -[y]->{1,} (z:B)")
        )
        full = [m for m in matches if len(m[0]) == 2]
        assert len(full) == 1
        (_, mu) = full[0]
        assert isinstance(mu["y"], GroupValue)
        assert mu["y"].values == (E("e1"), E("e2"))


class TestConditionedPathExample:
    """[(x:A) -y->{1,} (z:B)] << x.a = z.a >>."""

    def test_endpoint_condition(self):
        graph = (
            GraphBuilder()
            .node("a1", "A", a=1)
            .node("a2", "A", a=2)
            .node("b1", "B", a=1)
            .edge("a1", "b1")
            .edge("a2", "b1")
            .build()
        )
        matches = Evaluator(graph).eval_pattern(
            parse_pattern("[(x:A) -[y]->{1,} (z:B)] << x.a = z.a >>")
        )
        assert {mu["x"] for _, mu in matches} == {N("a1")}


class TestTrailQueryExample:
    """u = trail [(x:A) -y->{1,} (z:B)]: finitely many trails even on
    loops."""

    def test_finite_on_loop(self):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("m")
            .node("b", "B")
            .edge("a", "m")
            .edge("m", "m")  # loop that could be pumped forever
            .edge("m", "b")
            .build()
        )
        answers = evaluate(
            parse_query("u = TRAIL (x:A) -[y]->{1,} (z:B)"), graph
        )
        assert 0 < len(answers) < 10
        for answer in answers:
            assert answer["u"] == answer.path


class TestNecessityOfTypeRules:
    """Section 3's ill-typed examples are rejected."""

    def test_node_edge_variable_clash(self):
        from repro.errors import GPCTypeError
        from repro.gpc.typing import infer_schema

        with pytest.raises(GPCTypeError):
            infer_schema(parse_pattern("(x) -[x]-> ()"))

    def test_group_variable_in_condition(self):
        from repro.errors import GPCTypeError
        from repro.gpc.typing import infer_schema

        with pytest.raises(GPCTypeError):
            infer_schema(
                parse_pattern("[(x:A) -[y]->{1,} (z:B)] << x.a = y.a >>")
            )
