"""GraphDelta recording, the bounded delta log, and incremental
snapshot derivation (derived snapshot == fresh rebuild)."""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    DeltaSummary,
    GraphDelta,
    GraphSnapshot,
    PropertyGraph,
    summarize_deltas,
)
from repro.graph.builder import GraphBuilder
from repro.graph.generators import social_network


def build_mixed() -> PropertyGraph:
    return (
        GraphBuilder()
        .node("a", "P", name="Ann")
        .node("b", "P", name="Bob")
        .node("c", "Q")
        .edge("a", "b", "knows", key="e1", since=2015)
        .edge("b", "c", "likes", key="e2")
        .undirected("a", "c", "married", key="u1")
        .build()
    )


def assert_snapshots_identical(left: GraphSnapshot, right: GraphSnapshot):
    """Observable equality over the full snapshot API.

    A derived snapshot (columnar core + copy-on-write overlays) and a
    fresh rebuild organise their internals differently by design, so
    equality is asserted accessor by accessor: carriers, adjacency
    rows, endpoints, labels, properties, label indexes, counts."""
    assert left.version == right.version
    assert left.nodes == right.nodes
    assert left.directed_edges == right.directed_edges
    assert left.undirected_edges == right.undirected_edges
    assert left.num_nodes == right.num_nodes
    assert left.num_directed_edges == right.num_directed_edges
    assert left.num_undirected_edges == right.num_undirected_edges
    for node in left.nodes:
        assert left.out_edges(node) == right.out_edges(node), node
        assert left.in_edges(node) == right.in_edges(node), node
        assert left.undirected_edges_at(node) == right.undirected_edges_at(
            node
        ), node
        assert left.num_edges_at(node) == right.num_edges_at(node), node
    for edge in left.directed_edges:
        assert left.source(edge) == right.source(edge), edge
        assert left.target(edge) == right.target(edge), edge
    for edge in left.undirected_edges:
        assert left.endpoints(edge) == right.endpoints(edge), edge
    for element in (
        left.nodes + left.directed_edges + left.undirected_edges
    ):
        assert left.labels(element) == right.labels(element), element
        assert left.properties(element) == right.properties(element), element
    assert left.all_labels() == right.all_labels()
    for label in left.all_labels():
        assert left.nodes_with_label(label) == right.nodes_with_label(label)
        assert left.directed_edges_with_label(
            label
        ) == right.directed_edges_with_label(label)
        assert left.undirected_edges_with_label(
            label
        ) == right.undirected_edges_with_label(label)
    assert left.label_cardinalities() == right.label_cardinalities()


class TestDeltaRecording:
    def test_every_mutation_appends_one_delta(self):
        graph = PropertyGraph()
        a = graph.add_node("a", ["P"], {"k": 1})
        b = graph.add_node("b")
        e = graph.add_edge("e", a, b, ["r"])
        u = graph.add_undirected_edge("u", a, b, ["m"])
        graph.set_property(a, "k", 2)
        graph.remove_property(a, "k")
        graph.remove_edge(e)
        graph.remove_undirected_edge(u)
        graph.remove_node(b)
        deltas = graph.deltas_since(0)
        assert deltas is not None
        assert [d.version for d in deltas] == list(range(1, 10))
        assert all(isinstance(d, GraphDelta) for d in deltas)

    def test_delta_contents_and_summary(self):
        graph = PropertyGraph()
        a = graph.add_node("a", ["P"], {"k": 1})
        (delta,) = graph.deltas_since(0)
        (record,) = delta.nodes_added
        assert record.id == a
        assert record.labels == frozenset({"P"})
        assert record.properties == (("k", 1),)
        summary = delta.summary()
        assert summary.nodes_changed and summary.node_labels == {"P"}
        assert not summary.dedges_changed and not summary.uedges_changed
        # Properties riding on an added element are covered by the
        # element class, not the property-key set.
        assert summary.property_keys == frozenset()

    def test_property_mutations_summarise_keys(self):
        graph = build_mixed()
        start = graph.version
        node = next(graph.iter_nodes())
        graph.set_property(node, "age", 44)
        graph.remove_property(node, "age")
        summary = summarize_deltas(graph.deltas_since(start))
        assert summary.property_keys == {"age"}
        assert not summary.nodes_changed

    def test_deltas_since_bounds(self):
        graph = build_mixed()
        assert graph.deltas_since(graph.version) == ()
        assert graph.deltas_since(graph.version + 1) is None
        full = graph.deltas_since(0)
        assert full is not None and len(full) == graph.version

    def test_bounded_log_forgets_old_versions(self):
        graph = PropertyGraph(delta_log_capacity=4)
        for i in range(10):
            graph.add_node(f"n{i}")
        assert graph.deltas_since(0) is None  # dropped
        chain = graph.deltas_since(6)
        assert chain is not None and len(chain) == 4

    def test_deltas_pickle(self):
        graph = build_mixed()
        graph.remove_node(next(graph.iter_nodes()))
        chain = graph.deltas_since(0)
        assert pickle.loads(pickle.dumps(chain)) == chain


class TestRemovalCascade:
    """The satellite case: remove_node with incident directed and
    undirected edges is one version bump, one coherent delta, and the
    incrementally derived snapshot agrees with a fresh rebuild —
    including LabelCardinalities."""

    def test_cascade_is_one_delta(self):
        graph = build_mixed()
        base = graph.snapshot()
        base.label_cardinalities()  # force, so derive must patch them
        version = graph.version
        from repro.graph import NodeId

        victim = NodeId("a")  # incident: e1 (directed), u1 (undirected)
        graph.remove_node(victim)
        assert graph.version == version + 1
        (delta,) = graph.deltas_since(version)
        (node_record,) = delta.nodes_removed
        assert node_record.id == victim
        assert {r.id.key for r in delta.dedges_removed} == {"e1"}
        assert {r.id.key for r in delta.uedges_removed} == {"u1"}
        summary = delta.summary()
        assert summary.nodes_changed and summary.node_labels == {"P"}
        assert summary.dedges_changed and summary.dedge_labels == {"knows"}
        assert summary.uedges_changed and summary.uedge_labels == {"married"}

    def test_cascade_derivation_matches_rebuild(self):
        graph = build_mixed()
        base = graph.snapshot()
        base.label_cardinalities()
        from repro.graph import NodeId

        victim = NodeId("a")
        graph.remove_node(victim)
        derived = graph.snapshot()
        assert graph.snapshot_derivations == 1
        assert derived is not base
        rebuilt = GraphSnapshot(graph)
        assert_snapshots_identical(derived, rebuilt)
        cards = derived.label_cardinalities()
        assert cards.nodes_with_label("P") == 1
        assert cards.directed_edges_with_label("knows") == 0
        assert cards.undirected_edges_with_label("married") == 0
        assert not derived.has_node(victim)
        assert base.has_node(victim)  # the base snapshot is untouched


class TestDerivation:
    def test_empty_chain_is_identity(self):
        graph = build_mixed()
        snap = graph.snapshot()
        assert GraphSnapshot.derive(snap, ()) is snap

    def test_non_contiguous_chain_raises(self):
        graph = build_mixed()
        snap = graph.snapshot()
        graph.add_node("x")
        graph.add_node("y")
        chain = graph.deltas_since(snap.version)
        with pytest.raises(GraphError):
            GraphSnapshot.derive(snap, chain[1:])  # gap

    def test_untouched_structures_are_shared_with_base(self):
        graph = build_mixed()
        base = graph.snapshot()
        nodes = sorted(graph.nodes)
        graph.add_edge("enew", nodes[0], nodes[1], ["knows"])
        derived = graph.snapshot()
        # The columnar core is shared wholesale — derive never copies
        # the interned columns, it overlays them copy-on-write.
        assert derived._core is base._core
        # One added edge patches exactly two CSR adjacency rows: the
        # source's out-row and the target's in-row.
        assert derived.csr_rows_patched == 2
        # The base snapshot's own overlays stay empty (derive copies
        # them into the child instead of mutating in place).
        assert not base._row_out and not base._row_in
        # Structures untouched by an edge-only delta grow no overlays.
        assert not derived._ovl_node_labels
        assert not derived._row_und
        assert len(base.directed_edges) + 1 == len(derived.directed_edges)

    def test_large_chain_falls_back_to_rebuild(self):
        graph = PropertyGraph(snapshot_delta_threshold=0.25)
        for i in range(8):
            graph.add_node(f"n{i}")
        graph.snapshot()
        rebuilds = graph.snapshot_rebuilds
        for i in range(8, 38):  # 30 ops > max(16, 0.25 * 38)
            graph.add_node(f"n{i}")
        graph.snapshot()
        assert graph.snapshot_rebuilds == rebuilds + 1
        assert graph.snapshot_derivations == 0

    def test_derived_snapshots_pickle(self):
        graph = build_mixed()
        graph.snapshot()
        graph.add_node("zz", ["P"])
        derived = graph.snapshot()
        assert graph.snapshot_derivations == 1
        clone = pickle.loads(pickle.dumps(derived))
        assert_snapshots_identical(clone, GraphSnapshot(graph))

    def test_deltas_since_safe_against_concurrent_mutators(self):
        """Regression: reading the bounded delta log while another
        thread bumps the version must never raise (deque mutated
        during iteration) — semantic cache lookups read it from
        serving threads."""
        import threading

        graph = PropertyGraph(delta_log_capacity=64)
        for i in range(30):
            graph.add_node(f"n{i}")
        errors: list = []
        stop = threading.Event()

        def writer():
            i = 30
            while not stop.is_set():
                graph.add_node(f"w{i}")
                i += 1

        def reader():
            try:
                while not stop.is_set():
                    graph.deltas_since(max(0, graph.version - 8))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []

    def test_snapshot_lock_single_build_under_races(self):
        import threading

        graph = social_network(num_people=20, friend_degree=2, seed=4)
        results: list = []

        def worker():
            results.append(graph.snapshot())

        for round_ in range(5):
            graph.add_node(f"r{round_}")
            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # All racers share the one snapshot built for this version.
            assert len({id(s) for s in results}) == 1
            results.clear()


class TestGhostLabels:
    """Removing a label's last member via derive must erase the label
    from ``all_labels()`` entirely — no empty-tuple ghost entries that a
    fresh rebuild would not have."""

    def test_node_label_vanishes_with_last_member(self):
        graph = build_mixed()
        graph.snapshot()
        from repro.graph import NodeId

        graph.remove_node(NodeId("c"))  # only "Q"-labelled node
        derived = graph.snapshot()
        assert graph.snapshot_derivations == 1
        assert "Q" not in derived.all_labels()
        assert derived.nodes_with_label("Q") == ()
        assert derived.all_labels() == GraphSnapshot(graph).all_labels()

    def test_edge_labels_vanish_with_last_member(self):
        graph = build_mixed()
        graph.snapshot()
        from repro.graph import DirectedEdgeId, UndirectedEdgeId

        graph.remove_edge(DirectedEdgeId("e2"))  # only "likes" edge
        graph.remove_undirected_edge(
            UndirectedEdgeId("u1")
        )  # only "married" edge
        derived = graph.snapshot()
        assert graph.snapshot_derivations == 1
        assert "likes" not in derived.all_labels()
        assert "married" not in derived.all_labels()
        assert derived.directed_edges_with_label("likes") == ()
        assert derived.undirected_edges_with_label("married") == ()
        assert derived.all_labels() == GraphSnapshot(graph).all_labels()

    def test_label_revival_after_ghosting(self):
        graph = build_mixed()
        graph.snapshot()
        from repro.graph import NodeId

        graph.remove_node(NodeId("c"))
        graph.snapshot()
        d = graph.add_node("d", ["Q"])  # revive the label in a new chain
        derived = graph.snapshot()
        assert "Q" in derived.all_labels()
        assert derived.nodes_with_label("Q") == (d,)
        assert_snapshots_identical(derived, GraphSnapshot(graph))


# ---------------------------------------------------------------------------
# Property-based: derived == rebuilt over random mutation sequences
# ---------------------------------------------------------------------------

_OPS = (
    "add_node",
    "add_edge",
    "add_uedge",
    "set_property",
    "remove_property",
    "remove_edge",
    "remove_uedge",
    "remove_node",
)


def _apply_random_mutation(rng: random.Random, graph: PropertyGraph) -> None:
    op = rng.choice(_OPS)
    nodes = sorted(graph.nodes)
    dedges = sorted(graph.directed_edges)
    uedges = sorted(graph.undirected_edges)
    if op == "add_node" or len(nodes) < 2:
        graph.add_node(
            f"n{graph.version}",
            labels=rng.choice([(), ("P",), ("Q",), ("P", "Q")]),
            properties=rng.choice([None, {"k": rng.randrange(4)}]),
        )
    elif op == "add_edge":
        graph.add_edge(
            f"e{graph.version}",
            rng.choice(nodes),
            rng.choice(nodes),
            labels=rng.choice([(), ("r",), ("s",)]),
            properties=rng.choice([None, {"w": rng.randrange(4)}]),
        )
    elif op == "add_uedge":
        graph.add_undirected_edge(
            f"u{graph.version}",
            rng.choice(nodes),
            rng.choice(nodes),
            labels=rng.choice([(), ("m",)]),
        )
    elif op == "set_property":
        element = rng.choice(nodes + dedges + uedges)
        graph.set_property(element, rng.choice(["k", "w", "z"]), rng.randrange(4))
    elif op == "remove_property":
        candidates = [
            element
            for element in nodes + dedges + uedges
            if graph.properties(element)
        ]
        if candidates:
            element = rng.choice(candidates)
            graph.remove_property(
                element, rng.choice(sorted(graph.properties(element)))
            )
    elif op == "remove_edge" and dedges:
        graph.remove_edge(rng.choice(dedges))
    elif op == "remove_uedge" and uedges:
        graph.remove_undirected_edge(rng.choice(uedges))
    elif op == "remove_node" and len(nodes) > 2:
        graph.remove_node(rng.choice(nodes))


def _derive_in_budget(graph: PropertyGraph, cached) -> bool:
    """Whether a snapshot call now would derive from ``cached``.

    Mirrors the decision in :meth:`PropertyGraph.snapshot` from public
    inputs only: a recorded delta chain whose accumulated size (plus
    the cached snapshot's copy-on-write overlay) fits the derive
    budget.
    """
    if cached.version == graph.version:
        return False
    deltas = graph.deltas_since(cached.version)
    if deltas is None:
        return False
    budget = max(
        16.0,
        graph.snapshot_delta_threshold * (graph.num_nodes + graph.num_edges),
    )
    overlay = getattr(cached, "overlay_ops", 0)
    return overlay + sum(delta.size for delta in deltas) <= budget


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_derived_equals_rebuild_on_random_mutation_sequences(seed):
    rng = random.Random(seed)
    graph = PropertyGraph()
    for i in range(rng.randrange(2, 6)):
        graph.add_node(f"seed{i}", labels=("P",) if i % 2 else ())
    previous = graph.snapshot()
    previous.label_cardinalities()
    derivable = False
    for _ in range(rng.randrange(5, 25)):
        _apply_random_mutation(rng, graph)
        # Sometimes skip the snapshot so chains of length > 1 derive.
        if rng.random() < 0.5:
            continue
        derivable = derivable or _derive_in_budget(graph, previous)
        previous = graph.snapshot()
        assert_snapshots_identical(previous, GraphSnapshot(graph))
    derivable = derivable or _derive_in_budget(graph, previous)
    assert_snapshots_identical(graph.snapshot(), GraphSnapshot(graph))
    # Vacuity guard: whenever the sequence offered an in-budget delta
    # chain, at least one snapshot must have taken the derive path.
    # (Rare sequences — e.g. every chain blown past the budget by
    # remove_node cascades — legitimately never derive.)
    if derivable:
        assert graph.snapshot_derivations > 0


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_summary_is_sound_for_label_observers(seed):
    """Whenever a label's member set changes between two versions, the
    chain summary must flag that label (the guarantee the footprint
    cache builds on)."""
    rng = random.Random(seed)
    graph = PropertyGraph()
    for i in range(4):
        graph.add_node(f"seed{i}", labels=("P",) if i % 2 else ())
    start = graph.version
    before = {
        "P": graph.nodes_with_label("P"),
        "r": graph.directed_edges_with_label("r"),
        "m": graph.undirected_edges_with_label("m"),
    }
    for _ in range(rng.randrange(1, 12)):
        _apply_random_mutation(rng, graph)
    summary = summarize_deltas(graph.deltas_since(start))
    assert isinstance(summary, DeltaSummary)
    if graph.nodes_with_label("P") != before["P"]:
        assert summary.nodes_changed and "P" in summary.node_labels
    if graph.directed_edges_with_label("r") != before["r"]:
        assert summary.dedges_changed and "r" in summary.dedge_labels
    if graph.undirected_edges_with_label("m") != before["m"]:
        assert summary.uedges_changed and "m" in summary.uedge_labels
