"""Differential equivalence: columnar CSR snapshot vs seed layout.

The columnar :class:`GraphSnapshot` (interned ids + CSR adjacency)
must answer every query byte-identically to the seed tuple-dict
implementation preserved as :class:`LegacyGraphSnapshot`. Random
graphs and mutation chains are generated from a hypothesis-drawn
seed; each query runs through both views and the answer frozensets
are compared for exact equality — same paths, same assignments, same
real ids.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpc.engine import Evaluator
from repro.gpc.parser import parse_query
from repro.graph import GraphSnapshot, PropertyGraph
from repro.graph.snapshot_legacy import LegacyGraphSnapshot

#: Covers the engine paths the columnar core accelerates: the dense
#: register-NFA shortest search (labelled, bounded/deepening, union,
#: undirected, condition-checked) and the dense-keyed hash join.
QUERY_TEXTS = (
    "SHORTEST (x:P) -[:r]->{1,} (y:Q)",
    "SHORTEST (x) ->{1,3} (y:P)",
    "TRAIL (x:P) -[:r]-> (y), TRAIL (y) -[:s]-> (z)",
    "SHORTEST (x) ~[:m]~ (y)",
    "SHORTEST [(x:P) -> (m) ->{1,} (y)] << m.k = 1 >>",
    "SHORTEST [(x:P) -[:r]-> (y) + (x) -[:s]-> (y)]",
)
QUERIES = tuple(parse_query(text) for text in QUERY_TEXTS)


def random_graph(rng: random.Random) -> PropertyGraph:
    graph = PropertyGraph()
    handles = [
        graph.add_node(
            f"n{i}",
            labels=rng.choice([(), ("P",), ("Q",), ("P", "Q")]),
            properties=rng.choice([None, {"k": rng.randrange(3)}]),
        )
        for i in range(rng.randrange(3, 10))
    ]
    for i in range(rng.randrange(2, 18)):
        graph.add_edge(
            f"e{i}",
            rng.choice(handles),
            rng.choice(handles),
            labels=rng.choice([("r",), ("s",), ("r", "s"), ()]),
            properties=rng.choice([None, {"w": rng.randrange(3)}]),
        )
    for i in range(rng.randrange(0, 4)):
        graph.add_undirected_edge(
            f"u{i}", rng.choice(handles), rng.choice(handles), labels=("m",)
        )
    return graph


def mutate(rng: random.Random, graph: PropertyGraph) -> None:
    nodes = sorted(graph.nodes)
    dedges = sorted(graph.directed_edges)
    op = rng.randrange(6)
    if op == 0:
        graph.add_node(
            f"m{graph.version}", labels=rng.choice([("P",), ("Q",)])
        )
    elif op == 1 and len(nodes) >= 2:
        graph.add_edge(
            f"me{graph.version}",
            rng.choice(nodes),
            rng.choice(nodes),
            labels=rng.choice([("r",), ("s",)]),
        )
    elif op == 2 and dedges:
        graph.remove_edge(rng.choice(dedges))
    elif op == 3 and len(nodes) > 3:
        graph.remove_node(rng.choice(nodes))
    elif op == 4 and nodes:
        graph.set_property(rng.choice(nodes), "k", rng.randrange(3))
    else:
        # Remove-then-re-add exercises the shadow/dirty overlay paths.
        victim = rng.choice(nodes)
        graph.remove_node(victim)
        graph.add_node(victim.key, labels=rng.choice([(), ("P",)]))


def assert_same_answers(graph: PropertyGraph, csr_view=None) -> None:
    csr = csr_view if csr_view is not None else GraphSnapshot(graph)
    legacy = LegacyGraphSnapshot(graph)
    for text, query in zip(QUERY_TEXTS, QUERIES):
        dense = Evaluator(csr).evaluate(query)
        seed = Evaluator(legacy).evaluate(query)
        assert dense == seed, text


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_static_snapshot_matches_seed_layout(seed):
    rng = random.Random(seed)
    assert_same_answers(random_graph(rng))


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_derived_snapshot_matches_seed_layout(seed):
    """The copy-on-write overlay path (derived snapshots, including
    shadowed re-adds and dirty adjacency rows) answers identically."""
    rng = random.Random(seed)
    graph = random_graph(rng)
    graph.snapshot()
    for _ in range(rng.randrange(1, 6)):
        mutate(rng, graph)
    derived = graph.snapshot()
    assert_same_answers(graph, derived)
