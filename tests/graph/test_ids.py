"""Identifier sorts: disjointness, immutability, ordering."""

import pytest

from repro.graph.ids import DirectedEdgeId, NodeId, UndirectedEdgeId


class TestDisjointness:
    def test_same_key_different_sorts_not_equal(self):
        assert NodeId("x") != DirectedEdgeId("x")
        assert NodeId("x") != UndirectedEdgeId("x")
        assert DirectedEdgeId("x") != UndirectedEdgeId("x")

    def test_same_key_different_sorts_hash_differently(self):
        ids = {NodeId("x"), DirectedEdgeId("x"), UndirectedEdgeId("x")}
        assert len(ids) == 3

    def test_same_sort_same_key_equal(self):
        assert NodeId("x") == NodeId("x")
        assert hash(NodeId(7)) == hash(NodeId(7))

    def test_not_equal_to_bare_key(self):
        assert NodeId("x") != "x"


class TestImmutability:
    def test_cannot_set_attribute(self):
        node = NodeId("x")
        with pytest.raises(AttributeError):
            node.key = "y"

    def test_cannot_wrap_an_id(self):
        with pytest.raises(TypeError):
            NodeId(NodeId("x"))


class TestOrdering:
    def test_within_sort_by_key(self):
        assert NodeId("a") < NodeId("b")
        assert not NodeId("b") < NodeId("a")

    def test_le_is_reflexive(self):
        assert NodeId("a") <= NodeId("a")

    def test_cross_sort_order_is_deterministic(self):
        ids = [UndirectedEdgeId("x"), NodeId("x"), DirectedEdgeId("x")]
        assert sorted(ids) == sorted(ids[::-1])

    def test_mixed_key_types_do_not_crash(self):
        assert sorted([NodeId(2), NodeId("a")]) in (
            [NodeId(2), NodeId("a")],
            [NodeId("a"), NodeId(2)],
        )


class TestRepr:
    def test_repr_shows_sort(self):
        assert repr(NodeId("u")) == "node('u')"
        assert repr(DirectedEdgeId("e")) == "dedge('e')"
        assert repr(UndirectedEdgeId("e")) == "uedge('e')"

    def test_str_is_bare_key(self):
        assert str(NodeId("u")) == "u"
