"""The property-graph data model (Section 2)."""

import pytest

from repro.errors import DuplicateIdError, GraphError, UnknownIdError
from repro.graph.ids import DirectedEdgeId, NodeId, UndirectedEdgeId
from repro.graph.property_graph import PropertyGraph


@pytest.fixture
def graph() -> PropertyGraph:
    g = PropertyGraph()
    g.add_node("u", labels={"A", "B"}, properties={"k": 1})
    g.add_node("v", labels={"A"})
    g.add_node("w")
    g.add_edge("d1", NodeId("u"), NodeId("v"), labels={"a"}, properties={"w": 2})
    g.add_undirected_edge("u1", NodeId("v"), NodeId("w"), labels={"b"})
    return g


class TestConstruction:
    def test_counts(self, graph):
        assert graph.num_nodes == 3
        assert graph.num_directed_edges == 1
        assert graph.num_undirected_edges == 1
        assert graph.num_edges == 2
        assert len(graph) == 3

    def test_duplicate_node_rejected(self, graph):
        with pytest.raises(DuplicateIdError):
            graph.add_node("u")

    def test_duplicate_directed_edge_rejected(self, graph):
        with pytest.raises(DuplicateIdError):
            graph.add_edge("d1", NodeId("u"), NodeId("v"))

    def test_duplicate_undirected_edge_rejected(self, graph):
        with pytest.raises(DuplicateIdError):
            graph.add_undirected_edge("u1", NodeId("u"), NodeId("v"))

    def test_edge_to_unknown_node_rejected(self, graph):
        with pytest.raises(UnknownIdError):
            graph.add_edge("d2", NodeId("u"), NodeId("zz"))

    def test_parallel_edges_allowed(self, graph):
        graph.add_edge("d2", NodeId("u"), NodeId("v"), labels={"a"})
        assert graph.num_directed_edges == 2

    def test_directed_self_loop_allowed(self, graph):
        edge = graph.add_edge("loop", NodeId("u"), NodeId("u"))
        assert graph.source(edge) == graph.target(edge) == NodeId("u")

    def test_undirected_self_loop_has_singleton_endpoints(self, graph):
        edge = graph.add_undirected_edge("uloop", NodeId("w"), NodeId("w"))
        assert graph.endpoints(edge) == frozenset({NodeId("w")})

    def test_mutable_property_value_rejected(self, graph):
        with pytest.raises(GraphError):
            graph.set_property(NodeId("u"), "bad", [1, 2])

    def test_non_string_property_key_rejected(self):
        g = PropertyGraph()
        with pytest.raises(GraphError):
            g.add_node("n", properties={1: "x"})


class TestAccessors:
    def test_labels(self, graph):
        assert graph.labels(NodeId("u")) == frozenset({"A", "B"})
        assert graph.labels(NodeId("w")) == frozenset()
        assert graph.labels(DirectedEdgeId("d1")) == frozenset({"a"})

    def test_labels_unknown_element(self, graph):
        with pytest.raises(UnknownIdError):
            graph.labels(NodeId("zz"))

    def test_source_target(self, graph):
        assert graph.source(DirectedEdgeId("d1")) == NodeId("u")
        assert graph.target(DirectedEdgeId("d1")) == NodeId("v")

    def test_endpoints(self, graph):
        assert graph.endpoints(UndirectedEdgeId("u1")) == frozenset(
            {NodeId("v"), NodeId("w")}
        )

    def test_property_partiality(self, graph):
        assert graph.get_property(NodeId("u"), "k") == 1
        assert graph.get_property(NodeId("u"), "missing") is None
        assert graph.get_property(NodeId("v"), "k") is None
        assert graph.has_property(NodeId("u"), "k")
        assert not graph.has_property(NodeId("v"), "k")

    def test_remove_property(self, graph):
        graph.remove_property(NodeId("u"), "k")
        assert graph.get_property(NodeId("u"), "k") is None
        with pytest.raises(UnknownIdError):
            graph.remove_property(NodeId("u"), "k")

    def test_properties_snapshot_is_read_only_copy(self, graph):
        snapshot = dict(graph.properties(NodeId("u")))
        snapshot["k"] = 999
        assert graph.get_property(NodeId("u"), "k") == 1


class TestLabelIndexes:
    def test_nodes_with_label(self, graph):
        assert graph.nodes_with_label("A") == frozenset({NodeId("u"), NodeId("v")})
        assert graph.nodes_with_label("Z") == frozenset()

    def test_edges_with_label(self, graph):
        assert graph.directed_edges_with_label("a") == frozenset(
            {DirectedEdgeId("d1")}
        )
        assert graph.undirected_edges_with_label("b") == frozenset(
            {UndirectedEdgeId("u1")}
        )

    def test_all_labels(self, graph):
        assert graph.all_labels() == frozenset({"A", "B", "a", "b"})

    def test_all_property_keys(self, graph):
        assert graph.all_property_keys() == frozenset({"k", "w"})


class TestAdjacency:
    def test_out_in_edges(self, graph):
        assert graph.out_edges(NodeId("u")) == frozenset({DirectedEdgeId("d1")})
        assert graph.in_edges(NodeId("v")) == frozenset({DirectedEdgeId("d1")})
        assert graph.out_edges(NodeId("v")) == frozenset()

    def test_undirected_at(self, graph):
        assert graph.undirected_edges_at(NodeId("v")) == frozenset(
            {UndirectedEdgeId("u1")}
        )

    def test_degree(self, graph):
        assert graph.degree(NodeId("u")) == 1
        assert graph.degree(NodeId("v")) == 2  # in-edge + undirected

    def test_neighbours(self, graph):
        assert graph.neighbours(NodeId("v")) == frozenset(
            {NodeId("u"), NodeId("w")}
        )

    def test_other_endpoint(self, graph):
        assert graph.other_endpoint(UndirectedEdgeId("u1"), NodeId("v")) == NodeId("w")
        with pytest.raises(GraphError):
            graph.other_endpoint(UndirectedEdgeId("u1"), NodeId("u"))

    def test_other_endpoint_self_loop(self, graph):
        edge = graph.add_undirected_edge("uloop", NodeId("w"), NodeId("w"))
        assert graph.other_endpoint(edge, NodeId("w")) == NodeId("w")


class TestEqualityAndCopy:
    def test_copy_is_equal_but_independent(self, graph):
        clone = graph.copy()
        assert clone == graph
        clone.add_node("extra")
        assert clone != graph
        assert not graph.has_node(NodeId("extra"))

    def test_contains(self, graph):
        assert NodeId("u") in graph
        assert DirectedEdgeId("d1") in graph
        assert NodeId("zz") not in graph
        assert "not-an-id" not in graph


class TestRemoval:
    def test_remove_edge(self, graph):
        graph.remove_edge(DirectedEdgeId("d1"))
        assert not graph.has_edge(DirectedEdgeId("d1"))
        assert graph.out_edges(NodeId("u")) == frozenset()
        assert graph.in_edges(NodeId("v")) == frozenset()
        with pytest.raises(UnknownIdError):
            graph.source(DirectedEdgeId("d1"))
        with pytest.raises(UnknownIdError):
            graph.get_property(DirectedEdgeId("d1"), "w")

    def test_remove_undirected_edge(self, graph):
        graph.remove_undirected_edge(UndirectedEdgeId("u1"))
        assert not graph.has_edge(UndirectedEdgeId("u1"))
        assert graph.undirected_edges_at(NodeId("v")) == frozenset()
        assert graph.undirected_edges_at(NodeId("w")) == frozenset()
        with pytest.raises(UnknownIdError):
            graph.endpoints(UndirectedEdgeId("u1"))

    def test_remove_node_cascades(self, graph):
        graph.remove_node(NodeId("v"))
        assert not graph.has_node(NodeId("v"))
        # Incident directed and undirected edges went with it.
        assert not graph.has_edge(DirectedEdgeId("d1"))
        assert not graph.has_edge(UndirectedEdgeId("u1"))
        assert graph.out_edges(NodeId("u")) == frozenset()
        assert graph.undirected_edges_at(NodeId("w")) == frozenset()
        assert graph.num_nodes == 2 and graph.num_edges == 0

    def test_remove_node_with_self_loops(self):
        g = PropertyGraph()
        n = g.add_node("n")
        g.add_edge("loop", n, n)
        g.add_undirected_edge("uloop", n, n)
        g.remove_node(n)
        assert g.num_nodes == 0 and g.num_edges == 0
        assert g == PropertyGraph()

    def test_remove_unknown_raises(self, graph):
        with pytest.raises(UnknownIdError):
            graph.remove_node(NodeId("zz"))
        with pytest.raises(UnknownIdError):
            graph.remove_edge(DirectedEdgeId("zz"))
        with pytest.raises(UnknownIdError):
            graph.remove_undirected_edge(UndirectedEdgeId("zz"))

    def test_removed_key_is_reusable(self, graph):
        graph.remove_edge(DirectedEdgeId("d1"))
        graph.add_edge("d1", NodeId("v"), NodeId("u"), labels={"c"})
        assert graph.source(DirectedEdgeId("d1")) == NodeId("v")

    def test_add_remove_roundtrip_restores_equality(self, graph):
        reference = graph.copy()
        node = graph.add_node("tmp", labels={"T"}, properties={"x": 1})
        graph.add_edge("tmp-e", node, NodeId("u"))
        graph.remove_node(node)
        assert graph == reference


class TestVersionCounter:
    def test_every_mutation_bumps(self):
        g = PropertyGraph()
        versions = [g.version]

        def record(value):
            versions.append(g.version)
            return value

        u = record(g.add_node("u"))
        v = record(g.add_node("v"))
        e = record(g.add_edge("e", u, v))
        w = record(g.add_undirected_edge("w", u, v))
        g.set_property(u, "k", 1)
        record(None)
        g.remove_property(u, "k")
        record(None)
        g.remove_edge(e)
        record(None)
        g.remove_undirected_edge(w)
        record(None)
        g.remove_node(v)
        record(None)
        assert versions == sorted(set(versions)), "versions must be strictly increasing"
        assert len(versions) == 10

    def test_reads_do_not_bump(self, graph):
        version = graph.version
        graph.nodes, graph.out_edges(NodeId("u")), graph.all_labels()
        graph.snapshot()
        assert graph.version == version


class TestConstantChecking:
    def test_rejects_toplevel_mutables(self, graph):
        for bad in ([1], {"k": 1}, {1, 2}, bytearray(b"x")):
            with pytest.raises(GraphError):
                graph.set_property(NodeId("u"), "p", bad)

    def test_rejects_mutables_nested_in_tuples(self, graph):
        for bad in (("a", [1]), (1, (2, {"k": 3})), ((({4},),),)):
            with pytest.raises(GraphError):
                graph.set_property(NodeId("u"), "p", bad)
        with pytest.raises(GraphError):
            graph.add_node("bad", properties={"p": ("a", [1])})

    def test_accepts_immutable_tuples(self, graph):
        graph.set_property(NodeId("u"), "p", ("a", (1, 2), frozenset({3})))
        assert graph.get_property(NodeId("u"), "p") == (
            "a", (1, 2), frozenset({3})
        )

    def test_rejects_none(self, graph):
        with pytest.raises(GraphError):
            graph.set_property(NodeId("u"), "p", None)
        with pytest.raises(GraphError):
            graph.add_node("bad", properties={"p": None})
