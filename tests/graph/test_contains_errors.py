"""Regression tests for ``__contains__`` exception narrowing.

``x in graph`` swallows :class:`TypeError` (an unhashable probe is
simply "not an element") but must *not* swallow anything else — most
importantly the deadline/limit errors the engine uses as control flow.
These used to be eaten by a broad ``except Exception`` on
:class:`PropertyGraph`, :class:`GraphSnapshot` and
:class:`LegacyGraphSnapshot`, turning a fired deadline into a silent
``False``. The same narrowing applies to the footprint module's
defensive guards around ``min_path_length``.
"""

from __future__ import annotations

import pytest

from repro.errors import DeadlineExceededError, EvaluationLimitError
from repro.gpc import footprint as footprint_module
from repro.gpc.footprint import pattern_footprint, query_footprint
from repro.gpc.parser import parse_query
from repro.graph import GraphBuilder
from repro.graph.snapshot_legacy import LegacyGraphSnapshot


class _ExplodingHash:
    """A probe whose ``__hash__`` raises like a fired deadline."""

    def __init__(self, exception: Exception):
        self.exception = exception

    def __hash__(self):
        raise self.exception


def _graph():
    return GraphBuilder().node("a", "P").edge("a", "a", "r").build()


def _views():
    graph = _graph()
    return [graph, graph.snapshot(), LegacyGraphSnapshot(graph)]


class TestContainsNarrowing:
    def test_unhashable_probe_is_not_an_element(self):
        for view in _views():
            assert ([] in view) is False

    def test_arbitrary_object_is_not_an_element(self):
        for view in _views():
            assert ("not-an-id" in view) is False

    def test_deadline_error_propagates(self):
        for view in _views():
            with pytest.raises(DeadlineExceededError):
                _ExplodingHash(DeadlineExceededError("deadline")) in view

    def test_limit_error_propagates(self):
        for view in _views():
            with pytest.raises(EvaluationLimitError):
                _ExplodingHash(EvaluationLimitError("limit")) in view


class TestFootprintNarrowing:
    QUERY = "TRAIL (x:P) -[:r]-> (y)"

    def test_deadline_error_propagates_from_pattern_footprint(
        self, monkeypatch
    ):
        def explode(pattern):
            raise DeadlineExceededError("deadline")

        monkeypatch.setattr(footprint_module, "min_path_length", explode)
        pattern = parse_query(self.QUERY).pattern
        with pytest.raises(DeadlineExceededError):
            pattern_footprint(pattern)

    def test_limit_error_propagates_from_query_footprint(self, monkeypatch):
        def explode(pattern):
            raise EvaluationLimitError("limit")

        monkeypatch.setattr(footprint_module, "min_path_length", explode)
        with pytest.raises(EvaluationLimitError):
            query_footprint(parse_query(self.QUERY))

    def test_other_failures_stay_conservative(self, monkeypatch):
        # The broad guard is deliberate for non-control-flow errors:
        # a wrong footprint would be a correctness bug, so unknown
        # analysis failures degrade to the conservative footprint.
        def explode(pattern):
            raise RuntimeError("boom")

        monkeypatch.setattr(footprint_module, "min_path_length", explode)
        footprint = query_footprint(parse_query(self.QUERY))
        # The length-0 refinement would collapse node_labels to the
        # empty set (the pattern needs an edge); when the bound
        # analysis fails, the refinement is skipped, not the footprint.
        assert footprint.node_labels != frozenset()
