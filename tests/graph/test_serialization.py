"""JSON serialization round-trips."""

import pytest

from repro.errors import GraphError
from repro.graph import generators as G
from repro.graph.property_graph import PropertyGraph
from repro.graph.serialization import dumps, graph_from_dict, graph_to_dict, loads


class TestRoundTrip:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: PropertyGraph(),
            lambda: G.chain_graph(3, value_key="v"),
            lambda: G.random_multigraph(6, 8, 3, seed=5),
            lambda: G.theorem13_gadget(),
            lambda: G.social_network(num_people=6, seed=2),
        ],
    )
    def test_round_trip_equality(self, graph_factory):
        graph = graph_factory()
        assert loads(dumps(graph)) == graph

    def test_round_trip_preserves_self_loops(self, mixed_graph):
        assert loads(dumps(mixed_graph)) == mixed_graph

    def test_dict_round_trip(self, tiny_graph):
        assert graph_from_dict(graph_to_dict(tiny_graph)) == tiny_graph

    def test_output_is_deterministic(self, diamond_graph):
        assert dumps(diamond_graph) == dumps(diamond_graph)

    def test_numeric_id_keys_survive(self):
        g = PropertyGraph()
        a = g.add_node(1)
        b = g.add_node(2)
        g.add_edge(10, a, b)
        assert loads(dumps(g)) == g


class TestErrors:
    def test_unknown_format_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict({"format": "something-else"})

    def test_unserializable_key_rejected(self):
        g = PropertyGraph()
        g.add_node((1, 2))
        with pytest.raises(GraphError):
            dumps(g)
