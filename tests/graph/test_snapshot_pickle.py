"""GraphSnapshot (and everything it contains) pickles round-trip.

Snapshots are the unit of shipping in the cluster runtime
(:mod:`repro.cluster`): the process-pool backend pickles one snapshot
per graph version into each worker. These tests pin down that the
round-trip preserves every index and memo — and that the id/path/
assignment sorts, whose immutability guards defeat the default slots
pickling path, stay picklable.
"""

from __future__ import annotations

import pickle

import pytest

from repro.gpc.assignments import Assignment
from repro.gpc.engine import Evaluator
from repro.gpc.parser import parse_query
from repro.graph.builder import GraphBuilder
from repro.graph.generators import social_network
from repro.graph.ids import DirectedEdgeId, NodeId, UndirectedEdgeId
from repro.graph.paths import Path


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


@pytest.fixture
def mixed():
    return (
        GraphBuilder()
        .node("a", "P", name="Ann", age=7)
        .node("b", "P", name="Bob")
        .node("c", "Q")
        .edge("a", "b", "knows", key="e1", since=2015)
        .edge("b", "c", "likes", key="e2")
        .undirected("a", "c", "married", key="u1")
        .build()
    )


class TestIdentifierSorts:
    @pytest.mark.parametrize(
        "element",
        [NodeId("a"), NodeId(7), DirectedEdgeId("e1"), UndirectedEdgeId(("t", 1))],
        ids=["node-str", "node-int", "dedge", "uedge-tuple"],
    )
    def test_ids_roundtrip(self, element):
        restored = _roundtrip(element)
        assert restored == element
        assert hash(restored) == hash(element)
        assert type(restored) is type(element)

    def test_sort_disjointness_survives(self):
        # node("1") and dedge("1") must stay unequal after a round-trip.
        assert _roundtrip(NodeId("1")) != DirectedEdgeId("1")

    def test_paths_roundtrip(self, mixed):
        node = next(mixed.iter_nodes())
        edge = next(mixed.iter_directed_edges())
        path = Path.of(mixed.source(edge), edge, mixed.target(edge))
        for p in (Path.node(node), path):
            restored = _roundtrip(p)
            assert restored == p and hash(restored) == hash(p)

    def test_assignments_roundtrip(self):
        mu = Assignment({"x": NodeId("a"), "e": DirectedEdgeId("e1")})
        restored = _roundtrip(mu)
        assert restored == mu and hash(restored) == hash(mu)


class TestSnapshotRoundTrip:
    def test_every_index_survives(self, mixed):
        snap = mixed.snapshot()
        restored = _roundtrip(snap)
        assert restored.version == snap.version
        assert restored.nodes == snap.nodes
        assert restored.directed_edges == snap.directed_edges
        assert restored.undirected_edges == snap.undirected_edges
        for node in snap.nodes:
            assert restored.out_edges(node) == snap.out_edges(node)
            assert restored.in_edges(node) == snap.in_edges(node)
            assert restored.undirected_edges_at(node) == (
                snap.undirected_edges_at(node)
            )
        for element in (
            list(snap.nodes) + list(snap.directed_edges)
            + list(snap.undirected_edges)
        ):
            assert restored.labels(element) == snap.labels(element)
            assert restored.properties(element) == snap.properties(element)
        for label in snap.all_labels():
            assert restored.nodes_with_label(label) == snap.nodes_with_label(label)
            assert restored.directed_edges_with_label(label) == (
                snap.directed_edges_with_label(label)
            )
            assert restored.undirected_edges_with_label(label) == (
                snap.undirected_edges_with_label(label)
            )

    def test_cardinality_memo_survives(self, mixed):
        snap = mixed.snapshot()
        cards = snap.label_cardinalities()  # populate the memo
        restored = _roundtrip(snap)
        assert restored.label_cardinalities() == cards

    def test_unpopulated_memo_rebuilds(self, mixed):
        # A snapshot pickled before label_cardinalities() was ever
        # called must still compute it on the restored copy.
        restored = _roundtrip(mixed.snapshot())
        assert restored.label_cardinalities() == (
            mixed.snapshot().label_cardinalities()
        )

    def test_evaluation_agrees_on_restored_snapshot(self):
        graph = social_network(num_people=10, friend_degree=2, seed=5)
        snap = graph.snapshot()
        restored = _roundtrip(snap)
        for text in [
            "TRAIL (x:Person) -[e:knows]-> (y:Person)",
            "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
            "SIMPLE (x:Person) ~[:married]~ (y:Person)",
        ]:
            query = parse_query(text)
            reference = Evaluator(snap).evaluate(query)
            assert Evaluator(restored).evaluate(query) == reference
            # Answers themselves (paths + assignments) round-trip too:
            # the gather side unpickles them from worker processes.
            assert _roundtrip(reference) == reference
