"""Path algebra: construction, concatenation, restrictor predicates."""

import pytest

from repro.errors import PathError
from repro.graph.ids import DirectedEdgeId as E, NodeId as N
from repro.graph.paths import Path, concat_paths, is_simple, is_trail, path_in_graph


def p(*elements):
    return Path.of(*elements)


class TestConstruction:
    def test_single_node(self):
        path = Path.node(N("u"))
        assert len(path) == 0
        assert path.is_edgeless
        assert path.src == path.tgt == N("u")

    def test_alternation_enforced(self):
        with pytest.raises(PathError):
            Path.of(N("u"), N("v"))
        with pytest.raises(PathError):
            Path.of(E("e"))
        with pytest.raises(PathError):
            Path.of(N("u"), E("e"))
        with pytest.raises(PathError):
            Path(())

    def test_length_counts_edges(self):
        path = p(N("u"), E("e1"), N("v"), E("e2"), N("w"))
        assert len(path) == 2
        assert path.length == 2
        assert path.size == 5

    def test_nodes_and_edges_views(self):
        path = p(N("u"), E("e1"), N("v"))
        assert path.nodes == (N("u"), N("v"))
        assert path.edges == (E("e1"),)

    def test_steps(self):
        path = p(N("u"), E("e1"), N("v"), E("e2"), N("u"))
        assert list(path.steps()) == [
            (N("u"), E("e1"), N("v")),
            (N("v"), E("e2"), N("u")),
        ]

    def test_immutable(self):
        path = Path.node(N("u"))
        with pytest.raises(AttributeError):
            path._elements = ()


class TestConcatenation:
    def test_basic(self):
        left = p(N("u"), E("e1"), N("v"))
        right = p(N("v"), E("e2"), N("w"))
        combined = left.concat(right)
        assert combined == p(N("u"), E("e1"), N("v"), E("e2"), N("w"))

    def test_mismatched_endpoints_rejected(self):
        left = p(N("u"), E("e1"), N("v"))
        right = p(N("w"), E("e2"), N("u"))
        assert not left.concatenates_with(right)
        with pytest.raises(PathError):
            left.concat(right)

    def test_edgeless_is_left_and_right_unit(self):
        path = p(N("u"), E("e1"), N("v"))
        assert Path.node(N("u")).concat(path) == path
        assert path.concat(Path.node(N("v"))) == path

    def test_concat_paths_helper(self):
        a = p(N("u"), E("e1"), N("v"))
        b = p(N("v"), E("e2"), N("w"))
        c = Path.node(N("w"))
        assert concat_paths(a, b, c) == a.concat(b)
        with pytest.raises(PathError):
            concat_paths()

    def test_concat_is_associative(self):
        a = p(N("1"), E("x"), N("2"))
        b = p(N("2"), E("y"), N("3"))
        c = p(N("3"), E("z"), N("4"))
        assert a.concat(b).concat(c) == a.concat(b.concat(c))


class TestSubpathAndReverse:
    def test_subpath(self):
        path = p(N("a"), E("1"), N("b"), E("2"), N("c"))
        assert path.subpath(0, 1) == p(N("a"), E("1"), N("b"))
        assert path.subpath(1, 1) == Path.node(N("b"))
        assert path.subpath(0, 2) == path

    def test_subpath_bounds_checked(self):
        path = p(N("a"), E("1"), N("b"))
        with pytest.raises(PathError):
            path.subpath(0, 2)
        with pytest.raises(PathError):
            path.subpath(1, 0)

    def test_reversed(self):
        path = p(N("a"), E("1"), N("b"))
        assert path.reversed() == p(N("b"), E("1"), N("a"))


class TestPredicates:
    def test_trail_rejects_repeated_edge(self):
        path = p(N("a"), E("1"), N("b"), E("1"), N("a"))
        assert not is_trail(path)
        assert is_simple(p(N("a"), E("1"), N("b")))

    def test_trail_allows_repeated_node(self):
        path = p(N("a"), E("1"), N("b"), E("2"), N("a"))
        assert is_trail(path)
        assert not is_simple(path)

    def test_edgeless_path_is_trail_and_simple(self):
        path = Path.node(N("a"))
        assert is_trail(path)
        assert is_simple(path)


class TestRadixOrder:
    def test_shorter_paths_first(self):
        short = Path.node(N("z"))
        long = p(N("a"), E("1"), N("b"))
        assert short < long

    def test_same_length_lexicographic(self):
        a = p(N("a"), E("1"), N("b"))
        b = p(N("a"), E("2"), N("b"))
        assert a < b

    def test_sorting_is_total_on_distinct_paths(self):
        paths = [
            Path.node(N("b")),
            Path.node(N("a")),
            p(N("a"), E("1"), N("a")),
        ]
        ordered = sorted(paths)
        assert ordered[0] == Path.node(N("a"))
        assert ordered[-1].length == 1


class TestPathInGraph:
    def test_forward_backward_undirected(self, mixed_graph):
        u, v = N("u"), N("v")
        forward = p(u, E("d1"), v)
        backward = p(v, E("d1"), u)
        assert path_in_graph(forward, mixed_graph)
        assert path_in_graph(backward, mixed_graph)

    def test_undirected_traversal(self, mixed_graph):
        from repro.graph.ids import UndirectedEdgeId as U

        assert path_in_graph(p(N("u"), U("u1"), N("v")), mixed_graph)
        assert path_in_graph(p(N("v"), U("u1"), N("u")), mixed_graph)
        assert not path_in_graph(p(N("u"), U("u1"), N("w")), mixed_graph)

    def test_unknown_elements(self, mixed_graph):
        assert not path_in_graph(Path.node(N("zz")), mixed_graph)
        assert not path_in_graph(p(N("u"), E("nope"), N("v")), mixed_graph)

    def test_self_loops(self, mixed_graph):
        from repro.graph.ids import UndirectedEdgeId as U

        assert path_in_graph(p(N("u"), E("d3"), N("u")), mixed_graph)
        assert path_in_graph(p(N("w"), U("u2"), N("w")), mixed_graph)
