"""GraphBuilder fluency and the workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.graph.builder import GraphBuilder
from repro.graph.ids import NodeId
from repro.graph import generators as G
from repro.graph.statistics import compute_statistics


class TestBuilder:
    def test_chaining_builds_expected_graph(self):
        g = (
            GraphBuilder()
            .node("a", "Person", name="Ann")
            .node("b", "Person")
            .edge("a", "b", "knows", since=2020)
            .undirected("a", "b", "sibling")
            .build()
        )
        assert g.num_nodes == 2
        assert g.num_directed_edges == 1
        assert g.num_undirected_edges == 1
        assert g.get_property(NodeId("a"), "name") == "Ann"

    def test_edges_create_missing_nodes(self):
        g = GraphBuilder().edge("x", "y", "e").build()
        assert g.has_node(NodeId("x")) and g.has_node(NodeId("y"))

    def test_re_adding_node_merges_labels_and_properties(self):
        g = (
            GraphBuilder()
            .node("a", "P", k=1)
            .node("a", "Q", j=2)
            .build()
        )
        assert g.labels(NodeId("a")) == frozenset({"P", "Q"})
        assert g.get_property(NodeId("a"), "k") == 1
        assert g.get_property(NodeId("a"), "j") == 2

    def test_chain_helper(self):
        g = GraphBuilder().chain(["a", "b", "c"], "next").build()
        assert g.num_directed_edges == 2

    def test_chain_needs_two_keys(self):
        with pytest.raises(Exception):
            GraphBuilder().chain(["a"], "next")

    def test_build_snapshots(self):
        builder = GraphBuilder().node("a")
        first = builder.build()
        builder.node("b")
        second = builder.build()
        assert first.num_nodes == 1
        assert second.num_nodes == 2

    def test_generated_edge_keys_unique(self):
        g = GraphBuilder().edge("a", "b").edge("a", "b").build()
        assert g.num_directed_edges == 2


class TestStructuredGenerators:
    def test_chain(self):
        g = G.chain_graph(4, value_key="v")
        assert g.num_nodes == 5
        assert g.num_directed_edges == 4
        assert g.get_property(NodeId("n3"), "v") == 3

    def test_chain_zero_length(self):
        assert G.chain_graph(0).num_nodes == 1

    def test_chain_negative_rejected(self):
        with pytest.raises(WorkloadError):
            G.chain_graph(-1)

    def test_cycle(self):
        g = G.cycle_graph(3)
        assert g.num_nodes == 3
        assert g.num_directed_edges == 3
        for node in g.nodes:
            assert len(g.out_edges(node)) == 1

    def test_cycle_of_one_is_self_loop(self):
        g = G.cycle_graph(1)
        (edge,) = g.directed_edges
        assert g.source(edge) == g.target(edge)

    def test_grid(self):
        g = G.grid_graph(3, 2)
        assert g.num_nodes == 6
        # right edges: 2 per row x 2 rows; down edges: 3
        assert g.num_directed_edges == 2 * 2 + 3

    def test_complete(self):
        g = G.complete_graph(4)
        assert g.num_directed_edges == 12

    def test_ladder(self):
        g = G.ladder_graph(2)
        assert g.num_nodes == 6
        assert g.num_directed_edges == 2 * 2 + 2 * 2


class TestRandomGenerators:
    def test_deterministic_given_seed(self):
        a = G.random_multigraph(6, 10, 2, seed=42)
        b = G.random_multigraph(6, 10, 2, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = G.random_multigraph(6, 10, seed=1)
        b = G.random_multigraph(6, 10, seed=2)
        assert a != b

    def test_sizes_respected(self):
        g = G.random_multigraph(5, 7, 3, seed=0)
        assert g.num_nodes == 5
        assert g.num_directed_edges == 7
        assert g.num_undirected_edges == 3

    def test_labeled_digraph_has_only_directed_edges(self):
        g = G.random_labeled_digraph(5, 9, seed=0)
        assert g.num_undirected_edges == 0
        for edge in g.directed_edges:
            assert g.labels(edge)


class TestDomainGenerators:
    def test_social_network_shape(self):
        g = G.social_network(num_people=10, num_cities=2, seed=1)
        assert len(g.nodes_with_label("Person")) == 10
        assert len(g.nodes_with_label("City")) == 2
        assert g.directed_edges_with_label("lives_in")
        assert g.directed_edges_with_label("knows")
        assert g.undirected_edges_with_label("married")

    def test_transport_network_shape(self):
        g = G.transport_network(lines=2, stops_per_line=3, seed=0)
        assert len(g.nodes_with_label("Hub")) == 1
        assert len(g.nodes_with_label("Station")) == 1 + 2 * 3
        # every link is bidirectional (two directed edges)
        assert g.num_directed_edges == 2 * 2 * 3

    def test_theorem13_gadget(self):
        g = G.theorem13_gadget()
        assert g.num_nodes == 2
        assert g.num_directed_edges == 4
        for node in g.nodes:
            assert len(g.out_edges(node)) == 2

    def test_section7_counterexample(self):
        g = G.section7_counterexample()
        assert g.num_nodes == 3
        assert g.num_directed_edges == 3
        assert len(g.directed_edges_with_label("a")) == 1

    def test_two_cliques_bridge(self):
        g = G.two_cliques_bridge(3)
        assert g.num_nodes == 6
        assert len(g.directed_edges_with_label("bridge")) == 1


class TestStatistics:
    def test_statistics_on_mixed_graph(self, mixed_graph):
        stats = compute_statistics(mixed_graph)
        assert stats.num_nodes == 3
        assert stats.num_directed_edges == 3
        assert stats.num_undirected_edges == 2
        assert stats.num_edges == 5
        assert stats.num_directed_self_loops == 1
        assert stats.num_undirected_self_loops == 1
        assert stats.max_degree >= stats.min_degree
        assert stats.label_histogram["a"] == 2

    def test_statistics_on_empty_graph(self, empty_graph):
        stats = compute_statistics(empty_graph)
        assert stats.num_nodes == 0
        assert stats.max_degree == 0
