"""Hypothesis strategies for GPC expressions and small graphs."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.gpc import ast
from repro.gpc.conditions_ast import (
    And,
    Not,
    Or,
    PropertyEqualsConst,
    PropertyEqualsProperty,
)
from repro.gpc.typing import infer_schema
from repro.errors import GPCTypeError
from repro.graph.generators import random_multigraph

VARIABLES = ["x", "y", "z", "u", "v"]
LABELS = ["A", "B", "a", "b"]
KEYS = ["k", "m"]

variables = st.sampled_from(VARIABLES)
labels = st.sampled_from(LABELS)
opt_variables = st.none() | variables
opt_labels = st.none() | labels


@st.composite
def node_patterns(draw):
    return ast.node(draw(opt_variables), draw(opt_labels))


@st.composite
def edge_patterns(draw):
    direction = draw(st.sampled_from(list(ast.Direction)))
    return ast.edge(direction, draw(opt_variables), draw(opt_labels))


def conditions_for(schema_vars: list[str]):
    """Conditions over the given variables (assumed singleton-typed)."""
    if not schema_vars:
        return st.nothing()
    var = st.sampled_from(schema_vars)
    key = st.sampled_from(KEYS)
    consts = st.integers(min_value=0, max_value=3) | st.sampled_from(["s", "t"])
    atoms = st.builds(PropertyEqualsConst, var, key, consts) | st.builds(
        PropertyEqualsProperty, var, key, var, key
    )
    return st.recursive(
        atoms,
        lambda inner: st.builds(And, inner, inner)
        | st.builds(Or, inner, inner)
        | st.builds(Not, inner),
        max_leaves=4,
    )


@st.composite
def patterns(draw, max_depth: int = 3):
    """Arbitrary (possibly ill-typed) patterns covering every
    production of Figure 1."""
    if max_depth == 0:
        return draw(node_patterns() | edge_patterns())
    branch = draw(st.integers(min_value=0, max_value=5))
    if branch == 0:
        return draw(node_patterns() | edge_patterns())
    if branch == 1:
        return ast.Union(
            draw(patterns(max_depth=max_depth - 1)),
            draw(patterns(max_depth=max_depth - 1)),
        )
    if branch == 2:
        return ast.Concat(
            draw(patterns(max_depth=max_depth - 1)),
            draw(patterns(max_depth=max_depth - 1)),
        )
    if branch == 3:
        lower = draw(st.integers(min_value=0, max_value=2))
        upper = draw(st.none() | st.integers(min_value=lower, max_value=3))
        return ast.Repeat(draw(patterns(max_depth=max_depth - 1)), lower, upper)
    inner = draw(patterns(max_depth=max_depth - 1))
    try:
        schema = infer_schema(inner)
    except GPCTypeError:
        return inner
    from repro.gpc.types import is_singleton

    singleton_vars = [v for v, t in schema.items() if is_singleton(t)]
    if not singleton_vars:
        return inner
    condition = draw(conditions_for(singleton_vars))
    return ast.Conditioned(inner, condition)


@st.composite
def well_typed_patterns(draw, max_depth: int = 3):
    """Patterns filtered to the well-typed ones."""
    from hypothesis import assume

    pattern = draw(patterns(max_depth=max_depth))
    try:
        infer_schema(pattern)
    except GPCTypeError:
        assume(False)
    return pattern


@st.composite
def restrictors(draw):
    return draw(
        st.sampled_from(
            [
                ast.Restrictor.SIMPLE,
                ast.Restrictor.TRAIL,
                ast.Restrictor.SHORTEST,
                ast.Restrictor.SHORTEST_SIMPLE,
                ast.Restrictor.SHORTEST_TRAIL,
            ]
        )
    )


@st.composite
def small_graphs(draw):
    nodes = draw(st.integers(min_value=1, max_value=5))
    directed = draw(st.integers(min_value=0, max_value=7))
    undirected = draw(st.integers(min_value=0, max_value=2))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_multigraph(
        nodes,
        directed,
        undirected,
        node_labels=("A", "B"),
        edge_labels=("a", "b"),
        property_keys=("k", "m"),
        value_range=3,
        seed=seed,
    )
