"""Property-based tests for the path algebra and collect."""

import sys
from pathlib import Path as _P

sys.path.insert(0, str(_P(__file__).parent))

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.graph.ids import DirectedEdgeId as E, NodeId as N
from repro.graph.paths import Path, is_simple, is_trail
from repro.gpc.assignments import Assignment
from repro.gpc.collect import (
    CollectAccumulator,
    CollectMode,
    collect_grouping,
    collect_simple,
    refactorize,
)


@st.composite
def paths(draw, min_length=0, max_length=5):
    length = draw(st.integers(min_value=min_length, max_value=max_length))
    node_names = draw(
        st.lists(
            st.sampled_from("abcd"), min_size=length + 1, max_size=length + 1
        )
    )
    elements = [N(node_names[0])]
    for i in range(length):
        elements.append(E(f"e{draw(st.integers(0, 6))}"))
        elements.append(N(node_names[i + 1]))
    return Path(elements)


@settings(max_examples=150, deadline=None)
@given(paths(), paths(), paths())
def test_concat_associative(a, b, c):
    assume(a.tgt == b.src and b.tgt == c.src)
    assert a.concat(b).concat(c) == a.concat(b.concat(c))


@settings(max_examples=150, deadline=None)
@given(paths())
def test_edgeless_units(p):
    assert Path.node(p.src).concat(p) == p
    assert p.concat(Path.node(p.tgt)) == p


@settings(max_examples=150, deadline=None)
@given(paths())
def test_length_and_size_consistent(p):
    assert p.size == 2 * len(p) + 1
    assert len(p.nodes) == len(p) + 1
    assert len(p.edges) == len(p)


@settings(max_examples=150, deadline=None)
@given(paths())
def test_reverse_involutive(p):
    assert p.reversed().reversed() == p
    assert p.reversed().src == p.tgt


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 500))
def test_simple_implies_trail_on_graph_walks(seed):
    # A simple walk never repeats nodes, hence never repeats edges —
    # *in a graph*, where an edge id determines its endpoints. (On
    # synthetic sequences reusing an edge id with fresh endpoints the
    # implication fails, which is why this property quantifies over
    # genuine graph walks.)
    from repro.enumeration.radix import iter_paths_radix
    from repro.graph.generators import random_multigraph

    graph = random_multigraph(4, 6, 1, seed=seed)
    for path in iter_paths_radix(graph, 3):
        if is_simple(path):
            assert is_trail(path)


@settings(max_examples=150, deadline=None)
@given(paths(), st.integers(0, 5), st.integers(0, 5))
def test_subpath_concat_recovers(p, i, j):
    n = len(p)
    i, j = min(i, n), min(j, n)
    assume(i <= j)
    left = p.subpath(0, i)
    middle = p.subpath(i, j)
    right = p.subpath(j, n)
    assert left.concat(middle).concat(right) == p


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(0, 3), max_size=10))
def test_refactorize_partitions(lengths):
    ranges = refactorize(lengths)
    # Ranges tile [0, len) exactly.
    covered = [i for start, stop in ranges for i in range(start, stop)]
    assert covered == list(range(len(lengths)))
    for start, stop in ranges:
        if stop - start > 1:
            assert all(lengths[i] == 0 for i in range(start, stop))
    # Maximality: adjacent ranges are never both edgeless runs.
    for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
        first_edgeless = all(lengths[i] == 0 for i in range(s1, e1))
        second_edgeless = all(lengths[i] == 0 for i in range(s2, e2))
        assert not (first_edgeless and second_edgeless)


@st.composite
def factor_sequences(draw):
    """Concatenating (path, assignment) factors with a shared variable."""
    count = draw(st.integers(1, 5))
    factors = []
    current = N(draw(st.sampled_from("ab")))
    for i in range(count):
        edgeless = draw(st.booleans())
        if edgeless:
            path = Path.node(current)
            value = current
        else:
            nxt = N(draw(st.sampled_from("ab")))
            path = Path.of(current, E(f"e{i}"), nxt)
            value = path.edges[0]
            current = nxt
        factors.append((path, Assignment({"x": value})))
    return factors


@settings(max_examples=200, deadline=None)
@given(factor_sequences())
def test_accumulator_equals_batch_collect(factors):
    acc = CollectAccumulator(mode=CollectMode.GROUPING)
    for path, mu in factors:
        acc = acc.extend(path, mu)
        if acc is None:
            break
    batch = collect_grouping(factors, ["x"])
    if acc is None:
        assert batch is None
    else:
        assert acc.finalize(["x"]) == batch


@settings(max_examples=200, deadline=None)
@given(factor_sequences())
def test_grouping_equals_simple_without_edgeless(factors):
    if any(path.is_edgeless for path, _ in factors):
        return
    assert collect_grouping(factors, ["x"]) == collect_simple(factors, ["x"])
