"""Property-based tests of the semantics (Proposition 9 and friends)."""

import sys
from pathlib import Path as _P

sys.path.insert(0, str(_P(__file__).parent))

from hypothesis import given, settings

from strategies import small_graphs, well_typed_patterns

from repro.graph.paths import is_simple, is_trail, path_in_graph
from repro.gpc import ast
from repro.gpc.engine import EngineConfig, Evaluator, evaluate
from repro.gpc.collect import CollectMode
from repro.gpc.typing import infer_schema

_BOUND = 3


@settings(max_examples=80, deadline=None)
@given(small_graphs(), well_typed_patterns(max_depth=2))
def test_proposition9_conformance(graph, pattern):
    """Every (p, mu) has p a path in G and mu conforming to sch(pi)."""
    schema = infer_schema(pattern)
    matches = Evaluator(graph).eval_pattern(pattern, max_length=_BOUND)
    for path, mu in matches:
        assert path_in_graph(path, graph)
        assert mu.conforms_to(schema)


@settings(max_examples=60, deadline=None)
@given(small_graphs(), well_typed_patterns(max_depth=2))
def test_bounded_eval_monotone_in_bound(graph, pattern):
    """eval(pi, L) grows monotonically with L."""
    evaluator = Evaluator(graph)
    small = evaluator.eval_pattern(pattern, max_length=1)
    large = evaluator.eval_pattern(pattern, max_length=_BOUND)
    assert small <= large


@settings(max_examples=60, deadline=None)
@given(small_graphs(), well_typed_patterns(max_depth=1), well_typed_patterns(max_depth=1))
def test_union_answers_commutative(graph, left, right):
    from repro.errors import GPCTypeError

    evaluator = Evaluator(graph)
    try:
        a = evaluator.eval_pattern(ast.Union(left, right), max_length=2)
        b = evaluator.eval_pattern(ast.Union(right, left), max_length=2)
    except GPCTypeError:
        return
    assert a == b


@settings(max_examples=50, deadline=None)
@given(small_graphs(), well_typed_patterns(max_depth=2))
def test_trail_simple_answers_are_subsets(graph, pattern):
    """simple answers are trails; both filter the bounded denotation."""
    try:
        trail_answers = evaluate(
            ast.PatternQuery(ast.Restrictor.TRAIL, pattern), graph
        )
        simple_answers = evaluate(
            ast.PatternQuery(ast.Restrictor.SIMPLE, pattern), graph
        )
    except Exception:
        # Engine resource guards may fire on adversarial repetitions.
        return
    for answer in trail_answers:
        assert is_trail(answer.path)
    for answer in simple_answers:
        assert is_simple(answer.path)
        # every simple path (len >= 1) is a trail; edgeless trivially.
        assert is_trail(answer.path)


@settings(max_examples=40, deadline=None)
@given(small_graphs(), well_typed_patterns(max_depth=2))
def test_shortest_minimality(graph, pattern):
    """No two shortest answers with equal endpoints have different
    lengths, and no shorter match exists in the bounded denotation."""
    from repro.errors import GPCError

    try:
        answers = evaluate(
            ast.PatternQuery(ast.Restrictor.SHORTEST, pattern), graph
        )
    except GPCError:
        return
    minima = {}
    for answer in answers:
        key = (answer.path.src, answer.path.tgt)
        minima.setdefault(key, set()).add(len(answer.path))
    assert all(len(lengths) == 1 for lengths in minima.values())
    # Cross-check against the bounded denotation at a small horizon.
    matches = Evaluator(graph).eval_pattern(pattern, max_length=2)
    for path, _ in matches:
        key = (path.src, path.tgt)
        if key in minima:
            assert min(minima[key]) <= len(path)


@settings(max_examples=40, deadline=None)
@given(small_graphs(), well_typed_patterns(max_depth=2))
def test_collect_modes_agree_on_positive_bodies(graph, pattern):
    """When no repetition body can match edgeless paths, all three
    collect approaches give identical answers."""
    from repro.gpc.minlength import may_match_edgeless

    for sub in ast.iter_subpatterns(pattern):
        if isinstance(sub, ast.Repeat) and may_match_edgeless(sub.pattern):
            return  # approaches legitimately differ
    results = []
    for mode in CollectMode:
        evaluator = Evaluator(graph, EngineConfig(collect_mode=mode))
        results.append(evaluator.eval_pattern(pattern, max_length=_BOUND))
    assert results[0] == results[1] == results[2]


@settings(max_examples=40, deadline=None)
@given(small_graphs(), well_typed_patterns(max_depth=2))
def test_span_matcher_agrees_with_engine(graph, pattern):
    """Differential: the Lemma 19 span matcher reproduces the engine's
    per-path assignment sets."""
    from repro.enumeration.span_matcher import match_on_path

    matches = Evaluator(graph).eval_pattern(pattern, max_length=2)
    by_path = {}
    for path, mu in matches:
        by_path.setdefault(path, set()).add(mu)
    for path, mus in by_path.items():
        assert match_on_path(pattern, path, graph) == frozenset(mus)


@settings(max_examples=50, deadline=None)
@given(small_graphs())
def test_engine_results_deterministic(graph):
    from repro.gpc.parser import parse_query

    query = parse_query("TRAIL (x) ->{1,2} (y)")
    assert evaluate(query, graph) == evaluate(query, graph)
