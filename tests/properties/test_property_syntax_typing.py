"""Property-based tests: syntax round-trips and typing invariants."""

import sys
from pathlib import Path as _P

sys.path.insert(0, str(_P(__file__).parent))

from hypothesis import given, settings

from strategies import patterns, restrictors, well_typed_patterns

from repro.errors import GPCTypeError
from repro.gpc import ast
from repro.gpc.parser import parse_pattern, parse_query
from repro.gpc.pretty import pretty
from repro.gpc.types import MaybeType
from repro.gpc.typing import infer_schema


@settings(max_examples=200, deadline=None)
@given(patterns())
def test_pretty_parse_round_trip(pattern):
    """parse(pretty(p)) == p for every generated pattern."""
    assert parse_pattern(pretty(pattern)) == pattern


@settings(max_examples=100, deadline=None)
@given(patterns(), restrictors())
def test_query_round_trip(pattern, restrictor):
    query = ast.PatternQuery(restrictor, pattern, name="qq")
    assert parse_query(pretty(query)) == query


@settings(max_examples=200, deadline=None)
@given(patterns())
def test_schema_domain_is_exactly_variables(pattern):
    """Proposition 2: well-typed expressions type exactly their
    variables (and uniquely: infer_schema is a function)."""
    try:
        schema = infer_schema(pattern)
    except GPCTypeError:
        return
    assert set(schema) == set(ast.variables(pattern))


@settings(max_examples=200, deadline=None)
@given(patterns())
def test_no_maybe_maybe(pattern):
    """Proposition 4: Maybe(Maybe(tau)) is never derived."""
    try:
        schema = infer_schema(pattern)
    except GPCTypeError:
        return

    def check(tau):
        if isinstance(tau, MaybeType):
            assert not isinstance(tau.inner, MaybeType)
            check(tau.inner)
        elif hasattr(tau, "inner"):
            check(tau.inner)

    for tau in schema.values():
        check(tau)


@settings(max_examples=150, deadline=None)
@given(patterns(), patterns())
def test_union_commutative_wrt_types(left, right):
    """Proposition 4: union is commutative with respect to typing."""

    def schema_of(pattern):
        try:
            return infer_schema(pattern)
        except GPCTypeError:
            return None

    assert schema_of(ast.Union(left, right)) == schema_of(ast.Union(right, left))


@settings(max_examples=150, deadline=None)
@given(patterns(), patterns(), patterns())
def test_union_associative_wrt_types(a, b, c):
    def schema_of(pattern):
        try:
            return infer_schema(pattern)
        except GPCTypeError:
            return None

    assert schema_of(ast.Union(ast.Union(a, b), c)) == schema_of(
        ast.Union(a, ast.Union(b, c))
    )


@settings(max_examples=150, deadline=None)
@given(patterns(), patterns())
def test_concat_commutative_wrt_types(left, right):
    def schema_of(pattern):
        try:
            return infer_schema(pattern)
        except GPCTypeError:
            return None

    assert schema_of(ast.Concat(left, right)) == schema_of(
        ast.Concat(right, left)
    )


@settings(max_examples=100, deadline=None)
@given(well_typed_patterns())
def test_repetition_wraps_every_type_in_group(pattern):
    from repro.gpc.types import GroupType

    schema = infer_schema(ast.Repeat(pattern, 0, 2))
    inner = infer_schema(pattern)
    assert schema == {v: GroupType(t) for v, t in inner.items()}


@settings(max_examples=100, deadline=None)
@given(well_typed_patterns())
def test_pattern_size_positive(pattern):
    assert ast.pattern_size(pattern) >= 1


@settings(max_examples=100, deadline=None)
@given(patterns())
def test_min_length_le_max_length(pattern):
    from repro.gpc.minlength import max_path_length, min_path_length

    low = min_path_length(pattern)
    high = max_path_length(pattern)
    assert low >= 0
    if high is not None:
        assert low <= high
