"""Differential equivalence: static analysis on vs off.

The analyzer rewrites queries before evaluation — conditions are
simplified, dead union branches pruned, provably-empty queries
short-circuited — and every rewrite must preserve the answer set
*exactly* on every graph. Random graphs come from a hypothesis-drawn
seed; each query shape runs with ``use_analysis`` on and off and the
frozensets are compared. Shapes cover every rewrite the analyzer
performs plus shapes it must leave alone.

The soundness half is sharper than equality: whenever the analyzer
claims ``provably_empty``, the evaluated answer set must actually be
empty — on every random graph, not just the ones hypothesis happened
to draw for the equality check.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpc.analysis import analyze_query
from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.parser import parse_query
from repro.graph import PropertyGraph

#: Bracketed conditions throughout: `<< >>` binds tighter than concat,
#: so an unbracketed `(x) -> (y) << c >>` conditions `(y)` alone.
QUERY_TEXTS = (
    # Dedup + double negation: simplifies, answers unchanged.
    "TRAIL [(x:P) -[:r]-> (y)] << x.k = 1 AND (x.k = 1 AND NOT (NOT y.k = 2)) >>",
    # Complement pair: provably empty.
    "TRAIL [(x:P) -[:r]-> (y)] << x.k = 1 AND NOT x.k = 1 >>",
    # Contradictory constants on the And spine: provably empty.
    "TRAIL [(x:P) -[:r]-> (y)] << x.k = 0 AND x.k = 1 >>",
    # Dead union branch pruned, the live branch must supply everything.
    "TRAIL [(x:P) << x.k = 0 AND x.k = 1 >> + (x:P)] -[:r]-> (y)",
    # Tautology dropped (two-valued semantics: theta OR NOT theta).
    "TRAIL [(x:P) -[:r]-> (y)] << x.k = 1 OR NOT x.k = 1 >>",
    # Cross-concat saturation: both parts bind the singleton x.
    "TRAIL [(x) << x.k = 0 >>] [(x) << x.k = 1 >>]",
    # Repeat body provably empty, lower = 0: only zero iterations left.
    "TRAIL (s) [[(x:P) -[:r]-> (y)] << x.k = 0 AND x.k = 1 >>]{0,2} (t)",
    # Repeat body provably empty, lower >= 1: whole query empty.
    "TRAIL (s) [[(x:P) -[:r]-> (y)] << x.k = 0 AND x.k = 1 >>]{1,2} (t)",
    # x.k = x.k is NOT a tautology (tests definedness) — no rewrite.
    "TRAIL [(x:P) -[:r]-> (y)] << x.k = x.k >>",
    # Multi-label concat on one variable is NOT unsat (label sets).
    "TRAIL [(x:P)] [(x:Q)] -[:r]-> (y)",
    # Shortest with union and unbounded repeat: diagnostics fire,
    # answers must not move.
    "SHORTEST [(x:P) -[:r]-> (y) + (x:Q) -[:s]-> (y)] ->{0,2} (z)",
    "SHORTEST (x:P) -[:r]->{1,} (y:Q)",
)
QUERIES = tuple(parse_query(text) for text in QUERY_TEXTS)

ANALYSIS_ON = EngineConfig(use_analysis=True)
ANALYSIS_OFF = EngineConfig(use_analysis=False)


def random_graph(rng: random.Random) -> PropertyGraph:
    graph = PropertyGraph()
    handles = [
        graph.add_node(
            f"n{i}",
            labels=rng.choice([(), ("P",), ("Q",), ("P", "Q")]),
            properties=rng.choice([None, {"k": rng.randrange(3)}]),
        )
        for i in range(rng.randrange(3, 9))
    ]
    for i in range(rng.randrange(2, 14)):
        graph.add_edge(
            f"e{i}",
            rng.choice(handles),
            rng.choice(handles),
            labels=rng.choice([("r",), ("s",), ("r", "s")]),
            properties=rng.choice([None, {"w": rng.randrange(2)}]),
        )
    return graph


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_analysis_preserves_answers(seed):
    rng = random.Random(seed)
    graph = random_graph(rng)
    with_analysis = Evaluator(graph, ANALYSIS_ON)
    without = Evaluator(graph, ANALYSIS_OFF)
    for text, query in zip(QUERY_TEXTS, QUERIES):
        on = with_analysis.evaluate(query)
        off = without.evaluate(query)
        assert on == off, f"analysis changed answers: {text}"


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_proven_empty_is_actually_empty(seed):
    rng = random.Random(seed)
    graph = random_graph(rng)
    evaluator = Evaluator(graph, ANALYSIS_OFF)  # no short-circuit help
    for text, query in zip(QUERY_TEXTS, QUERIES):
        if analyze_query(query).provably_empty:
            assert evaluator.evaluate(query) == frozenset(), (
                f"unsound emptiness proof: {text}"
            )


def test_expected_rewrites_fire():
    """Pin which shapes the analyzer acts on, so the suite cannot rot
    into testing a no-op analyzer."""
    verdicts = [analyze_query(query) for query in QUERIES]
    assert [v.provably_empty for v in verdicts] == [
        False, True, True, False, False, True, False, True,
        False, False, False, False,
    ]
    assert verdicts[0].conditions_simplified == 1
    assert verdicts[3].dead_branches_pruned == 1
    assert verdicts[4].conditions_simplified == 1  # tautology dropped
    assert verdicts[8].simplified is QUERIES[8]  # x.k = x.k untouched
    assert verdicts[9].simplified is QUERIES[9]  # multi-label untouched
