"""Trace propagation across the cluster's executor boundaries.

Shard evaluation happens on pool threads or in worker *processes*,
where the caller's contextvars are invisible. The router ships an
explicit ``(trace_id, span_id)`` carrier in each ShardCall, the worker
rebuilds a detached span around evaluation and returns it serialised
in the ShardOutcome, and the gatherer re-parents every shard span
under the request's ``cluster.eval`` span. These tests pin that whole
loop, per backend, plus the per-shard engine counters that ride home
the same way."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterService
from repro.graph.generators import social_network
from repro.obs import TraceStore, Tracer

QUERY = "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)"


def _graph():
    return social_network(num_people=14, friend_degree=2, seed=9)


def _find(tree: dict, name: str) -> list[dict]:
    found = [tree] if tree["name"] == name else []
    for child in tree.get("children", []):
        found.extend(_find(child, name))
    return found


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_shard_spans_reparent_under_the_request_trace(backend):
    tracer = Tracer(TraceStore())
    with ClusterService(
        _graph(), backend=backend, num_workers=2
    ) as cluster:
        with tracer.trace("request") as root:
            cluster.evaluate(QUERY, use_cache=False)
    tree = tracer.store.recent()[0]
    eval_spans = _find(tree, "cluster.eval")
    assert len(eval_spans) == 1
    assert eval_spans[0]["attributes"]["shards"] == 2
    shards = _find(tree, "cluster.shard")
    assert len(shards) == 2
    for shard in shards:
        # Adopted: rewritten into the request's trace, parented under
        # the cluster.eval span, worker tag preserved.
        assert shard["trace_id"] == root.trace_id
        assert shard["parent_id"] == eval_spans[0]["span_id"]
        assert shard["attributes"]["worker"]
        assert shard["error"] is None
    # Per-shard engine counters came home as span attributes, and at
    # least one shard did real NFA work.
    assert (
        sum(s["attributes"]["nfa_states_expanded"] for s in shards) > 0
    )


def test_process_workers_tag_spans_with_their_pid():
    tracer = Tracer(TraceStore())
    with ClusterService(
        _graph(), backend="process", num_workers=2
    ) as cluster:
        with tracer.trace("request"):
            cluster.evaluate(QUERY, use_cache=False)
    shards = _find(tracer.store.recent()[0], "cluster.shard")
    assert shards
    workers = {shard["attributes"]["worker"] for shard in shards}
    assert all(worker.startswith("pid-") for worker in workers)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_engine_counters_aggregate_into_cluster_stats(backend):
    with ClusterService(
        _graph(), backend=backend, num_workers=2
    ) as cluster:
        cluster.evaluate(QUERY, use_cache=False)
        engine = cluster.stats.as_dict()["engine"]
    assert engine["nfa_states_expanded"] > 0
    assert engine["nfa_transitions"] > 0
    assert engine["deepening_rounds"] > 0


def test_untraced_evaluation_ships_no_spans():
    with ClusterService(
        _graph(), backend="thread", num_workers=2
    ) as cluster:
        cluster.evaluate(QUERY, use_cache=False)
        # Counters still flow without a trace (always-on), spans don't.
        assert cluster.stats.as_dict()["engine"]["nfa_states_expanded"] > 0


def test_batch_evaluations_keep_shard_spans_per_query():
    tracer = Tracer(TraceStore())
    queries = [
        QUERY,
        "TRAIL (x:Person) -[:knows]-> (y:Person)",
    ]
    with ClusterService(
        _graph(), backend="thread", num_workers=2
    ) as cluster:
        with tracer.trace("request"):
            cluster.evaluate_batch(queries, use_cache=False)
    tree = tracer.store.recent()[0]
    eval_spans = _find(tree, "cluster.eval")
    assert len(eval_spans) == len(queries)
    for eval_span in eval_spans:
        # One adopted shard span per scattered call (cell counts are
        # query-dependent: seedless cells may be pruned).
        children = [c["name"] for c in eval_span["children"]]
        assert (
            children.count("cluster.shard")
            == eval_span["attributes"]["shards"]
            >= 1
        )
