"""ClusterService: GraphService parity, merge losslessness, failure
surfacing, stats, mutation-driven re-sharding."""

from __future__ import annotations

import json

import pytest

from repro.cluster import ClusterService, SeedPartitioner, SerialBackend
from repro.errors import ClusterError, GPCTypeError, ParseError
from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.parser import parse_query
from repro.graph.builder import GraphBuilder
from repro.graph.generators import social_network
from repro.graph.property_graph import PropertyGraph
from repro.service import GraphService

QUERIES = [
    "TRAIL (x:Person) -[e:knows]-> (y:Person)",
    "SIMPLE (x:Person) ~[:married]~ (y:Person)",
    "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
    "SHORTEST TRAIL (x) -> () -> (y)",
    "TRAIL (x:Person) -[:knows]-> (y:Person), TRAIL (y:Person) -[:lives_in]-> (c:City)",
]


def _graph():
    return social_network(num_people=14, friend_degree=2, seed=9)


@pytest.fixture(scope="module")
def reference():
    graph = _graph()
    return {
        text: Evaluator(graph).evaluate(parse_query(text))
        for text in QUERIES
    }


class TestBackendParity:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_answers_identical_across_backends(self, backend, reference):
        with ClusterService(
            _graph(), backend=backend, num_workers=2
        ) as cluster:
            for text in QUERIES:
                assert cluster.evaluate(text) == reference[text]

    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_shard_count_never_changes_answers(self, workers, reference):
        with ClusterService(
            _graph(), backend="serial", num_workers=workers
        ) as cluster:
            for text in QUERIES:
                assert cluster.evaluate(text) == reference[text]

    def test_matches_graph_service_surface(self, reference):
        service = GraphService(_graph())
        with ClusterService(_graph(), backend="serial") as cluster:
            for text in QUERIES:
                assert cluster.evaluate(text) == service.evaluate(text)
            assert cluster.evaluate_batch(QUERIES) == (
                service.evaluate_batch(QUERIES)
            )
        service.close()

    def test_ast_queries_accepted(self, reference):
        with ClusterService(_graph(), backend="serial") as cluster:
            query = parse_query(QUERIES[0])
            assert cluster.evaluate(query) == reference[QUERIES[0]]

    def test_empty_graph(self):
        with ClusterService(PropertyGraph(), backend="serial") as cluster:
            assert cluster.evaluate("TRAIL (x) -> (y)") == frozenset()


class TestBatch:
    def test_order_preserved(self, reference):
        with ClusterService(_graph(), backend="serial") as cluster:
            batch = cluster.evaluate_batch(list(reversed(QUERIES)))
            assert batch == [reference[t] for t in reversed(QUERIES)]

    def test_empty_batch(self):
        with ClusterService(_graph(), backend="serial") as cluster:
            assert cluster.evaluate_batch([]) == []

    def test_prepare_failure_keeps_siblings(self, reference):
        workload = [QUERIES[0], "TRAIL (x", QUERIES[1]]
        with ClusterService(_graph(), backend="serial") as cluster:
            results = cluster.evaluate_batch(
                workload, return_exceptions=True
            )
            assert results[0] == reference[QUERIES[0]]
            assert isinstance(results[1], ParseError)
            assert results[2] == reference[QUERIES[1]]
            # Default mode raises the failure — after siblings finished.
            with pytest.raises(ParseError):
                cluster.evaluate_batch(workload)
            # The parse-failing query never evaluated: only the two
            # siblings count per round (same accounting as evaluate,
            # which raises before recording).
            assert cluster.stats.queries == 2 * 2


class TestResultCache:
    """Surface parity with GraphService: (query, config, version)
    keyed result cache with use_cache bypass."""

    def test_hit_on_repeat_returns_same_frozenset(self):
        with ClusterService(_graph(), backend="serial") as cluster:
            first = cluster.evaluate(QUERIES[0])
            second = cluster.evaluate(QUERIES[0])
            assert second is first  # the cached frozenset itself
            assert cluster.stats.result_cache.hits == 1
            assert cluster.stats.result_cache.misses == 1

    def test_mutation_invalidates(self):
        with ClusterService(_graph(), backend="serial") as cluster:
            before = cluster.evaluate(QUERIES[0])
            cluster.remove_edge(next(cluster.graph.iter_directed_edges()))
            after = cluster.evaluate(QUERIES[0])
            assert after != before
            assert after == Evaluator(cluster.graph).evaluate(
                parse_query(QUERIES[0])
            )
            assert cluster.stats.result_cache.hits == 0

    def test_use_cache_false_recomputes(self):
        with ClusterService(_graph(), backend="serial") as cluster:
            first = cluster.evaluate(QUERIES[0], use_cache=False)
            second = cluster.evaluate(QUERIES[0], use_cache=False)
            assert first == second and first is not second
            assert cluster.stats.result_cache.hits == 0
            assert cluster.stats.result_cache.bypasses == 2

    def test_batch_populates_and_hits_cache(self):
        with ClusterService(_graph(), backend="serial") as cluster:
            batch = cluster.evaluate_batch(QUERIES[:2])
            assert cluster.evaluate(QUERIES[0]) is batch[0]
            repeat = cluster.evaluate_batch(QUERIES[:2])
            assert repeat == batch
            # Second batch round was served entirely from cache.
            assert cluster.stats.result_cache.hits >= 2


class TestFailureSurfacing:
    def test_shard_failure_raises_cluster_error(self):
        tiny = EngineConfig(max_intermediate_results=1)
        with ClusterService(
            _graph(), tiny, backend="serial", num_workers=3
        ) as cluster:
            with pytest.raises(ClusterError) as excinfo:
                cluster.evaluate(QUERIES[0])
        error = excinfo.value
        assert error.failures, "failures must carry per-shard context"
        for failure in error.failures:
            assert "intermediate result" in str(failure.error)
            assert failure.describe()
        assert error.__cause__ is error.failures[0].error
        assert cluster.stats.shard_failures == len(error.failures)
        # The failed query is still counted and timed — error rates
        # derived from queries/shard_failures must stay honest.
        assert cluster.stats.queries == 1
        assert cluster.stats.latency.count == 1

    def test_prepare_errors_propagate_directly(self):
        with ClusterService(_graph(), backend="serial") as cluster:
            with pytest.raises(GPCTypeError):
                cluster.evaluate("TRAIL [ -[e]->{1,3} ] << e.k = 1 >>")


class TestMutationAndVersions:
    def test_mutations_reshard_and_refresh(self):
        graph = (
            GraphBuilder()
            .node("a", "P").node("b", "P")
            .edge("a", "b", "r")
            .build()
        )
        with ClusterService(graph, backend="serial", num_workers=2) as cluster:
            before = cluster.evaluate("TRAIL (x:P) -[:r]-> (y:P)")
            assert len(before) == 1
            version = cluster.version
            c = cluster.add_node("c", ["P"])
            cluster.add_edge("e2", c, next(iter(graph.nodes_with_label("P"))), ["r"])
            assert cluster.version > version
            after = cluster.evaluate("TRAIL (x:P) -[:r]-> (y:P)")
            assert after == Evaluator(cluster.graph).evaluate(
                parse_query("TRAIL (x:P) -[:r]-> (y:P)")
            )
            assert len(after) == 2
            edge = next(cluster.graph.iter_directed_edges())
            cluster.remove_edge(edge)
            assert cluster.evaluate("TRAIL (x:P) -[:r]-> (y:P)") == (
                Evaluator(cluster.graph).evaluate(
                    parse_query("TRAIL (x:P) -[:r]-> (y:P)")
                )
            )

    def test_process_backend_delta_ships_on_small_mutation(self):
        """A one-op mutation no longer rebuilds the worker pool: the
        delta chain ships with the calls and warm workers derive the
        new snapshot in place (the full snapshot shipped only once)."""
        with ClusterService(
            _graph(), backend="process", num_workers=2
        ) as cluster:
            cluster.evaluate(QUERIES[0])
            cluster.evaluate(QUERIES[1])
            assert cluster.stats.snapshots_shipped == 1
            # Touch the footprint of QUERIES[0] so the cached result is
            # invalidated and the shards genuinely re-run.
            people = sorted(cluster.graph.nodes_with_label("Person"))
            cluster.add_node("fresh", ["Person"])
            cluster.add_edge(
                "efresh",
                people[0],
                next(iter(cluster.graph.nodes_with_label("Person"))),
                ["knows"],
            )
            after = cluster.evaluate(QUERIES[0])
            assert cluster.stats.snapshots_shipped == 1
            assert cluster.stats.deltas_shipped == 1
            assert after == Evaluator(cluster.graph).evaluate(
                parse_query(QUERIES[0])
            )


class TestStatsAndExplain:
    def test_stats_accumulate(self):
        with ClusterService(
            _graph(), backend="serial", num_workers=3
        ) as cluster:
            cluster.evaluate(QUERIES[0], use_cache=False)
            cluster.evaluate_batch(QUERIES[:2], use_cache=False)
            stats = cluster.stats
            assert stats.queries == 3
            assert stats.batches == 1
            assert stats.scatters >= 3
            assert stats.latency.count == 2  # one per call, one per batch
            assert stats.shard_latency.count == stats.scatters
            assert "serial" in stats.per_worker
            assert stats.result_cache.bypasses == 3

    def test_as_dict_is_json_serialisable(self):
        with ClusterService(_graph(), backend="serial") as cluster:
            cluster.evaluate(QUERIES[0])
            encoded = json.dumps(cluster.stats.as_dict())
            assert "per_worker" in encoded and "shard_latency" in encoded

    def test_plan_cache_memoises(self):
        with ClusterService(_graph(), backend="serial") as cluster:
            first = cluster.prepare(QUERIES[0])
            assert cluster.prepare(QUERIES[0]) is first
            assert cluster.stats.plan_cache.hits == 1

    def test_explain_includes_cluster_line(self):
        with ClusterService(
            _graph(), backend="serial", num_workers=2
        ) as cluster:
            text = cluster.explain(QUERIES[2])
            assert "plan:" in text
            assert "cluster: backend=serial" in text
            assert "shard" in text

    def test_repr(self):
        with ClusterService(_graph(), backend="serial") as cluster:
            assert "backend=serial" in repr(cluster)


class TestCustomInjection:
    def test_custom_backend_and_partitioner(self, reference):
        backend = SerialBackend()
        partitioner = SeedPartitioner(7)
        with ClusterService(
            _graph(), backend=backend, partitioner=partitioner
        ) as cluster:
            assert cluster.backend is backend
            assert cluster.partitioner is partitioner
            assert cluster.evaluate(QUERIES[0]) == reference[QUERIES[0]]

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ClusterService(_graph(), num_workers=0, backend="serial")


class _CountingBackend(SerialBackend):
    """A serial backend that records every ``run`` invocation."""

    def __init__(self):
        super().__init__()
        self.runs = 0
        self.call_counts: list[int] = []

    def run(self, snapshot, calls, delta_source=None):
        self.runs += 1
        self.call_counts.append(len(calls))
        return super().run(snapshot, calls, delta_source)


class TestEmptyScatter:
    """Regression: a batch whose every query cache-hits (or fails
    before scattering) produces zero shard calls — the backend must
    not be invoked at all, because on the process backend ``run``
    warms the pool and ships a snapshot even for an empty call list."""

    def test_all_hit_batch_never_invokes_backend(self):
        backend = _CountingBackend()
        with ClusterService(
            _graph(), backend=backend, num_workers=2
        ) as cluster:
            expected = [cluster.evaluate(text) for text in QUERIES[:3]]
            runs_before = backend.runs
            results = cluster.evaluate_batch(QUERIES[:3])
            assert backend.runs == runs_before, (
                "all-hit batch reached the backend"
            )
            assert results == expected
            assert cluster.stats.result_cache.hits >= 3

    def test_all_failed_prescatter_batch_never_invokes_backend(self):
        backend = _CountingBackend()
        with ClusterService(_graph(), backend=backend) as cluster:
            results = cluster.evaluate_batch(
                ["TRAIL (x", "SIMPLE )y("], return_exceptions=True
            )
            assert backend.runs == 0
            assert all(isinstance(item, Exception) for item in results)

    def test_mixed_batch_scatters_only_the_misses(self):
        backend = _CountingBackend()
        with ClusterService(
            _graph(), backend=backend, num_workers=2
        ) as cluster:
            hit = cluster.evaluate(QUERIES[0])
            runs_before = backend.runs
            results = cluster.evaluate_batch([QUERIES[0], QUERIES[1]])
            assert backend.runs == runs_before + 1
            assert results[0] == hit
            assert results[1] == cluster.evaluate(QUERIES[1])


class TestSnapshotStats:
    """Regression: ``ClusterService.snapshot()`` used to skip the
    ``snapshots_built`` / ``snapshots_derived`` accounting that
    ``GraphService.snapshot()`` performs, so cluster dashboards read 0
    forever."""

    def test_snapshot_build_and_derive_counters(self):
        with ClusterService(_graph(), backend="serial") as cluster:
            assert cluster.stats.snapshots_built == 0
            cluster.evaluate(QUERIES[0])
            assert cluster.stats.snapshots_built == 1
            cluster.evaluate(QUERIES[1])  # same version: memoised
            assert cluster.stats.snapshots_built == 1
            cluster.add_node("fresh", ["Person"], {"name": "Fresh"})
            cluster.evaluate(QUERIES[0])
            assert cluster.stats.snapshots_built == 2
            # A one-delta advance takes the incremental derive path.
            assert cluster.stats.snapshots_derived == 1

    def test_snapshot_counters_in_as_dict(self):
        with ClusterService(_graph(), backend="serial") as cluster:
            cluster.evaluate(QUERIES[0])
            payload = cluster.stats.as_dict()
            assert payload["snapshots_built"] == 1
            assert payload["snapshots_derived"] == 0

    def test_parity_with_graph_service(self):
        service = GraphService(_graph())
        with ClusterService(_graph(), backend="serial") as cluster:
            for facade in (service, cluster):
                facade.evaluate(QUERIES[0])
                facade.add_node("fresh", ["Person"], {"name": "Fresh"})
                facade.evaluate(QUERIES[0])
            assert (
                cluster.stats.snapshots_built
                == service.stats.snapshots_built
                == 2
            )
            assert (
                cluster.stats.snapshots_derived
                == service.stats.snapshots_derived
            )
        service.close()
