"""ProcessBackend delta shipping: warm workers derive new versions
from shipped delta chains instead of receiving whole snapshots."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterService, ProcessBackend, ShardCall
from repro.cluster.stats import ClusterStats
from repro.gpc.engine import DEFAULT_CONFIG, Evaluator
from repro.gpc.parser import parse_query
from repro.graph.generators import cycle_graph, social_network

QUERY = "TRAIL (x:N) -> (y)"


class TestDeltaShipping:
    def test_small_version_step_ships_deltas_not_snapshots(self):
        graph = cycle_graph(8, node_label="N")
        stats = ClusterStats()
        backend = ProcessBackend(max_workers=2, stats=stats)
        calls = [ShardCall(QUERY, DEFAULT_CONFIG, None)]
        try:
            (first,) = backend.run(
                graph.snapshot(), calls, delta_source=graph.deltas_since
            )
            assert first.ok
            assert stats.snapshots_shipped == 1

            graph.add_node("extra", ["N"])
            nodes = sorted(graph.nodes)
            graph.add_edge("eextra", nodes[-1], nodes[0], ["link"])
            (second,) = backend.run(
                graph.snapshot(), calls, delta_source=graph.deltas_since
            )
            assert second.ok
            assert stats.snapshots_shipped == 1  # pool kept warm
            assert stats.deltas_shipped == 1
            assert backend.pool_version == graph.version
            assert second.result == Evaluator(graph).evaluate(
                parse_query(QUERY)
            )
        finally:
            backend.close()

    def test_repeated_steps_keep_delta_shipping(self):
        graph = cycle_graph(10, node_label="N")
        stats = ClusterStats()
        backend = ProcessBackend(max_workers=2, stats=stats)
        calls = [ShardCall(QUERY, DEFAULT_CONFIG, None)]
        try:
            backend.run(
                graph.snapshot(), calls, delta_source=graph.deltas_since
            )
            for i in range(3):
                graph.add_node(f"x{i}", ["N"])
                (outcome,) = backend.run(
                    graph.snapshot(), calls, delta_source=graph.deltas_since
                )
                assert outcome.ok
                assert outcome.result == Evaluator(graph).evaluate(
                    parse_query(QUERY)
                )
            assert stats.snapshots_shipped == 1
            assert stats.deltas_shipped == 3
        finally:
            backend.close()

    def test_large_step_falls_back_to_snapshot_reship(self):
        graph = cycle_graph(6, node_label="N")
        stats = ClusterStats()
        backend = ProcessBackend(
            max_workers=2, stats=stats, delta_ship_threshold=0.05
        )
        calls = [ShardCall(QUERY, DEFAULT_CONFIG, None)]
        try:
            backend.run(
                graph.snapshot(), calls, delta_source=graph.deltas_since
            )
            for i in range(30):  # far beyond the 5% threshold
                graph.add_node(f"bulk{i}", ["N"])
            (outcome,) = backend.run(
                graph.snapshot(), calls, delta_source=graph.deltas_since
            )
            assert outcome.ok
            assert stats.snapshots_shipped == 2
            assert stats.deltas_shipped == 0
            assert outcome.result == Evaluator(graph).evaluate(
                parse_query(QUERY)
            )
        finally:
            backend.close()

    def test_without_delta_source_version_step_reships(self):
        graph = cycle_graph(6, node_label="N")
        stats = ClusterStats()
        backend = ProcessBackend(max_workers=2, stats=stats)
        calls = [ShardCall(QUERY, DEFAULT_CONFIG, None)]
        try:
            backend.run(graph.snapshot(), calls)
            graph.add_node("extra", ["N"])
            backend.run(graph.snapshot(), calls)
            assert stats.snapshots_shipped == 2
            assert stats.deltas_shipped == 0
        finally:
            backend.close()

    def test_other_graphs_deltas_never_patch_this_pool(self):
        """A backend shared across services over different graphs must
        refuse the delta path even when versions look compatible."""
        a = cycle_graph(6, node_label="A")
        b = cycle_graph(6, node_label="B")
        for i in range(3):
            b.add_node(f"extra{i}", ["B"])  # push b's version past a's
        stats = ClusterStats()
        backend = ProcessBackend(max_workers=2, stats=stats)
        try:
            backend.run(
                a.snapshot(),
                [ShardCall("TRAIL (x:A) -> (y)", DEFAULT_CONFIG, None)],
                delta_source=a.deltas_since,
            )
            (outcome,) = backend.run(
                b.snapshot(),
                [ShardCall("TRAIL (x:B) -> (y)", DEFAULT_CONFIG, None)],
                delta_source=b.deltas_since,
            )
            assert outcome.ok
            assert stats.deltas_shipped == 0
            assert stats.snapshots_shipped == 2
            assert outcome.result == Evaluator(b).evaluate(
                parse_query("TRAIL (x:B) -> (y)")
            )
        finally:
            backend.close()


class TestClusterServiceMutationHeavy:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_mixed_mutation_query_stream_stays_exact(self, backend):
        """Interleaved mutations and queries: every answer matches a
        one-shot evaluation of the current graph, whatever mix of
        caching, delta shipping and derivation served it."""
        graph = social_network(num_people=12, friend_degree=2, seed=5)
        text = "TRAIL (x:Person) -[e:knows]-> (y:Person)"
        with ClusterService(
            graph, backend=backend, num_workers=2
        ) as cluster:
            for i in range(6):
                result = cluster.evaluate(text)
                assert result == Evaluator(graph).evaluate(parse_query(text))
                people = sorted(graph.nodes_with_label("Person"))
                if i % 2:
                    cluster.add_node(f"p-new{i}", ["Person"])
                    cluster.add_edge(
                        f"k-new{i}", people[0], people[-1], ["knows"]
                    )
                else:
                    cluster.add_node(f"c-new{i}", ["City"])

    def test_cluster_cache_survives_disjoint_mutations(self):
        graph = social_network(num_people=12, friend_degree=2, seed=5)
        text = "TRAIL (x:Person) -[e:knows]-> (y:Person)"
        with ClusterService(
            graph, backend="serial", num_workers=2
        ) as cluster:
            first = cluster.evaluate(text)
            for i in range(4):
                cluster.add_node(f"station{i}", ["Station"])
            assert cluster.evaluate(text) is first
            assert cluster.stats.result_cache.restamps == 1
