"""SeedPartitioner: coverage, disjointness, balance, planner pruning."""

from __future__ import annotations

import pytest

from repro.cluster import SeedPartitioner
from repro.graph.builder import GraphBuilder
from repro.graph.generators import social_network
from repro.service import PreparedQuery


@pytest.fixture(scope="module")
def snap():
    return social_network(num_people=20, friend_degree=3, seed=11).snapshot()


class TestPartitionLaws:
    @pytest.mark.parametrize("parts", [1, 2, 3, 7])
    def test_disjoint_and_covering(self, snap, parts):
        cells = SeedPartitioner(parts).partition(snap)
        union = set()
        for cell in cells:
            assert not (union & cell), "cells must be disjoint"
            union |= cell
        assert union == set(snap.nodes)
        assert len(cells) <= parts

    def test_deterministic(self, snap):
        first = SeedPartitioner(4).partition(snap)
        second = SeedPartitioner(4).partition(snap)
        assert first == second

    def test_more_partitions_than_nodes(self):
        snap = GraphBuilder().node("a").node("b").build().snapshot()
        cells = SeedPartitioner(8).partition(snap)
        assert len(cells) == 2
        assert all(len(cell) == 1 for cell in cells)

    def test_degree_balance(self, snap):
        # Degree-weighted loads of LPT cells stay close: the heaviest
        # cell carries at most the ideal share plus one max node weight.
        cells = SeedPartitioner(4).partition(snap)
        loads = [
            sum(1 + snap.degree(node) for node in cell) for cell in cells
        ]
        total = sum(loads)
        heaviest_node = max(1 + snap.degree(n) for n in snap.nodes)
        assert max(loads) <= total / len(loads) + heaviest_node

    def test_empty_graph_yields_one_empty_cell(self):
        snap = GraphBuilder().build().snapshot()
        assert SeedPartitioner(4).partition(snap) == (frozenset(),)

    def test_validation(self):
        with pytest.raises(ValueError):
            SeedPartitioner(0)


class TestPlannerPruning:
    def test_universe_restricted_to_label_candidates(self, snap):
        prepared = PreparedQuery(
            "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)"
        )
        partitioner = SeedPartitioner(3)
        universe = partitioner.seed_universe(snap, prepared)
        assert set(universe) == set(snap.nodes_with_label("Person"))
        cells = partitioner.partition(snap, prepared)
        assert set().union(*cells) == set(universe)

    def test_unconstrained_query_uses_all_nodes(self, snap):
        prepared = PreparedQuery("TRAIL (x) -> (y)")
        universe = SeedPartitioner(3).seed_universe(snap, prepared)
        assert set(universe) == set(snap.nodes)

    def test_join_uses_leftmost_pattern(self, snap):
        prepared = PreparedQuery(
            "TRAIL (x:City) <-[:lives_in]- (y:Person), TRAIL (y:Person) -[:knows]-> (z)"
        )
        universe = SeedPartitioner(3).seed_universe(snap, prepared)
        assert set(universe) == set(snap.nodes_with_label("City"))

    def test_absent_label_short_circuits_to_empty(self, snap):
        prepared = PreparedQuery("SHORTEST (x:Ghost) -[:knows]->{1,} (y)")
        partitioner = SeedPartitioner(3)
        assert partitioner.seed_universe(snap, prepared) == ()
        assert partitioner.partition(snap, prepared) == (frozenset(),)

    def test_describe_mentions_universe_and_shards(self, snap):
        prepared = PreparedQuery(
            "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)"
        )
        text = SeedPartitioner(2).describe(snap, prepared)
        assert "seed universe" in text and "shard" in text


class TestShardability:
    """Only natively restrictable queries are worth splitting: a
    post-filtered restrictor would pay the full bounded evaluation in
    every shard (K-fold duplicated CPU for zero division)."""

    @pytest.mark.parametrize(
        "text,shardable",
        [
            ("SHORTEST (x:Person) -[:knows]->{1,} (y:Person)", True),
            ("SHORTEST (x:Person) -[:knows]->{1,} (y), TRAIL (y) -[:lives_in]-> (c)", True),
            ("TRAIL (x:Person) -[:knows]-> (y)", False),
            ("SIMPLE (x) ->{1,2} (y)", False),
            ("SHORTEST TRAIL (x) -> () -> (y)", False),
            ("TRAIL (x) -> (y), SHORTEST (y) ->{1,} (z)", False),
        ],
        ids=["shortest", "shortest-left-join", "trail", "simple",
             "shortest-trail", "trail-left-join"],
    )
    def test_shardable(self, snap, text, shardable):
        prepared = PreparedQuery(text)
        partitioner = SeedPartitioner(3)
        assert partitioner.shardable(prepared) is shardable
        cells = partitioner.partition(snap, prepared)
        if shardable:
            assert len(cells) == 3
        else:
            assert cells == (None,)

    def test_unsharded_describe(self, snap):
        prepared = PreparedQuery("TRAIL (x:Person) -[:knows]-> (y)")
        text = SeedPartitioner(2).describe(snap, prepared)
        assert "unsharded" in text
