"""Executor backends: outcome alignment, failure capture, snapshot
shipping, plan-cache warmth."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ProcessBackend,
    SerialBackend,
    ShardCall,
    ThreadBackend,
    make_backend,
)
from repro.cluster.stats import ClusterStats
from repro.gpc.engine import DEFAULT_CONFIG, EngineConfig, Evaluator
from repro.gpc.parser import parse_query
from repro.graph.generators import cycle_graph, social_network

QUERY = "TRAIL (x:Person) -[e:knows]-> (y:Person)"


@pytest.fixture(scope="module")
def snap():
    return social_network(num_people=10, friend_degree=2, seed=2).snapshot()


def _calls(snap, query=QUERY, config=DEFAULT_CONFIG, parts=3):
    nodes = sorted(snap.nodes)
    return [
        ShardCall(query, config, frozenset(nodes[i::parts]))
        for i in range(parts)
    ]


@pytest.fixture(
    params=["serial", "thread", "process"],
)
def backend(request):
    made = make_backend(request.param, 2, ClusterStats())
    yield made
    made.close()


class TestAllBackends:
    def test_outcomes_align_with_calls(self, snap, backend):
        calls = _calls(snap)
        outcomes = backend.run(snap, calls)
        assert len(outcomes) == len(calls)
        reference = Evaluator(snap).evaluate(parse_query(QUERY))
        merged = frozenset().union(*(o.result for o in outcomes))
        assert merged == reference
        for call, outcome in zip(calls, outcomes):
            assert outcome.ok
            assert outcome.elapsed_s >= 0.0
            assert all(
                answer.paths[0].src in call.restriction
                for answer in outcome.result
            )

    def test_failures_are_captured_not_raised(self, snap, backend):
        # A 1-entry intermediate-result budget fails evaluation inside
        # the worker; the sibling shard with a sane config succeeds.
        tiny = EngineConfig(max_intermediate_results=1)
        nodes = frozenset(snap.nodes)
        calls = [
            ShardCall(QUERY, tiny, nodes),
            ShardCall(QUERY, DEFAULT_CONFIG, nodes),
        ]
        outcomes = backend.run(snap, calls)
        assert not outcomes[0].ok and outcomes[0].result is None
        assert "intermediate result" in str(outcomes[0].error)
        assert outcomes[1].ok
        assert outcomes[1].result == Evaluator(snap).evaluate(
            parse_query(QUERY)
        )

    def test_empty_restriction_is_empty_answer_set(self, snap, backend):
        (outcome,) = backend.run(
            snap, [ShardCall(QUERY, DEFAULT_CONFIG, frozenset())]
        )
        assert outcome.ok and outcome.result == frozenset()


class TestSerialPlanCache:
    def test_prepared_query_reused_across_runs(self, snap):
        backend = SerialBackend()
        backend.run(snap, _calls(snap))
        backend.run(snap, _calls(snap))
        assert len(backend._plans) == 1  # one (query, config) pair

    def test_plan_cache_is_bounded(self, snap):
        from repro.cluster.backends import PLAN_CACHE_CAPACITY, ShardCall

        backend = SerialBackend()
        # Distinct (absent) labels: cheap to compile, empty to evaluate.
        queries = [
            f"TRAIL (x:Ghost{i}) -> (y)"
            for i in range(PLAN_CACHE_CAPACITY + 20)
        ]
        backend.run(
            snap,
            [ShardCall(q, DEFAULT_CONFIG, frozenset()) for q in queries],
        )
        assert len(backend._plans) == PLAN_CACHE_CAPACITY
        # The most recent plan survived eviction.
        assert (queries[-1], DEFAULT_CONFIG) in backend._plans


class TestProcessShipping:
    def test_snapshot_ships_once_per_version(self):
        graph = cycle_graph(6, node_label="N")
        stats = ClusterStats()
        backend = ProcessBackend(max_workers=2, stats=stats)
        try:
            snap = graph.snapshot()
            calls = [
                ShardCall("TRAIL (x:N) -> (y)", DEFAULT_CONFIG, None)
            ]
            for _ in range(3):
                outcomes = backend.run(snap, calls)
                assert outcomes[0].ok
            assert stats.snapshots_shipped == 1
            assert backend.pool_version == snap.version

            graph.add_node("extra", ["N"])
            fresh = graph.snapshot()
            outcomes = backend.run(fresh, calls)
            assert outcomes[0].ok
            assert stats.snapshots_shipped == 2
            assert backend.pool_version == fresh.version
            # The new version's answers include the new node's trails.
            assert outcomes[0].result == Evaluator(fresh).evaluate(
                parse_query("TRAIL (x:N) -> (y)")
            )
        finally:
            backend.close()

    def test_different_graphs_at_equal_versions_are_not_confused(self):
        """Regression: the warm-pool cache must key on snapshot
        identity, not the bare version number — two graphs are both at
        version 0 here."""
        a = cycle_graph(4, node_label="A")
        b = cycle_graph(4, node_label="B")
        assert a.version == b.version  # same mutation count, other graph
        backend = ProcessBackend(max_workers=2)
        try:
            call_b = [ShardCall("TRAIL (x:B) -> (y)", DEFAULT_CONFIG, None)]
            (out_a,) = backend.run(
                a.snapshot(),
                [ShardCall("TRAIL (x:A) -> (y)", DEFAULT_CONFIG, None)],
            )
            (out_b,) = backend.run(b.snapshot(), call_b)
            assert len(out_a.result) == 4
            assert len(out_b.result) == 4  # B's labels, not A's graph
            # The decisive check: evaluating the A-labelled query on
            # B's snapshot finds nothing (and vice versa would too).
            (cross,) = backend.run(
                b.snapshot(),
                [ShardCall("TRAIL (x:A) -> (y)", DEFAULT_CONFIG, None)],
            )
            assert cross.result == frozenset()
        finally:
            backend.close()

    def test_unchanged_graph_reuses_the_warm_pool(self):
        graph = cycle_graph(4, node_label="N")
        backend = ProcessBackend(max_workers=2)
        try:
            calls = [ShardCall("TRAIL (x:N) -> (y)", DEFAULT_CONFIG, None)]
            backend.run(graph.snapshot(), calls)
            executor = backend._executor
            backend.run(graph.snapshot(), calls)  # memoised snapshot
            assert backend._executor is executor
        finally:
            backend.close()

    def test_worker_tags_are_pids(self):
        snap = cycle_graph(4).snapshot()
        backend = ProcessBackend(max_workers=2)
        try:
            outcomes = backend.run(
                snap, [ShardCall("TRAIL ->", DEFAULT_CONFIG, None)] * 2
            )
            assert all(o.worker.startswith("pid-") for o in outcomes)
        finally:
            backend.close()


class TestMakeBackend:
    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert make_backend(backend, 4) is backend

    def test_injected_process_backend_adopts_stats(self):
        """Regression: a user-built ProcessBackend must report
        snapshot ships into the owning cluster's stats."""
        from repro.cluster import ClusterService

        backend = ProcessBackend(max_workers=2)
        with ClusterService(
            cycle_graph(4, node_label="N"), backend=backend
        ) as cluster:
            cluster.evaluate("SHORTEST (x:N) ->{1,} (y:N)")
            assert cluster.stats.snapshots_shipped == 1

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("quantum", 4)

    def test_names(self):
        assert SerialBackend().name == "serial"
        assert ThreadBackend(1).name == "thread"
        assert ProcessBackend(1).name == "process"
