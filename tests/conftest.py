"""Shared fixtures: the small graphs used across the suite."""

from __future__ import annotations

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.generators import (
    chain_graph,
    cycle_graph,
    section7_counterexample,
    theorem13_gadget,
)
from repro.graph.property_graph import PropertyGraph


@pytest.fixture
def empty_graph() -> PropertyGraph:
    return PropertyGraph()


@pytest.fixture
def tiny_graph() -> PropertyGraph:
    """Two Person nodes joined by a knows edge, plus properties."""
    return (
        GraphBuilder()
        .node("a", "Person", name="Ann", age=30)
        .node("b", "Person", name="Bob", age=40)
        .edge("a", "b", "knows", key="e1", since=2015)
        .build()
    )


@pytest.fixture
def diamond_graph() -> PropertyGraph:
    """A diamond: s -> m1 -> t and s -> m2 -> t, plus a direct s -> t."""
    return (
        GraphBuilder()
        .node("s", "S", k=1)
        .node("m1", "M", k=2)
        .node("m2", "M", k=2)
        .node("t", "T", k=1)
        .edge("s", "m1", "e", key="e1")
        .edge("m1", "t", "e", key="e2")
        .edge("s", "m2", "e", key="e3")
        .edge("m2", "t", "e", key="e4")
        .edge("s", "t", "direct", key="e5")
        .build()
    )


@pytest.fixture
def mixed_graph() -> PropertyGraph:
    """Directed and undirected edges, self-loops, multi-edges."""
    builder = (
        GraphBuilder()
        .node("u", "N", k=1)
        .node("v", "N", k=2)
        .node("w", "M")
        .edge("u", "v", "a", key="d1")
        .edge("u", "v", "a", key="d2")  # parallel edge
        .edge("u", "u", "loop", key="d3")  # directed self-loop
        .undirected("u", "v", "b", key="u1")
        .undirected("w", "w", "b", key="u2")  # undirected self-loop
    )
    return builder.build()


@pytest.fixture
def cycle4() -> PropertyGraph:
    return cycle_graph(4)


@pytest.fixture
def chain5() -> PropertyGraph:
    return chain_graph(5, value_key="v")


@pytest.fixture
def gadget13() -> PropertyGraph:
    return theorem13_gadget()


@pytest.fixture
def graph_s7() -> PropertyGraph:
    return section7_counterexample()
