"""Edge traversal directions, shared by the calculus and the automata
substrate.

Lives in its own leaf module so that :mod:`repro.gpc` (syntax and
semantics) and :mod:`repro.automata` (NFA substrate) can both use it
without importing each other.
"""

from __future__ import annotations

import enum

__all__ = ["Direction"]


class Direction(enum.Enum):
    """Edge-pattern direction: forward, backward, or undirected
    (the paper's three arrow forms)."""

    FORWARD = "->"
    BACKWARD = "<-"
    UNDIRECTED = "~"

    def __str__(self) -> str:
        return self.value
