"""repro — a reference implementation of GPC, the graph pattern
calculus underlying GQL and SQL/PGQ.

Reproduction of "GPC: A Pattern Calculus for Property Graphs"
(Francis et al., PODS 2023). The package provides:

- :mod:`repro.graph` — the property-graph data model (Section 2);
- :mod:`repro.gpc` — syntax, type system, and semantics of the
  calculus (Sections 3-5), plus GPC+ (Section 6);
- :mod:`repro.automata` — the regex/NFA substrate;
- :mod:`repro.baselines` — RPQ, 2RPQ, (U)C2RPQ, NRE and regular-query
  evaluators (the Section 6 comparison classes);
- :mod:`repro.translate` — the Theorem 11 constructive translations;
- :mod:`repro.enumeration` — answer enumeration and the Lemma 16/17
  bounds (Theorems 12-13);
- :mod:`repro.extensions` — Section 7 extensions (arithmetic
  conditions, the Proposition 14 gadget, mixed restrictors, label
  expressions, bag semantics);
- :mod:`repro.service` — the query-service runtime (prepared queries,
  versioned snapshots, plan/result caching, concurrent batches);
- :mod:`repro.cluster` — sharded scatter/gather serving (seed
  partitioning, serial/thread/process executor backends, merged
  cluster stats).

Quickstart
----------
>>> from repro import GraphBuilder, parse_query, evaluate
>>> g = (GraphBuilder()
...      .node("a", "Person", name="Ann")
...      .node("b", "Person", name="Bob")
...      .edge("a", "b", "knows")
...      .build())
>>> answers = evaluate(parse_query("TRAIL (x:Person) -[:knows]-> (y:Person)"), g)
>>> len(answers)
1
"""

from repro.direction import Direction
from repro.errors import GPCError
from repro.graph import GraphBuilder, GraphSnapshot, Path, PropertyGraph
from repro.gpc import (
    CollectMode,
    EngineConfig,
    Evaluator,
    GPCPlusQuery,
    QueryPlan,
    Restrictor,
    Rule,
    evaluate,
    parse_pattern,
    parse_query,
    pretty,
)
from repro.cluster import ClusterService
from repro.service import GraphService, PreparedQuery, ServiceStats

__version__ = "1.2.0"

__all__ = [
    "Direction",
    "GPCError",
    "GraphBuilder",
    "PropertyGraph",
    "GraphSnapshot",
    "Path",
    "CollectMode",
    "EngineConfig",
    "Evaluator",
    "QueryPlan",
    "GPCPlusQuery",
    "Rule",
    "Restrictor",
    "evaluate",
    "parse_pattern",
    "parse_query",
    "pretty",
    "GraphService",
    "PreparedQuery",
    "ServiceStats",
    "ClusterService",
]
