"""Nested regular expressions -> GPC+ (Theorem 11's interesting case).

The nesting operator ``[N]`` tests that an ``N``-path leaves the
current node. GPC has no subpath existence test, so the proof of
Theorem 11 encodes the test *inside the matched path*: bind the
current node to a fresh variable ``z``, traverse the nested pattern
away from ``z``, then walk back to ``z`` along arbitrary edges
(any direction) and continue. Repeating the variable forces the
return to the very same node, and the walk back always exists because
every traversed edge can be re-traversed in the opposite direction.
Projecting onto the endpoints (with ``shortest`` for finiteness)
yields exactly the NRE's answer relation.
"""

from __future__ import annotations

import itertools

from repro.gpc import ast
from repro.gpc.gpc_plus import GPCPlusQuery, Rule
from repro.baselines import nre as n

__all__ = ["nre_to_pattern", "nre_to_gpc_plus"]

#: A single step in any direction; its Kleene star is the "walk back"
#: pattern used to return from a nested test.
_ANY_STEP = ast.Union(
    ast.Union(ast.forward(), ast.backward()), ast.undirected()
)


def _walk_back() -> ast.Pattern:
    return ast.Repeat(_ANY_STEP, 0, None)


def nre_to_pattern(
    expression: n.NRE, counter: itertools.count | None = None
) -> ast.Pattern:
    """Translate an NRE into a GPC pattern whose endpoint pairs are the
    NRE's denotation. Fresh variables are drawn from ``counter``."""
    if counter is None:
        counter = itertools.count()
    return _translate(expression, counter)


def _translate(expression: n.NRE, counter: itertools.count) -> ast.Pattern:
    if isinstance(expression, n.NREEpsilon):
        return ast.node()
    if isinstance(expression, n.NRESymbol):
        if expression.inverse:
            return ast.backward(label=expression.label)
        return ast.forward(label=expression.label)
    if isinstance(expression, n.NRELabel):
        return ast.node(label=expression.label)
    if isinstance(expression, n.NRETest):
        anchor = f"__t{next(counter)}"
        inner = _translate(expression.inner, counter)
        # (z) inner walk-back (z): leaves z, checks the nested path,
        # and returns, pinning both endpoints to z.
        return ast.concat(ast.node(anchor), inner, _walk_back(), ast.node(anchor))
    if isinstance(expression, n.NREConcat):
        return ast.Concat(
            _translate(expression.left, counter),
            _translate(expression.right, counter),
        )
    if isinstance(expression, n.NREUnion):
        return ast.Union(
            _translate(expression.left, counter),
            _translate(expression.right, counter),
        )
    if isinstance(expression, n.NREStar):
        return ast.Repeat(_translate(expression.inner, counter), 0, None)
    raise TypeError(f"not an NRE: {expression!r}")


def nre_to_gpc_plus(expression: n.NRE) -> GPCPlusQuery:
    """``Ans(x, y) :- shortest (x) pi_N (y)``."""
    pattern = nre_to_pattern(expression)
    wrapped = ast.Concat(ast.Concat(ast.node("x"), pattern), ast.node("y"))
    query = ast.PatternQuery(ast.Restrictor.SHORTEST, wrapped)
    return GPCPlusQuery((Rule(("x", "y"), query),))
