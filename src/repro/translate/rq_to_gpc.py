"""Regular queries -> GPC+ (the full Appendix B construction).

The translation proceeds exactly as in the paper's appendix:

1. **Inlining.** Every *non-transitive* occurrence of a user-defined
   predicate is eliminated by exhaustively substituting its defining
   rules (with unification of head arguments and fresh renaming of the
   remaining variables). Afterwards user predicates occur only under
   transitive closure, plus in answer-rule bodies handled at step 4.

2. **Disconnected-rule elimination.** Rules whose bodies are not
   connected (viewing atoms as hyperedges on variables) are rewritten:

   - if the head variables lie in *different* components, the rule is
     split off into a fresh predicate ``dotP`` and every transitive
     atom ``P+(x, y)`` is replaced by the five alternatives of the
     appendix (at most one use of the disconnected rule is ever
     needed);
   - if the head variables share a component but extra components
     exist, those extra components are global Boolean side conditions:
     they are collected into a fresh ``bangP(z, z)`` predicate, and
     ``P+(x, y)`` is replaced by ``P+(x, y)`` or
     ``dotP+(x, y), bangP(z, z)``.

3. **Pattern construction.** For each remaining (connected, binary)
   predicate ``P``, a GPC pattern ``pi_P`` is built by structural
   recursion: base atoms become node/edge patterns, ``R+`` becomes
   ``pi_R{1,}``, and rule bodies become chains interleaved with
   ``[-> + <-]*`` connector walks, which is sound because connected
   bodies always match within one weakly-connected subgraph.

4. **Answer rules** become GPC+ rules joining one ``shortest``-pattern
   query per body atom.
"""

from __future__ import annotations

import itertools

from repro.errors import TranslationError
from repro.gpc import ast
from repro.gpc.gpc_plus import GPCPlusQuery, Rule
from repro.baselines.datalog import Clause, DatalogAtom
from repro.baselines.regular_queries import RegularQuery

__all__ = ["regular_query_to_gpc_plus"]

_MAX_REWRITES = 200

#: Connector walk between consecutive body atoms (the paper's
#: ``[-> + <-]^{0..infinity}``).
_CONNECTOR_STEP = ast.Union(ast.forward(), ast.backward())


def _connector() -> ast.Pattern:
    return ast.Repeat(_CONNECTOR_STEP, 0, None)


# ---------------------------------------------------------------------------
# Step 1: inline non-transitive user atoms
# ---------------------------------------------------------------------------


class _UnionFind:
    """Union-find over variable names, preferring 'original' variables
    (those of the host clause) as representatives so that clause heads
    keep their names under unification."""

    def __init__(self, preferred: set[str]):
        self.parent: dict[str, str] = {}
        self.preferred = preferred

    def find(self, variable: str) -> str:
        self.parent.setdefault(variable, variable)
        root = variable
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[variable] != root:
            self.parent[variable], variable = root, self.parent[variable]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        # Prefer original variables as representatives.
        if ra in self.preferred or (rb not in self.preferred and ra < rb):
            self.parent[rb] = ra
        else:
            self.parent[ra] = rb


def _substitute(atom: DatalogAtom, mapping) -> DatalogAtom:
    return DatalogAtom(
        atom.predicate,
        tuple(mapping(v) for v in atom.args),
        atom.transitive,
    )


def _inline_step(
    clause: Clause,
    index: int,
    definitions: list[Clause],
    counter: itertools.count,
) -> list[Clause]:
    """Replace the non-transitive user atom at ``index`` by each of its
    definitions, unifying head arguments with the atom's arguments."""
    atom = clause.body[index]
    results = []
    original_vars = {v for a in (clause.head, *clause.body) for v in a.args}
    for definition in definitions:
        fresh = {
            v: f"__i{next(counter)}"
            for a in (definition.head, *definition.body)
            for v in a.args
        }
        uf = _UnionFind(preferred=set(original_vars))
        for head_var, atom_var in zip(definition.head.args, atom.args):
            uf.union(fresh[head_var], atom_var)
        new_body = list(clause.body[:index]) + [
            _substitute(a, lambda v: fresh[v]) for a in definition.body
        ] + list(clause.body[index + 1 :])
        mapped_body = tuple(_substitute(a, uf.find) for a in new_body)
        mapped_head = _substitute(clause.head, uf.find)
        results.append(Clause(mapped_head, mapped_body))
    return results


def _inline_nontransitive(
    clauses: list[Clause], idb: frozenset[str], answer: str, counter: itertools.count
) -> list[Clause]:
    """Exhaustively inline non-transitive user atoms (non-recursive
    programs terminate)."""
    for _ in range(_MAX_REWRITES):
        for position, clause in enumerate(clauses):
            index = next(
                (
                    i
                    for i, a in enumerate(clause.body)
                    if not a.transitive and a.predicate in idb and a.predicate != answer
                ),
                None,
            )
            if index is not None:
                definitions = [
                    c
                    for c in clauses
                    if c.head.predicate == clause.body[index].predicate
                ]
                replacement = _inline_step(clause, index, definitions, counter)
                clauses = clauses[:position] + replacement + clauses[position + 1 :]
                break
        else:
            return clauses
    raise TranslationError("inlining did not terminate (program too large?)")


# ---------------------------------------------------------------------------
# Step 2: eliminate disconnected rules
# ---------------------------------------------------------------------------


def _components(clause: Clause) -> list[set[str]]:
    """Connected components of body variables (atoms are hyperedges)."""
    adjacency: dict[str, set[str]] = {}
    for atom in clause.body:
        for variable in atom.args:
            adjacency.setdefault(variable, set()).update(atom.args)
    components: list[set[str]] = []
    seen: set[str] = set()
    for variable in adjacency:
        if variable in seen:
            continue
        component = set()
        frontier = [variable]
        while frontier:
            v = frontier.pop()
            if v in component:
                continue
            component.add(v)
            frontier.extend(adjacency[v] - component)
        seen.update(component)
        components.append(component)
    return components


def _replace_transitive(
    clauses: list[Clause],
    predicate: str,
    variants,
    counter: itertools.count,
) -> list[Clause]:
    """Replace every transitive atom over ``predicate`` by each variant
    (a function from the atom and a fresh-name source to a list of
    replacement atoms); clauses multiply accordingly."""
    out: list[Clause] = []
    for clause in clauses:
        positions = [
            i
            for i, a in enumerate(clause.body)
            if a.transitive and a.predicate == predicate
        ]
        if not positions:
            out.append(clause)
            continue
        expansions: list[tuple[DatalogAtom, ...]] = [()]
        for i, atom in enumerate(clause.body):
            if i in positions:
                choices = [tuple(v(atom, counter)) for v in variants]
            else:
                choices = [(atom,)]
            expansions = [
                prefix + choice for prefix in expansions for choice in choices
            ]
        for body in expansions:
            out.append(Clause(clause.head, body))
    return out


def _eliminate_disconnected(
    clauses: list[Clause], answer: str, counter: itertools.count
) -> list[Clause]:
    for _ in range(_MAX_REWRITES):
        target = next(
            (
                c
                for c in clauses
                if c.head.predicate != answer and len(_components(c)) > 1
            ),
            None,
        )
        if target is None:
            return clauses
        predicate = target.head.predicate
        x1, x2 = target.head.args
        components = _components(target)
        component_of = {v: frozenset(comp) for comp in components for v in comp}
        clauses = [c for c in clauses if c is not target]
        if component_of[x1] != component_of[x2]:
            # Case (a): head variables in different components.
            dot = f"__dot{next(counter)}"
            clauses.append(Clause(DatalogAtom(dot, (x1, x2)), target.body))

            def v_keep(atom, _ctr):
                return [atom]

            def v_dot(atom, _ctr):
                return [DatalogAtom(dot, atom.args)]

            def v_dot_right(atom, ctr):
                m = f"__m{next(ctr)}"
                return [
                    DatalogAtom(dot, (atom.args[0], m)),
                    DatalogAtom(predicate, (m, atom.args[1]), transitive=True),
                ]

            def v_left_dot(atom, ctr):
                m = f"__m{next(ctr)}"
                return [
                    DatalogAtom(predicate, (atom.args[0], m), transitive=True),
                    DatalogAtom(dot, (m, atom.args[1])),
                ]

            def v_left_dot_right(atom, ctr):
                m1 = f"__m{next(ctr)}"
                m2 = f"__m{next(ctr)}"
                return [
                    DatalogAtom(predicate, (atom.args[0], m1), transitive=True),
                    DatalogAtom(dot, (m1, m2)),
                    DatalogAtom(predicate, (m2, atom.args[1]), transitive=True),
                ]

            clauses = _replace_transitive(
                clauses,
                predicate,
                [v_keep, v_dot, v_dot_right, v_left_dot, v_left_dot_right],
                counter,
            )
            # dot is now used non-transitively: inline it away.
            clauses = _inline_nontransitive(
                clauses, frozenset({dot}), answer, counter
            )
            clauses = [c for c in clauses if c.head.predicate != dot]
        else:
            # Case (b): head variables share a component; the remaining
            # components are global Boolean side conditions.
            main = component_of[x1]
            main_body = tuple(a for a in target.body if set(a.args) <= main)
            extra_body = tuple(a for a in target.body if not set(a.args) <= main)
            dot = f"__dot{next(counter)}"
            bang = f"__bang{next(counter)}"
            # dotP: all other rules of P, plus the main part of this one.
            for other in [c for c in clauses if c.head.predicate == predicate]:
                clauses.append(Clause(DatalogAtom(dot, other.head.args), other.body))
            clauses.append(Clause(DatalogAtom(dot, (x1, x2)), main_body))
            anchor = next(iter(extra_body[0].args))
            clauses.append(
                Clause(DatalogAtom(bang, (anchor, anchor)), extra_body)
            )

            def v_keep(atom, _ctr):
                return [atom]

            def v_side(atom, ctr):
                z = f"__z{next(ctr)}"
                return [
                    DatalogAtom(dot, atom.args, transitive=True),
                    DatalogAtom(bang, (z, z)),
                ]

            clauses = _replace_transitive(clauses, predicate, [v_keep, v_side], counter)
            # bang is used non-transitively: inline it away.
            clauses = _inline_nontransitive(
                clauses, frozenset({bang}), answer, counter
            )
            clauses = [c for c in clauses if c.head.predicate != bang]
    raise TranslationError(
        "disconnected-rule elimination did not terminate; the program may "
        "be pathological"
    )


# ---------------------------------------------------------------------------
# Steps 3 and 4: pattern construction
# ---------------------------------------------------------------------------


class _PatternBuilder:
    def __init__(self, clauses: list[Clause], answer: str):
        self.clauses = clauses
        self.answer = answer
        self.idb = frozenset(c.head.predicate for c in clauses)
        self.counter = itertools.count()
        self._memo: dict[str, ast.Pattern] = {}
        self._in_progress: set[str] = set()

    def fresh(self, base: str) -> str:
        return f"__v{next(self.counter)}_{base}"

    def predicate_pattern(self, predicate: str) -> ast.Pattern:
        """``pi_P`` with fresh variables on each *use* (callers must
        rename); memoised structurally, then alpha-renamed per use."""
        if predicate in self._in_progress:
            raise TranslationError(f"recursive predicate {predicate!r}")
        if predicate not in self._memo:
            self._in_progress.add(predicate)
            disjuncts = [
                self.clause_pattern(c)
                for c in self.clauses
                if c.head.predicate == predicate
            ]
            self._in_progress.discard(predicate)
            if not disjuncts:
                raise TranslationError(f"undefined predicate {predicate!r}")
            pattern = disjuncts[0]
            for disjunct in disjuncts[1:]:
                pattern = ast.Union(pattern, disjunct)
            self._memo[predicate] = pattern
        return _alpha_rename(self._memo[predicate], self.counter)

    def clause_pattern(self, clause: Clause) -> ast.Pattern:
        x1, x2 = clause.head.args
        rename = {
            v: self.fresh(v)
            for a in (clause.head, *clause.body)
            for v in a.args
        }
        parts: list[ast.Pattern] = [ast.node(rename[x1])]
        for body_atom in clause.body:
            parts.append(_connector())
            parts.append(self.atom_pattern(body_atom, rename))
        parts.append(_connector())
        parts.append(ast.node(rename[x2]))
        return ast.concat(*parts)

    def atom_pattern(self, body_atom: DatalogAtom, rename) -> ast.Pattern:
        if len(body_atom.args) == 1:
            if body_atom.predicate in self.idb:
                raise TranslationError(
                    f"unary user predicate {body_atom.predicate!r} is not a "
                    f"regular-query construct"
                )
            return ast.node(rename[body_atom.args[0]], body_atom.predicate)
        subject, object_ = (rename[v] for v in body_atom.args)
        core = self.binary_core(body_atom)
        return ast.concat(ast.node(subject), core, ast.node(object_))

    def binary_core(self, body_atom: DatalogAtom) -> ast.Pattern:
        """The variable-free/fresh-variable pattern between an atom's
        endpoints."""
        if body_atom.predicate in self.idb:
            if not body_atom.transitive:
                raise TranslationError(
                    f"non-transitive user atom {body_atom} survived inlining"
                )
            return ast.Repeat(self.predicate_pattern(body_atom.predicate), 1, None)
        base = ast.forward(label=body_atom.predicate)
        if body_atom.transitive:
            return ast.Repeat(base, 1, None)
        return base


def _alpha_rename(pattern: ast.Pattern, counter: itertools.count) -> ast.Pattern:
    """Rename every variable in ``pattern`` freshly (consistently)."""
    mapping: dict[str, str] = {}

    def rename(variable: str | None) -> str | None:
        if variable is None:
            return None
        if variable not in mapping:
            mapping[variable] = f"__r{next(counter)}_{variable}"
        return mapping[variable]

    def walk(p: ast.Pattern) -> ast.Pattern:
        if isinstance(p, ast.NodePattern):
            return ast.node(rename(p.variable), p.label)
        if isinstance(p, ast.EdgePattern):
            return ast.edge(p.direction, rename(p.variable), p.label)
        if isinstance(p, ast.Union):
            return ast.Union(walk(p.left), walk(p.right))
        if isinstance(p, ast.Concat):
            return ast.Concat(walk(p.left), walk(p.right))
        if isinstance(p, ast.Repeat):
            return ast.Repeat(walk(p.pattern), p.lower, p.upper)
        if isinstance(p, ast.Conditioned):
            raise TranslationError("conditions cannot occur in RQ patterns")
        raise TypeError(f"not a pattern: {p!r}")

    return walk(pattern)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def regular_query_to_gpc_plus(query: RegularQuery) -> GPCPlusQuery:
    """Compile a regular query into an equivalent GPC+ query."""
    program = query.program
    answer = program.answer_predicate
    counter = itertools.count()
    clauses = _inline_nontransitive(
        list(program.clauses), program.idb_predicates, answer, counter
    )
    clauses = _eliminate_disconnected(clauses, answer, counter)
    builder = _PatternBuilder(clauses, answer)

    rules = []
    for clause in clauses:
        if clause.head.predicate != answer:
            continue
        joined: ast.Query | None = None
        for body_atom in clause.body:
            if len(body_atom.args) == 1:
                pattern: ast.Pattern = ast.node(
                    body_atom.args[0], body_atom.predicate
                )
            else:
                subject, object_ = body_atom.args
                core = builder.binary_core(body_atom)
                pattern = ast.concat(ast.node(subject), core, ast.node(object_))
            item = ast.PatternQuery(ast.Restrictor.SHORTEST, pattern)
            joined = item if joined is None else ast.Join(joined, item)
        if joined is None:
            raise TranslationError("empty answer-rule body")
        rules.append(Rule(tuple(clause.head.args), joined))
    if not rules:
        raise TranslationError("no answer rules after preprocessing")
    return GPCPlusQuery(tuple(rules))
