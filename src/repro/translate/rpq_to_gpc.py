"""RPQ / 2RPQ / (U)C2RPQ -> GPC+ (the easy cases of Theorem 11).

2RPQs embed directly: regex symbols become edge patterns (inverse
symbols become backward edge patterns), regex operators map to the
corresponding GPC operators, and the endpoints are captured by node
variables. Since only endpoint pairs matter, the ``shortest``
restrictor suffices for finiteness without changing the answer set.

C2RPQs become joins of such pattern queries (shared variables join
implicitly); UC2RPQs become multi-rule GPC+ queries.
"""

from __future__ import annotations

import itertools

from repro.errors import TranslationError
from repro.gpc import ast
from repro.gpc.gpc_plus import GPCPlusQuery, Rule
from repro.automata import regex as rx
from repro.baselines.c2rpq import C2RPQ, UC2RPQ

__all__ = [
    "regex_to_pattern",
    "rpq_to_gpc_plus",
    "c2rpq_to_gpc_plus",
    "uc2rpq_to_gpc_plus",
]


def regex_to_pattern(regex: rx.Regex) -> ast.Pattern:
    """Translate a (2)RPQ regular expression into a variable-free GPC
    pattern matching exactly the paths whose traversal word is in the
    regex's language."""
    if isinstance(regex, rx.Epsilon):
        return ast.node()
    if isinstance(regex, rx.Symbol):
        if regex.inverse:
            return ast.backward(label=regex.label)
        return ast.forward(label=regex.label)
    if isinstance(regex, rx.Concat):
        return ast.Concat(regex_to_pattern(regex.left), regex_to_pattern(regex.right))
    if isinstance(regex, rx.Union):
        return ast.Union(regex_to_pattern(regex.left), regex_to_pattern(regex.right))
    if isinstance(regex, rx.Star):
        return ast.Repeat(regex_to_pattern(regex.inner), 0, None)
    if isinstance(regex, rx.Plus):
        return ast.Repeat(regex_to_pattern(regex.inner), 1, None)
    if isinstance(regex, rx.Option):
        return ast.Repeat(regex_to_pattern(regex.inner), 0, 1)
    raise TypeError(f"not a regex: {regex!r}")


def _endpoint_query(
    subject: str, pattern: ast.Pattern, object_: str
) -> ast.PatternQuery:
    """``shortest (subject) pattern (object)``."""
    wrapped = ast.Concat(ast.Concat(ast.node(subject), pattern), ast.node(object_))
    return ast.PatternQuery(ast.Restrictor.SHORTEST, wrapped)


def rpq_to_gpc_plus(regex: rx.Regex | str) -> GPCPlusQuery:
    """``Ans(x, y) :- shortest (x) pi_regex (y)``."""
    if isinstance(regex, str):
        regex = rx.parse_regex(regex)
    query = _endpoint_query("x", regex_to_pattern(regex), "y")
    return GPCPlusQuery((Rule(("x", "y"), query),))


def _c2rpq_rule(query: C2RPQ) -> Rule:
    joined: ast.Query | None = None
    for atom in query.atoms:
        pattern_query = _endpoint_query(
            atom.subject, regex_to_pattern(atom.parsed_regex()), atom.object
        )
        joined = pattern_query if joined is None else ast.Join(joined, pattern_query)
    if joined is None:
        # C2RPQ construction validates non-empty atoms, but a raise
        # (unlike an assert) survives ``python -O``.
        raise TranslationError("C2RPQ has no atoms to translate")
    return Rule(tuple(query.head), joined)


def c2rpq_to_gpc_plus(query: C2RPQ) -> GPCPlusQuery:
    """A C2RPQ becomes a single GPC+ rule joining one pattern query per
    atom."""
    return GPCPlusQuery((_c2rpq_rule(query),))


def uc2rpq_to_gpc_plus(query: UC2RPQ) -> GPCPlusQuery:
    """A UC2RPQ becomes one GPC+ rule per disjunct."""
    return GPCPlusQuery(
        tuple(
            itertools.chain.from_iterable(
                (_c2rpq_rule(disjunct),) for disjunct in query.disjuncts
            )
        )
    )
