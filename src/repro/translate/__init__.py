"""Constructive translations into GPC+ (Theorem 11 / Appendix B).

Every baseline class of Section 6 is compiled into an equivalent GPC+
query:

- :mod:`repro.translate.rpq_to_gpc` — (2)RPQs and (U)C2RPQs;
- :mod:`repro.translate.nre_to_gpc` — nested regular expressions,
  using the paper's "check and come back" trick for nested tests;
- :mod:`repro.translate.rq_to_gpc` — regular queries, including the
  Appendix B program preprocessing (inlining of non-transitive
  predicates and elimination of disconnected rule bodies).

The differential tests in ``tests/translate`` verify, on randomly
generated graphs, that each translation returns exactly the answers of
the corresponding baseline evaluator.
"""

from repro.translate.rpq_to_gpc import (
    c2rpq_to_gpc_plus,
    regex_to_pattern,
    rpq_to_gpc_plus,
    uc2rpq_to_gpc_plus,
)
from repro.translate.nre_to_gpc import nre_to_gpc_plus, nre_to_pattern
from repro.translate.rq_to_gpc import regular_query_to_gpc_plus

__all__ = [
    "regex_to_pattern",
    "rpq_to_gpc_plus",
    "c2rpq_to_gpc_plus",
    "uc2rpq_to_gpc_plus",
    "nre_to_pattern",
    "nre_to_gpc_plus",
    "regular_query_to_gpc_plus",
]
