"""Shared workloads for the experiment suite.

Central definitions keep the benchmarks, the tests that sanity-check
them, and EXPERIMENTS.md in agreement about what exactly was run.
"""

from __future__ import annotations

import random

from repro.gpc import ast
from repro.gpc.parser import parse_pattern
from repro.graph import generators
from repro.graph.property_graph import PropertyGraph

__all__ = [
    "grammar_corpus",
    "typing_corpus",
    "finiteness_workloads",
    "expressivity_graphs",
    "deep_pattern",
]


def grammar_corpus() -> list[str]:
    """Concrete-syntax snippets covering every Figure 1 production:
    node/edge patterns in all direction/descriptor combinations, union,
    concatenation, conditioning, all repetition forms, every restrictor
    (queries are exercised in ``parse_query`` form by the benchmarks)."""
    return [
        "()",
        "(x)",
        "(:A)",
        "(x:A)",
        "->",
        "<-",
        "~",
        "-[e]->",
        "-[:knows]->",
        "-[e:knows]->",
        "<-[e:knows]-",
        "~[e:knows]~",
        "(x) -> (y)",
        "(x) <- (y) ~ (z)",
        "(x:A) + (x:B)",
        "[(x:A) -> (y)] + [(x:A) <- (y)]",
        "(x)*",
        "->{2,5}",
        "->{3}",
        "->{2,}",
        "->{0,4}",
        "[-[e:a]-> (m:Mid)]{1,3}",
        "(x) << x.k = 5 >>",
        "(x) << x.name = 'Ann' >>",
        "[(x) -> (y)] << x.k = y.k >>",
        "(x) << x.a = 1 AND (x.b = 2 OR NOT x.c = 3) >>",
        "(x) << x.flag = TRUE >>",
        "[(x:A) -[e]->{1,} (y:B)] << x.k = y.k >>",
        "[(a) -> (b) + (a) <- (b)]{0,2} << a.v = b.v >>",
    ]


def typing_corpus() -> list[ast.Pattern]:
    """Patterns exercising every Figure 2 rule (including Maybe and
    Group nesting)."""
    texts = [
        "(x) -> (y)",
        "(x:A) + ()",
        "[(x) -> (y)] + [(y) <- (x)]",
        "[(x) -> (y)] + (y)",
        "[-[e]->]{1,3}",
        "[[-[e]->]{1,2}]{1,2}",
        "[(x) + ()] -> (z)",
        "[(x) << x.k = 1 >>] + ()",
        "(x) [(y) + ()] (x)",
    ]
    return [parse_pattern(text) for text in texts]


def deep_pattern(depth: int) -> ast.Pattern:
    """A deeply nested pattern for scaling the type checker."""
    pattern: ast.Pattern = ast.node("v0")
    for i in range(1, depth):
        pattern = ast.Union(
            ast.Concat(pattern, ast.forward(f"e{i}")),
            ast.node(f"v{i}"),
        )
    return pattern


def finiteness_workloads() -> list[tuple[str, PropertyGraph]]:
    """Cyclic graphs where unrestricted answer sets are infinite."""
    return [
        ("cycle-4", generators.cycle_graph(4)),
        ("cycle-8", generators.cycle_graph(8)),
        ("two-cliques", generators.two_cliques_bridge(3)),
        ("ladder-3", generators.ladder_graph(3)),
    ]


def expressivity_graphs(count: int = 5, seed: int = 7) -> list[PropertyGraph]:
    """Random edge-labeled digraphs for differential testing."""
    rng = random.Random(seed)
    graphs = []
    for _ in range(count):
        nodes = rng.randrange(4, 8)
        edges = rng.randrange(nodes, nodes * 2 + 1)
        graphs.append(
            generators.random_labeled_digraph(
                nodes, edges, edge_labels=("a", "b"), node_labels=("A", "B"),
                seed=rng.randrange(10_000),
            )
        )
    return graphs
