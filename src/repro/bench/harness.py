"""Tiny experiment harness used by the ``benchmarks/`` suite.

Each benchmark regenerates one of the paper's formal results as a
printed table (the analogue of the paper's "figures"); pytest-benchmark
supplies the timing machinery, and :class:`Table` renders the measured
series so the run log doubles as the experiment report captured in
``EXPERIMENTS.md``.

For machine-readable tracking across PRs, set the environment variable
``REPRO_BENCH_JSON`` to a directory: every :meth:`Table.show` then also
writes ``BENCH_<slug>.json`` there (series as a list of row dicts),
so CI can archive the perf trajectory without scraping stdout.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

__all__ = ["Table", "time_call", "emit_json"]

#: Directory for machine-readable benchmark results ("" disables).
JSON_ENV_VAR = "REPRO_BENCH_JSON"


def _slug(title: str) -> str:
    return re.sub(r"[^A-Za-z0-9]+", "_", title).strip("_").lower()


def emit_json(name: str, payload: Any) -> Path | None:
    """Write ``BENCH_<name>.json`` into ``$REPRO_BENCH_JSON``.

    No-op (returns ``None``) when the variable is unset or empty, so
    interactive runs stay file-free.
    """
    target_dir = os.environ.get(JSON_ENV_VAR, "")
    if not target_dir:
        return None
    directory = Path(target_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{_slug(name)}.json"
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path


@dataclass
class Table:
    """A fixed-width ASCII table accumulated row by row."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values for {len(self.headers)} headers"
            )
        self.rows.append(values)

    def render(self) -> str:
        cells = [[str(h) for h in self.headers]] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.headers))
        ]
        lines = [self.title, "-" * len(self.title)]
        for index, row in enumerate(cells):
            lines.append(
                "  ".join(value.rjust(width) for value, width in zip(row, widths))
            )
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        """A JSON-serialisable form: title plus one dict per row."""
        return {
            "title": self.title,
            "rows": [
                dict(zip(self.headers, row)) for row in self.rows
            ],
        }

    def show(self) -> None:
        print("\n" + self.render())
        emit_json(self.title, self.as_dict())


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100 or value == 0:
            return f"{value:.1f}"
        if value >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def time_call(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` once, returning ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
