"""Tiny experiment harness used by the ``benchmarks/`` suite.

Each benchmark regenerates one of the paper's formal results as a
printed table (the analogue of the paper's "figures"); pytest-benchmark
supplies the timing machinery, and :class:`Table` renders the measured
series so the run log doubles as the experiment report captured in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = ["Table", "time_call"]


@dataclass
class Table:
    """A fixed-width ASCII table accumulated row by row."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values for {len(self.headers)} headers"
            )
        self.rows.append(values)

    def render(self) -> str:
        cells = [[str(h) for h in self.headers]] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.headers))
        ]
        lines = [self.title, "-" * len(self.title)]
        for index, row in enumerate(cells):
            lines.append(
                "  ".join(value.rjust(width) for value, width in zip(row, widths))
            )
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render())


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100 or value == 0:
            return f"{value:.1f}"
        if value >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def time_call(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` once, returning ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
