"""Benchmark support: experiment harness and shared workloads."""

from repro.bench.harness import Table, time_call
from repro.bench import workloads

__all__ = ["Table", "time_call", "workloads"]
