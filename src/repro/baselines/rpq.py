"""Regular path queries (RPQs) and their two-way extension (2RPQs).

An RPQ returns all node pairs connected by a directed path whose edge
labels spell a word in a regular language [Cruz-Mendelzon-Wood 1987].
2RPQs add inverse symbols ``a-`` that traverse an ``a``-edge backwards
[Calvanese et al. 2000]. Both are evaluated with the classical
product-automaton construction in PTIME.

These baselines operate on the directed, edge-labeled fragment of
property graphs (the RPQ literature's data model); undirected edges
are ignored, as the formalism predates them.
"""

from __future__ import annotations

from repro.graph.ids import NodeId
from repro.graph.property_graph import PropertyGraph
from repro.automata.product import accepted_pairs, pairs_and_distances
from repro.automata.regex import Regex, parse_regex, regex_to_nfa

__all__ = ["eval_rpq", "eval_rpq_regex", "rpq_distances"]


def eval_rpq_regex(
    graph: PropertyGraph, regex: Regex
) -> frozenset[tuple[NodeId, NodeId]]:
    """Evaluate a (2)RPQ given as a regex AST."""
    return accepted_pairs(graph, regex_to_nfa(regex))


def eval_rpq(graph: PropertyGraph, expression: str) -> frozenset[tuple[NodeId, NodeId]]:
    """Evaluate a (2)RPQ given in concrete syntax, e.g. ``"(a b-)* c"``."""
    return eval_rpq_regex(graph, parse_regex(expression))


def rpq_distances(
    graph: PropertyGraph, regex: Regex
) -> dict[tuple[NodeId, NodeId], int]:
    """Like :func:`eval_rpq_regex` but also returns, per pair, the
    length of the shortest witnessing path."""
    return pairs_and_distances(graph, regex_to_nfa(regex))
