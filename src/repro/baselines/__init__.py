"""Baseline graph query formalisms (Section 6 of the paper).

The classes GPC+ is compared against in Theorem 11, each implemented
from scratch with its textbook evaluation algorithm:

- :mod:`repro.baselines.rpq` — (two-way) regular path queries via the
  NFA-product construction;
- :mod:`repro.baselines.c2rpq` — conjunctive 2RPQs and their unions
  via relation joins;
- :mod:`repro.baselines.nre` — nested regular expressions via the
  relational fixpoint algorithm;
- :mod:`repro.baselines.datalog` — a non-recursive Datalog substrate
  with transitive atoms ``R+(x, y)``;
- :mod:`repro.baselines.regular_queries` — regular queries on top of
  the Datalog substrate.
"""

from repro.baselines.rpq import eval_rpq, eval_rpq_regex
from repro.baselines.c2rpq import Atom, C2RPQ, UC2RPQ, eval_c2rpq, eval_uc2rpq
from repro.baselines.nre import (
    NRE,
    NREConcat,
    NREEpsilon,
    NRELabel,
    NREStar,
    NRESymbol,
    NRETest,
    NREUnion,
    eval_nre,
)
from repro.baselines.datalog import DatalogAtom, Clause, Program, evaluate_program
from repro.baselines.regular_queries import RegularQuery, eval_regular_query

__all__ = [
    "eval_rpq",
    "eval_rpq_regex",
    "Atom",
    "C2RPQ",
    "UC2RPQ",
    "eval_c2rpq",
    "eval_uc2rpq",
    "NRE",
    "NREEpsilon",
    "NRESymbol",
    "NRELabel",
    "NRETest",
    "NREConcat",
    "NREUnion",
    "NREStar",
    "eval_nre",
    "DatalogAtom",
    "Clause",
    "Program",
    "evaluate_program",
    "RegularQuery",
    "eval_regular_query",
]
