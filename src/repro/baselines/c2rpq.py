"""Conjunctive two-way regular path queries and their unions.

A C2RPQ is a conjunction of 2RPQ atoms ``(x, regex, y)`` over node
variables, with a projection head [Consens-Mendelzon 1990, Calvanese
et al. 2000]; a UC2RPQ is a union of C2RPQs of the same arity. They
are evaluated by materialising each atom's pair relation with the
product automaton, then hash-joining the relations in order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union as TUnion

from repro.errors import TranslationError
from repro.graph.ids import NodeId
from repro.graph.property_graph import PropertyGraph
from repro.automata.regex import Regex, parse_regex
from repro.baselines.rpq import eval_rpq_regex

__all__ = ["Atom", "C2RPQ", "UC2RPQ", "eval_c2rpq", "eval_uc2rpq"]


@dataclass(frozen=True)
class Atom:
    """One 2RPQ atom ``regex(subject, object)``."""

    subject: str
    regex: TUnion[Regex, str]
    object: str

    def parsed_regex(self) -> Regex:
        if isinstance(self.regex, str):
            return parse_regex(self.regex)
        return self.regex


@dataclass(frozen=True)
class C2RPQ:
    """``Ans(head) :- atom_1, ..., atom_k`` (all variables node-typed)."""

    head: tuple[str, ...]
    atoms: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not self.atoms:
            raise TranslationError("a C2RPQ needs at least one atom")
        variables = self.variables
        for head_variable in self.head:
            if head_variable not in variables:
                raise TranslationError(
                    f"head variable {head_variable!r} not used in any atom"
                )

    @property
    def variables(self) -> frozenset[str]:
        out = set()
        for atom in self.atoms:
            out.add(atom.subject)
            out.add(atom.object)
        return frozenset(out)


@dataclass(frozen=True)
class UC2RPQ:
    """A union of C2RPQs with a common head arity."""

    disjuncts: tuple[C2RPQ, ...]

    def __post_init__(self) -> None:
        if not self.disjuncts:
            raise TranslationError("a UC2RPQ needs at least one disjunct")
        arities = {len(d.head) for d in self.disjuncts}
        if len(arities) != 1:
            raise TranslationError(
                f"all disjuncts must share the head arity, found {sorted(arities)}"
            )


def eval_c2rpq(
    graph: PropertyGraph, query: C2RPQ
) -> frozenset[tuple[NodeId, ...]]:
    """Evaluate by materialising atom relations and joining them."""
    # Start from the single empty binding and join in each atom.
    bindings: list[dict[str, NodeId]] = [{}]
    for atom in query.atoms:
        relation = eval_rpq_regex(graph, atom.parsed_regex())
        new_bindings: list[dict[str, NodeId]] = []
        for binding in bindings:
            bound_subject = binding.get(atom.subject)
            bound_object = binding.get(atom.object)
            for subject, object_ in relation:
                if bound_subject is not None and subject != bound_subject:
                    continue
                if bound_object is not None and object_ != bound_object:
                    continue
                if atom.subject == atom.object and subject != object_:
                    continue
                extended = dict(binding)
                extended[atom.subject] = subject
                extended[atom.object] = object_
                new_bindings.append(extended)
        bindings = new_bindings
        if not bindings:
            break
    return frozenset(
        tuple(binding[variable] for variable in query.head) for binding in bindings
    )


def eval_uc2rpq(
    graph: PropertyGraph, query: UC2RPQ
) -> frozenset[tuple[NodeId, ...]]:
    """Union of the disjuncts' answers."""
    out: set[tuple[NodeId, ...]] = set()
    for disjunct in query.disjuncts:
        out.update(eval_c2rpq(graph, disjunct))
    return frozenset(out)
