"""Regular queries (RQs) — non-recursive Datalog with transitive atoms.

A regular query [Reutter-Romero-Vardi 2017] is a non-recursive Datalog
program where every non-answer IDB predicate is *binary* and transitive
atoms ``R+(x, y)`` may appear in rule bodies. RQs subsume UC2RPQs and
NREs and are the largest class Theorem 11 places inside GPC+.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DatalogError
from repro.graph.ids import NodeId
from repro.graph.property_graph import PropertyGraph
from repro.baselines.datalog import Clause, DatalogAtom, Program, evaluate_program

__all__ = ["RegularQuery", "eval_regular_query", "atom", "tatom", "clause"]


def atom(predicate: str, *args: str) -> DatalogAtom:
    """Convenience: a plain atom ``predicate(args)``."""
    return DatalogAtom(predicate, args)


def tatom(predicate: str, x: str, y: str) -> DatalogAtom:
    """Convenience: a transitive atom ``predicate+(x, y)``."""
    return DatalogAtom(predicate, (x, y), transitive=True)


def clause(head: DatalogAtom, *body: DatalogAtom) -> Clause:
    """Convenience: ``head :- body``."""
    return Clause(head, tuple(body))


@dataclass(frozen=True)
class RegularQuery:
    """A validated regular query."""

    program: Program

    def __post_init__(self) -> None:
        self.program.check_nonrecursive()
        answer = self.program.answer_predicate
        for program_clause in self.program.clauses:
            head = program_clause.head
            if head.predicate != answer and len(head.args) != 2:
                raise DatalogError(
                    f"regular queries require binary non-answer predicates; "
                    f"{head.predicate!r} has arity {len(head.args)}"
                )
            for body_atom in program_clause.body:
                if (
                    body_atom.transitive
                    and body_atom.predicate == answer
                ):
                    raise DatalogError(
                        "the answer predicate cannot appear under transitive "
                        "closure"
                    )

    @property
    def arity(self) -> int:
        for program_clause in self.program.clauses:
            if program_clause.head.predicate == self.program.answer_predicate:
                return len(program_clause.head.args)
        raise DatalogError("no answer clause")  # unreachable: Program validates


def eval_regular_query(
    graph: PropertyGraph, query: RegularQuery
) -> frozenset[tuple[NodeId, ...]]:
    """The answer relation of the regular query on ``graph``."""
    relations = evaluate_program(graph, query.program)
    return relations[query.program.answer_predicate]
