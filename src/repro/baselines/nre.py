"""Nested regular expressions (NREs).

NREs [Barcelo-Perez-Reutter 2012] extend 2RPQs with *nesting*: along a
path, ``[N]`` tests that a path matching the nested expression ``N``
starts at the current node (as in PDL or XPath). The standard
evaluation computes, bottom-up, the binary relation each subexpression
denotes:

- ``eps``          -> identity;
- ``a`` / ``a-``   -> labeled edges, forward / backward;
- ``(:A)``         -> identity restricted to ``A``-labeled nodes;
- ``[N]``          -> identity restricted to nodes with an outgoing
  ``N``-path;
- concatenation    -> relation composition;
- union            -> relation union;
- star             -> reflexive-transitive closure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union as TUnion

from repro.graph.ids import NodeId
from repro.graph.property_graph import PropertyGraph

__all__ = [
    "NRE",
    "NREEpsilon",
    "NRESymbol",
    "NRELabel",
    "NRETest",
    "NREConcat",
    "NREUnion",
    "NREStar",
    "eval_nre",
    "nre_size",
]


@dataclass(frozen=True)
class NREEpsilon:
    """The empty word."""


@dataclass(frozen=True)
class NRESymbol:
    """An edge label, optionally inverse."""

    label: str
    inverse: bool = False


@dataclass(frozen=True)
class NRELabel:
    """A node-label test (the straightforward node-label extension the
    paper's Appendix B mentions)."""

    label: str


@dataclass(frozen=True)
class NRETest:
    """The nesting operator ``[N]``."""

    inner: "NRE"


@dataclass(frozen=True)
class NREConcat:
    left: "NRE"
    right: "NRE"


@dataclass(frozen=True)
class NREUnion:
    left: "NRE"
    right: "NRE"


@dataclass(frozen=True)
class NREStar:
    inner: "NRE"


NRE = TUnion[NREEpsilon, NRESymbol, NRELabel, NRETest, NREConcat, NREUnion, NREStar]

Relation = frozenset[tuple[NodeId, NodeId]]


def nre_size(expression: NRE) -> int:
    """Number of AST nodes."""
    if isinstance(expression, (NREEpsilon, NRESymbol, NRELabel)):
        return 1
    if isinstance(expression, (NREConcat, NREUnion)):
        return 1 + nre_size(expression.left) + nre_size(expression.right)
    return 1 + nre_size(expression.inner)


def _identity(graph: PropertyGraph) -> Relation:
    return frozenset((node, node) for node in graph.nodes)


def _compose(left: Relation, right: Relation) -> Relation:
    by_source: dict[NodeId, set[NodeId]] = {}
    for a, b in right:
        by_source.setdefault(a, set()).add(b)
    out: set[tuple[NodeId, NodeId]] = set()
    for a, b in left:
        for c in by_source.get(b, ()):
            out.add((a, c))
    return frozenset(out)


def _closure(graph: PropertyGraph, relation: Relation) -> Relation:
    """Reflexive-transitive closure via per-node BFS."""
    successors: dict[NodeId, set[NodeId]] = {}
    for a, b in relation:
        successors.setdefault(a, set()).add(b)
    out: set[tuple[NodeId, NodeId]] = set()
    for start in graph.nodes:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for successor in successors.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        out.update((start, node) for node in seen)
    return frozenset(out)


def eval_nre(graph: PropertyGraph, expression: NRE) -> Relation:
    """The binary relation denoted by ``expression`` on ``graph``."""
    if isinstance(expression, NREEpsilon):
        return _identity(graph)
    if isinstance(expression, NRESymbol):
        out: set[tuple[NodeId, NodeId]] = set()
        for edge in graph.directed_edges:
            if expression.label in graph.labels(edge):
                pair = (graph.source(edge), graph.target(edge))
                if expression.inverse:
                    pair = (pair[1], pair[0])
                out.add(pair)
        return frozenset(out)
    if isinstance(expression, NRELabel):
        return frozenset(
            (node, node)
            for node in graph.nodes_with_label(expression.label)
        )
    if isinstance(expression, NRETest):
        inner = eval_nre(graph, expression.inner)
        sources = {a for a, _ in inner}
        return frozenset((node, node) for node in sources)
    if isinstance(expression, NREConcat):
        return _compose(
            eval_nre(graph, expression.left), eval_nre(graph, expression.right)
        )
    if isinstance(expression, NREUnion):
        return frozenset(
            eval_nre(graph, expression.left) | eval_nre(graph, expression.right)
        )
    if isinstance(expression, NREStar):
        return _closure(graph, eval_nre(graph, expression.inner))
    raise TypeError(f"not an NRE: {expression!r}")
