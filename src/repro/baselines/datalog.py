"""Non-recursive Datalog with transitive atoms — the regular-query
substrate.

A *regular query* [Reutter-Romero-Vardi 2017] is a non-recursive
Datalog program whose rule bodies may use transitive atoms ``R+(x, y)``
over binary predicates. This module provides the generic substrate:

- EDB predicates come from the graph: a binary predicate per edge
  label (``a(x, y)`` holds iff some ``a``-labeled directed edge goes
  from ``x`` to ``y``) and a unary predicate per node label;
- IDB predicates are defined by clauses and evaluated bottom-up in
  dependency order (the program must be non-recursive);
- ``R+`` computes the (irreflexive) transitive closure of ``R``'s
  relation, whether ``R`` is EDB or IDB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DatalogError
from repro.graph.ids import NodeId
from repro.graph.property_graph import PropertyGraph

__all__ = ["DatalogAtom", "Clause", "Program", "evaluate_program"]


@dataclass(frozen=True)
class DatalogAtom:
    """``predicate(args)`` or ``predicate+(args)`` when ``transitive``."""

    predicate: str
    args: tuple[str, ...]
    transitive: bool = False

    def __post_init__(self) -> None:
        if not self.args:
            raise DatalogError("atoms need at least one argument")
        if self.transitive and len(self.args) != 2:
            raise DatalogError(
                f"transitive atom {self.predicate}+ must be binary, "
                f"got arity {len(self.args)}"
            )

    def __str__(self) -> str:
        plus = "+" if self.transitive else ""
        return f"{self.predicate}{plus}({', '.join(self.args)})"


@dataclass(frozen=True)
class Clause:
    """``head :- body``. Safety: every head variable occurs in the body."""

    head: DatalogAtom
    body: tuple[DatalogAtom, ...]

    def __post_init__(self) -> None:
        if self.head.transitive:
            raise DatalogError("clause heads cannot be transitive atoms")
        if not self.body:
            raise DatalogError("clause bodies must be non-empty")
        body_variables = {v for atom in self.body for v in atom.args}
        for variable in self.head.args:
            if variable not in body_variables:
                raise DatalogError(
                    f"unsafe clause: head variable {variable!r} not in body"
                )

    def __str__(self) -> str:
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}"


@dataclass(frozen=True)
class Program:
    """A set of clauses with a distinguished answer predicate."""

    clauses: tuple[Clause, ...]
    answer_predicate: str = "Ans"

    def __post_init__(self) -> None:
        if not any(
            clause.head.predicate == self.answer_predicate
            for clause in self.clauses
        ):
            raise DatalogError(
                f"no clause defines the answer predicate "
                f"{self.answer_predicate!r}"
            )

    @property
    def idb_predicates(self) -> frozenset[str]:
        return frozenset(clause.head.predicate for clause in self.clauses)

    def clauses_for(self, predicate: str) -> tuple[Clause, ...]:
        return tuple(
            clause for clause in self.clauses if clause.head.predicate == predicate
        )

    def check_nonrecursive(self) -> list[str]:
        """Topologically sort the IDB dependency graph; raises
        :class:`DatalogError` if the program is recursive. Returns the
        evaluation order (dependencies first)."""
        idb = self.idb_predicates
        dependencies: dict[str, set[str]] = {p: set() for p in idb}
        for clause in self.clauses:
            for atom in clause.body:
                if atom.predicate in idb:
                    dependencies[clause.head.predicate].add(atom.predicate)
        order: list[str] = []
        state: dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(predicate: str, stack: tuple[str, ...]) -> None:
            if state.get(predicate) == 1:
                return
            if state.get(predicate) == 0:
                cycle = " -> ".join(stack + (predicate,))
                raise DatalogError(f"recursive program: {cycle}")
            state[predicate] = 0
            for dependency in sorted(dependencies[predicate]):
                visit(dependency, stack + (predicate,))
            state[predicate] = 1
            order.append(predicate)

        for predicate in sorted(idb):
            visit(predicate, ())
        return order


Tuple = tuple[NodeId, ...]
Relation = frozenset[Tuple]


@dataclass
class _Database:
    graph: PropertyGraph
    idb: dict[str, Relation] = field(default_factory=dict)
    _edb_cache: dict[str, Relation] = field(default_factory=dict)
    _closure_cache: dict[str, Relation] = field(default_factory=dict)

    def relation(self, atom: DatalogAtom) -> Relation:
        base = self._base_relation(atom.predicate, len(atom.args))
        if not atom.transitive:
            return base
        if atom.predicate not in self._closure_cache:
            self._closure_cache[atom.predicate] = _transitive_closure(base)
        return self._closure_cache[atom.predicate]

    def _base_relation(self, predicate: str, arity: int) -> Relation:
        if predicate in self.idb:
            return self.idb[predicate]
        key = f"{predicate}/{arity}"
        if key not in self._edb_cache:
            self._edb_cache[key] = self._edb_relation(predicate, arity)
        return self._edb_cache[key]

    def _edb_relation(self, predicate: str, arity: int) -> Relation:
        graph = self.graph
        if arity == 1:
            return frozenset((node,) for node in graph.nodes_with_label(predicate))
        if arity == 2:
            return frozenset(
                (graph.source(edge), graph.target(edge))
                for edge in graph.directed_edges_with_label(predicate)
            )
        raise DatalogError(
            f"EDB predicate {predicate!r} must be unary (node label) or "
            f"binary (edge label), got arity {arity}"
        )


def _transitive_closure(relation: Relation) -> Relation:
    successors: dict[NodeId, set[NodeId]] = {}
    for row in relation:
        if len(row) != 2:
            raise DatalogError("transitive closure needs a binary relation")
        successors.setdefault(row[0], set()).add(row[1])
    out: set[Tuple] = set()
    for start in successors:
        seen: set[NodeId] = set()
        frontier = list(successors[start])
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(successors.get(node, ()))
        out.update((start, node) for node in seen)
    return frozenset(out)


def _eval_clause(clause: Clause, database: _Database) -> Relation:
    bindings: list[dict[str, NodeId]] = [{}]
    for atom in clause.body:
        relation = database.relation(atom)
        new_bindings: list[dict[str, NodeId]] = []
        for binding in bindings:
            for row in relation:
                extended = dict(binding)
                ok = True
                for variable, value in zip(atom.args, row):
                    if extended.get(variable, value) != value:
                        ok = False
                        break
                    extended[variable] = value
                if ok:
                    new_bindings.append(extended)
        bindings = new_bindings
        if not bindings:
            return frozenset()
    return frozenset(
        tuple(binding[variable] for variable in clause.head.args)
        for binding in bindings
    )


def evaluate_program(
    graph: PropertyGraph, program: Program
) -> dict[str, Relation]:
    """Bottom-up evaluation; returns every IDB predicate's relation."""
    order = program.check_nonrecursive()
    database = _Database(graph)
    for predicate in order:
        rows: set[Tuple] = set()
        for clause in program.clauses_for(predicate):
            rows.update(_eval_clause(clause, database))
        database.idb[predicate] = frozenset(rows)
        # Closures over freshly defined predicates must not be cached
        # before definition; evaluation order guarantees they are not.
    return database.idb
