"""Regular expressions over edge labels — the RPQ/2RPQ query language.

An RPQ (regular path query) is specified by a regular expression over
edge labels; a 2RPQ additionally allows *inverse* symbols ``a^-``
traversing an ``a``-edge backwards (Section 6). The concrete syntax
accepted by :func:`parse_regex`::

    expr   := term ('|' term)*
    term   := factor+
    factor := atom ('*' | '+' | '?')*
    atom   := label | label '-' | '(' expr ')' | '()'   (epsilon)

where ``label`` is an identifier and a trailing ``-`` marks an inverse
symbol, e.g. ``(a b-)* | c+``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union as TUnion

from repro.direction import Direction
from repro.errors import ParseError
from repro.automata.nfa import EdgeStep, NFA, NFABuilder

__all__ = [
    "Regex",
    "Epsilon",
    "Symbol",
    "Concat",
    "Union",
    "Star",
    "Plus",
    "Option",
    "parse_regex",
    "regex_to_nfa",
    "regex_size",
]


@dataclass(frozen=True)
class Epsilon:
    """Matches the empty word (an edgeless path)."""

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class Symbol:
    """An edge label, traversed forward or (for 2RPQs) backward."""

    label: str
    inverse: bool = False

    def __str__(self) -> str:
        return f"{self.label}-" if self.inverse else self.label


@dataclass(frozen=True)
class Concat:
    left: "Regex"
    right: "Regex"

    def __str__(self) -> str:
        return f"{_wrap(self.left)} {_wrap(self.right)}"


@dataclass(frozen=True)
class Union:
    left: "Regex"
    right: "Regex"

    def __str__(self) -> str:
        return f"{self.left} | {self.right}"


@dataclass(frozen=True)
class Star:
    inner: "Regex"

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


@dataclass(frozen=True)
class Plus:
    inner: "Regex"

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}+"


@dataclass(frozen=True)
class Option:
    inner: "Regex"

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}?"


Regex = TUnion[Epsilon, Symbol, Concat, Union, Star, Plus, Option]


def _wrap(regex: Regex) -> str:
    if isinstance(regex, (Union, Concat)):
        return f"({regex})"
    return str(regex)


def regex_size(regex: Regex) -> int:
    """Number of AST nodes."""
    if isinstance(regex, (Epsilon, Symbol)):
        return 1
    if isinstance(regex, (Concat, Union)):
        return 1 + regex_size(regex.left) + regex_size(regex.right)
    return 1 + regex_size(regex.inner)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


class _RegexParser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def parse(self) -> Regex:
        expr = self._expr()
        self._skip_ws()
        if self.pos != len(self.text):
            raise ParseError(
                f"unexpected input {self.text[self.pos:]!r}", self.pos
            )
        return expr

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _expr(self) -> Regex:
        term = self._term()
        while self._peek() == "|":
            self.pos += 1
            term = Union(term, self._term())
        return term

    def _term(self) -> Regex:
        factors = [self._factor()]
        while True:
            ch = self._peek()
            if ch and (ch.isalnum() or ch == "_" or ch == "("):
                factors.append(self._factor())
            else:
                break
        result = factors[0]
        for factor in factors[1:]:
            result = Concat(result, factor)
        return result

    def _factor(self) -> Regex:
        atom = self._atom()
        while True:
            ch = self._peek()
            if ch == "*":
                self.pos += 1
                atom = Star(atom)
            elif ch == "+":
                self.pos += 1
                atom = Plus(atom)
            elif ch == "?":
                self.pos += 1
                atom = Option(atom)
            else:
                return atom

    def _atom(self) -> Regex:
        ch = self._peek()
        if ch == "(":
            self.pos += 1
            if self._peek() == ")":
                self.pos += 1
                return Epsilon()
            inner = self._expr()
            if self._peek() != ")":
                raise ParseError("expected ')'", self.pos)
            self.pos += 1
            return inner
        if ch.isalnum() or ch == "_":
            start = self.pos
            while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] == "_"
            ):
                self.pos += 1
            label = self.text[start : self.pos]
            if self.pos < len(self.text) and self.text[self.pos] == "-":
                self.pos += 1
                return Symbol(label, inverse=True)
            return Symbol(label)
        raise ParseError(f"unexpected character {ch!r}", self.pos)


def parse_regex(text: str) -> Regex:
    """Parse the concrete 2RPQ regex syntax described in the module
    docstring."""
    return _RegexParser(text).parse()


# ---------------------------------------------------------------------------
# Thompson construction
# ---------------------------------------------------------------------------


def regex_to_nfa(regex: Regex, state_limit: int = 100_000) -> NFA:
    """Compile a (2)RPQ regular expression into an :class:`NFA`."""
    builder = NFABuilder(state_limit=state_limit)
    start, end = _compile(regex, builder)
    return builder.build(start, {end})


def _compile(regex: Regex, builder: NFABuilder) -> tuple[int, int]:
    if isinstance(regex, Epsilon):
        start = builder.new_state()
        end = builder.new_state()
        builder.add_epsilon(start, end)
        return start, end
    if isinstance(regex, Symbol):
        start = builder.new_state()
        end = builder.new_state()
        direction = Direction.BACKWARD if regex.inverse else Direction.FORWARD
        builder.add_edge_step(start, EdgeStep(direction, regex.label), end)
        return start, end
    if isinstance(regex, Concat):
        left_start, left_end = _compile(regex.left, builder)
        right_start, right_end = _compile(regex.right, builder)
        builder.add_epsilon(left_end, right_start)
        return left_start, right_end
    if isinstance(regex, Union):
        start = builder.new_state()
        end = builder.new_state()
        for branch in (regex.left, regex.right):
            b_start, b_end = _compile(branch, builder)
            builder.add_epsilon(start, b_start)
            builder.add_epsilon(b_end, end)
        return start, end
    if isinstance(regex, Star):
        start = builder.new_state()
        end = builder.new_state()
        inner_start, inner_end = _compile(regex.inner, builder)
        builder.add_epsilon(start, inner_start)
        builder.add_epsilon(inner_end, end)
        builder.add_epsilon(start, end)
        builder.add_epsilon(inner_end, inner_start)
        return start, end
    if isinstance(regex, Plus):
        inner_start, inner_end = _compile(regex.inner, builder)
        builder.add_epsilon(inner_end, inner_start)
        return inner_start, inner_end
    if isinstance(regex, Option):
        start = builder.new_state()
        end = builder.new_state()
        inner_start, inner_end = _compile(regex.inner, builder)
        builder.add_epsilon(start, inner_start)
        builder.add_epsilon(inner_end, end)
        builder.add_epsilon(start, end)
        return start, end
    raise TypeError(f"not a regex: {regex!r}")
