"""Graph x NFA product construction and reachability.

Given a property graph and an NFA over traversal steps, the product's
states are ``(node, nfa_state)`` pairs. Epsilon and node-test
transitions have weight 0; edge steps have weight 1 (they lengthen the
matched path by one edge). 0-1 BFS then yields, for every start node,
the minimum length of an accepted path to every end node.

This gives the classical PTIME RPQ evaluation algorithm, and the
over-approximation the GPC engine uses for the ``shortest`` restrictor
(see :mod:`repro.automata.gpc_abstraction`).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.direction import Direction
from repro.graph.ids import NodeId
from repro.graph.property_graph import PropertyGraph
from repro.automata.nfa import NFA

__all__ = [
    "min_accepting_lengths",
    "accepted_pairs",
    "pairs_and_distances",
]


def _edge_successors(
    graph: PropertyGraph, node: NodeId, direction: Direction, label: str | None
) -> Iterable[NodeId]:
    """Nodes reachable from ``node`` by one step in ``direction``."""
    if direction is Direction.FORWARD:
        for edge in graph.out_edges(node):
            if label is None or label in graph.labels(edge):
                yield graph.target(edge)
    elif direction is Direction.BACKWARD:
        for edge in graph.in_edges(node):
            if label is None or label in graph.labels(edge):
                yield graph.source(edge)
    else:
        for edge in graph.undirected_edges_at(node):
            if label is None or label in graph.labels(edge):
                yield graph.other_endpoint(edge, node)


def min_accepting_lengths(
    graph: PropertyGraph, nfa: NFA, start: NodeId
) -> dict[NodeId, int]:
    """For one start node: min length of an accepted path to each end
    node (missing keys mean unreachable)."""
    # 0-1 BFS over (node, state).
    dist: dict[tuple[NodeId, int], int] = {(start, nfa.initial): 0}
    queue: deque[tuple[NodeId, int]] = deque([(start, nfa.initial)])
    best: dict[NodeId, int] = {}
    while queue:
        node, state = queue.popleft()
        d = dist[(node, state)]
        if state in nfa.finals:
            if node not in best or d < best[node]:
                best[node] = d
        # Weight-0 moves: epsilon and satisfied node tests.
        for target in nfa.epsilon_transitions[state]:
            key = (node, target)
            if key not in dist or dist[key] > d:
                dist[key] = d
                queue.appendleft(key)
        for test, target in nfa.test_transitions[state]:
            if test.label in graph.labels(node):
                key = (node, target)
                if key not in dist or dist[key] > d:
                    dist[key] = d
                    queue.appendleft(key)
        # Weight-1 moves: edge steps.
        for step, target in nfa.edge_transitions[state]:
            for successor in _edge_successors(graph, node, step.direction, step.label):
                key = (successor, target)
                if key not in dist or dist[key] > d + 1:
                    dist[key] = d + 1
                    queue.append(key)
    return best


def pairs_and_distances(
    graph: PropertyGraph, nfa: NFA
) -> dict[tuple[NodeId, NodeId], int]:
    """All-pairs version: ``{(start, end): min accepted length}``."""
    result: dict[tuple[NodeId, NodeId], int] = {}
    for start in graph.nodes:
        for end, distance in min_accepting_lengths(graph, nfa, start).items():
            result[(start, end)] = distance
    return result


def accepted_pairs(graph: PropertyGraph, nfa: NFA) -> frozenset[tuple[NodeId, NodeId]]:
    """The RPQ answer: all ``(start, end)`` pairs connected by a path
    whose traversal word is accepted by ``nfa``."""
    return frozenset(pairs_and_distances(graph, nfa))
