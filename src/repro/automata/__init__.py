"""Automata substrate.

Non-deterministic finite automata over *graph traversal steps*, used
for:

- the condition-free regular abstraction of GPC patterns that powers
  the engine's ``shortest`` restrictor (candidate endpoint pairs and
  length lower bounds);
- the RPQ/2RPQ baseline evaluators of Section 6 (product construction
  and BFS reachability).
"""

from repro.automata.nfa import NFA, EdgeStep, NodeTest, NFABuilder
from repro.automata.regex import (
    Concat as RegexConcat,
    Epsilon,
    Option,
    Plus,
    Regex,
    Star,
    Symbol,
    Union as RegexUnion,
    parse_regex,
    regex_to_nfa,
)
from repro.automata.product import (
    accepted_pairs,
    min_accepting_lengths,
    pairs_and_distances,
)

__all__ = [
    "NFA",
    "NFABuilder",
    "EdgeStep",
    "NodeTest",
    "Regex",
    "Epsilon",
    "Symbol",
    "RegexConcat",
    "RegexUnion",
    "Star",
    "Plus",
    "Option",
    "parse_regex",
    "regex_to_nfa",
    "accepted_pairs",
    "min_accepting_lengths",
    "pairs_and_distances",
]
