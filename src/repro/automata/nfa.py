"""Non-deterministic finite automata over graph-traversal steps.

Transitions come in three kinds:

- ``epsilon`` — consumes nothing;
- :class:`NodeTest` — consumes nothing but requires the current graph
  node to carry a label;
- :class:`EdgeStep` — consumes one edge traversal in a direction
  (forward / backward / undirected), optionally constrained by a label.

This alphabet is rich enough to express 2RPQs (forward + backward
symbols) and the condition-free abstraction of full GPC patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.direction import Direction
from repro.errors import EvaluationLimitError

__all__ = ["EdgeStep", "NodeTest", "NFA", "NFABuilder"]


@dataclass(frozen=True)
class EdgeStep:
    """Consume one edge in the given direction; ``label`` of ``None``
    matches any edge."""

    direction: Direction
    label: Optional[str] = None

    def __str__(self) -> str:
        label = f":{self.label}" if self.label else ""
        return f"{self.direction.value}{label}"


@dataclass(frozen=True)
class NodeTest:
    """Zero-width check that the current node carries ``label``."""

    label: str

    def __str__(self) -> str:
        return f"(:{self.label})"


@dataclass
class NFA:
    """An immutable-ish NFA: build with :class:`NFABuilder`.

    ``edge_transitions[q]`` lists ``(step, target)`` pairs;
    ``test_transitions[q]`` lists ``(test, target)``;
    ``epsilon_transitions[q]`` is a set of targets.
    """

    num_states: int
    initial: int
    finals: frozenset[int]
    edge_transitions: tuple[tuple[tuple[EdgeStep, int], ...], ...]
    test_transitions: tuple[tuple[tuple[NodeTest, int], ...], ...]
    epsilon_transitions: tuple[frozenset[int], ...]

    def epsilon_closure(self, states: frozenset[int]) -> frozenset[int]:
        """Pure-epsilon closure (node tests are *not* included; they
        depend on the current graph node and are handled by products)."""
        closure = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for target in self.epsilon_transitions[state]:
                if target not in closure:
                    closure.add(target)
                    stack.append(target)
        return frozenset(closure)

    def iter_transitions(self) -> Iterator[tuple[int, object, int]]:
        """Yield ``(source, label, target)`` for every transition."""
        for state in range(self.num_states):
            for step, target in self.edge_transitions[state]:
                yield state, step, target
            for test, target in self.test_transitions[state]:
                yield state, test, target
            for target in self.epsilon_transitions[state]:
                yield state, None, target

    @property
    def num_transitions(self) -> int:
        return sum(1 for _ in self.iter_transitions())


@dataclass
class NFABuilder:
    """Mutable builder for :class:`NFA` with a configurable state cap.

    The cap matters because GPC repetition bounds are written in binary
    (Appendix C): unrolling ``pi{n..m}`` into an automaton takes
    ``Theta(n)`` states, so pathological bounds are rejected with an
    explicit :class:`~repro.errors.EvaluationLimitError` rather than
    exhausting memory.
    """

    state_limit: int = 100_000
    _edges: list[list[tuple[EdgeStep, int]]] = field(default_factory=list)
    _tests: list[list[tuple[NodeTest, int]]] = field(default_factory=list)
    _eps: list[set[int]] = field(default_factory=list)

    def new_state(self) -> int:
        if len(self._edges) >= self.state_limit:
            raise EvaluationLimitError(
                f"automaton exceeded the state limit of {self.state_limit}; "
                f"repetition bounds may be too large "
                f"(raise EngineConfig.automaton_state_limit if intended)"
            )
        self._edges.append([])
        self._tests.append([])
        self._eps.append(set())
        return len(self._edges) - 1

    def add_edge_step(self, source: int, step: EdgeStep, target: int) -> None:
        self._edges[source].append((step, target))

    def add_node_test(self, source: int, test: NodeTest, target: int) -> None:
        self._tests[source].append((test, target))

    def add_epsilon(self, source: int, target: int) -> None:
        if source != target:
            self._eps[source].add(target)

    def build(self, initial: int, finals: frozenset[int] | set[int]) -> NFA:
        return NFA(
            num_states=len(self._edges),
            initial=initial,
            finals=frozenset(finals),
            edge_transitions=tuple(tuple(edges) for edges in self._edges),
            test_transitions=tuple(tuple(tests) for tests in self._tests),
            epsilon_transitions=tuple(frozenset(eps) for eps in self._eps),
        )
