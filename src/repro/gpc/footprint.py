"""Per-query read footprints for semantic cache invalidation.

The service layer caches query answers per graph version; a mutation
bumps the version, and — before this module — flushed *every* cached
answer, even when the mutation could not possibly change it. The
paper's static machinery says when that is provable: the Figure 2
typing rules fix exactly which variables a query binds, every answer's
path is matched atom by atom against the pattern, and conditions are
the only construct that reads property values. From those facts a
query's *read footprint* can be bounded syntactically:

- **node labels**: a node add/remove can only affect answers when the
  pattern can match a length-0 path — every node of a length >= 1 path
  is incident to an edge of the path, an added node has no incident
  edges yet, and a removed node's incident edges are removed in the
  same cascade delta (so the edge classes below already cover it).
  When length-0 matches are possible, the boundary node patterns (and
  zero-iteration repetitions, which match *any* single node) determine
  which labels are observable.
- **directed / undirected edge labels**: every edge of a matched path
  is consumed by exactly one edge-pattern atom, so the union of the
  atoms' label constraints bounds the observable edges; forward and
  backward traversals both read directed edges, ``~`` reads undirected
  ones. An unlabelled atom observes the whole class.
- **property keys**: answers bind identifiers, never values, so
  property mutations are observable only through conditions; the keys
  mentioned in a query's conditions bound the observable keys.

Constructs the analysis cannot see through (Section 7 extensions,
non-core queries) collapse to :data:`BOTTOM` — "reads everything" —
which reproduces the old per-version flush exactly.

:meth:`QueryFootprint.affected_by` intersects a footprint with the
:class:`~repro.graph.delta.DeltaSummary` of the mutations between two
versions: disjointness proves the cached answer is still exact, so the
cache re-stamps the entry to the new version instead of dropping it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.direction import Direction
from repro.errors import DeadlineExceededError, EvaluationLimitError
from repro.gpc import ast
from repro.gpc.conditions_ast import (
    And,
    Not,
    Or,
    PropertyEqualsConst,
    PropertyEqualsProperty,
)
from repro.gpc.minlength import min_path_length
from repro.graph.delta import DeltaSummary

__all__ = [
    "QueryFootprint",
    "BOTTOM",
    "pattern_footprint",
    "query_footprint",
]


@dataclass(frozen=True)
class QueryFootprint:
    """What a query can observe, per element class.

    Each label set is either a ``frozenset`` (only elements carrying
    one of these labels are observable; the empty set means *no*
    mutation of that class alone can change the answers) or ``None``
    (the whole class is observable). ``node_keys`` / ``edge_keys`` work
    the same way for condition-read property keys, split by the class
    of the variable each condition atom dereferences — so an
    edge-property mutation leaves answers (and cached entries) of
    queries that only read node keys provably intact, and vice versa.
    """

    node_labels: Optional[frozenset[str]] = frozenset()
    dedge_labels: Optional[frozenset[str]] = frozenset()
    uedge_labels: Optional[frozenset[str]] = frozenset()
    node_keys: Optional[frozenset[str]] = frozenset()
    edge_keys: Optional[frozenset[str]] = frozenset()

    @property
    def property_keys(self) -> Optional[frozenset[str]]:
        """Class-blind union of the key sets (back-compat view)."""
        return _union(self.node_keys, self.edge_keys)

    @property
    def is_bottom(self) -> bool:
        """Whether this footprint reads everything (no pruning)."""
        return (
            self.node_labels is None
            and self.dedge_labels is None
            and self.uedge_labels is None
            and self.node_keys is None
            and self.edge_keys is None
        )

    def merge(self, other: "QueryFootprint") -> "QueryFootprint":
        """Pointwise union (``None`` — the whole class — absorbs)."""
        return QueryFootprint(
            node_labels=_union(self.node_labels, other.node_labels),
            dedge_labels=_union(self.dedge_labels, other.dedge_labels),
            uedge_labels=_union(self.uedge_labels, other.uedge_labels),
            node_keys=_union(self.node_keys, other.node_keys),
            edge_keys=_union(self.edge_keys, other.edge_keys),
        )

    def affected_by(self, summary: DeltaSummary) -> bool:
        """Whether mutations with this summary could change answers.

        ``False`` is a guarantee (the cached answer set is still
        exact); ``True`` is conservative.
        """
        if summary.is_empty:
            return False
        if _intersects(
            self.node_labels, summary.nodes_changed, summary.node_labels
        ):
            return True
        if _intersects(
            self.dedge_labels, summary.dedges_changed, summary.dedge_labels
        ):
            return True
        if _intersects(
            self.uedge_labels, summary.uedges_changed, summary.uedge_labels
        ):
            return True
        if _keys_intersect(self.node_keys, summary.node_property_keys):
            return True
        if _keys_intersect(self.edge_keys, summary.edge_property_keys):
            return True
        return False

    def describe(self) -> str:
        def _render(name: str, values: Optional[frozenset[str]]) -> str:
            if values is None:
                return f"{name}=*"
            if not values:
                return f"{name}=-"
            return f"{name}={{{', '.join(sorted(values))}}}"

        return " ".join(
            (
                _render("nodes", self.node_labels),
                _render("directed", self.dedge_labels),
                _render("undirected", self.uedge_labels),
                _render("node-keys", self.node_keys),
                _render("edge-keys", self.edge_keys),
            )
        )


#: The conservative "reads everything" footprint: every mutation
#: invalidates, which is exactly the old global per-version flush.
BOTTOM = QueryFootprint(None, None, None, None, None)

_EMPTY = QueryFootprint()


def _union(
    left: Optional[frozenset[str]], right: Optional[frozenset[str]]
) -> Optional[frozenset[str]]:
    if left is None or right is None:
        return None
    return left | right


def _intersects(
    footprint_labels: Optional[frozenset[str]],
    class_changed: bool,
    delta_labels: frozenset[str],
) -> bool:
    if not class_changed:
        return False
    if footprint_labels is None:
        return True
    return not footprint_labels.isdisjoint(delta_labels)


def _keys_intersect(
    footprint_keys: Optional[frozenset[str]],
    delta_keys: frozenset[str],
) -> bool:
    if not delta_keys:
        return False
    if footprint_keys is None:
        return True
    return not footprint_keys.isdisjoint(delta_keys)


# ---------------------------------------------------------------------------
# Derivation
# ---------------------------------------------------------------------------


#: Sentinel class for variables whose element class the walk could not
#: pin down (conflicting bind sites, or an extension construct).
_UNKNOWN = "unknown"


def _variable_classes(pattern: ast.Pattern) -> dict[str, str]:
    """Map each variable bound in ``pattern`` to ``'node'``/``'edge'``.

    Variables bound at conflicting sites (or inside extension
    constructs the walk cannot see through) map to :data:`_UNKNOWN`,
    which routes their condition keys into *both* key classes.
    """
    classes: dict[str, str] = {}

    def _note(variable: Optional[str], element_class: str) -> None:
        if variable is None:
            return
        seen = classes.get(variable)
        if seen is None:
            classes[variable] = element_class
        elif seen != element_class:
            classes[variable] = _UNKNOWN

    stack = [pattern]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.NodePattern):
            _note(current.variable, "node")
        elif isinstance(current, ast.EdgePattern):
            _note(current.variable, "edge")
        elif isinstance(current, (ast.Union, ast.Concat)):
            stack.append(current.left)
            stack.append(current.right)
        elif isinstance(current, (ast.Conditioned, ast.Repeat)):
            stack.append(current.pattern)
        # Extension constructs bind variables the walk cannot see; the
        # caller treats absent variables as _UNKNOWN, which is what a
        # hidden bind site deserves.
    return classes


def _condition_footprint(
    condition, var_classes: Optional[dict[str, str]] = None
) -> QueryFootprint:
    """Property keys a condition reads (``BOTTOM`` for unknown nodes).

    ``var_classes`` (from :func:`_variable_classes`) routes each key to
    the class of the variable dereferencing it; keys read through a
    variable of unknown class land in both sets.
    """
    if var_classes is None:
        var_classes = {}
    node_keys: set[str] = set()
    edge_keys: set[str] = set()

    def _note(variable: str, key: str) -> None:
        element_class = var_classes.get(variable, _UNKNOWN)
        if element_class in ("node", _UNKNOWN):
            node_keys.add(key)
        if element_class in ("edge", _UNKNOWN):
            edge_keys.add(key)

    stack = [condition]
    while stack:
        current = stack.pop()
        if isinstance(current, PropertyEqualsConst):
            _note(current.variable, current.key)
        elif isinstance(current, PropertyEqualsProperty):
            _note(current.left_variable, current.left_key)
            _note(current.right_variable, current.right_key)
        elif isinstance(current, (And, Or)):
            stack.append(current.left)
            stack.append(current.right)
        elif isinstance(current, Not):
            stack.append(current.inner)
        else:  # an extension condition we cannot see through
            return BOTTOM
    return QueryFootprint(
        node_keys=frozenset(node_keys), edge_keys=frozenset(edge_keys)
    )


def _walk_pattern(
    pattern: ast.Pattern, var_classes: Optional[dict[str, str]] = None
) -> QueryFootprint:
    if isinstance(pattern, ast.NodePattern):
        if pattern.label is not None:
            return QueryFootprint(node_labels=frozenset((pattern.label,)))
        return QueryFootprint(node_labels=None)
    if isinstance(pattern, ast.EdgePattern):
        labels = (
            frozenset((pattern.label,)) if pattern.label is not None else None
        )
        if pattern.direction is Direction.UNDIRECTED:
            return QueryFootprint(uedge_labels=labels)
        return QueryFootprint(dedge_labels=labels)
    if isinstance(pattern, (ast.Union, ast.Concat)):
        return _walk_pattern(pattern.left, var_classes).merge(
            _walk_pattern(pattern.right, var_classes)
        )
    if isinstance(pattern, ast.Conditioned):
        return _walk_pattern(pattern.pattern, var_classes).merge(
            _condition_footprint(pattern.condition, var_classes)
        )
    if isinstance(pattern, ast.Repeat):
        inner = _walk_pattern(pattern.pattern, var_classes)
        if pattern.lower == 0:
            # Zero iterations match a single-node path at *any* node.
            inner = inner.merge(QueryFootprint(node_labels=None))
        return inner
    # Extension constructs (Section 7): no syntactic bound.
    return BOTTOM


def pattern_footprint(pattern: ast.Pattern) -> QueryFootprint:
    """The read footprint of one restricted pattern.

    Applies the length-0 refinement from the module docstring: when the
    pattern cannot match a length-0 path, node additions/removals alone
    can never change its answers (their incident-edge deltas are what
    the edge classes observe), so the node-label set collapses to the
    empty — maximally prunable — set. The refinement is skipped when
    the walk hit a construct it cannot bound.
    """
    footprint = _walk_pattern(pattern, _variable_classes(pattern))
    if footprint.is_bottom:
        # Some construct defeated the analysis (merging BOTTOM floods
        # every class); the length-0 refinement is not justified then.
        return footprint
    try:
        edgeless_possible = min_path_length(pattern) == 0
    except (DeadlineExceededError, EvaluationLimitError):
        # Resource budgets must propagate — swallowing one here would
        # let a cancelled request keep running on a stale footprint.
        raise
    except Exception:  # pragma: no cover - lint: allow-broad-except
        edgeless_possible = True
    if not edgeless_possible:
        footprint = QueryFootprint(
            node_labels=frozenset(),
            dedge_labels=footprint.dedge_labels,
            uedge_labels=footprint.uedge_labels,
            node_keys=footprint.node_keys,
            edge_keys=footprint.edge_keys,
        )
    return footprint


def query_footprint(query: ast.Query) -> QueryFootprint:
    """The read footprint of a whole query (joins merge their sides).

    Total: anything unrecognised yields :data:`BOTTOM`, never an
    exception — a wrong footprint would serve stale answers, an
    over-wide one only costs a recomputation.
    """
    try:
        if isinstance(query, ast.PatternQuery):
            return pattern_footprint(query.pattern)
        if isinstance(query, ast.Join):
            return query_footprint(query.left).merge(
                query_footprint(query.right)
            )
    except (DeadlineExceededError, EvaluationLimitError):
        # See pattern_footprint: budget errors are control flow, not
        # analysis failures, and must reach the caller.
        raise
    except Exception:  # pragma: no cover - lint: allow-broad-except
        return BOTTOM
    return BOTTOM
