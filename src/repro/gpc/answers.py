"""Query answers.

An answer to an expression is a pair ``(p-bar, mu)`` of a tuple of
paths (one per joined pattern) and an assignment conforming to the
expression's schema (Section 5). :class:`Answer` is immutable and
hashable; answer sets are genuine Python (frozen)sets, which realises
the calculus' set semantics directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import EvaluationError
from repro.graph.paths import Path
from repro.gpc.assignments import Assignment
from repro.gpc.values import Value

__all__ = ["Answer", "project", "sort_answers"]


@dataclass(frozen=True)
class Answer:
    """One answer ``(p-bar, mu)``."""

    paths: tuple[Path, ...]
    assignment: Assignment

    def __post_init__(self) -> None:
        if not self.paths:
            raise EvaluationError("an answer must contain at least one path")

    @property
    def path(self) -> Path:
        """The single witnessing path (for non-join queries)."""
        if len(self.paths) != 1:
            raise EvaluationError(
                f"answer has {len(self.paths)} paths; use .paths for joins"
            )
        return self.paths[0]

    def __getitem__(self, variable: str) -> Value:
        return self.assignment[variable]

    def combine(self, other: "Answer") -> "Answer | None":
        """Join two answers: concatenate path tuples, unify assignments.
        ``None`` when the assignments clash."""
        merged = self.assignment.unify(other.assignment)
        if merged is None:
            return None
        return Answer(self.paths + other.paths, merged)

    def __repr__(self) -> str:
        paths = ", ".join(repr(p) for p in self.paths)
        return f"Answer(({paths}), {self.assignment!r})"


def project(
    answers: Iterable[Answer], variables: tuple[str, ...]
) -> frozenset[tuple[Value, ...]]:
    """Project answers onto a variable tuple (the GPC+ output form)."""
    return frozenset(
        tuple(answer.assignment[v] for v in variables) for answer in answers
    )


def sort_answers(answers: Iterable[Answer]) -> list[Answer]:
    """Deterministic order for tests and reports: radix order on the
    path tuple, then on the assignment's repr."""
    return sorted(
        answers,
        key=lambda a: (
            tuple((len(p), tuple(repr(e) for e in p.elements)) for p in a.paths),
            repr(a.assignment),
        ),
    )
