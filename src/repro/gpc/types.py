"""The GPC type system's types (Section 4).

The grammar of types is::

    tau ::= Node | Edge | Path | Maybe(tau) | Group(tau)

plus ``Bool`` for typing conditions. Types are immutable and hashable.
:func:`maybe_wrap` implements the paper's ``tau?`` operation, which
never produces ``Maybe(Maybe(tau))`` (cf. Proposition 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union as TUnion

__all__ = [
    "NodeType",
    "EdgeType",
    "PathType",
    "BoolType",
    "MaybeType",
    "GroupType",
    "Type",
    "NODE",
    "EDGE",
    "PATH",
    "BOOL",
    "maybe_wrap",
    "is_singleton",
    "is_conditional",
    "is_group",
    "is_path",
    "type_depth",
]


@dataclass(frozen=True)
class NodeType:
    """The type of variables bound to a single node."""

    def __str__(self) -> str:
        return "Node"


@dataclass(frozen=True)
class EdgeType:
    """The type of variables bound to a single edge."""

    def __str__(self) -> str:
        return "Edge"


@dataclass(frozen=True)
class PathType:
    """The type of variables naming whole paths (``x = r p``)."""

    def __str__(self) -> str:
        return "Path"


@dataclass(frozen=True)
class BoolType:
    """The type of well-typed conditions."""

    def __str__(self) -> str:
        return "Bool"


@dataclass(frozen=True)
class MaybeType:
    """``Maybe(tau)`` — variables occurring on one side of a union only."""

    inner: "Type"

    def __str__(self) -> str:
        return f"Maybe({self.inner})"


@dataclass(frozen=True)
class GroupType:
    """``Group(tau)`` — variables occurring under repetition."""

    inner: "Type"

    def __str__(self) -> str:
        return f"Group({self.inner})"


Type = TUnion[NodeType, EdgeType, PathType, MaybeType, GroupType]

#: Singleton instances (types are value objects; these are conveniences).
NODE = NodeType()
EDGE = EdgeType()
PATH = PathType()
BOOL = BoolType()


def maybe_wrap(tau: Type) -> Type:
    """The paper's ``tau?``: ``tau`` if already a ``Maybe``, else
    ``Maybe(tau)``. Guarantees no nested ``Maybe(Maybe(...))``."""
    if isinstance(tau, MaybeType):
        return tau
    return MaybeType(tau)


def is_singleton(tau: Type) -> bool:
    """Whether ``tau`` is ``Node`` or ``Edge`` (Definition 5)."""
    return isinstance(tau, (NodeType, EdgeType))


def is_conditional(tau: Type) -> bool:
    """Whether ``tau`` is a ``Maybe`` type (Definition 5)."""
    return isinstance(tau, MaybeType)


def is_group(tau: Type) -> bool:
    """Whether ``tau`` is a ``Group`` type (Definition 5)."""
    return isinstance(tau, GroupType)


def is_path(tau: Type) -> bool:
    """Whether ``tau`` is the ``Path`` type (Definition 5)."""
    return isinstance(tau, PathType)


def type_depth(tau: Type) -> int:
    """Nesting depth of constructors (0 for the atomic types)."""
    if isinstance(tau, (MaybeType, GroupType)):
        return 1 + type_depth(tau.inner)
    return 0
