"""Assignments — partial maps from variables to values (Section 5).

An assignment ``mu`` binds finitely many variables to values. Two
assignments *unify* when they agree on their shared domain; their
unification is then their (associative, commutative) merge. The empty
assignment is the unit.

Assignments are immutable and hashable so that answers ``(p, mu)`` can
live in sets, giving the calculus its set semantics for free.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import EvaluationError
from repro.gpc.types import Type
from repro.gpc.values import Nothing, NothingType, Value, conforms

__all__ = ["Assignment", "EMPTY_ASSIGNMENT", "unify_all"]


class Assignment(Mapping[str, Value]):
    """An immutable, hashable partial map from variables to values."""

    __slots__ = ("_items", "_lookup", "_hash")

    def __init__(self, bindings: Mapping[str, Value] | Iterable[tuple[str, Value]] = ()):
        lookup = dict(bindings)
        items = tuple(sorted(lookup.items(), key=lambda kv: kv[0]))
        object.__setattr__(self, "_lookup", lookup)
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_hash", hash(items))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Assignment is immutable")

    def __reduce__(self):
        # The immutability guard defeats default slots pickling;
        # rebuild through __init__ (assignments travel to process-pool
        # workers inside answers).
        return (type(self), (self._lookup,))

    # -- Mapping protocol -------------------------------------------------

    def __getitem__(self, variable: str) -> Value:
        return self._lookup[variable]

    def __iter__(self) -> Iterator[str]:
        return iter(self._lookup)

    def __len__(self) -> int:
        return len(self._lookup)

    def __contains__(self, variable: object) -> bool:
        return variable in self._lookup

    # -- algebra -----------------------------------------------------------

    @property
    def domain(self) -> frozenset[str]:
        """``dom(mu)``."""
        return frozenset(self._lookup)

    def bind(self, variable: str, value: Value) -> "Assignment":
        """A new assignment additionally binding ``variable``.

        Rebinding an existing variable to a *different* value is an
        error; rebinding to the same value is a no-op.
        """
        if variable in self._lookup:
            if self._lookup[variable] == value:
                return self
            raise EvaluationError(
                f"variable {variable!r} already bound to "
                f"{self._lookup[variable]!r}, cannot rebind to {value!r}"
            )
        updated = dict(self._lookup)
        updated[variable] = value
        return Assignment(updated)

    def unifies_with(self, other: "Assignment") -> bool:
        """Whether ``mu`` and ``mu'`` agree on shared variables."""
        small, large = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        for variable, value in small._items:
            if variable in large._lookup and large._lookup[variable] != value:
                return False
        return True

    def unify(self, other: "Assignment") -> "Assignment | None":
        """The unification ``mu | mu'``, or ``None`` when they clash."""
        if not self.unifies_with(other):
            return None
        if not other._lookup:
            return self
        if not self._lookup:
            return other
        merged = dict(self._lookup)
        merged.update(other._lookup)
        return Assignment(merged)

    def weak_unifies_with(self, other: "Assignment") -> bool:
        """Remark 8's weaker notion: ``Nothing`` is compatible with
        anything on either side."""
        for variable, value in self._items:
            if variable not in other._lookup:
                continue
            other_value = other._lookup[variable]
            if value == other_value:
                continue
            if isinstance(value, NothingType) or isinstance(other_value, NothingType):
                continue
            return False
        return True

    def weak_unify(self, other: "Assignment") -> "Assignment | None":
        """Unification under the Remark 8 relaxation: a non-``Nothing``
        value wins over ``Nothing``."""
        if not self.weak_unifies_with(other):
            return None
        merged = dict(self._lookup)
        for variable, value in other._items:
            current = merged.get(variable, Nothing)
            if isinstance(current, NothingType):
                merged[variable] = value
        return Assignment(merged)

    def project(self, variables: Iterable[str]) -> "Assignment":
        """Restrict to the given variables (all must be bound)."""
        return Assignment({v: self._lookup[v] for v in variables})

    def drop(self, variables: Iterable[str]) -> "Assignment":
        """Remove the given variables from the domain if present."""
        dropped = set(variables)
        return Assignment(
            {v: val for v, val in self._items if v not in dropped}
        )

    def conforms_to(self, schema: Mapping[str, Type]) -> bool:
        """Whether ``mu`` conforms to ``sigma``: equal domains, and
        ``mu(x) in V_sigma(x)`` for every ``x``."""
        if self.domain != frozenset(schema):
            return False
        return all(conforms(self._lookup[v], tau) for v, tau in schema.items())

    # -- dunders ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Assignment):
            return self._items == other._items
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._items:
            return "{}"
        inner = ", ".join(f"{v} -> {val!r}" for v, val in self._items)
        return "{" + inner + "}"


#: The empty assignment (the paper's little square).
EMPTY_ASSIGNMENT = Assignment()


def unify_all(assignments: Iterable[Assignment]) -> "Assignment | None":
    """Unify a family of assignments, or ``None`` if any pair clashes.

    Pairwise unification of a family is associative (Section 5), so a
    left fold computes the same result as any other order.
    """
    result = EMPTY_ASSIGNMENT
    for assignment in assignments:
        result = result.unify(assignment)
        if result is None:
            return None
    return result
