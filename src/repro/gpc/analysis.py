"""Compositional static analysis of GPC queries.

The calculus is built to be analysed: schemas are syntax-directed
(Figure 2), conditions only ever compare properties of *singleton*
variables, and every pattern constructor combines its parts'
denotations pointwise. This module folds per-subpattern facts over
that structure — which ``x.key = const`` atoms every match must
satisfy, which labels a variable's element must carry, whether any
match can exist at all — and turns them into three artifacts:

**Unsat proofs.** A query is *provably empty* when every model is
excluded syntactically: contradictory constant-equality atoms forced
onto one variable (on the positive ``And`` spine, or saturated across
``Concat``/``Join`` sides — shared variables are singletons, so both
sides constrain the same element), an always-false condition, a
repetition whose body is empty and must run at least once, or an
extension construct that reports itself unsatisfiable (label
expressions do boolean SAT over their atoms). The proof is
conservative and sound: ``provably_empty`` implies the answer set is
empty on *every* graph, so the engine may short-circuit without
touching the snapshot.

**Simplification.** Conditions are constant-folded (``And``/``Or``/
``Not``), structurally deduplicated, complement pairs collapse, and
tautologies are dropped — the simplified condition reaches
:func:`repro.gpc.planner.split_pushdown` with a cleaner positive
spine, so more atoms become bitmask probes. Provably-dead ``Union``
branches are pruned; a repetition with an empty body and ``lower = 0``
is rewritten to its zero-iteration form. Every rewrite preserves the
answer set exactly (a hypothesis differential suite gates this).

**Diagnostics.** Structured :class:`Diagnostic` records with a stable
code, severity, message and a pretty-printed span pointer — the lint
surface behind ``GraphService.lint``, ``GET /lint`` and
``python -m repro.lint``.

Note one deliberate non-simplification: ``x.k = x.k`` is *not* a
tautology. The paper's semantics make any comparison over an
undefined property false, so the atom tests definedness of ``x.k``.
Equally, core label descriptors never make a pattern unsatisfiable —
elements carry label *sets*, so ``(x:A) (x:B)`` just requires both.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Iterator, Optional

from repro.errors import GPCTypeError, ParseError
from repro.gpc import ast
from repro.gpc.conditions_ast import (
    And,
    Condition,
    Not,
    Or,
    PropertyEqualsConst,
    PropertyEqualsProperty,
    iter_atoms,
)
from repro.gpc.minlength import max_path_length, may_match_edgeless
from repro.gpc.planner import _required_const_atoms, plan_shortest
from repro.gpc.pretty import pretty, pretty_condition

__all__ = [
    "Diagnostic",
    "QueryAnalysis",
    "analyze_query",
    "simplify_condition",
    "lint_query",
    "render_diagnostics",
    "PARSE_ERROR",
    "TYPE_ERROR",
    "PROVABLY_EMPTY",
    "ALWAYS_FALSE_CONDITION",
    "DEAD_UNION_BRANCH",
    "CONDITION_SIMPLIFIED",
    "TAUTOLOGY_DROPPED",
    "UNANCHORED_SHORTEST",
    "UNBOUNDED_REPEAT",
    "EDGELESS_REPEAT_BODY",
    "REPEAT_ONLY_ZERO",
    "ATOM_NOT_ON_SPINE",
    "ATOM_VARIABLE_REBINDS",
]


# ---------------------------------------------------------------------------
# Diagnostics
# ---------------------------------------------------------------------------

#: Stable diagnostic codes. Codes are part of the lint surface —
#: tests, CI scripts and clients match on them — so they never change
#: meaning; new diagnostics get new codes.
PARSE_ERROR = "GPC000"
TYPE_ERROR = "GPC001"
PROVABLY_EMPTY = "GPC010"
ALWAYS_FALSE_CONDITION = "GPC011"
DEAD_UNION_BRANCH = "GPC012"
CONDITION_SIMPLIFIED = "GPC013"
TAUTOLOGY_DROPPED = "GPC014"
UNANCHORED_SHORTEST = "GPC020"
UNBOUNDED_REPEAT = "GPC021"
EDGELESS_REPEAT_BODY = "GPC022"
REPEAT_ONLY_ZERO = "GPC023"
ATOM_NOT_ON_SPINE = "GPC030"
ATOM_VARIABLE_REBINDS = "GPC031"


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding of the static analyzer.

    ``severity`` is ``"error"`` (the query cannot run), ``"warning"``
    (it runs but is almost certainly not what was meant, or degrades
    badly) or ``"info"`` (an applied rewrite or a missed optimisation).
    ``span`` points at the offending subexpression in concrete syntax.
    """

    code: str
    severity: str
    message: str
    span: str

    def render(self) -> str:
        return f"[{self.code}] {self.severity}: {self.message} (at: {self.span})"

    def as_dict(self) -> dict[str, str]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "span": self.span,
        }


def render_diagnostics(diagnostics: tuple[Diagnostic, ...]) -> str:
    """The ``explain`` diagnostics section (one line per finding)."""
    if not diagnostics:
        return "diagnostics: none"
    lines = ["diagnostics:"]
    lines.extend(f"  {diagnostic.render()}" for diagnostic in diagnostics)
    return "\n".join(lines)


def _span(expression: object) -> str:
    """A pretty-printed pointer at ``expression`` (extensions and other
    constructs the printer does not know fall back to ``repr``)."""
    try:
        if isinstance(
            expression,
            (PropertyEqualsConst, PropertyEqualsProperty, And, Or, Not),
        ):
            return pretty_condition(expression)
        return pretty(expression)
    except TypeError:
        return repr(expression)


# ---------------------------------------------------------------------------
# Condition simplification
# ---------------------------------------------------------------------------

#: Constant types whose ``==`` is sane and transitive, so two distinct
#: constants provably exclude each other. (Floats included: NaN never
#: equals anything — not even a stored NaN — so flagging it is sound.)
_SCALAR_TYPES = (str, int, float, bool, type(None))

_ATOM_TYPES = (PropertyEqualsConst, PropertyEqualsProperty)


def _connective_parts(condition: Condition, cls: type) -> Iterator[Condition]:
    """The leaves of a same-connective spine, left to right."""
    if isinstance(condition, (And, Or)) and isinstance(condition, cls):
        yield from _connective_parts(condition.left, cls)
        yield from _connective_parts(condition.right, cls)
    else:
        yield condition


def _const_conflict(
    atoms: frozenset[tuple[str, object]],
) -> Optional[tuple[str, object, object]]:
    """A ``(key, a, b)`` witness that the atom set forces one property
    to equal two provably-different constants, or ``None``."""
    by_key: dict[str, list[object]] = {}
    for key, value in sorted(atoms, key=repr):
        if not isinstance(value, _SCALAR_TYPES):
            continue
        for prior in by_key.setdefault(key, []):
            if prior != value:
                return (key, prior, value)
        by_key[key].append(value)
    return None


def _parts_conflict(parts: list[Condition]) -> bool:
    """Whether a conjunction's leaves contain contradictory
    ``x.key = const`` atoms on one variable."""
    by_var: dict[str, set[tuple[str, object]]] = {}
    for part in parts:
        if isinstance(part, PropertyEqualsConst):
            by_var.setdefault(part.variable, set()).add(
                (part.key, part.constant)
            )
    return any(
        _const_conflict(frozenset(atoms)) is not None
        for atoms in by_var.values()
    )


def simplify_condition(condition: Condition) -> "Condition | bool":
    """Simplify a condition; ``True``/``False`` mean it is a tautology
    or a contradiction under the paper's two-valued semantics.

    Applied rules: constant folding through ``And``/``Or``/``Not``,
    double-negation elimination, structural deduplication along a
    connective spine, complement-pair collapse (two-valued semantics
    make ``theta or not theta`` a genuine tautology), and
    conjunction-spine saturation of ``x.key = const`` atoms (two
    different scalar constants for one ``(variable, key)`` exclude
    every model). Atoms are never invented, so the result references a
    subset of the original variables and stays well-typed. Returns the
    *same object* when nothing changed, which callers use as the
    cheap "was anything rewritten" test.
    """
    if isinstance(condition, _ATOM_TYPES):
        return condition
    if isinstance(condition, Not):
        inner = simplify_condition(condition.inner)
        if inner is True:
            return False
        if inner is False:
            return True
        if isinstance(inner, Not):
            return inner.inner
        return condition if inner is condition.inner else Not(inner)
    if isinstance(condition, (And, Or)):
        cls = type(condition)
        is_and = cls is And
        identity, absorbing = (True, False) if is_and else (False, True)
        parts: list[Condition] = []
        changed = False
        for raw in _connective_parts(condition, cls):
            part = simplify_condition(raw)
            if part is not raw:
                changed = True
            if isinstance(part, bool):
                if part is absorbing:
                    return absorbing
                continue  # the identity contributes nothing
            # Simplification may surface nested same-connective spines
            # (e.g. NOT NOT (a AND b) under an AND): flatten them too.
            leaves = (
                _connective_parts(part, cls)
                if isinstance(part, cls)
                else (part,)
            )
            for leaf in leaves:
                if leaf in parts:
                    changed = True
                    continue
                parts.append(leaf)
        # Complement pair on one spine: `a AND NOT a` is absurd,
        # `a OR NOT a` exhausts the two-valued semantics.
        for part in parts:
            if isinstance(part, Not) and part.inner in parts:
                return absorbing
        if is_and and _parts_conflict(parts):
            return False
        if not parts:
            return identity
        if len(parts) == 1:
            return parts[0]
        if not changed:
            return condition
        rebuilt = parts[0]
        for part in parts[1:]:
            rebuilt = cls(rebuilt, part)
        return rebuilt
    raise TypeError(f"not a condition: {condition!r}")


# ---------------------------------------------------------------------------
# Pattern facts
# ---------------------------------------------------------------------------


@dataclass
class _Facts:
    """What the fold knows about every possible match of a subpattern.

    ``required`` maps each variable to ``(key, const)`` atoms every
    match's binding of that variable must satisfy; ``labels`` maps each
    variable to labels its element must carry. Both only ever speak
    about variables that are singletons *at this point of the fold* —
    repetition boundaries drop their body's variables (they rebind per
    iteration and turn into groups), extensions are opaque.
    """

    empty: bool = False
    required: dict[str, frozenset[tuple[str, object]]] = field(
        default_factory=dict
    )
    labels: dict[str, frozenset[str]] = field(default_factory=dict)


class _Stats:
    __slots__ = ("conditions_simplified", "dead_branches_pruned")

    def __init__(self) -> None:
        self.conditions_simplified = 0
        self.dead_branches_pruned = 0


def _merge_required(
    left: dict[str, frozenset[tuple[str, object]]],
    right: dict[str, frozenset[tuple[str, object]]],
) -> tuple[
    dict[str, frozenset[tuple[str, object]]],
    Optional[tuple[str, str, object, object]],
]:
    """Conjunctive merge (both parts constrain the same elements —
    shared variables are singletons, and unification forces equal
    bindings). Returns the merged map and, if saturation produced a
    contradiction, a ``(variable, key, a, b)`` witness."""
    merged = dict(left)
    witness = None
    for variable, atoms in right.items():
        combined = merged.get(variable, frozenset()) | atoms
        merged[variable] = combined
        if witness is None:
            conflict = _const_conflict(combined)
            if conflict is not None:
                witness = (variable,) + conflict
    return merged, witness


def _intersect_facts(left: _Facts, right: _Facts) -> _Facts:
    """Disjunctive merge (a union match comes from either branch): only
    facts common to both branches survive."""
    required = {}
    for variable in left.required.keys() & right.required.keys():
        common = left.required[variable] & right.required[variable]
        if common:
            required[variable] = common
    labels = {}
    for variable in left.labels.keys() & right.labels.keys():
        common_labels = left.labels[variable] & right.labels[variable]
        if common_labels:
            labels[variable] = common_labels
    return _Facts(empty=False, required=required, labels=labels)


def _merge_labels(
    left: dict[str, frozenset[str]], right: dict[str, frozenset[str]]
) -> dict[str, frozenset[str]]:
    merged = dict(left)
    for variable, labels in right.items():
        merged[variable] = merged.get(variable, frozenset()) | labels
    return merged


def _descriptor_facts(
    pattern: "ast.NodePattern | ast.EdgePattern",
) -> _Facts:
    if pattern.variable is not None and pattern.label is not None:
        return _Facts(
            labels={pattern.variable: frozenset((pattern.label,))}
        )
    return _Facts()


def _rewrite(
    pattern: ast.Pattern, diagnostics: list[Diagnostic], stats: _Stats
) -> tuple[ast.Pattern, _Facts]:
    if isinstance(pattern, (ast.NodePattern, ast.EdgePattern)):
        return pattern, _descriptor_facts(pattern)
    if isinstance(pattern, ast.Union):
        return _rewrite_union(pattern, diagnostics, stats)
    if isinstance(pattern, ast.Concat):
        return _rewrite_concat(pattern, diagnostics, stats)
    if isinstance(pattern, ast.Conditioned):
        return _rewrite_conditioned(pattern, diagnostics, stats)
    if isinstance(pattern, ast.Repeat):
        return _rewrite_repeat(pattern, diagnostics, stats)
    if isinstance(pattern, ast.PatternExtension):
        probe = getattr(pattern, "provably_empty_ext", None)
        empty = bool(probe()) if callable(probe) else False
        if empty:
            diagnostics.append(
                Diagnostic(
                    PROVABLY_EMPTY,
                    "warning",
                    "extension construct is unsatisfiable "
                    "(no element can ever match it)",
                    _span(pattern),
                )
            )
        return pattern, _Facts(empty=empty)
    raise TypeError(f"not a pattern: {pattern!r}")


def _rewrite_union(
    pattern: ast.Union, diagnostics: list[Diagnostic], stats: _Stats
) -> tuple[ast.Pattern, _Facts]:
    left, left_facts = _rewrite(pattern.left, diagnostics, stats)
    right, right_facts = _rewrite(pattern.right, diagnostics, stats)
    if left_facts.empty != right_facts.empty:
        dead, live, live_facts = (
            (pattern.left, right, right_facts)
            if left_facts.empty
            else (pattern.right, left, left_facts)
        )
        diagnostics.append(
            Diagnostic(
                DEAD_UNION_BRANCH,
                "warning",
                "union branch is provably empty and was pruned; every "
                "answer comes from the other branch",
                _span(dead),
            )
        )
        stats.dead_branches_pruned += 1
        return live, live_facts
    if left_facts.empty and right_facts.empty:
        rebuilt = (
            pattern
            if left is pattern.left and right is pattern.right
            else ast.Union(left, right)
        )
        return rebuilt, _Facts(empty=True)
    rebuilt = (
        pattern
        if left is pattern.left and right is pattern.right
        else ast.Union(left, right)
    )
    return rebuilt, _intersect_facts(left_facts, right_facts)


def _rewrite_concat(
    pattern: ast.Concat, diagnostics: list[Diagnostic], stats: _Stats
) -> tuple[ast.Pattern, _Facts]:
    left, left_facts = _rewrite(pattern.left, diagnostics, stats)
    right, right_facts = _rewrite(pattern.right, diagnostics, stats)
    empty = left_facts.empty or right_facts.empty
    required, witness = _merge_required(left_facts.required, right_facts.required)
    if witness is not None and not empty:
        variable, key, first, second = witness
        diagnostics.append(
            Diagnostic(
                PROVABLY_EMPTY,
                "warning",
                f"contradictory property constraints on `{variable}`: "
                f"{variable}.{key} = {first!r} and {variable}.{key} = "
                f"{second!r} cannot both hold",
                _span(pattern),
            )
        )
        empty = True
    rebuilt = (
        pattern
        if left is pattern.left and right is pattern.right
        else ast.Concat(left, right)
    )
    return rebuilt, _Facts(
        empty=empty,
        required=required,
        labels=_merge_labels(left_facts.labels, right_facts.labels),
    )


def _rewrite_conditioned(
    pattern: ast.Conditioned, diagnostics: list[Diagnostic], stats: _Stats
) -> tuple[ast.Pattern, _Facts]:
    inner, inner_facts = _rewrite(pattern.pattern, diagnostics, stats)
    try:
        simplified = simplify_condition(pattern.condition)
    except TypeError:
        # An extension condition type the simplifier cannot see
        # through: keep it verbatim and learn nothing from it.
        rebuilt = (
            pattern
            if inner is pattern.pattern
            else ast.Conditioned(inner, pattern.condition)
        )
        return rebuilt, inner_facts
    if simplified is False:
        diagnostics.append(
            Diagnostic(
                ALWAYS_FALSE_CONDITION,
                "warning",
                "condition is always false; the subpattern can never "
                "match",
                _span(pattern.condition),
            )
        )
        stats.conditions_simplified += 1
        rebuilt = (
            pattern
            if inner is pattern.pattern
            else ast.Conditioned(inner, pattern.condition)
        )
        return rebuilt, _Facts(empty=True)
    if simplified is True:
        diagnostics.append(
            Diagnostic(
                TAUTOLOGY_DROPPED,
                "info",
                "condition is a tautology and was dropped",
                _span(pattern.condition),
            )
        )
        stats.conditions_simplified += 1
        return inner, inner_facts
    if simplified is not pattern.condition:
        diagnostics.append(
            Diagnostic(
                CONDITION_SIMPLIFIED,
                "info",
                f"condition simplified to "
                f"`{pretty_condition(simplified)}`",
                _span(pattern.condition),
            )
        )
        stats.conditions_simplified += 1
    _pushdown_diagnostics(inner, simplified, diagnostics)
    spine = _required_const_atoms(simplified)
    required, witness = _merge_required(inner_facts.required, spine)
    empty = inner_facts.empty
    if witness is not None and not empty:
        variable, key, first, second = witness
        diagnostics.append(
            Diagnostic(
                PROVABLY_EMPTY,
                "warning",
                f"contradictory property constraints on `{variable}`: "
                f"{variable}.{key} = {first!r} and {variable}.{key} = "
                f"{second!r} cannot both hold",
                _span(simplified),
            )
        )
        empty = True
    rebuilt = (
        pattern
        if inner is pattern.pattern and simplified is pattern.condition
        else ast.Conditioned(inner, simplified)
    )
    return rebuilt, _Facts(
        empty=empty, required=required, labels=inner_facts.labels
    )


def _rewrite_repeat(
    pattern: ast.Repeat, diagnostics: list[Diagnostic], stats: _Stats
) -> tuple[ast.Pattern, _Facts]:
    body, body_facts = _rewrite(pattern.pattern, diagnostics, stats)
    if pattern.upper is not None and pattern.lower > pattern.upper:
        # Unreachable through the constructor (it validates n <= m);
        # kept so a hand-built AST still gets a sound verdict.
        return pattern, _Facts(empty=True)  # pragma: no cover
    if body_facts.empty:
        if pattern.lower >= 1:
            rebuilt = (
                pattern
                if body is pattern.pattern
                else ast.Repeat(body, pattern.lower, pattern.upper)
            )
            return rebuilt, _Facts(empty=True)
        if pattern.upper != 0:
            diagnostics.append(
                Diagnostic(
                    REPEAT_ONLY_ZERO,
                    "info",
                    "repetition body is provably empty; only the "
                    "zero-iteration (single-node) match remains",
                    _span(pattern),
                )
            )
            return ast.Repeat(body, 0, 0), _Facts()
    rebuilt = (
        pattern
        if body is pattern.pattern
        else ast.Repeat(body, pattern.lower, pattern.upper)
    )
    # Body variables rebind per iteration (group-typed outside), so no
    # per-variable fact survives the repetition boundary.
    return rebuilt, _Facts()


# ---------------------------------------------------------------------------
# Pushdown usability diagnostics
# ---------------------------------------------------------------------------


def _plain_bind_sites(pattern: ast.Pattern) -> frozenset[str]:
    """Variables bound at a plain descriptor site — outside repetition
    bodies (which rebind per iteration) and extension constructs
    (opaque to the register compiler's push environment)."""
    out: set[str] = set()
    stack: list[ast.Pattern] = [pattern]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.NodePattern, ast.EdgePattern)):
            if current.variable is not None:
                out.add(current.variable)
        elif isinstance(current, (ast.Union, ast.Concat)):
            stack.append(current.left)
            stack.append(current.right)
        elif isinstance(current, ast.Conditioned):
            stack.append(current.pattern)
        # Repeat bodies and extension children are deliberately not
        # descended into.
    return frozenset(out)


def _pushdown_diagnostics(
    inner: ast.Pattern, condition: Condition, diagnostics: list[Diagnostic]
) -> None:
    """Explain which constant-equality atoms cannot become bitmask
    probes, and why."""
    try:
        atoms = [
            atom
            for atom in iter_atoms(condition)
            if isinstance(atom, PropertyEqualsConst)
        ]
    except TypeError:  # extension condition nodes: nothing to say
        return
    spine = _required_const_atoms(condition)
    bindable = _plain_bind_sites(inner)
    seen: set[PropertyEqualsConst] = set()
    for atom in atoms:
        if atom in seen:
            continue
        seen.add(atom)
        on_spine = (atom.key, atom.constant) in spine.get(
            atom.variable, frozenset()
        )
        if not on_spine:
            diagnostics.append(
                Diagnostic(
                    ATOM_NOT_ON_SPINE,
                    "info",
                    f"atom sits under OR/NOT, so it cannot be pushed "
                    f"to `{atom.variable}`'s bind site (it stays in "
                    f"the residual check)",
                    _span(atom),
                )
            )
        elif atom.variable not in bindable:
            diagnostics.append(
                Diagnostic(
                    ATOM_VARIABLE_REBINDS,
                    "info",
                    f"`{atom.variable}` binds inside a repetition or "
                    f"extension construct (it rebinds per iteration / "
                    f"binds opaquely), so the atom cannot become a "
                    f"bitmask probe",
                    _span(atom),
                )
            )


# ---------------------------------------------------------------------------
# Query-shape diagnostics
# ---------------------------------------------------------------------------


def _shape_diagnostics(
    restrictor: ast.Restrictor,
    pattern: ast.Pattern,
    diagnostics: list[Diagnostic],
) -> None:
    plain_shortest = restrictor.shortest and restrictor.mode is None
    if plain_shortest:
        shortest = plan_shortest(pattern)
        if not shortest.start.constrains and not shortest.end.constrains:
            diagnostics.append(
                Diagnostic(
                    UNANCHORED_SHORTEST,
                    "warning",
                    "unanchored `shortest`: neither endpoint is "
                    "constrained by a label or property, so the "
                    "register search seeds from every node",
                    _span(pattern),
                )
            )
    for sub in ast.iter_subpatterns(pattern):
        if not isinstance(sub, ast.Repeat):
            continue
        if max_path_length(sub) is None:
            diagnostics.append(
                Diagnostic(
                    UNBOUNDED_REPEAT,
                    "warning" if plain_shortest else "info",
                    "unbounded repetition: under plain `shortest` the "
                    "engine iteratively deepens up to the configured "
                    "limit; under trail/simple the bound is the graph "
                    "size",
                    _span(sub),
                )
            )
        if may_match_edgeless(sub.pattern) and (
            sub.lower != 0 or sub.upper != 0
        ):
            diagnostics.append(
                Diagnostic(
                    EDGELESS_REPEAT_BODY,
                    "warning",
                    "repetition body may match an edgeless path — "
                    "rejected under Approach 1 (the GQL rule, "
                    "CollectMode.SYNTACTIC) and a source of duplicate "
                    "single-node matches elsewhere",
                    _span(sub),
                )
            )


# ---------------------------------------------------------------------------
# Query analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class QueryAnalysis:
    """The static-analysis verdict for one query.

    ``simplified`` is answer-equivalent to ``query`` on every graph
    (and is ``query`` itself when nothing was rewritten).
    ``provably_empty`` guarantees the answer set is empty on every
    graph — the engine short-circuits without touching the snapshot.
    ``required`` / ``required_labels`` expose the saturated
    per-variable facts the proof used.
    """

    query: ast.Query
    simplified: ast.Query
    provably_empty: bool
    diagnostics: tuple[Diagnostic, ...]
    conditions_simplified: int
    dead_branches_pruned: int
    required: dict[str, frozenset[tuple[str, object]]]
    required_labels: dict[str, frozenset[str]]


def _rewrite_query(
    query: ast.Query, diagnostics: list[Diagnostic], stats: _Stats
) -> tuple[ast.Query, _Facts]:
    if isinstance(query, ast.PatternQuery):
        pattern, facts = _rewrite(query.pattern, diagnostics, stats)
        _shape_diagnostics(query.restrictor, pattern, diagnostics)
        rebuilt = (
            query
            if pattern is query.pattern
            else replace(query, pattern=pattern)
        )
        return rebuilt, facts
    if isinstance(query, ast.Join):
        left, left_facts = _rewrite_query(query.left, diagnostics, stats)
        right, right_facts = _rewrite_query(query.right, diagnostics, stats)
        empty = left_facts.empty or right_facts.empty
        required, witness = _merge_required(
            left_facts.required, right_facts.required
        )
        if witness is not None and not empty:
            variable, key, first, second = witness
            diagnostics.append(
                Diagnostic(
                    PROVABLY_EMPTY,
                    "warning",
                    f"join sides force contradictory constraints on "
                    f"shared variable `{variable}`: {variable}.{key} = "
                    f"{first!r} vs {variable}.{key} = {second!r}",
                    _span(query),
                )
            )
            empty = True
        rebuilt = (
            query
            if left is query.left and right is query.right
            else ast.Join(left, right)
        )
        return rebuilt, _Facts(
            empty=empty,
            required=required,
            labels=_merge_labels(left_facts.labels, right_facts.labels),
        )
    raise TypeError(f"not a query: {query!r}")


@lru_cache(maxsize=1024)
def analyze_query(query: ast.Query) -> QueryAnalysis:
    """Run the full compositional analysis over a *well-typed* query.

    Callers are expected to have run
    :func:`repro.gpc.typing.infer_schema` first (the engine's
    :class:`~repro.gpc.engine.QueryPlan` does); the soundness of
    cross-part atom saturation leans on the typing guarantees (shared
    variables are singletons, conditions only mention singletons).

    Pure in the immutable AST, so verdicts are memoised at module
    level: every plan built for a recurring query shape (the service
    layer builds a fresh :class:`~repro.gpc.engine.QueryPlan` per
    prepared query) shares one analysis instead of re-walking the
    tree, which keeps the prepare-path overhead at hash cost.
    """
    diagnostics: list[Diagnostic] = []
    stats = _Stats()
    simplified, facts = _rewrite_query(query, diagnostics, stats)
    if facts.empty:
        diagnostics.append(
            Diagnostic(
                PROVABLY_EMPTY,
                "warning",
                "query is provably empty on every graph; evaluation "
                "short-circuits to the empty answer set",
                _span(query),
            )
        )
    return QueryAnalysis(
        query=query,
        simplified=simplified,
        provably_empty=facts.empty,
        diagnostics=tuple(diagnostics),
        conditions_simplified=stats.conditions_simplified,
        dead_branches_pruned=stats.dead_branches_pruned,
        required=dict(facts.required),
        required_labels=dict(facts.labels),
    )


# ---------------------------------------------------------------------------
# Lint entry point (string in, diagnostics out — never raises)
# ---------------------------------------------------------------------------


def lint_query(query: "str | ast.Query") -> tuple[Diagnostic, ...]:
    """Diagnostics for a query given as text or AST.

    Unlike :func:`analyze_query` this is total: parse and type errors
    come back as ``GPC000`` / ``GPC001`` error diagnostics instead of
    exceptions, so CI lint runs can report every file.
    """
    from repro.gpc.parser import parse_query
    from repro.gpc.typing import infer_schema

    if isinstance(query, str):
        try:
            parsed: ast.Query = parse_query(query)
        except ParseError as exc:
            return (
                Diagnostic(PARSE_ERROR, "error", str(exc), query.strip()),
            )
    else:
        parsed = query
    try:
        infer_schema(parsed)
    except GPCTypeError as exc:
        return (Diagnostic(TYPE_ERROR, "error", str(exc), _span(parsed)),)
    return analyze_query(parsed).diagnostics
