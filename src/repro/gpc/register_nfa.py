"""Register automata for exact ``shortest`` evaluation.

The condition-free NFA abstraction over-approximates patterns: it
drops property conditions *and* the implicit joins of repeated
variables, so its accepted pairs may include endpoint pairs no true
match connects. Computing ``shortest`` by iterative deepening against
such candidates explodes (the bounded denotation of a pattern grows
exponentially with the length horizon — Theorem 13).

This module compiles patterns into *register* NFAs instead:

- ``bind(x)`` transitions bind (or check) a register against the
  current node;
- edge steps optionally bind/check an edge register;
- ``check(theta)`` transitions evaluate property conditions against
  the bound registers (well-typedness guarantees the variables are
  bound by then);
- ``reset(V)`` transitions clear a repetition body's registers between
  iterations (group variables impose no cross-iteration constraints).

A 0-1 BFS over ``(node, state, registers)`` then yields the *exact*
minimum match length per endpoint pair, in time polynomial in the
product size (registers stay few in practice). Witness paths of that
exact length are enumerated with product-guided DFS, and the span
matcher reconstructs the full assignments (including group values).

One caveat, handled by the engine: under the GROUPING collect mode an
accepted run can exist while every factorization's ``collect`` is
undefined (edgeless-run unification failure), so the minimum is a
lower bound in that corner; the engine then probes longer lengths.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.direction import Direction
from repro.errors import (
    DeadlineExceededError,
    EvaluationError,
    EvaluationLimitError,
)
from repro.graph.ids import NodeId
from repro.graph.paths import Path
from repro.graph.property_graph import PropertyGraph
from repro.gpc import ast
from repro.gpc.assignments import Assignment
from repro.gpc.conditions import satisfies
from repro.gpc.conditions_ast import And, Condition, PropertyEqualsConst
from repro.gpc.planner import split_pushdown
from repro.obs.counters import active_counters

__all__ = [
    "RegisterNFA",
    "UnsupportedPattern",
    "compile_register_nfa",
    "shortest_pair_lengths",
    "DenseProgram",
    "compile_dense_program",
    "dense_shortest_pair_lengths",
    "FlatProgram",
    "compile_flat_program",
    "flat_shortest_pair_lengths",
    "enumerate_exact_length_walks",
]


class UnsupportedPattern(Exception):
    """The pattern uses a construct the register compiler cannot
    handle (engine falls back to bounded deepening)."""


@dataclass(frozen=True)
class _Eps:
    pass


@dataclass(frozen=True)
class _NodeTest:
    label: str


#: Pushed ``x.key = const`` atoms attached to a bind/step site:
#: sorted-hashable frozenset of ``(key, const)`` pairs. Every pair must
#: hold on the element the site touches (defined *and* equal, the same
#: truth :func:`repro.gpc.conditions.satisfies` computes), or the
#: transition is blocked.
PushedProps = frozenset


@dataclass(frozen=True)
class _Bind:
    variable: str
    props: PushedProps = frozenset()


@dataclass(frozen=True)
class _Check:
    condition: Condition


@dataclass(frozen=True)
class _Reset:
    variables: frozenset[str]


@dataclass(frozen=True)
class _EdgeStep:
    direction: Direction
    label: Optional[str]
    variable: Optional[str]
    props: PushedProps = frozenset()


@dataclass
class RegisterNFA:
    num_states: int
    initial: int
    final: int
    #: zero-weight transitions per state: (op, target)
    zero: tuple[tuple[tuple[object, int], ...], ...]
    #: edge-step (weight 1) transitions per state
    steps: tuple[tuple[tuple[_EdgeStep, int], ...], ...]
    #: condition atoms the compiler attached to bind/step sites instead
    #: of leaving them in a final CHECK (0 without pushdown)
    pushed_atoms: int = 0


@dataclass
class _Builder:
    state_limit: int = 100_000
    pushdown: bool = False
    zero: list[list[tuple[object, int]]] = field(default_factory=list)
    steps: list[list[tuple[_EdgeStep, int]]] = field(default_factory=list)
    #: per-variable count of bind/step sites that *attached* pushed
    #: atoms; a Conditioned elides an atom from its residual check only
    #: when compiling its subtree grew this count (i.e. some in-subtree
    #: site carries the test).
    attached: dict[str, int] = field(default_factory=dict)
    pushed_atoms: int = 0

    def new_state(self) -> int:
        if len(self.zero) >= self.state_limit:
            raise EvaluationLimitError(
                f"register automaton exceeded {self.state_limit} states; "
                f"repetition bounds may be too large"
            )
        self.zero.append([])
        self.steps.append([])
        return len(self.zero) - 1

    def add_zero(self, source: int, op: object, target: int) -> None:
        self.zero[source].append((op, target))

    def add_step(self, source: int, step: _EdgeStep, target: int) -> None:
        self.steps[source].append((step, target))

    def note_attached(self, variable: str) -> None:
        self.attached[variable] = self.attached.get(variable, 0) + 1


#: Compile-time environment: variable -> pushed (key, const) atoms the
#: enclosing Conditioned wrappers want tested at that variable's
#: bind/step sites.
_PushEnv = dict


def compile_register_nfa(
    pattern: ast.Pattern,
    state_limit: int = 100_000,
    pushdown: bool = False,
) -> RegisterNFA:
    """Compile a pattern into a register NFA.

    With ``pushdown=True``, single-variable ``x.key = const`` atoms on
    the positive ``And`` spine of each condition are attached to the
    bind/step sites of ``x`` inside the Conditioned subtree (failing
    candidates die at bind time) and elided from the residual CHECK.
    Elision only happens when compilation proves an in-subtree site
    took the atom; atoms whose variable binds only inside a repetition
    body or an extension child fall back to the residual check, so the
    rewrite is answer-preserving by construction.

    Raises :class:`UnsupportedPattern` for extension constructs that do
    not fit the register model (e.g. arithmetic conditions over group
    counts).
    """
    builder = _Builder(state_limit=state_limit, pushdown=pushdown)
    start, end = _compile(pattern, builder, {})
    return RegisterNFA(
        num_states=len(builder.zero),
        initial=start,
        final=end,
        zero=tuple(tuple(z) for z in builder.zero),
        steps=tuple(tuple(s) for s in builder.steps),
        pushed_atoms=builder.pushed_atoms,
    )


def _compile(
    pattern: ast.Pattern, builder: _Builder, pushed: _PushEnv
) -> tuple[int, int]:
    if isinstance(pattern, ast.NodePattern):
        start = builder.new_state()
        end = builder.new_state()
        current = start
        if pattern.label is not None:
            mid = builder.new_state()
            builder.add_zero(current, _NodeTest(pattern.label), mid)
            current = mid
        if pattern.variable is not None:
            props = pushed.get(pattern.variable)
            if props:
                builder.add_zero(
                    current, _Bind(pattern.variable, props), end
                )
                builder.note_attached(pattern.variable)
            else:
                builder.add_zero(current, _Bind(pattern.variable), end)
        else:
            builder.add_zero(current, _Eps(), end)
        return start, end
    if isinstance(pattern, ast.EdgePattern):
        start = builder.new_state()
        end = builder.new_state()
        props = (
            pushed.get(pattern.variable)
            if pattern.variable is not None
            else None
        )
        if props:
            builder.note_attached(pattern.variable)
        builder.add_step(
            start,
            _EdgeStep(
                pattern.direction,
                pattern.label,
                pattern.variable,
                props or frozenset(),
            ),
            end,
        )
        return start, end
    if isinstance(pattern, ast.Concat):
        left_start, left_end = _compile(pattern.left, builder, pushed)
        right_start, right_end = _compile(pattern.right, builder, pushed)
        builder.add_zero(left_end, _Eps(), right_start)
        return left_start, right_end
    if isinstance(pattern, ast.Union):
        start = builder.new_state()
        end = builder.new_state()
        for branch in (pattern.left, pattern.right):
            b_start, b_end = _compile(branch, builder, pushed)
            builder.add_zero(start, _Eps(), b_start)
            builder.add_zero(b_end, _Eps(), end)
        return start, end
    if isinstance(pattern, ast.Conditioned):
        return _compile_conditioned(pattern, builder, pushed)
    if isinstance(pattern, ast.Repeat):
        return _compile_repeat(pattern, builder)
    if isinstance(pattern, ast.PatternExtension):
        hook = getattr(pattern, "compile_register_ext", None)
        if hook is None:
            raise UnsupportedPattern(
                f"extension {type(pattern).__name__} has no register "
                f"compilation"
            )
        # Extension children compile with an empty push environment:
        # their internal structure is opaque, so no atom may be elided
        # on their account (the attached-count check above guarantees
        # the enclosing Conditioned keeps such atoms in its residue).
        return hook(builder, lambda child: _compile(child, builder, {}))
    raise TypeError(f"not a pattern: {pattern!r}")


def _compile_conditioned(
    pattern: ast.Conditioned, builder: _Builder, pushed: _PushEnv
) -> tuple[int, int]:
    if not builder.pushdown:
        inner_start, inner_end = _compile(pattern.pattern, builder, pushed)
        end = builder.new_state()
        builder.add_zero(inner_end, _Check(pattern.condition), end)
        return inner_start, end
    atoms, residue = split_pushdown(pattern.condition)
    if not atoms:
        inner_start, inner_end = _compile(pattern.pattern, builder, pushed)
        end = builder.new_state()
        builder.add_zero(inner_end, _Check(pattern.condition), end)
        return inner_start, end
    child_env: _PushEnv = dict(pushed)
    for variable, var_atoms in atoms.items():
        child_env[variable] = child_env.get(variable, frozenset()) | var_atoms
    before = {v: builder.attached.get(v, 0) for v in atoms}
    inner_start, inner_end = _compile(pattern.pattern, builder, child_env)
    for variable in sorted(atoms):
        var_atoms = atoms[variable]
        if builder.attached.get(variable, 0) > before[variable]:
            # Some bind/step site of the variable inside the subtree
            # carries the test (and every accepting run traverses one:
            # the variable is in the inner schema, union branches share
            # schemas, and repetition/extension sites never attach), so
            # the residual check may drop the atom.
            builder.pushed_atoms += len(var_atoms)
        else:
            for key, const in sorted(var_atoms, key=repr):
                atom = PropertyEqualsConst(variable, key, const)
                residue = atom if residue is None else And(residue, atom)
    end = builder.new_state()
    if residue is None:
        builder.add_zero(inner_end, _Eps(), end)
    else:
        builder.add_zero(inner_end, _Check(residue), end)
    return inner_start, end


def _compile_repeat(pattern: ast.Repeat, builder: _Builder) -> tuple[int, int]:
    body_vars = frozenset(ast.variables(pattern.pattern))
    reset = _Reset(body_vars)

    def body_copy(source: int) -> int:
        """One body iteration followed by a register reset.

        The body compiles with an empty push environment: an atom from
        an *enclosing* Conditioned must hold of the single value its
        variable takes across the whole match, whereas a site inside
        the body binds afresh every iteration — attaching there would
        change which runs survive.
        """
        b_start, b_end = _compile(pattern.pattern, builder, {})
        builder.add_zero(source, _Eps(), b_start)
        after = builder.new_state()
        builder.add_zero(b_end, reset if body_vars else _Eps(), after)
        return after

    start = builder.new_state()
    current = start
    for _ in range(pattern.lower):
        current = body_copy(current)
    end = builder.new_state()
    if pattern.upper is None:
        loop_exit = body_copy(current)
        builder.add_zero(loop_exit, _Eps(), current)
        builder.add_zero(current, _Eps(), end)
    else:
        builder.add_zero(current, _Eps(), end)
        for _ in range(pattern.upper - pattern.lower):
            current = body_copy(current)
            builder.add_zero(current, _Eps(), end)
    return start, end


# ---------------------------------------------------------------------------
# Search
# ---------------------------------------------------------------------------

Registers = tuple[tuple[str, object], ...]  # sorted (variable, id) pairs


def _apply_zero(
    op: object,
    node: NodeId,
    registers: Registers,
    graph: PropertyGraph,
) -> Optional[Registers]:
    """Apply a zero-weight op at ``node``; ``None`` when blocked."""
    if isinstance(op, _Eps):
        return registers
    if isinstance(op, _NodeTest):
        return registers if op.label in graph.labels(node) else None
    if isinstance(op, _Bind):
        for key, const in op.props:
            value = graph.get_property(node, key)
            if value is None or value != const:
                return None
        current = dict(registers)
        bound = current.get(op.variable)
        if bound is None:
            current[op.variable] = node
            return tuple(sorted(current.items()))
        return registers if bound == node else None
    if isinstance(op, _Check):
        mu = Assignment({v: value for v, value in registers})
        try:
            ok = satisfies(graph, mu, op.condition)
        except (DeadlineExceededError, EvaluationLimitError):
            # Resource errors must surface (deadline_ms -> 504); only a
            # condition that is *undefined* here blocks the transition.
            raise
        except EvaluationError:
            return None
        return registers if ok else None
    if isinstance(op, _Reset):
        kept = tuple(
            (v, value) for v, value in registers if v not in op.variables
        )
        return kept
    raise TypeError(f"unknown op {op!r}")


def _props_hold(graph, element, props: PushedProps) -> bool:
    """Whether every pushed ``key = const`` atom holds on ``element``
    (defined and equal — the exact truth ``satisfies`` computes)."""
    for key, const in props:
        value = graph.get_property(element, key)
        if value is None or value != const:
            return False
    return True


def _step_targets(
    step: _EdgeStep, node: NodeId, graph: PropertyGraph
) -> list[tuple[object, NodeId]]:
    """Edges usable from ``node`` under ``step``: (edge, next node)."""
    out = []
    props = step.props
    if step.direction is Direction.FORWARD:
        for edge in graph.out_edges(node):
            if step.label is None or step.label in graph.labels(edge):
                if props and not _props_hold(graph, edge, props):
                    continue
                out.append((edge, graph.target(edge)))
    elif step.direction is Direction.BACKWARD:
        for edge in graph.in_edges(node):
            if step.label is None or step.label in graph.labels(edge):
                if props and not _props_hold(graph, edge, props):
                    continue
                out.append((edge, graph.source(edge)))
    else:
        for edge in graph.undirected_edges_at(node):
            if step.label is None or step.label in graph.labels(edge):
                if props and not _props_hold(graph, edge, props):
                    continue
                out.append((edge, graph.other_endpoint(edge, node)))
    return out


def shortest_pair_lengths(
    graph: PropertyGraph,
    nfa: RegisterNFA,
    start: NodeId,
    state_budget: int = 2_000_000,
) -> dict[NodeId, int]:
    """Exact minimum accepted path length from ``start`` to every
    reachable end node, via 0-1 BFS over (node, state, registers)."""
    initial = (start, nfa.initial, ())
    dist: dict[tuple, int] = {initial: 0}
    queue: deque[tuple] = deque([initial])
    best: dict[NodeId, int] = {}
    # Work accounting stays in local ints inside the hot loop; the
    # ambient EvalCounters (if any) is updated once on the way out.
    expanded = 0
    relaxed = 0
    try:
        while queue:
            state = queue.popleft()
            expanded += 1
            node, q, registers = state
            d = dist[state]
            if q == nfa.final and (node not in best or d < best[node]):
                best[node] = d
            for op, target in nfa.zero[q]:
                updated = _apply_zero(op, node, registers, graph)
                if updated is None:
                    continue
                key = (node, target, updated)
                if key not in dist or dist[key] > d:
                    dist[key] = d
                    queue.appendleft(key)
                    relaxed += 1
            for step, target in nfa.steps[q]:
                for edge, successor in _step_targets(step, node, graph):
                    updated = registers
                    if step.variable is not None:
                        current = dict(registers)
                        bound = current.get(step.variable)
                        if bound is None:
                            current[step.variable] = edge
                            updated = tuple(sorted(current.items()))
                        elif bound != edge:
                            continue
                    key = (successor, target, updated)
                    if key not in dist or dist[key] > d + 1:
                        dist[key] = d + 1
                        queue.append(key)
                        relaxed += 1
            if len(dist) > state_budget:
                raise EvaluationLimitError(
                    f"register search exceeded {state_budget} states"
                )
    finally:
        counters = active_counters()
        if counters is not None:
            counters.nfa_states_expanded += expanded
            counters.nfa_transitions += relaxed
    return best


# ---------------------------------------------------------------------------
# Dense-id fast path
# ---------------------------------------------------------------------------
#
# When the view is a columnar :class:`~repro.graph.snapshot.GraphSnapshot`
# the 0-1 BFS can run on interned integer ids and CSR slices instead of
# ``_Id`` wrappers and adjacency tuples: node/edge identity becomes an
# ``int``, label tests become membership in a pre-interned frozenset of
# label ints, and neighbour expansion is a contiguous slice of two
# parallel ``array('i')`` columns. Search states whose node lives only
# in a derive overlay (or whose CSR row was patched) step through the
# snapshot's view accessors instead, translating successors back into
# dense keys, so mixed core/overlay graphs stay exact. The key
# invariant is that the dense-key translation is deterministic per
# snapshot — each element is keyed either always by its int or always
# by its ``_Id`` — so register equality and ``dist`` dedup behave
# exactly as in :func:`shortest_pair_lengths`.

_OP_EPS = 0
_OP_TEST = 1
_OP_BIND = 2
_OP_CHECK = 3
_OP_RESET = 4

_STEP_FORWARD = 0
_STEP_BACKWARD = 1
_STEP_UNDIRECTED = 2


@dataclass(frozen=True)
class DenseProgram:
    """A register NFA lowered onto one snapshot's interning tables.

    ``zero`` holds per-state tuples ``(kind, payload, target)`` with
    ``kind`` one of the ``_OP_*`` codes. TEST payloads are
    ``(label, label_mask)`` and BIND payloads
    ``(variable, prop_mask, props)``; the masks are dense-id bitmasks
    baked from the snapshot's column indexes (``prop_mask`` is ``None``
    when the bind carries no pushed atoms), so the hot loop probes one
    bit instead of materialising label sets or assignments. ``steps``
    holds per-state tuples
    ``(direction_code, label, label_mask, variable, prop_mask, props,
    target)`` with the same conventions (``label_mask`` is ``None`` for
    unlabelled steps). The string/frozenset halves of each payload
    drive the overlay fallback for elements that are not dense ints."""

    zero: tuple
    steps: tuple


def _pushed_prop_mask(snapshot, props: PushedProps):
    """AND-combine the snapshot's per-atom bitmasks (``None`` when the
    site has no pushed atoms)."""
    mask = None
    for key, const in sorted(props, key=repr):
        atom_mask = snapshot.property_mask(key, const)
        if mask is None:
            mask = atom_mask
        else:
            mask = bytes(a & b for a, b in zip(mask, atom_mask))
    return mask


def compile_dense_program(nfa: RegisterNFA, snapshot) -> DenseProgram:
    """Lower ``nfa``'s ops onto ``snapshot``'s column indexes.

    Compile once per (pattern, snapshot) pair and reuse across seeds —
    the result is only valid for the snapshot whose label interning and
    bitmask indexes it captured."""
    zero = []
    for transitions in nfa.zero:
        row = []
        for op, target in transitions:
            if isinstance(op, _Eps):
                row.append((_OP_EPS, None, target))
            elif isinstance(op, _NodeTest):
                row.append(
                    (
                        _OP_TEST,
                        (op.label, snapshot.label_mask(op.label)),
                        target,
                    )
                )
            elif isinstance(op, _Bind):
                row.append(
                    (
                        _OP_BIND,
                        (
                            op.variable,
                            _pushed_prop_mask(snapshot, op.props),
                            op.props,
                        ),
                        target,
                    )
                )
            elif isinstance(op, _Check):
                row.append((_OP_CHECK, op.condition, target))
            elif isinstance(op, _Reset):
                row.append((_OP_RESET, op.variables, target))
            else:
                raise TypeError(f"unknown op {op!r}")
        zero.append(tuple(row))
    steps = []
    for transitions in nfa.steps:
        row = []
        for step, target in transitions:
            if step.direction is Direction.FORWARD:
                code = _STEP_FORWARD
            elif step.direction is Direction.BACKWARD:
                code = _STEP_BACKWARD
            else:
                code = _STEP_UNDIRECTED
            label_mask = (
                None
                if step.label is None
                else snapshot.label_mask(step.label)
            )
            row.append(
                (
                    code,
                    step.label,
                    label_mask,
                    step.variable,
                    _pushed_prop_mask(snapshot, step.props),
                    step.props,
                    target,
                )
            )
        steps.append(tuple(row))
    return DenseProgram(zero=tuple(zero), steps=tuple(steps))


def dense_shortest_pair_lengths(
    snapshot,
    nfa: RegisterNFA,
    start: NodeId,
    state_budget: int = 2_000_000,
    program: Optional[DenseProgram] = None,
) -> dict[NodeId, int]:
    """:func:`shortest_pair_lengths` specialised to a columnar
    :class:`~repro.graph.snapshot.GraphSnapshot`.

    Semantically identical (same 0-1 BFS, same budget, same counters);
    returns real element ids. Core nodes with unpatched CSR rows expand
    via integer column slices; overlay, shadowed, and dirty nodes fall
    back to the view accessors."""
    if program is None:
        program = compile_dense_program(nfa, snapshot)
    core = snapshot._core
    dense = core.dense
    elements = core.elements
    out_off, out_edge, out_tgt = core.out_off, core.out_edge, core.out_tgt
    in_off, in_edge, in_src = core.in_off, core.in_edge, core.in_src
    und_off, und_edge, und_other = (
        core.und_off,
        core.und_edge,
        core.und_other,
    )
    dirty = snapshot._dirty
    shadow = snapshot._shadow
    zero_prog = program.zero
    step_prog = program.steps
    final = nfa.final

    initial = (snapshot.dense_start_key(start), nfa.initial, ())
    dist: dict[tuple, int] = {initial: 0}
    queue: deque[tuple] = deque([initial])
    best: dict = {}
    expanded = 0
    relaxed = 0
    probes = 0
    try:
        while queue:
            state = queue.popleft()
            expanded += 1
            node, q, registers = state
            d = dist[state]
            if q == final and (node not in best or d < best[node]):
                best[node] = d
            node_is_int = type(node) is int
            for kind, payload, target in zero_prog[q]:
                if kind == _OP_EPS:
                    updated = registers
                elif kind == _OP_TEST:
                    if node_is_int:
                        probes += 1
                        if not payload[1][node >> 3] & (1 << (node & 7)):
                            continue
                    elif payload[0] not in snapshot.labels(node):
                        continue
                    updated = registers
                elif kind == _OP_BIND:
                    variable, prop_mask, props = payload
                    if prop_mask is not None:
                        if node_is_int:
                            probes += 1
                            if not prop_mask[node >> 3] & (1 << (node & 7)):
                                continue
                        elif not _props_hold(snapshot, node, props):
                            continue
                    current = dict(registers)
                    bound = current.get(variable)
                    if bound is None:
                        current[variable] = node
                        updated = tuple(sorted(current.items()))
                    elif bound == node:
                        updated = registers
                    else:
                        continue
                elif kind == _OP_CHECK:
                    mu = Assignment(
                        {
                            v: elements[value] if type(value) is int else value
                            for v, value in registers
                        }
                    )
                    try:
                        ok = satisfies(snapshot, mu, payload)
                    except (DeadlineExceededError, EvaluationLimitError):
                        raise
                    except EvaluationError:
                        continue
                    if not ok:
                        continue
                    updated = registers
                else:  # _OP_RESET
                    updated = tuple(
                        (v, value)
                        for v, value in registers
                        if v not in payload
                    )
                key = (node, target, updated)
                if key not in dist or dist[key] > d:
                    dist[key] = d
                    queue.appendleft(key)
                    relaxed += 1
            steps_here = step_prog[q]
            if steps_here and node_is_int and not (dirty and node in dirty):
                for (
                    code,
                    _label,
                    label_mask,
                    variable,
                    prop_mask,
                    _props,
                    target,
                ) in steps_here:
                    if code == _STEP_FORWARD:
                        lo, hi = out_off[node], out_off[node + 1]
                        edge_col, succ_col = out_edge, out_tgt
                    elif code == _STEP_BACKWARD:
                        lo, hi = in_off[node], in_off[node + 1]
                        edge_col, succ_col = in_edge, in_src
                    else:
                        lo, hi = und_off[node], und_off[node + 1]
                        edge_col, succ_col = und_edge, und_other
                    for i in range(lo, hi):
                        edge = edge_col[i]
                        if label_mask is not None:
                            probes += 1
                            if not label_mask[edge >> 3] & (1 << (edge & 7)):
                                continue
                        if prop_mask is not None:
                            probes += 1
                            if not prop_mask[edge >> 3] & (1 << (edge & 7)):
                                continue
                        updated = registers
                        if variable is not None:
                            current = dict(registers)
                            bound = current.get(variable)
                            if bound is None:
                                current[variable] = edge
                                updated = tuple(sorted(current.items()))
                            elif bound != edge:
                                continue
                        key = (succ_col[i], target, updated)
                        if key not in dist or dist[key] > d + 1:
                            dist[key] = d + 1
                            queue.append(key)
                            relaxed += 1
            elif steps_here:
                real = elements[node] if node_is_int else node
                for (
                    code,
                    label,
                    _label_mask,
                    variable,
                    _prop_mask,
                    props,
                    target,
                ) in steps_here:
                    if code == _STEP_FORWARD:
                        pairs = [
                            (e, snapshot.target(e))
                            for e in snapshot.out_edges(real)
                        ]
                    elif code == _STEP_BACKWARD:
                        pairs = [
                            (e, snapshot.source(e))
                            for e in snapshot.in_edges(real)
                        ]
                    else:
                        pairs = [
                            (e, snapshot.other_endpoint(e, real))
                            for e in snapshot.undirected_edges_at(real)
                        ]
                    for edge, successor in pairs:
                        if (
                            label is not None
                            and label not in snapshot.labels(edge)
                        ):
                            continue
                        if props and not _props_hold(snapshot, edge, props):
                            continue
                        updated = registers
                        if variable is not None:
                            edge_key = dense.get(edge, edge)
                            current = dict(registers)
                            bound = current.get(variable)
                            if bound is None:
                                current[variable] = edge_key
                                updated = tuple(sorted(current.items()))
                            elif bound != edge_key:
                                continue
                        succ_dense = dense.get(successor)
                        if succ_dense is None or (
                            shadow and succ_dense in shadow
                        ):
                            succ_key = successor
                        else:
                            succ_key = succ_dense
                        key = (succ_key, target, updated)
                        if key not in dist or dist[key] > d + 1:
                            dist[key] = d + 1
                            queue.append(key)
                            relaxed += 1
            if len(dist) > state_budget:
                raise EvaluationLimitError(
                    f"register search exceeded {state_budget} states"
                )
    finally:
        counters = active_counters()
        if counters is not None:
            counters.nfa_states_expanded += expanded
            counters.nfa_transitions += relaxed
            counters.mask_probes += probes
    return {
        (elements[node] if type(node) is int else node): d
        for node, d in best.items()
    }


# ---------------------------------------------------------------------------
# Register-free flat-array fast lane
# ---------------------------------------------------------------------------
#
# The common RPQ-shaped case — after pushdown elided every CHECK and no
# variable is repeated — never consults registers at all: every bind
# fires on an unbound register (single static site per variable, and
# repetition resets clear body registers before their site is reached
# again), so the product state collapses to ``(node, nfa_state)``. On a
# pristine snapshot both halves are small ints, so the whole search can
# run over a flat ``array('i')`` distance table indexed by
# ``node * num_states + state`` with a deque of packed ints: no tuple
# hashing, no register dicts, no per-state allocations. Labelled step
# arcs resolve to label-restricted CSR rows (only matching edges are
# walked); pushed property atoms stay per-edge bitmask probes; arcs on
# labels absent from the core are dropped at compile time.


@dataclass(frozen=True)
class FlatProgram:
    """A :class:`DenseProgram` specialised to the register-free case.

    ``closure`` holds, per state ``q``, the masked epsilon closure:
    tuples ``(mask, r)`` meaning state ``r`` is reachable from ``q``
    through zero-weight ops whose node tests and pushed-prop binds
    AND-combine to ``mask`` (``None`` = unconditional; pairs with
    ``None`` masks sort first). Folding the closure at compile time
    leaves only weight-1 transitions at run time, so the search is a
    plain FIFO BFS with no zero-weight re-relaxation. ``steps`` holds
    per-state tuples ``(off, edge, other, prop_mask, target)`` — a CSR
    triple already restricted to the arc's direction and label (via
    :meth:`SnapshotColumns.filtered_csr`, so a labelled traversal walks
    only matching edges) plus an optional pushed-prop bitmask probed
    per surviving edge. Only valid for the pristine snapshot it was
    compiled against."""

    num_states: int
    initial: int
    final: int
    closure: tuple
    steps: tuple


def _and_masks(left, right):
    if left is None:
        return right
    if right is None:
        return left
    return bytes(a & b for a, b in zip(left, right))


#: Closure pairs per state beyond which the flat lane bails out to the
#: dense program — a backstop against pathological eps/mask lattices.
_CLOSURE_LIMIT = 64


def _masked_closures(zero_rows: tuple) -> Optional[tuple]:
    """Per-state masked epsilon closures of lowered ``(mask, target)``
    zero rows, or ``None`` when a closure exceeds :data:`_CLOSURE_LIMIT`
    distinct pairs. AND-ing along paths is monotone, so the fixed point
    always terminates (eps cycles re-derive existing pairs)."""
    closures = []
    for q in range(len(zero_rows)):
        pairs = {(None, q)}
        frontier = [(None, q)]
        while frontier:
            mask, r = frontier.pop()
            for arc_mask, target in zero_rows[r]:
                pair = (_and_masks(mask, arc_mask), target)
                if pair not in pairs:
                    pairs.add(pair)
                    frontier.append(pair)
                    if len(pairs) > _CLOSURE_LIMIT:
                        return None
        # Unconditional pairs first: the runner's per-pop seen set then
        # settles each state via its cheapest (mask-free) derivation.
        closures.append(
            tuple(sorted(pairs, key=lambda pair: pair[0] is not None))
        )
    return tuple(closures)


def compile_flat_program(nfa: RegisterNFA, snapshot) -> Optional[FlatProgram]:
    """Lower ``nfa`` to a :class:`FlatProgram`, or ``None`` when the
    register-free collapse would not be sound.

    Eligibility: the snapshot is pristine (no overlays — every element
    is a live core element with authoritative columns), the program has
    no residual CHECK (registers are never *read*), and no variable has
    more than one bind/step site (registers never *constrain*: each
    site binds fresh, loop re-entry passes a reset first)."""
    if not snapshot.pristine:
        return None
    sites: dict[str, int] = {}
    for transitions in nfa.zero:
        for op, _target in transitions:
            if isinstance(op, _Check):
                return None
            if isinstance(op, _Bind):
                sites[op.variable] = sites.get(op.variable, 0) + 1
    for transitions in nfa.steps:
        for step, _target in transitions:
            if step.variable is not None:
                sites[step.variable] = sites.get(step.variable, 0) + 1
    if any(count > 1 for count in sites.values()):
        return None
    label_index = snapshot._core.label_index
    zero = []
    for transitions in nfa.zero:
        row = []
        for op, target in transitions:
            if isinstance(op, (_Eps, _Reset)):
                row.append((None, target))
            elif isinstance(op, _NodeTest):
                if op.label not in label_index:
                    continue  # no core element carries it: dead arc
                row.append((snapshot.label_mask(op.label), target))
            elif isinstance(op, _Bind):
                row.append((_pushed_prop_mask(snapshot, op.props), target))
            else:  # pragma: no cover - _Check rejected above
                return None
        zero.append(tuple(row))
    closures = _masked_closures(tuple(zero))
    if closures is None:
        return None
    core = snapshot._core
    steps = []
    for transitions in nfa.steps:
        row = []
        for step, target in transitions:
            if step.label is not None and step.label not in label_index:
                continue  # dead arc
            if step.direction is Direction.FORWARD:
                kind = "out"
            elif step.direction is Direction.BACKWARD:
                kind = "in"
            else:
                kind = "und"
            if step.label is None:
                if kind == "out":
                    triple = (core.out_off, core.out_edge, core.out_tgt)
                elif kind == "in":
                    triple = (core.in_off, core.in_edge, core.in_src)
                else:
                    triple = (core.und_off, core.und_edge, core.und_other)
            else:
                triple = core.filtered_csr(kind, label_index[step.label])
            prop_mask = _pushed_prop_mask(snapshot, step.props)
            row.append(triple + (prop_mask, target))
        steps.append(tuple(row))
    return FlatProgram(
        num_states=nfa.num_states,
        initial=nfa.initial,
        final=nfa.final,
        closure=closures,
        steps=tuple(steps),
    )


def flat_shortest_pair_lengths(
    snapshot,
    flat: FlatProgram,
    start: NodeId,
    state_budget: int = 2_000_000,
) -> dict[NodeId, int]:
    """:func:`dense_shortest_pair_lengths` for a :class:`FlatProgram`.

    Same search and budget semantics, but states are packed ints over
    a flat distance array (-1 = undiscovered) instead of dict-keyed
    tuples, and the compile-time epsilon closures leave only weight-1
    transitions — a plain FIFO BFS, where first discovery is final.
    Only call with the pristine snapshot the program was compiled for;
    seeds are core nodes by construction."""
    core = snapshot._core
    elements = core.elements
    ns = flat.num_states
    closure_prog = flat.closure
    step_prog = flat.steps
    final = flat.final

    start_dense = snapshot.dense_start_key(start)
    if type(start_dense) is not int:  # pragma: no cover - pristine guard
        raise ValueError("flat lane requires a core seed node")
    dist = array("i", [-1]) * (core.n_nodes * ns)
    initial = start_dense * ns + flat.initial
    dist[initial] = 0
    queue: deque[int] = deque([initial])
    best: dict[int, int] = {}
    expanded = 0
    relaxed = 0
    probes = 0
    discovered = 1
    try:
        while queue:
            packed = queue.popleft()
            expanded += 1
            node, q = divmod(packed, ns)
            d = dist[packed]
            nd = d + 1
            byte = node >> 3
            bit = 1 << (node & 7)
            settled = 0
            for cmask, r in closure_prog[q]:
                if cmask is not None:
                    probes += 1
                    if not cmask[byte] & bit:
                        continue
                if settled >> r & 1:
                    continue  # already settled via a cheaper derivation
                settled |= 1 << r
                if r == final and node not in best:
                    best[node] = d
                for off, edge_col, succ_col, prop_mask, target in step_prog[r]:
                    for i in range(off[node], off[node + 1]):
                        if prop_mask is not None:
                            edge = edge_col[i]
                            probes += 1
                            if not prop_mask[edge >> 3] & (1 << (edge & 7)):
                                continue
                        key = succ_col[i] * ns + target
                        if dist[key] < 0:
                            dist[key] = nd
                            queue.append(key)
                            relaxed += 1
                            discovered += 1
            if discovered > state_budget:
                raise EvaluationLimitError(
                    f"register search exceeded {state_budget} states"
                )
    finally:
        counters = active_counters()
        if counters is not None:
            counters.nfa_states_expanded += expanded
            counters.nfa_transitions += relaxed
            counters.mask_probes += probes
            counters.dense_fast_lane += 1
    return {elements[node]: d for node, d in best.items()}


# ---------------------------------------------------------------------------
# Witness enumeration
# ---------------------------------------------------------------------------


def _register_free_state_sets(
    nfa: RegisterNFA, graph: PropertyGraph, node: NodeId, states: frozenset[int]
) -> frozenset[int]:
    """Closure under zero-weight ops, ignoring registers (binds/checks
    optimistically succeed) — an over-approximation used for pruning."""
    closure = set(states)
    stack = list(states)
    while stack:
        q = stack.pop()
        for op, target in nfa.zero[q]:
            if isinstance(op, _NodeTest) and op.label not in graph.labels(node):
                continue
            if target not in closure:
                closure.add(target)
                stack.append(target)
    return frozenset(closure)


def _backward_distances(nfa: RegisterNFA) -> list[int]:
    """Min remaining edge steps from each state to the final state,
    register-free (a lower bound for pruning)."""
    INF = float("inf")
    dist = [INF] * nfa.num_states
    dist[nfa.final] = 0
    # Reverse adjacency.
    zero_rev: list[list[int]] = [[] for _ in range(nfa.num_states)]
    step_rev: list[list[int]] = [[] for _ in range(nfa.num_states)]
    for q in range(nfa.num_states):
        for _op, target in nfa.zero[q]:
            zero_rev[target].append(q)
        for _step, target in nfa.steps[q]:
            step_rev[target].append(q)
    queue: deque[int] = deque([nfa.final])
    while queue:
        q = queue.popleft()
        for p in zero_rev[q]:
            if dist[p] > dist[q]:
                dist[p] = dist[q]
                queue.appendleft(p)
        for p in step_rev[q]:
            if dist[p] > dist[q] + 1:
                dist[p] = dist[q] + 1
                queue.append(p)
    return [int(d) if d != INF else -1 for d in dist]


def enumerate_exact_length_walks(
    graph: PropertyGraph,
    nfa: RegisterNFA,
    start: NodeId,
    end: NodeId,
    length: int,
) -> list[Path]:
    """All graph walks from ``start`` to ``end`` of exactly ``length``
    edges that are plausible under the register-free projection of
    ``nfa`` (final matching is re-checked by the span matcher).

    The DFS is pruned by register-free reachability and by the
    remaining-steps lower bound, so it explores little beyond the true
    witnesses.
    """
    back = _backward_distances(nfa)
    results: list[Path] = []

    def viable(states: frozenset[int], remaining: int) -> bool:
        return any(0 <= back[q] <= remaining for q in states)

    initial_states = _register_free_state_sets(
        nfa, graph, start, frozenset({nfa.initial})
    )

    def dfs(path: Path, states: frozenset[int], remaining: int) -> None:
        if remaining == 0:
            if path.tgt == end and any(q == nfa.final for q in states):
                results.append(path)
            return
        node = path.tgt
        # One edge step in every direction the NFA allows from here.
        moves: dict[tuple[object, NodeId], set[int]] = {}
        for q in states:
            for step, target in nfa.steps[q]:
                for edge, successor in _step_targets(step, node, graph):
                    moves.setdefault((edge, successor), set()).add(target)
        for (edge, successor), targets in sorted(
            moves.items(), key=lambda kv: (repr(kv[0][0]), repr(kv[0][1]))
        ):
            next_states = _register_free_state_sets(
                nfa, graph, successor, frozenset(targets)
            )
            if not viable(next_states, remaining - 1):
                continue
            dfs(
                Path(path.elements + (edge, successor)),
                next_states,
                remaining - 1,
            )

    if viable(initial_states, length):
        dfs(Path.node(start), initial_states, length)
    return results
