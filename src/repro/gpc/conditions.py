"""Satisfaction of conditions: ``mu |= theta`` (Section 5).

The atomic cases follow the paper exactly:

- ``mu |= x.a = c`` iff ``delta(mu(x), a)`` is *defined* and equals ``c``;
- ``mu |= x.a = y.b`` iff both sides are defined and equal;
- Boolean connectives are classical, with ``not`` as complement — so
  negating a comparison over an undefined property yields *true*
  (the paper's core deliberately avoids SQL's three-valued logic).
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.obs.counters import active_counters
from repro.graph.ids import DirectedEdgeId, NodeId, UndirectedEdgeId
from repro.graph.property_graph import PropertyGraph
from repro.gpc.assignments import Assignment
from repro.gpc.conditions_ast import (
    And,
    Condition,
    Not,
    Or,
    PropertyEqualsConst,
    PropertyEqualsProperty,
)

__all__ = ["satisfies"]

_ELEMENT_TYPES = (NodeId, DirectedEdgeId, UndirectedEdgeId)


def _element(assignment: Assignment, variable: str):
    try:
        value = assignment[variable]
    except KeyError:
        raise EvaluationError(
            f"condition references unbound variable {variable!r} "
            f"(the expression was not type-checked)"
        ) from None
    if not isinstance(value, _ELEMENT_TYPES):
        raise EvaluationError(
            f"condition references {variable!r} bound to non-singleton value "
            f"{value!r} (the expression was not type-checked)"
        )
    return value


def satisfies(
    graph: PropertyGraph, assignment: Assignment, condition: Condition
) -> bool:
    """Decide ``assignment |= condition`` over ``graph``.

    Counts one ``condition_evals`` per top-level call on the ambient
    :class:`~repro.obs.counters.EvalCounters` (connective recursion is
    internal and not double-counted).
    """
    counters = active_counters()
    if counters is not None:
        counters.condition_evals += 1
    return _satisfies(graph, assignment, condition)


def _satisfies(
    graph: PropertyGraph, assignment: Assignment, condition: Condition
) -> bool:
    if isinstance(condition, PropertyEqualsConst):
        element = _element(assignment, condition.variable)
        value = graph.get_property(element, condition.key)
        return value is not None and value == condition.constant
    if isinstance(condition, PropertyEqualsProperty):
        left = _element(assignment, condition.left_variable)
        right = _element(assignment, condition.right_variable)
        left_value = graph.get_property(left, condition.left_key)
        right_value = graph.get_property(right, condition.right_key)
        return (
            left_value is not None
            and right_value is not None
            and left_value == right_value
        )
    if isinstance(condition, And):
        return _satisfies(graph, assignment, condition.left) and _satisfies(
            graph, assignment, condition.right
        )
    if isinstance(condition, Or):
        return _satisfies(graph, assignment, condition.left) or _satisfies(
            graph, assignment, condition.right
        )
    if isinstance(condition, Not):
        return not _satisfies(graph, assignment, condition.inner)
    raise TypeError(f"not a condition: {condition!r}")
