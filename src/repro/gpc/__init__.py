"""The Graph Pattern Calculus (GPC) — the paper's primary contribution.

Subpackage map (mirroring the paper's sections):

- :mod:`repro.gpc.ast` — the Figure 1 grammar as immutable syntax trees;
- :mod:`repro.gpc.parser` / :mod:`repro.gpc.pretty` — concrete text
  syntax and a round-tripping printer;
- :mod:`repro.gpc.types` / :mod:`repro.gpc.typing` — the Section 4 type
  system (Figure 2 rules, schemas, well-typedness);
- :mod:`repro.gpc.values` / :mod:`repro.gpc.assignments` — Section 5
  values and assignments;
- :mod:`repro.gpc.conditions` — satisfaction of conditions ``mu |= theta``;
- :mod:`repro.gpc.collect` — the three ``collect`` approaches;
- :mod:`repro.gpc.minlength` — the Approach 1 syntactic analysis;
- :mod:`repro.gpc.engine` — the bounded compositional evaluator;
- :mod:`repro.gpc.planner` — cost-aware query planning (hash joins,
  endpoint pruning, cardinality estimation);
- :mod:`repro.gpc.gpc_plus` — GPC+ (projection + top-level union);
- :mod:`repro.gpc.analysis` — compositional static analysis: unsat
  proofs, condition simplification, and lint diagnostics.
"""

from repro.gpc.ast import (
    Concat,
    Conditioned,
    Direction,
    EdgePattern,
    Join,
    NodePattern,
    PatternQuery,
    Repeat,
    Restrictor,
    Union,
    backward,
    concat,
    edge,
    forward,
    node,
    undirected,
)
from repro.gpc.analysis import (
    Diagnostic,
    QueryAnalysis,
    analyze_query,
    lint_query,
    render_diagnostics,
    simplify_condition,
)
from repro.gpc.conditions_ast import (
    And,
    Condition,
    Not,
    Or,
    PropertyEqualsConst,
    PropertyEqualsProperty,
)
from repro.gpc.engine import (
    CollectMode,
    EngineConfig,
    Evaluator,
    QueryPlan,
    evaluate,
)
from repro.gpc.explain import explain, explain_pattern, explain_query
from repro.gpc.planner import (
    EndpointConstraint,
    NodeConstraint,
    ShortestPlan,
    estimate_pattern_cardinality,
    estimate_query_cardinality,
    explain_plan,
    join_shared_variables,
    plan_shortest,
)
from repro.gpc.footprint import (
    QueryFootprint,
    pattern_footprint,
    query_footprint,
)
from repro.gpc.gpc_plus import GPCPlusQuery, Rule
from repro.gpc.parser import parse_pattern, parse_query
from repro.gpc.pretty import pretty
from repro.gpc.typing import check_condition, infer_schema, is_well_typed
from repro.gpc.types import (
    BoolType,
    EdgeType,
    GroupType,
    MaybeType,
    NodeType,
    PathType,
)

__all__ = [
    # AST
    "Direction",
    "NodePattern",
    "EdgePattern",
    "Union",
    "Concat",
    "Conditioned",
    "Repeat",
    "Restrictor",
    "PatternQuery",
    "Join",
    "node",
    "edge",
    "forward",
    "backward",
    "undirected",
    "concat",
    # Conditions
    "Condition",
    "PropertyEqualsConst",
    "PropertyEqualsProperty",
    "And",
    "Or",
    "Not",
    # Types
    "NodeType",
    "EdgeType",
    "PathType",
    "MaybeType",
    "GroupType",
    "BoolType",
    "infer_schema",
    "is_well_typed",
    "check_condition",
    # Syntax
    "parse_pattern",
    "parse_query",
    "pretty",
    # Engine
    "Evaluator",
    "EngineConfig",
    "QueryPlan",
    "CollectMode",
    "evaluate",
    "explain",
    "explain_pattern",
    "explain_query",
    # Planner
    "NodeConstraint",
    "EndpointConstraint",
    "ShortestPlan",
    "plan_shortest",
    "join_shared_variables",
    "estimate_pattern_cardinality",
    "estimate_query_cardinality",
    "explain_plan",
    # Static analysis
    "Diagnostic",
    "QueryAnalysis",
    "analyze_query",
    "lint_query",
    "render_diagnostics",
    "simplify_condition",
    # Footprints
    "QueryFootprint",
    "pattern_footprint",
    "query_footprint",
    # GPC+
    "GPCPlusQuery",
    "Rule",
]
