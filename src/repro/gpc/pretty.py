"""Pretty-printer for GPC expressions.

Produces concrete syntax that :mod:`repro.gpc.parser` parses back to an
equal AST (``parse(pretty(e)) == e``), which the property-based tests
verify over randomly generated expressions.
"""

from __future__ import annotations

from repro.gpc import ast
from repro.gpc.conditions_ast import (
    And,
    Condition,
    Not,
    Or,
    PropertyEqualsConst,
    PropertyEqualsProperty,
)

__all__ = ["pretty", "pretty_condition"]


def pretty(expression: ast.Expression) -> str:
    """Render a pattern or query in concrete syntax."""
    if isinstance(expression, (ast.PatternQuery, ast.Join)):
        return _query(expression)
    return _pattern(expression)


# -- queries ----------------------------------------------------------------


def _query(query: ast.Query) -> str:
    if isinstance(query, ast.Join):
        return f"{_query(query.left)}, {_query(query.right)}"
    parts = []
    if query.name is not None:
        parts.append(f"{query.name} =")
    parts.append(str(query.restrictor).upper())
    parts.append(_pattern(query.pattern))
    return " ".join(parts)


# -- patterns -----------------------------------------------------------------

# Precedence levels: union (1) < concat (2) < postfix (3) < atom (4).


def _pattern(pattern: ast.Pattern, parent_level: int = 0) -> str:
    text, level = _render(pattern)
    if level < parent_level:
        return f"[{text}]"
    return text


def _render(pattern: ast.Pattern) -> tuple[str, int]:
    if isinstance(pattern, ast.NodePattern):
        return f"({_descriptor(pattern.descriptor)})", 4
    if isinstance(pattern, ast.EdgePattern):
        return _edge(pattern), 4
    if isinstance(pattern, ast.Union):
        left = _pattern(pattern.left, 1)
        right = _pattern(pattern.right, 2)  # right operand must bind tighter
        return f"{left} + {right}", 1
    if isinstance(pattern, ast.Concat):
        left = _pattern(pattern.left, 2)
        right = _pattern(pattern.right, 3)
        return f"{left} {right}", 2
    if isinstance(pattern, ast.Conditioned):
        inner = _pattern(pattern.pattern, 3)
        return f"{inner} << {pretty_condition(pattern.condition)} >>", 3
    if isinstance(pattern, ast.Repeat):
        inner = _pattern(pattern.pattern, 3)
        return f"{inner}{_bounds(pattern)}", 3
    raise TypeError(f"not a pattern: {pattern!r}")


def _bounds(pattern: ast.Repeat) -> str:
    if pattern.lower == 0 and pattern.upper is None:
        return "*"
    if pattern.upper is None:
        return f"{{{pattern.lower},}}"
    if pattern.lower == pattern.upper:
        return f"{{{pattern.lower}}}"
    return f"{{{pattern.lower},{pattern.upper}}}"


def _descriptor(descriptor: ast.Descriptor) -> str:
    variable = descriptor.variable or ""
    label = f":{descriptor.label}" if descriptor.label else ""
    return f"{variable}{label}"


def _edge(pattern: ast.EdgePattern) -> str:
    descriptor = _descriptor(pattern.descriptor)
    if not descriptor:
        return {
            ast.Direction.FORWARD: "->",
            ast.Direction.BACKWARD: "<-",
            ast.Direction.UNDIRECTED: "~",
        }[pattern.direction]
    if pattern.direction is ast.Direction.FORWARD:
        return f"-[{descriptor}]->"
    if pattern.direction is ast.Direction.BACKWARD:
        return f"<-[{descriptor}]-"
    return f"~[{descriptor}]~"


# -- conditions ----------------------------------------------------------------


def pretty_condition(condition: Condition) -> str:
    """Render a condition; binary connectives are fully parenthesized
    so the structure round-trips exactly."""
    if isinstance(condition, PropertyEqualsConst):
        return (
            f"{condition.variable}.{condition.key} = "
            f"{_constant(condition.constant)}"
        )
    if isinstance(condition, PropertyEqualsProperty):
        return (
            f"{condition.left_variable}.{condition.left_key} = "
            f"{condition.right_variable}.{condition.right_key}"
        )
    if isinstance(condition, And):
        return (
            f"({pretty_condition(condition.left)} AND "
            f"{pretty_condition(condition.right)})"
        )
    if isinstance(condition, Or):
        return (
            f"({pretty_condition(condition.left)} OR "
            f"{pretty_condition(condition.right)})"
        )
    if isinstance(condition, Not):
        return f"NOT ({pretty_condition(condition.inner)})"
    raise TypeError(f"not a condition: {condition!r}")


def _constant(value) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    raise TypeError(f"cannot render constant {value!r}")
