"""Syntactic path-length analysis (Approach 1 of Section 5).

The GQL standard forbids ``pi{n..m}`` whenever ``pi`` may match an
edgeless path; equivalently, the *minimum path length* of every
repetition body must be positive. This module computes minimum (and
maximum) match lengths syntactically and implements the Approach 1
validation.

The analysis is exact:

- a node pattern matches only length-0 paths;
- an edge pattern matches only length-1 paths;
- union takes min/max, concatenation adds, conditioning is neutral
  (conditions can only remove matches, never shorten them);
- ``pi{n..m}`` has minimum ``n * min(pi)`` and maximum ``m * max(pi)``
  (``0`` when ``n = 0``, unbounded when ``m`` is infinite and
  ``max(pi) > 0``).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CollectError
from repro.gpc import ast

__all__ = [
    "min_path_length",
    "max_path_length",
    "may_match_edgeless",
    "validate_approach1",
]


def min_path_length(pattern: ast.Pattern) -> int:
    """The length of the shortest path the pattern could ever match."""
    if isinstance(pattern, ast.NodePattern):
        return 0
    if isinstance(pattern, ast.EdgePattern):
        return 1
    if isinstance(pattern, ast.Union):
        return min(min_path_length(pattern.left), min_path_length(pattern.right))
    if isinstance(pattern, ast.Concat):
        return min_path_length(pattern.left) + min_path_length(pattern.right)
    if isinstance(pattern, ast.Conditioned):
        return min_path_length(pattern.pattern)
    if isinstance(pattern, ast.Repeat):
        return pattern.lower * min_path_length(pattern.pattern)
    if isinstance(pattern, ast.PatternExtension):
        return pattern.min_path_length_ext(
            [min_path_length(child) for child in pattern.children()]
        )
    raise TypeError(f"not a pattern: {pattern!r}")


def max_path_length(pattern: ast.Pattern) -> Optional[int]:
    """The length of the longest path the pattern could match, or
    ``None`` when unbounded."""
    if isinstance(pattern, ast.NodePattern):
        return 0
    if isinstance(pattern, ast.EdgePattern):
        return 1
    if isinstance(pattern, ast.Union):
        left = max_path_length(pattern.left)
        right = max_path_length(pattern.right)
        if left is None or right is None:
            return None
        return max(left, right)
    if isinstance(pattern, ast.Concat):
        left = max_path_length(pattern.left)
        right = max_path_length(pattern.right)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(pattern, ast.Conditioned):
        return max_path_length(pattern.pattern)
    if isinstance(pattern, ast.Repeat):
        inner = max_path_length(pattern.pattern)
        if inner == 0:
            return 0
        if pattern.upper is None or inner is None:
            return None
        return pattern.upper * inner
    if isinstance(pattern, ast.PatternExtension):
        return pattern.max_path_length_ext(
            [max_path_length(child) for child in pattern.children()]
        )
    raise TypeError(f"not a pattern: {pattern!r}")


def may_match_edgeless(pattern: ast.Pattern) -> bool:
    """Whether the pattern may match a length-0 path."""
    return min_path_length(pattern) == 0


def validate_approach1(pattern: ast.Pattern) -> None:
    """Enforce the Approach 1 syntactic restriction.

    Raises :class:`~repro.errors.CollectError` if any repetition body
    may match an edgeless path (this is the GQL standard's rule).
    """
    for sub in ast.iter_subpatterns(pattern):
        if isinstance(sub, ast.Repeat) and may_match_edgeless(sub.pattern):
            raise CollectError(
                f"repetition body may match an edgeless path, which "
                f"Approach 1 (the GQL rule) forbids: {sub.pattern!r}"
            )
