"""The ``collect`` operator for repeated patterns (Section 5).

Given the per-iteration matches ``(p1, mu1), ..., (pn, mun)`` of a
repetition, ``collect`` builds the single assignment that binds every
variable of the body to a *list* value. When every ``p_i`` has positive
length this is simply equation (3) of the paper::

    collect[(p1, mu1), ..., (pn, mun)](x) = list((p1, mu1(x)), ..., (pn, mun(x)))

Edgeless factors make the naive definition produce infinitely many
answers, and the paper describes three ways out, all implemented here:

- **Approach 1 (syntactic)** — forbid repetition bodies that may match
  edgeless paths; validation lives in :mod:`repro.gpc.minlength`, and
  ``collect`` then never sees an edgeless factor.
- **Approach 2 (run-time)** — ``collect`` is *undefined* whenever some
  factor is edgeless; the combination simply produces no answer.
- **Approach 3 (grouping)** — refactorize the path by merging maximal
  runs of consecutive edgeless factors (Figure 3), unifying the
  assignments within each run; undefined if some run fails to unify.
  This subsumes the other two and is the paper's default.

:class:`CollectAccumulator` is the incremental form used by the
evaluation engine: it consumes factors left to right, maintaining the
(hashable) grouped state so that partial matches can be deduplicated
during fixpoint iteration of pattern powers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import CollectError
from repro.graph.paths import Path
from repro.gpc.assignments import Assignment
from repro.gpc.values import GroupValue

__all__ = [
    "CollectMode",
    "collect",
    "collect_simple",
    "collect_grouping",
    "refactorize",
    "CollectAccumulator",
    "empty_group_assignment",
]


class CollectMode(enum.Enum):
    """Which of the paper's three approaches the engine uses."""

    SYNTACTIC = "syntactic"
    RUNTIME = "runtime"
    GROUPING = "grouping"


def empty_group_assignment(domain: Iterable[str]) -> Assignment:
    """The 0th-power assignment: every variable maps to ``list()``."""
    return Assignment({variable: GroupValue() for variable in domain})


def collect_simple(
    factors: Sequence[tuple[Path, Assignment]], domain: Iterable[str]
) -> Assignment:
    """Equation (3): one list entry per factor, no grouping."""
    domain = tuple(domain)
    bindings = {}
    for variable in domain:
        bindings[variable] = GroupValue(
            tuple((path, mu[variable]) for path, mu in factors)
        )
    return Assignment(bindings)


def refactorize(lengths: Sequence[int]) -> list[tuple[int, int]]:
    """The Figure 3 refactorization, on factor lengths.

    Returns the list of half-open index ranges ``[i_k, i_{k+1})`` such
    that each range is either a single positive-length factor or a
    maximal run of consecutive edgeless factors.
    """
    ranges: list[tuple[int, int]] = []
    i = 0
    n = len(lengths)
    while i < n:
        if lengths[i] != 0:
            ranges.append((i, i + 1))
            i += 1
        else:
            j = i
            while j < n and lengths[j] == 0:
                j += 1
            ranges.append((i, j))
            i = j
    return ranges


def collect_grouping(
    factors: Sequence[tuple[Path, Assignment]], domain: Iterable[str]
) -> Optional[Assignment]:
    """Approach 3: group consecutive edgeless factors (Figure 3).

    Returns ``None`` when some edgeless run fails to unify — in that
    case ``collect`` is undefined and the combination yields no answer.
    """
    domain = tuple(domain)
    groups: list[tuple[Path, Assignment]] = []
    for start, stop in refactorize([len(path) for path, _ in factors]):
        path = factors[start][0]
        merged = factors[start][1]
        for index in range(start + 1, stop):
            next_path, next_mu = factors[index]
            path = path.concat(next_path)
            unified = merged.unify(next_mu)
            if unified is None:
                return None
            merged = unified
        groups.append((path, merged))
    bindings = {
        variable: GroupValue(tuple((path, mu[variable]) for path, mu in groups))
        for variable in domain
    }
    return Assignment(bindings)


def collect(
    factors: Sequence[tuple[Path, Assignment]],
    domain: Iterable[str],
    mode: CollectMode = CollectMode.GROUPING,
) -> Optional[Assignment]:
    """Apply ``collect`` under the chosen approach.

    - ``SYNTACTIC``: edgeless factors are a *caller* bug (validation
      should have rejected the pattern) and raise
      :class:`~repro.errors.CollectError`;
    - ``RUNTIME``: edgeless factors make the result ``None`` (undefined);
    - ``GROUPING``: Figure 3 semantics.

    ``factors`` must be non-empty; the 0th power is handled separately
    by :func:`empty_group_assignment`.
    """
    if not factors:
        raise CollectError("collect requires at least one factor")
    has_edgeless = any(path.is_edgeless for path, _ in factors)
    if mode is CollectMode.SYNTACTIC:
        if has_edgeless:
            raise CollectError(
                "edgeless factor reached collect under the syntactic "
                "restriction; the pattern should have been rejected upfront"
            )
        return collect_simple(factors, domain)
    if mode is CollectMode.RUNTIME:
        if has_edgeless:
            return None
        return collect_simple(factors, domain)
    if mode is CollectMode.GROUPING:
        return collect_grouping(factors, domain)
    raise TypeError(f"unknown collect mode: {mode!r}")


@dataclass(frozen=True)
class CollectAccumulator:
    """Incremental left-to-right ``collect`` state.

    ``groups`` holds the completed ``(p'_k, mu'_k)`` groups;
    ``open_run`` is True when the final group is a run of edgeless
    factors that may still absorb further edgeless factors. The state
    is immutable and hashable, so the engine can deduplicate partial
    matches that are indistinguishable going forward.
    """

    groups: tuple[tuple[Path, Assignment], ...] = ()
    open_run: bool = False
    mode: CollectMode = CollectMode.GROUPING

    def extend(self, path: Path, mu: Assignment) -> Optional["CollectAccumulator"]:
        """Absorb the next factor; ``None`` when collect is undefined."""
        if path.is_edgeless:
            if self.mode is CollectMode.SYNTACTIC:
                raise CollectError(
                    "edgeless factor under the syntactic restriction"
                )
            if self.mode is CollectMode.RUNTIME:
                return None
            if self.open_run:
                last_path, last_mu = self.groups[-1]
                unified = last_mu.unify(mu)
                if unified is None:
                    return None
                updated = self.groups[:-1] + ((last_path, unified),)
                return CollectAccumulator(updated, True, self.mode)
            return CollectAccumulator(self.groups + ((path, mu),), True, self.mode)
        return CollectAccumulator(self.groups + ((path, mu),), False, self.mode)

    def finalize(self, domain: Iterable[str]) -> Assignment:
        """Produce the collected assignment for the factors seen."""
        return Assignment(
            {
                variable: GroupValue(
                    tuple((path, mu[variable]) for path, mu in self.groups)
                )
                for variable in domain
            }
        )
