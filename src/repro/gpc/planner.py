"""Cost-aware query planning for the GPC engine.

The planner analyses a query once (memoised per plan by
:class:`~repro.gpc.engine.QueryPlan`) and drives three answer-preserving
optimisations in the evaluator:

**Hash joins.** The Figure 2 typing rules only let *singleton*
(Node/Edge) variables be shared across a join, and every answer binds
exactly its schema (Proposition 2). Two answers therefore combine iff
they agree on the join's shared variables — so bucketing both sides on
those bindings and combining only within buckets yields exactly the
nested-loop result in ``O(|L| + |R| + |out|)`` instead of
``O(|L| * |R|)``. :func:`join_shared_variables` computes the shared
variables from the sides' inferred schemas.

**Endpoint pruning for ``shortest``.** Every match of a pattern starts
(ends) at a node satisfying the pattern's leading (trailing) node
constraints: labels from the boundary :class:`~repro.gpc.ast.NodePattern`
and constant property equalities that a surrounding condition forces on
the boundary variable. :func:`plan_shortest` extracts those constraints
(a small disjunction of conjunctive alternatives — unions contribute one
alternative per branch), and
:meth:`EndpointConstraint.candidate_nodes` resolves them against a
snapshot's label indexes, so the register-NFA search is seeded from the
few viable start nodes instead of the whole node set.

**Cardinality-ordered joins.** :func:`estimate_query_cardinality` gives
a cheap answer-count estimate from the snapshot's per-label counts
(:meth:`~repro.graph.snapshot.GraphSnapshot.label_cardinalities`). The
evaluator runs the cheaper join side first — if it comes back empty the
expensive side is never evaluated — and builds the hash table on the
smaller materialised side.

All three transformations are provably answer-preserving: they never
change *which* answers are produced, only how many candidate pairs and
start nodes are inspected on the way. :func:`explain_plan` renders the
chosen strategies for inspection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Optional

from repro.gpc import ast
from repro.gpc.conditions_ast import And, Condition, PropertyEqualsConst
from repro.gpc.minlength import max_path_length
from repro.gpc.typing import infer_schema

__all__ = [
    "NodeConstraint",
    "EndpointConstraint",
    "ShortestPlan",
    "plan_shortest",
    "split_pushdown",
    "join_shared_variables",
    "estimate_pattern_cardinality",
    "estimate_query_cardinality",
    "JoinEstimate",
    "PlanEstimates",
    "estimate_plan",
    "explain_plan",
]

#: Beyond this many disjunctive alternatives the analysis gives up and
#: reports the endpoint as unconstrained (pruning would cost more than
#: it saves, and candidate sets stay exact either way).
MAX_ALTERNATIVES = 8

#: Cardinality estimates saturate here (repetitions grow geometrically).
_CARDINALITY_CAP = 1e18


# ---------------------------------------------------------------------------
# Endpoint constraints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeConstraint:
    """One conjunctive constraint a boundary node must satisfy.

    ``labels`` must all be carried by the node; every ``(key, value)``
    in ``properties`` must hold with equality. ``variable`` records the
    boundary node's bound variable (if any) so surrounding conditions
    can contribute property constraints.
    """

    labels: frozenset[str] = frozenset()
    properties: frozenset[tuple[str, object]] = frozenset()
    variable: Optional[str] = None

    @property
    def is_trivial(self) -> bool:
        return not self.labels and not self.properties

    def admits(self, view, node) -> bool:
        """Whether ``node`` satisfies this conjunction in ``view``."""
        node_labels = view.labels(node)
        if any(label not in node_labels for label in self.labels):
            return False
        return all(
            view.get_property(node, key) == value
            for key, value in self.properties
        )

    def describe(self) -> str:
        parts = [f":{label}" for label in sorted(self.labels)]
        parts.extend(
            f".{key}={value!r}" for key, value in sorted(
                self.properties, key=repr
            )
        )
        return " & ".join(parts) if parts else "(any node)"


@dataclass(frozen=True)
class EndpointConstraint:
    """A disjunction of :class:`NodeConstraint` alternatives.

    ``alternatives is None`` means the analysis could not bound the
    endpoint (the pattern may start/end anywhere).
    """

    alternatives: Optional[tuple[NodeConstraint, ...]]

    @property
    def constrains(self) -> bool:
        """Whether candidate generation can prune anything at all."""
        if self.alternatives is None:
            return False
        return all(not alt.is_trivial for alt in self.alternatives)

    def candidate_nodes(self, view):
        """The nodes that can satisfy some alternative, or ``None``
        when the endpoint is unconstrained.

        Resolution prefers the smallest label index of each
        alternative; property-only alternatives scan the node carrier
        (still a win: each excluded node skips a whole register-NFA
        search). The result is sorted for deterministic evaluation.
        """
        if not self.constrains:
            return None
        out: set = set()
        for alt in self.alternatives:
            if alt.labels:
                base = min(
                    (view.nodes_with_label(l) for l in sorted(alt.labels)),
                    key=len,
                )
            else:
                base = view.nodes
            for node in base:
                if node not in out and alt.admits(view, node):
                    out.add(node)
        return tuple(sorted(out))

    def describe(self, view=None) -> str:
        if not self.constrains:
            return "all nodes (unconstrained)"
        rendered = " | ".join(alt.describe() for alt in self.alternatives)
        if view is not None:
            candidates = self.candidate_nodes(view)
            total = view.num_nodes
            return f"{rendered} ({len(candidates)}/{total} nodes)"
        return rendered


@dataclass(frozen=True)
class ShortestPlan:
    """Start/end pruning constraints for one ``shortest`` pattern."""

    start: EndpointConstraint
    end: EndpointConstraint


@lru_cache(maxsize=1024)
def plan_shortest(pattern: ast.Pattern) -> ShortestPlan:
    """Extract the leading and trailing endpoint constraints.

    Pure in an immutable pattern, and wanted by several independent
    consumers per query (the static analyzer's unanchored-``shortest``
    check, each :class:`~repro.gpc.engine.QueryPlan`'s precompile),
    so it is memoised at module level rather than per plan.
    """
    return ShortestPlan(
        start=EndpointConstraint(_endpoint_alternatives(pattern, leading=True)),
        end=EndpointConstraint(_endpoint_alternatives(pattern, leading=False)),
    )


def _required_const_atoms(
    condition: Condition,
) -> dict[str, frozenset[tuple[str, object]]]:
    """Per-variable ``x.key = const`` atoms that *every* satisfying
    assignment must meet: atoms on the positive spine of a conjunction
    (anything under ``or``/``not`` is optional and ignored)."""
    out: dict[str, set[tuple[str, object]]] = {}
    stack: list[Condition] = [condition]
    while stack:
        current = stack.pop()
        if isinstance(current, And):
            stack.append(current.left)
            stack.append(current.right)
        elif isinstance(current, PropertyEqualsConst):
            out.setdefault(current.variable, set()).add(
                (current.key, current.constant)
            )
    return {variable: frozenset(atoms) for variable, atoms in out.items()}


def split_pushdown(
    condition: Condition,
) -> tuple[dict[str, frozenset[tuple[str, object]]], Optional[Condition]]:
    """Decompose a condition for predicate pushdown.

    Returns ``(atoms, residue)``: ``atoms`` maps each variable to the
    ``x.key = const`` atoms on the condition's positive ``And`` spine
    (the same walk :func:`_required_const_atoms` uses for endpoint
    pruning — every satisfying assignment must meet them), and
    ``residue`` is the condition with those atoms removed, or ``None``
    when the conjunction was consumed entirely. Re-conjoining every
    atom with the residue is equivalent to the original condition, so
    a compiler may evaluate the atoms early (at the bind/step site of
    their variable) and only the residue at check time.
    """
    atoms: dict[str, set[tuple[str, object]]] = {}

    def walk(current: Condition) -> Optional[Condition]:
        if isinstance(current, And):
            left = walk(current.left)
            right = walk(current.right)
            if left is None:
                return right
            if right is None:
                return left
            return And(left, right)
        if isinstance(current, PropertyEqualsConst):
            atoms.setdefault(current.variable, set()).add(
                (current.key, current.constant)
            )
            return None
        return current

    residue = walk(condition)
    return (
        {variable: frozenset(found) for variable, found in atoms.items()},
        residue,
    )


def _endpoint_alternatives(
    pattern: ast.Pattern, leading: bool
) -> Optional[tuple[NodeConstraint, ...]]:
    """The boundary-node constraint disjunction, or ``None`` when
    unconstrained. Soundness invariant: every match's source (leading)
    or target (trailing) node satisfies at least one alternative."""
    if isinstance(pattern, ast.NodePattern):
        labels = (
            frozenset((pattern.label,)) if pattern.label else frozenset()
        )
        return (NodeConstraint(labels, frozenset(), pattern.variable),)
    if isinstance(pattern, ast.EdgePattern):
        # The traversal's endpoint node is unconstrained, but keeping a
        # trivial alternative lets an enclosing Concat still contribute.
        return (NodeConstraint(),)
    if isinstance(pattern, ast.Concat):
        first, second = (
            (pattern.left, pattern.right)
            if leading
            else (pattern.right, pattern.left)
        )
        alternatives = _endpoint_alternatives(first, leading)
        if alternatives is None:
            return None
        if max_path_length(first) == 0:
            # The boundary factor is always a single node, so the same
            # node is also the second factor's boundary: conjoin.
            other = _endpoint_alternatives(second, leading)
            if other is not None:
                alternatives = tuple(
                    NodeConstraint(
                        a.labels | b.labels,
                        a.properties | b.properties,
                        a.variable or b.variable,
                    )
                    for a in alternatives
                    for b in other
                )
        return _capped(alternatives)
    if isinstance(pattern, ast.Union):
        left = _endpoint_alternatives(pattern.left, leading)
        right = _endpoint_alternatives(pattern.right, leading)
        if left is None or right is None:
            return None
        return _capped(left + right)
    if isinstance(pattern, ast.Conditioned):
        alternatives = _endpoint_alternatives(pattern.pattern, leading)
        if alternatives is None:
            return None
        required = _required_const_atoms(pattern.condition)
        if not required:
            return alternatives
        return tuple(
            replace(
                alt,
                properties=alt.properties
                | required.get(alt.variable or "", frozenset()),
            )
            for alt in alternatives
        )
    if isinstance(pattern, ast.Repeat):
        if pattern.lower == 0:
            # Zero iterations match any single-node path.
            return None
        alternatives = _endpoint_alternatives(pattern.pattern, leading)
        if alternatives is None:
            return None
        # Body variables become group-typed outside the repetition, so
        # no enclosing condition can constrain them: drop them.
        return tuple(
            replace(alt, variable=None) for alt in alternatives
        )
    # Extension constructs: conservatively unconstrained.
    return None


def _capped(
    alternatives: tuple[NodeConstraint, ...]
) -> Optional[tuple[NodeConstraint, ...]]:
    return alternatives if len(alternatives) <= MAX_ALTERNATIVES else None


# ---------------------------------------------------------------------------
# Join analysis
# ---------------------------------------------------------------------------


def join_shared_variables(join: ast.Join) -> tuple[str, ...]:
    """The variables shared by the two sides of a join, sorted.

    By the Figure 2 join rule these are exactly the variables two
    answers must agree on to combine — and the type system guarantees
    they are singletons, so their values are plain node/edge ids and
    safe to use as hash keys.
    """
    left = infer_schema(join.left)
    right = infer_schema(join.right)
    return tuple(sorted(left.keys() & right.keys()))


# ---------------------------------------------------------------------------
# Cardinality estimation
# ---------------------------------------------------------------------------


def _cardinalities(view):
    """The per-label count summary for a graph or snapshot
    (:class:`repro.graph.statistics.LabelCardinalities`)."""
    if hasattr(view, "label_cardinalities"):
        return view.label_cardinalities()
    return view.snapshot().label_cardinalities()


def estimate_pattern_cardinality(pattern: ast.Pattern, view) -> float:
    """A cheap estimate of how many matches ``pattern`` has in ``view``.

    The model only needs to *order* join sides, not predict counts:
    node/edge atoms contribute their per-label counts, concatenation
    joins on the shared endpoint node (divide by ``|N|``), union adds,
    repetition grows geometrically with the per-iteration expansion
    factor (truncated and capped). Counts come from the snapshot's
    memoised :class:`~repro.graph.statistics.LabelCardinalities`, so
    the recursion is pure arithmetic.
    """
    return _estimate_pattern(pattern, _cardinalities(view))


def _estimate_pattern(pattern: ast.Pattern, cards) -> float:
    num_nodes = max(1, cards.num_nodes)
    if isinstance(pattern, ast.NodePattern):
        if pattern.label is not None:
            return float(max(1, cards.nodes_with_label(pattern.label)))
        return float(num_nodes)
    if isinstance(pattern, ast.EdgePattern):
        from repro.direction import Direction

        if pattern.direction is Direction.UNDIRECTED:
            count = (
                cards.undirected_edges_with_label(pattern.label)
                if pattern.label is not None
                else cards.num_undirected_edges
            )
        else:
            count = (
                cards.directed_edges_with_label(pattern.label)
                if pattern.label is not None
                else cards.num_directed_edges
            )
        return float(max(1, count))
    if isinstance(pattern, ast.Concat):
        left = _estimate_pattern(pattern.left, cards)
        right = _estimate_pattern(pattern.right, cards)
        return min(_CARDINALITY_CAP, left * right / num_nodes)
    if isinstance(pattern, ast.Union):
        return min(
            _CARDINALITY_CAP,
            _estimate_pattern(pattern.left, cards)
            + _estimate_pattern(pattern.right, cards),
        )
    if isinstance(pattern, ast.Conditioned):
        inner = _estimate_pattern(pattern.pattern, cards)
        atoms = sum(
            len(v) for v in _required_const_atoms(pattern.condition).values()
        )
        return inner * (0.5 ** min(3, max(1, atoms)))
    if isinstance(pattern, ast.Repeat):
        factor = _estimate_pattern(pattern.pattern, cards) / num_nodes
        lower = pattern.lower
        upper = pattern.upper if pattern.upper is not None else lower + 4
        upper = min(upper, lower + 4)  # geometric tail truncation
        # Guard the initial power: past the cap, ``factor ** lower``
        # would overflow float range and raise before min() could
        # clamp it (e.g. a {600,600} repetition on a dense graph).
        if factor > 1.0 and (
            math.log(num_nodes) + lower * math.log(factor)
            >= math.log(_CARDINALITY_CAP)
        ):
            return _CARDINALITY_CAP
        term = num_nodes * (factor ** lower)
        total = 0.0
        for _ in range(lower, upper + 1):
            total += term
            if total >= _CARDINALITY_CAP:
                return _CARDINALITY_CAP
            term *= factor
        return max(1.0, total)
    # Extension constructs: a neutral guess.
    return float(num_nodes)


def estimate_query_cardinality(query: ast.Query, view, plan=None) -> float:
    """Estimated answer count of a query (used to order join sides).

    ``plan`` may be a :class:`~repro.gpc.engine.QueryPlan` (or anything
    with a ``join_variables`` method): its memo then supplies the
    shared variables of each join, so repeated estimation — the engine
    estimates per execution — never re-runs schema inference.
    """
    return _estimate_query(query, _cardinalities(view), plan)


def _estimate_query(query: ast.Query, cards, plan=None) -> float:
    if isinstance(query, ast.PatternQuery):
        estimate = _estimate_pattern(query.pattern, cards)
        if query.restrictor.shortest:
            # Shortest keeps one length class per endpoint pair.
            num_nodes = max(1, cards.num_nodes)
            estimate = min(estimate, float(num_nodes * num_nodes))
        return estimate
    if isinstance(query, ast.Join):
        num_nodes = max(1, cards.num_nodes)
        shared = (
            plan.join_variables(query)
            if plan is not None
            else join_shared_variables(query)
        )
        left = _estimate_query(query.left, cards, plan)
        right = _estimate_query(query.right, cards, plan)
        return min(
            _CARDINALITY_CAP,
            left * right / (float(num_nodes) ** len(shared)),
        )
    raise TypeError(f"not a query: {query!r}")


# ---------------------------------------------------------------------------
# Plan estimates (stamped per plan, validated against observed work)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinEstimate:
    """The planner's pre-execution view of one join node.

    ``left``/``right`` are the estimated side cardinalities; the
    evaluator builds its hash table on the smaller materialised side
    and probes with the larger, so the derived ``build_rows``/
    ``probe_rows`` are what ``EvalCounters.join_build_rows``/
    ``join_probe_rows`` should observe if the estimates were right.
    """

    shared: tuple[str, ...]
    left: float
    right: float

    @property
    def build_rows(self) -> float:
        return min(self.left, self.right)

    @property
    def probe_rows(self) -> float:
        return max(self.left, self.right)

    def as_dict(self) -> dict[str, object]:
        return {
            "shared": list(self.shared),
            "left": self.left,
            "right": self.right,
            "build_rows": self.build_rows,
            "probe_rows": self.probe_rows,
        }


@dataclass(frozen=True)
class PlanEstimates:
    """Everything the planner predicted about a query on one snapshot:
    the overall answer cardinality plus one :class:`JoinEstimate` per
    join node (left-to-right walk order, matching execution)."""

    cardinality: float
    joins: tuple[JoinEstimate, ...] = ()

    @property
    def join_build_rows(self) -> float:
        return sum(j.build_rows for j in self.joins)

    @property
    def join_probe_rows(self) -> float:
        return sum(j.probe_rows for j in self.joins)

    def as_dict(self) -> dict[str, object]:
        return {
            "cardinality": self.cardinality,
            "joins": [j.as_dict() for j in self.joins],
            "join_build_rows": self.join_build_rows,
            "join_probe_rows": self.join_probe_rows,
        }


def estimate_plan(query: ast.Query, view, plan=None) -> PlanEstimates:
    """The planner's full pre-execution estimate record for ``query``.

    Like :func:`estimate_query_cardinality` plus a per-join breakdown,
    so observed hash-join build/probe row counters can be compared
    against what the cost model predicted. ``plan`` (a
    :class:`~repro.gpc.engine.QueryPlan`) reuses memoised analyses.
    """
    cards = _cardinalities(view)
    joins: list[JoinEstimate] = []

    def walk(q: ast.Query) -> None:
        if not isinstance(q, ast.Join):
            return
        shared = (
            plan.join_variables(q)
            if plan is not None
            else join_shared_variables(q)
        )
        joins.append(
            JoinEstimate(
                shared=tuple(shared),
                left=_estimate_query(q.left, cards, plan),
                right=_estimate_query(q.right, cards, plan),
            )
        )
        walk(q.left)
        walk(q.right)

    walk(query)
    return PlanEstimates(
        cardinality=_estimate_query(query, cards, plan),
        joins=tuple(joins),
    )


# ---------------------------------------------------------------------------
# Plan explanation
# ---------------------------------------------------------------------------


def explain_plan(query: ast.Query, view=None, plan=None) -> str:
    """Render the strategies the planner chose for ``query``.

    With a graph/snapshot ``view``, cardinality estimates and candidate
    counts are included; without one the summary is graph-independent.
    ``plan`` may be a :class:`~repro.gpc.engine.QueryPlan`, whose
    memoised analyses are then reused instead of re-deriving them.
    """
    from repro.gpc.pretty import pretty

    lines = [f"plan: {pretty(query)}"]

    def walk(q: ast.Query, depth: int) -> None:
        indent = "  " * depth
        if isinstance(q, ast.Join):
            shared = (
                plan.join_variables(q)
                if plan is not None
                else join_shared_variables(q)
            )
            if shared:
                strategy = f"hash join on [{', '.join(shared)}]"
            else:
                strategy = "cross product (no shared variables)"
            if view is not None:
                left = estimate_query_cardinality(q.left, view, plan)
                right = estimate_query_cardinality(q.right, view, plan)
                first = "left" if left <= right else "right"
                strategy += (
                    f"; evaluate {first} side first "
                    f"(est {left:.0f} vs {right:.0f})"
                )
            lines.append(f"{indent}- {strategy}")
            walk(q.left, depth + 1)
            walk(q.right, depth + 1)
            return
        restrictor = str(q.restrictor)
        if q.restrictor.shortest and q.restrictor.mode is None:
            shortest = (
                plan.shortest_plan(q.pattern)
                if plan is not None
                else plan_shortest(q.pattern)
            )
            lines.append(
                f"{indent}- {restrictor} {pretty(q.pattern)}: "
                f"register-NFA shortest; "
                f"starts: {shortest.start.describe(view)}; "
                f"ends: {shortest.end.describe(view)}"
            )
        else:
            lines.append(
                f"{indent}- {restrictor} {pretty(q.pattern)}: "
                f"bounded evaluation + restrictor filter"
            )

    walk(query, 1)
    return "\n".join(lines)
