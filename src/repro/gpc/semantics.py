"""Bounded compositional evaluation of GPC patterns (Section 5).

The denotation ``[[pi]]_G`` of a pattern may be infinite (unbounded
repetition over a cyclic graph), so the evaluator computes the *bounded*
denotation

    ``eval(pi, L) = { (p, mu) in [[pi]]_G : len(p) <= L }``

compositionally. Restrictors (handled in :mod:`repro.gpc.engine`)
supply the bound ``L``: ``|N|`` for ``simple``, ``|E_d| + |E_u|`` for
``trail``, and iterative deepening for ``shortest``.

Repetition ``pi{n..m}`` is evaluated by iterating *powers*: partial
states are pairs of a path and a :class:`~repro.gpc.collect.CollectAccumulator`
capturing the grouped bindings so far. Termination for ``m = infinity``:

- if the body cannot match an edgeless path (or collect runs in
  SYNTACTIC/RUNTIME mode, where edgeless factors are rejected), every
  power adds at least one edge, so powers beyond ``L`` are empty;
- otherwise (GROUPING mode with edgeless bodies), the per-power state
  sets range over a finite universe and the evaluator detects cycles in
  the power sequence, mirroring the Lemma 15 argument that powers
  eventually stop producing new answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import EvaluationLimitError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.snapshot import GraphSnapshot
from repro.graph.ids import NodeId
from repro.graph.paths import Path
from repro.graph.property_graph import PropertyGraph
from repro.gpc import ast
from repro.gpc.assignments import EMPTY_ASSIGNMENT, Assignment
from repro.gpc.collect import CollectAccumulator, CollectMode, empty_group_assignment
from repro.gpc.conditions import satisfies
from repro.gpc.minlength import min_path_length
from repro.gpc.typing import infer_schema
from repro.gpc.values import Nothing

__all__ = ["Match", "BoundedEvaluator"]

#: A pattern match: the matched path and the variable bindings.
Match = tuple[Path, Assignment]


@dataclass
class _Limits:
    """Safety limits shared with :class:`repro.gpc.engine.EngineConfig`."""

    max_intermediate_results: int = 2_000_000
    max_power_iterations: int = 10_000


class BoundedEvaluator:
    """Evaluates ``eval(pi, L)`` over a fixed graph.

    Results are memoized per ``(pattern, L)``; the evaluator is
    deliberately tied to one graph so the memo never goes stale.
    ``graph`` may be a mutable :class:`PropertyGraph` or (preferably,
    for hot paths) an immutable
    :class:`~repro.graph.snapshot.GraphSnapshot`, whose pre-built
    tuple indexes this evaluator consults directly.
    """

    def __init__(
        self,
        graph: "PropertyGraph | GraphSnapshot",
        collect_mode: CollectMode = CollectMode.GROUPING,
        limits: _Limits | None = None,
    ):
        self.graph = graph
        self.collect_mode = collect_mode
        self.limits = limits or _Limits()
        self._memo: dict[tuple[ast.Pattern, int], frozenset[Match]] = {}
        self._schemas: dict[ast.Pattern, Mapping[str, object]] = {}

    # ------------------------------------------------------------------

    def schema(self, pattern: ast.Pattern) -> Mapping[str, object]:
        """Memoized ``sch(pi)`` for subpatterns (used by union padding)."""
        if pattern not in self._schemas:
            self._schemas[pattern] = infer_schema(pattern)
        return self._schemas[pattern]

    def evaluate(self, pattern: ast.Pattern, max_length: int) -> frozenset[Match]:
        """All ``(p, mu) in [[pattern]]_G`` with ``len(p) <= max_length``."""
        if max_length < 0:
            return frozenset()
        key = (pattern, max_length)
        if key not in self._memo:
            self._memo[key] = self._dispatch(pattern, max_length)
        return self._memo[key]

    # ------------------------------------------------------------------

    def _dispatch(self, pattern: ast.Pattern, max_length: int) -> frozenset[Match]:
        if isinstance(pattern, ast.NodePattern):
            return self._eval_node(pattern)
        if isinstance(pattern, ast.EdgePattern):
            return self._eval_edge(pattern, max_length)
        if isinstance(pattern, ast.Concat):
            return self._eval_concat(pattern, max_length)
        if isinstance(pattern, ast.Union):
            return self._eval_union(pattern, max_length)
        if isinstance(pattern, ast.Conditioned):
            return self._eval_conditioned(pattern, max_length)
        if isinstance(pattern, ast.Repeat):
            return self._eval_repeat(pattern, max_length)
        if isinstance(pattern, ast.PatternExtension):
            return frozenset(pattern.evaluate_ext(self, max_length))
        raise TypeError(f"not a pattern: {pattern!r}")

    # -- atomic patterns -------------------------------------------------

    def _eval_node(self, pattern: ast.NodePattern) -> frozenset[Match]:
        if pattern.label is None:
            nodes = self.graph.nodes
        else:
            nodes = self.graph.nodes_with_label(pattern.label)
        variable = pattern.variable
        out = []
        for node in nodes:
            mu = (
                Assignment({variable: node})
                if variable is not None
                else EMPTY_ASSIGNMENT
            )
            out.append((Path.node(node), mu))
        return frozenset(out)

    def _eval_edge(
        self, pattern: ast.EdgePattern, max_length: int
    ) -> frozenset[Match]:
        if max_length < 1:
            return frozenset()
        graph = self.graph
        label = pattern.label
        variable = pattern.variable
        out: list[Match] = []

        def emit(a: NodeId, edge, b: NodeId) -> None:
            mu = (
                Assignment({variable: edge})
                if variable is not None
                else EMPTY_ASSIGNMENT
            )
            out.append((Path.of(a, edge, b), mu))

        # The label indexes do the filtering (a dict lookup on
        # snapshots), so the loops below stay test-free.
        if pattern.direction is ast.Direction.FORWARD:
            edges = (
                graph.directed_edges
                if label is None
                else graph.directed_edges_with_label(label)
            )
            for edge in edges:
                emit(graph.source(edge), edge, graph.target(edge))
        elif pattern.direction is ast.Direction.BACKWARD:
            edges = (
                graph.directed_edges
                if label is None
                else graph.directed_edges_with_label(label)
            )
            for edge in edges:
                emit(graph.target(edge), edge, graph.source(edge))
        else:
            uedges = (
                graph.undirected_edges
                if label is None
                else graph.undirected_edges_with_label(label)
            )
            for edge in uedges:
                ends = sorted(graph.endpoints(edge))
                if len(ends) == 1:
                    emit(ends[0], edge, ends[0])
                else:
                    emit(ends[0], edge, ends[1])
                    emit(ends[1], edge, ends[0])
        return frozenset(out)

    # -- composite patterns ----------------------------------------------

    def _eval_concat(self, pattern: ast.Concat, max_length: int) -> frozenset[Match]:
        left_min = min_path_length(pattern.left)
        right_min = min_path_length(pattern.right)
        left = self.evaluate(pattern.left, max_length - right_min)
        right = self.evaluate(pattern.right, max_length - left_min)
        by_source: dict[NodeId, list[Match]] = {}
        for path, mu in right:
            by_source.setdefault(path.src, []).append((path, mu))
        out: set[Match] = set()
        for left_path, left_mu in left:
            for right_path, right_mu in by_source.get(left_path.tgt, ()):
                if len(left_path) + len(right_path) > max_length:
                    continue
                merged = left_mu.unify(right_mu)
                if merged is None:
                    continue
                out.add((left_path.concat(right_path), merged))
                self._check_size(out)
        return frozenset(out)

    def _eval_union(self, pattern: ast.Union, max_length: int) -> frozenset[Match]:
        union_domain = frozenset(self.schema(pattern))
        out: set[Match] = set()
        for branch in (pattern.left, pattern.right):
            branch_results = self.evaluate(branch, max_length)
            branch_domain = frozenset(self.schema(branch))
            missing = union_domain - branch_domain
            if missing:
                padding = {variable: Nothing for variable in missing}
                for path, mu in branch_results:
                    padded = dict(mu)
                    padded.update(padding)
                    out.add((path, Assignment(padded)))
            else:
                out.update(branch_results)
            self._check_size(out)
        return frozenset(out)

    def _eval_conditioned(
        self, pattern: ast.Conditioned, max_length: int
    ) -> frozenset[Match]:
        inner = self.evaluate(pattern.pattern, max_length)
        return frozenset(
            (path, mu)
            for path, mu in inner
            if satisfies(self.graph, mu, pattern.condition)
        )

    # -- repetition --------------------------------------------------------

    def _eval_repeat(self, pattern: ast.Repeat, max_length: int) -> frozenset[Match]:
        body = pattern.pattern
        lower, upper = pattern.lower, pattern.upper
        domain = tuple(sorted(self.schema(body)))
        answers: set[Match] = set()

        # Power 0: the edgeless path at every node, all variables bound
        # to the empty list.
        if lower == 0:
            zero_mu = empty_group_assignment(domain)
            for node in self.graph.nodes:
                answers.add((Path.node(node), zero_mu))
        if upper == 0:
            return frozenset(answers)

        base = self.evaluate(body, max_length)
        if not base:
            return frozenset(answers)
        by_source: dict[NodeId, list[Match]] = {}
        for path, mu in base:
            by_source.setdefault(path.src, []).append((path, mu))

        # Power 1 states.
        State = tuple[Path, CollectAccumulator]
        seed = CollectAccumulator(mode=self.collect_mode)
        current: set[State] = set()
        for path, mu in base:
            extended = seed.extend(path, mu)
            if extended is not None:
                current.add((path, extended))

        sound_cap = self._repeat_sound_cap(pattern, max_length, base)
        history: dict[frozenset[State], int] = {}
        power = 1
        while True:
            if not current:
                break
            if power >= lower and (upper is None or power <= upper):
                for path, accumulator in current:
                    answers.add((path, accumulator.finalize(domain)))
                self._check_size(answers)
            if upper is not None and power >= upper:
                break
            if power >= sound_cap and power >= lower:
                # Lemma 15: beyond the bound B every power's answers are
                # already included in an earlier power's, so stop.
                break
            frozen = frozenset(current)
            if frozen in history:
                # The power sequence cycles: every later power's state
                # set already occurred. Add answers for all state sets
                # in the cycle that correspond to powers >= lower.
                first = history[frozen]
                self._absorb_cycle(
                    history, first, power, lower, upper, domain, answers
                )
                break
            history[frozen] = power
            if power >= self.limits.max_power_iterations:
                raise EvaluationLimitError(
                    f"repetition exceeded {self.limits.max_power_iterations} "
                    f"power iterations without converging "
                    f"(bounds {lower}..{upper}); raise "
                    f"EngineConfig.max_power_iterations if intended"
                )
            # Step: extend every partial match by one more factor.
            next_states: set[State] = set()
            for path, accumulator in current:
                for factor_path, factor_mu in by_source.get(path.tgt, ()):
                    if len(path) + len(factor_path) > max_length:
                        continue
                    extended = accumulator.extend(factor_path, factor_mu)
                    if extended is None:
                        continue
                    next_states.add((path.concat(factor_path), extended))
                    self._check_size(next_states)
            current = next_states
            power += 1
        return frozenset(answers)

    def _absorb_cycle(
        self,
        history: dict[frozenset, int],
        cycle_start: int,
        current_power: int,
        lower: int,
        upper: int | None,
        domain: tuple[str, ...],
        answers: set[Match],
    ) -> None:
        """When the power-state sequence cycles, powers ``>= cycle_start``
        repeat with period ``current_power - cycle_start``. Any state
        set in the cycle therefore occurs at arbitrarily large powers,
        so (for unbounded ``upper``) each contributes answers as soon as
        some power ``>= lower`` hits it."""
        period = current_power - cycle_start
        by_index = {index: states for states, index in history.items()}
        for index in range(cycle_start, current_power):
            states = by_index[index]
            # Powers hitting this state set: index, index+period, ...
            reachable_power = index
            while reachable_power < lower:
                reachable_power += period
            if upper is not None and reachable_power > upper:
                continue
            for path, accumulator in states:
                answers.add((path, accumulator.finalize(domain)))

    def _repeat_sound_cap(
        self, pattern: ast.Repeat, max_length: int, base: frozenset[Match]
    ) -> int:
        """The largest power that can still contribute new answers.

        If every factor adds an edge (which holds whenever the body
        cannot match an edgeless path, and always under the SYNTACTIC
        and RUNTIME collect modes), powers beyond ``max_length`` are
        empty. Otherwise the Lemma 15 bound ``B = (L + 1)(M + 1)``
        applies, with ``M`` the largest per-node count of edgeless body
        matches. Cycle detection usually stops iteration much earlier;
        this cap is the proof-backed fail-safe.
        """
        if (
            self.collect_mode is not CollectMode.GROUPING
            or min_path_length(pattern.pattern) >= 1
        ):
            return max_length + 1
        per_node: dict[NodeId, int] = {}
        for path, _ in base:
            if path.is_edgeless:
                per_node[path.src] = per_node.get(path.src, 0) + 1
        m = max(per_node.values(), default=0)
        return (max_length + 1) * (m + 1)

    # ------------------------------------------------------------------

    def _check_size(self, collection) -> None:
        if len(collection) > self.limits.max_intermediate_results:
            raise EvaluationLimitError(
                f"intermediate result exceeded "
                f"{self.limits.max_intermediate_results} entries; "
                f"raise EngineConfig.max_intermediate_results if intended"
            )
