"""Semantic values (Definition 7).

Values of type ``tau`` are:

- ``V_Node = N`` — node ids;
- ``V_Edge = E_d | E_u`` — edge ids;
- ``V_Path = Paths`` — paths;
- ``V_Maybe(tau) = V_tau | {Nothing}`` — with the special ``Nothing``;
- ``V_Group(tau)`` — lists of ``(path, value)`` pairs.

GPC returns *references* to graph elements, never the constants they
carry, so elements of ``Const`` are not values. All values here are
immutable and hashable, which is what lets answer sets be genuine sets
(the calculus has set semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union as TUnion

from repro.graph.ids import DirectedEdgeId, NodeId, UndirectedEdgeId
from repro.graph.paths import Path
from repro.gpc.types import (
    EdgeType,
    GroupType,
    MaybeType,
    NodeType,
    PathType,
    Type,
)

__all__ = ["Nothing", "NothingType", "GroupValue", "Value", "conforms"]


class NothingType:
    """The special value assigned to absent optional variables.

    A singleton: ``NothingType() is Nothing`` always holds.
    """

    _instance: "NothingType | None" = None

    def __new__(cls) -> "NothingType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Nothing"

    def __hash__(self) -> int:
        return hash("repro.gpc.Nothing")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NothingType)

    def __bool__(self) -> bool:
        return False


#: The unique ``Nothing`` value.
Nothing = NothingType()


@dataclass(frozen=True)
class GroupValue:
    """A composite value ``list((p1, v1), ..., (pn, vn))``.

    Each entry pairs the portion ``p_i`` of the matched path with the
    value ``v_i`` the variable took on that portion. ``n = 0`` (the
    empty list) is the value group variables take in the 0th power of a
    repetition.
    """

    entries: tuple[tuple[Path, "Value"], ...] = ()

    def __post_init__(self) -> None:
        for entry in self.entries:
            if len(entry) != 2 or not isinstance(entry[0], Path):
                raise TypeError(f"group entries must be (Path, value) pairs: {entry!r}")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[tuple[Path, "Value"]]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> tuple[Path, "Value"]:
        return self.entries[index]

    @property
    def values(self) -> tuple["Value", ...]:
        """Just the ``v_i`` components, in order."""
        return tuple(v for _, v in self.entries)

    @property
    def paths(self) -> tuple[Path, ...]:
        """Just the ``p_i`` components, in order."""
        return tuple(p for p, _ in self.entries)

    def append(self, path: Path, value: "Value") -> "GroupValue":
        """A new group with one more entry (groups are immutable)."""
        return GroupValue(self.entries + ((path, value),))

    def __repr__(self) -> str:
        inner = ", ".join(f"({p!r}, {v!r})" for p, v in self.entries)
        return f"list({inner})"


Value = TUnion[NodeId, DirectedEdgeId, UndirectedEdgeId, Path, NothingType, GroupValue]


def conforms(value: Value, tau: Type) -> bool:
    """Whether ``value`` belongs to ``V_tau`` (Definition 7)."""
    if isinstance(tau, NodeType):
        return isinstance(value, NodeId)
    if isinstance(tau, EdgeType):
        return isinstance(value, (DirectedEdgeId, UndirectedEdgeId))
    if isinstance(tau, PathType):
        return isinstance(value, Path)
    if isinstance(tau, MaybeType):
        return isinstance(value, NothingType) or conforms(value, tau.inner)
    if isinstance(tau, GroupType):
        if not isinstance(value, GroupValue):
            return False
        return all(
            isinstance(p, Path) and conforms(v, tau.inner) for p, v in value.entries
        )
    raise TypeError(f"not a value type: {tau!r}")
