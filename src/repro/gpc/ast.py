"""Abstract syntax of GPC (Figure 1 of the paper).

The grammar, verbatim:

.. code-block:: text

    descriptor  d  ::=  x  |  :l  |  x:l
    direction      ::=  ->  |  <-  |  ~
    restrictor  r  ::=  simple | trail | shortest
                        | shortest simple | shortest trail
    pattern     p  ::=  ()  |  (d)                (node pattern)
                     |  ->  |  -[d]->  (etc.)     (edge pattern)
                     |  p + p                     (union)
                     |  p p                       (concatenation)
                     |  p <theta>                 (conditioning)
                     |  p{n..m}                   (repetition)
    query       Q  ::=  r p  |  x = r p           (pattern query)
                     |  Q, Q                      (join)

Every class is an immutable, hashable dataclass; helper constructors
(:func:`node`, :func:`forward`, ...) give a concise construction DSL
used throughout tests and examples. Structural well-formedness (e.g.
``n <= m`` in repetitions) is validated at construction time;
*type*-correctness is the job of :mod:`repro.gpc.typing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Iterator, Optional, Union as TUnion

from repro.direction import Direction
from repro.errors import GPCError
from repro.gpc.conditions_ast import Condition, condition_variables

__all__ = [
    "Direction",
    "Descriptor",
    "NodePattern",
    "EdgePattern",
    "Union",
    "Concat",
    "Conditioned",
    "Repeat",
    "Pattern",
    "Restrictor",
    "PatternQuery",
    "Join",
    "Query",
    "Expression",
    "node",
    "edge",
    "forward",
    "backward",
    "undirected",
    "concat",
    "union",
    "variables",
    "pattern_size",
    "iter_subpatterns",
    "INFINITY",
]

#: Sentinel for an unbounded repetition upper limit (``m = infinity``).
INFINITY: Optional[int] = None


@dataclass(frozen=True)
class Descriptor:
    """An optional variable and an optional label: ``x``, ``:l``, ``x:l``.

    Both components absent is also legal (the anonymous descriptor used
    by ``()`` and bare arrows).
    """

    variable: Optional[str] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.variable is not None and not self.variable:
            raise GPCError("descriptor variable must be a non-empty string")
        if self.label is not None and not self.label:
            raise GPCError("descriptor label must be a non-empty string")

    @property
    def is_empty(self) -> bool:
        return self.variable is None and self.label is None

    def __str__(self) -> str:
        var = self.variable or ""
        label = f":{self.label}" if self.label else ""
        return f"{var}{label}"


_EMPTY_DESCRIPTOR = Descriptor()


@dataclass(frozen=True)
class NodePattern:
    """``( d )`` — matches a single node."""

    descriptor: Descriptor = _EMPTY_DESCRIPTOR

    @property
    def variable(self) -> Optional[str]:
        return self.descriptor.variable

    @property
    def label(self) -> Optional[str]:
        return self.descriptor.label

    def __str__(self) -> str:
        return f"({self.descriptor})"


@dataclass(frozen=True)
class EdgePattern:
    """``-[d]->``, ``<-[d]-`` or ``~[d]~`` — matches a single edge
    traversal (with its endpoint nodes included in the matched path)."""

    direction: Direction
    descriptor: Descriptor = _EMPTY_DESCRIPTOR

    @property
    def variable(self) -> Optional[str]:
        return self.descriptor.variable

    @property
    def label(self) -> Optional[str]:
        return self.descriptor.label

    def __str__(self) -> str:
        if self.descriptor.is_empty:
            return str(self.direction)
        if self.direction is Direction.FORWARD:
            return f"-[{self.descriptor}]->"
        if self.direction is Direction.BACKWARD:
            return f"<-[{self.descriptor}]-"
        return f"~[{self.descriptor}]~"


@dataclass(frozen=True)
class Union:
    """``p1 + p2`` — disjunction of patterns."""

    left: "Pattern"
    right: "Pattern"


@dataclass(frozen=True)
class Concat:
    """``p1 p2`` — concatenation (juxtaposition) of patterns."""

    left: "Pattern"
    right: "Pattern"


@dataclass(frozen=True)
class Conditioned:
    """``p <theta>`` — filter matches of ``p`` by a condition."""

    pattern: "Pattern"
    condition: Condition


@dataclass(frozen=True)
class Repeat:
    """``p{n..m}`` — repetition between ``n`` and ``m`` times.

    ``upper is None`` encodes ``m = infinity``; ``p{0..None}`` is the
    Kleene star.
    """

    pattern: "Pattern"
    lower: int
    upper: Optional[int]

    def __post_init__(self) -> None:
        if self.lower < 0:
            raise GPCError(f"repetition lower bound must be >= 0, got {self.lower}")
        if self.upper is not None and self.upper < self.lower:
            raise GPCError(
                f"repetition bounds must satisfy n <= m, got {self.lower}..{self.upper}"
            )

    @property
    def is_unbounded(self) -> bool:
        return self.upper is None


class PatternExtension:
    """Base class for extension pattern constructs (Section 7).

    The core calculus is fixed by Figure 1; the paper's Section 7
    sketches extensions (label expressions, arithmetic conditions,
    restrictors inside patterns). Subclasses plug into the type system
    and the evaluator by implementing the hooks below, leaving the core
    modules untouched.
    """

    def children(self) -> tuple["Pattern", ...]:
        """Direct subpatterns."""
        raise NotImplementedError

    def own_variables(self) -> frozenset[str]:
        """Variables introduced by this construct itself."""
        return frozenset()

    def infer_schema_ext(self, child_schemas: list[dict]) -> dict:
        """Combine child schemas (may raise ``GPCTypeError``)."""
        raise NotImplementedError

    def min_path_length_ext(self, child_mins: list[int]) -> int:
        """Minimum match length given the children's minima."""
        raise NotImplementedError

    def max_path_length_ext(
        self, child_maxes: list[Optional[int]]
    ) -> Optional[int]:
        """Maximum match length (``None`` = unbounded)."""
        raise NotImplementedError

    def provably_empty_ext(self) -> bool:
        """Whether the construct is statically unsatisfiable (no
        element on any graph can match). ``True`` must be a proof —
        the analyzer (:mod:`repro.gpc.analysis`) short-circuits
        provably-empty queries to the empty answer set. The default is
        the always-sound ``False``."""
        return False

    def evaluate_ext(self, evaluator, max_length: int):
        """Bounded evaluation; ``evaluator`` is the
        :class:`~repro.gpc.semantics.BoundedEvaluator`."""
        raise NotImplementedError

    def compile_abstraction_ext(self, builder, compile_child):
        """Add this construct to the condition-free NFA abstraction;
        returns a ``(start, end)`` state pair."""
        raise NotImplementedError


Pattern = TUnion[
    NodePattern, EdgePattern, Union, Concat, Conditioned, Repeat, PatternExtension
]


@dataclass(frozen=True)
class Restrictor:
    """A path restrictor: ``simple``, ``trail``, ``shortest``,
    ``shortest simple`` or ``shortest trail``.

    ``mode`` is ``"simple"``, ``"trail"`` or ``None``; at least one of
    ``shortest``/``mode`` must be present, which guarantees finiteness
    of query answers (Theorem 10).
    """

    shortest: bool = False
    mode: Optional[str] = None

    #: The five legal restrictors, as convenient constants (set after
    #: the class body; ClassVar keeps them out of the dataclass fields).
    SIMPLE: ClassVar["Restrictor"]
    TRAIL: ClassVar["Restrictor"]
    SHORTEST: ClassVar["Restrictor"]
    SHORTEST_SIMPLE: ClassVar["Restrictor"]
    SHORTEST_TRAIL: ClassVar["Restrictor"]

    def __post_init__(self) -> None:
        if self.mode not in (None, "simple", "trail"):
            raise GPCError(f"unknown restrictor mode {self.mode!r}")
        if not self.shortest and self.mode is None:
            raise GPCError(
                "a restrictor needs 'shortest', a mode, or both "
                "(otherwise answers may be infinite)"
            )

    def __str__(self) -> str:
        parts = []
        if self.shortest:
            parts.append("shortest")
        if self.mode:
            parts.append(self.mode)
        return " ".join(parts)


Restrictor.SIMPLE = Restrictor(mode="simple")
Restrictor.TRAIL = Restrictor(mode="trail")
Restrictor.SHORTEST = Restrictor(shortest=True)
Restrictor.SHORTEST_SIMPLE = Restrictor(shortest=True, mode="simple")
Restrictor.SHORTEST_TRAIL = Restrictor(shortest=True, mode="trail")


@dataclass(frozen=True)
class PatternQuery:
    """``r p`` or ``x = r p`` — a restricted, optionally named pattern."""

    restrictor: Restrictor
    pattern: Pattern
    name: Optional[str] = None


@dataclass(frozen=True)
class Join:
    """``Q1, Q2`` — the join of two queries."""

    left: "Query"
    right: "Query"


Query = TUnion[PatternQuery, Join]

#: An *expression* is a pattern or a query (the paper's terminology).
Expression = TUnion[Pattern, Query]


# ---------------------------------------------------------------------------
# Construction DSL
# ---------------------------------------------------------------------------


def node(variable: str | None = None, label: str | None = None) -> NodePattern:
    """Build a node pattern ``(x:l)`` with optional components."""
    return NodePattern(Descriptor(variable, label))


def edge(
    direction: Direction,
    variable: str | None = None,
    label: str | None = None,
) -> EdgePattern:
    """Build an edge pattern with explicit direction."""
    return EdgePattern(direction, Descriptor(variable, label))


def forward(variable: str | None = None, label: str | None = None) -> EdgePattern:
    """``-[x:l]->``"""
    return edge(Direction.FORWARD, variable, label)


def backward(variable: str | None = None, label: str | None = None) -> EdgePattern:
    """``<-[x:l]-``"""
    return edge(Direction.BACKWARD, variable, label)


def undirected(variable: str | None = None, label: str | None = None) -> EdgePattern:
    """``~[x:l]~``"""
    return edge(Direction.UNDIRECTED, variable, label)


def concat(*patterns: Pattern) -> Pattern:
    """Left-associated concatenation of one or more patterns."""
    if not patterns:
        raise GPCError("concat needs at least one pattern")
    result = patterns[0]
    for pattern in patterns[1:]:
        result = Concat(result, pattern)
    return result


def union(*patterns: Pattern) -> Pattern:
    """Left-associated union of one or more patterns."""
    if not patterns:
        raise GPCError("union needs at least one pattern")
    result = patterns[0]
    for pattern in patterns[1:]:
        result = Union(result, pattern)
    return result


# ---------------------------------------------------------------------------
# Structural queries over expressions
# ---------------------------------------------------------------------------


def variables(expression: Expression) -> frozenset[str]:
    """``var(xi)``: all variables occurring in the expression.

    Includes variables bound by descriptors, path names in queries, and
    variables mentioned in conditions.
    """
    out: set[str] = set()
    _collect_variables(expression, out)
    return frozenset(out)


def _collect_variables(expression: Expression, out: set[str]) -> None:
    if isinstance(expression, PatternExtension):
        out.update(expression.own_variables())
        for child in expression.children():
            _collect_variables(child, out)
    elif isinstance(expression, NodePattern) or isinstance(expression, EdgePattern):
        if expression.variable is not None:
            out.add(expression.variable)
    elif isinstance(expression, (Union, Concat)):
        _collect_variables(expression.left, out)
        _collect_variables(expression.right, out)
    elif isinstance(expression, Conditioned):
        _collect_variables(expression.pattern, out)
        out.update(condition_variables(expression.condition))
    elif isinstance(expression, Repeat):
        _collect_variables(expression.pattern, out)
    elif isinstance(expression, PatternQuery):
        _collect_variables(expression.pattern, out)
        if expression.name is not None:
            out.add(expression.name)
    elif isinstance(expression, Join):
        _collect_variables(expression.left, out)
        _collect_variables(expression.right, out)
    else:
        raise TypeError(f"not a GPC expression: {expression!r}")


def iter_subpatterns(pattern: Pattern) -> Iterator[Pattern]:
    """Yield every subpattern of ``pattern`` (including itself),
    pre-order."""
    stack: list[Pattern] = [pattern]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (Union, Concat)):
            stack.append(current.right)
            stack.append(current.left)
        elif isinstance(current, Conditioned):
            stack.append(current.pattern)
        elif isinstance(current, Repeat):
            stack.append(current.pattern)
        elif isinstance(current, PatternExtension):
            stack.extend(current.children())


def pattern_size(expression: Expression) -> int:
    """``|pi|`` per Appendix C: parse-tree nodes plus the bits needed
    to represent repetition bounds."""
    if isinstance(expression, (NodePattern, EdgePattern)):
        return 1
    if isinstance(expression, (Union, Concat, Join)):
        return 1 + pattern_size(expression.left) + pattern_size(expression.right)
    if isinstance(expression, Conditioned):
        return 1 + pattern_size(expression.pattern)
    if isinstance(expression, Repeat):
        bits = expression.lower.bit_length() or 1
        if expression.upper is not None:
            bits += expression.upper.bit_length() or 1
        return 1 + bits + pattern_size(expression.pattern)
    if isinstance(expression, PatternQuery):
        return 1 + pattern_size(expression.pattern)
    if isinstance(expression, PatternExtension):
        return 1 + sum(pattern_size(child) for child in expression.children())
    raise TypeError(f"not a GPC expression: {expression!r}")
