"""Schema inference — the Figure 2 typing rules.

The central entry point is :func:`infer_schema`, which maps a GPC
expression to its schema ``sch(xi)`` (Definition 5): the finite partial
function from variables to types induced by the typing rules. A
well-typed expression assigns a *unique* type to every variable
(Proposition 2); ill-typed expressions raise a
:class:`~repro.errors.GPCTypeError` subclass pinpointing the violation.

As Remark 6 observes, ``sch`` is compositional: each syntactic
construct combines the schemas of its sub-expressions through a pure
function. Those combinators (:func:`union_schemas`,
:func:`concat_schemas`, :func:`repeat_schema`, ...) are exposed so the
property-based tests can verify compositionality directly.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import (
    GPCTypeError,
    IllegalJoinError,
    TypeMismatchError,
    UnboundVariableError,
)
from repro.gpc import ast
from repro.gpc.conditions_ast import Condition, condition_variables
from repro.gpc.types import (
    EDGE,
    GroupType,
    MaybeType,
    NODE,
    PATH,
    Type,
    is_singleton,
    maybe_wrap,
)

__all__ = [
    "Schema",
    "infer_schema",
    "is_well_typed",
    "check_condition",
    "union_schemas",
    "concat_schemas",
    "join_schemas",
    "repeat_schema",
    "name_schema",
]

#: A schema is a finite partial map from variables to types.
Schema = Mapping[str, Type]


# ---------------------------------------------------------------------------
# Schema combinators (Remark 6)
# ---------------------------------------------------------------------------


def union_schemas(left: Schema, right: Schema) -> dict[str, Type]:
    """Combine schemas under union ``p1 + p2``.

    For each variable ``z``:

    - present in both with the same type ``tau`` -> ``tau``;
    - ``tau`` on one side and ``Maybe(tau)`` on the other -> ``Maybe(tau)``;
    - present on one side only with ``tau`` -> ``tau?``;
    - anything else is a type mismatch.
    """
    result: dict[str, Type] = {}
    for variable in left.keys() | right.keys():
        in_left = variable in left
        in_right = variable in right
        if in_left and in_right:
            lt, rt = left[variable], right[variable]
            if lt == rt:
                result[variable] = lt
            elif lt == maybe_wrap(rt) and isinstance(lt, MaybeType):
                result[variable] = lt
            elif rt == maybe_wrap(lt) and isinstance(rt, MaybeType):
                result[variable] = rt
            else:
                raise TypeMismatchError(
                    f"variable {variable!r} has type {lt} on one side of a union "
                    f"and {rt} on the other"
                )
        else:
            tau = left[variable] if in_left else right[variable]
            result[variable] = maybe_wrap(tau)
    return result


def concat_schemas(left: Schema, right: Schema) -> dict[str, Type]:
    """Combine schemas under concatenation ``p1 p2``.

    Shared variables must be singletons (``Node`` or ``Edge``) of the
    same type; this is what disallows implicit joins over group,
    conditional, and path variables.
    """
    return _merge_singleton_join(left, right, context="concatenation")


def join_schemas(left: Schema, right: Schema) -> dict[str, Type]:
    """Combine schemas under query join ``Q1, Q2`` (same discipline as
    concatenation)."""
    return _merge_singleton_join(left, right, context="join")


def _merge_singleton_join(
    left: Schema, right: Schema, context: str
) -> dict[str, Type]:
    result: dict[str, Type] = {}
    for variable in left.keys() | right.keys():
        in_left = variable in left
        in_right = variable in right
        if in_left and in_right:
            lt, rt = left[variable], right[variable]
            if lt != rt:
                raise TypeMismatchError(
                    f"variable {variable!r} has type {lt} and {rt} "
                    f"across a {context}"
                )
            if not is_singleton(lt):
                raise IllegalJoinError(
                    f"variable {variable!r} of type {lt} is shared across a "
                    f"{context}; only Node/Edge variables may be shared"
                )
            result[variable] = lt
        else:
            result[variable] = left[variable] if in_left else right[variable]
    return result


def repeat_schema(inner: Schema) -> dict[str, Type]:
    """Schema under repetition: every ``tau`` becomes ``Group(tau)``."""
    return {variable: GroupType(tau) for variable, tau in inner.items()}


def name_schema(inner: Schema, name: str) -> dict[str, Type]:
    """Schema of ``x = r p``: the pattern's schema plus ``x : Path``.

    The premise ``x not in var(p)`` of the Figure 2 rule is enforced.
    """
    if name in inner:
        raise TypeMismatchError(
            f"path name {name!r} already occurs in the pattern with type "
            f"{inner[name]}"
        )
    result = dict(inner)
    result[name] = PATH
    return result


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


def check_condition(schema: Schema, condition: Condition) -> None:
    """Type-check a condition against a pattern schema.

    Implements the two atomic rules of Figure 2: every variable used in
    a comparison must have a *singleton* type in the schema. Boolean
    connectives propagate. Raises on violation; returns ``None`` (the
    condition then "has type Bool").
    """
    for variable in condition_variables(condition):
        if variable not in schema:
            raise UnboundVariableError(
                f"condition mentions {variable!r}, which is not bound in the "
                f"conditioned pattern"
            )
        tau = schema[variable]
        if not is_singleton(tau):
            raise GPCTypeError(
                f"condition mentions {variable!r} of type {tau}; only "
                f"Node/Edge variables may appear in conditions"
            )


# ---------------------------------------------------------------------------
# Inference
# ---------------------------------------------------------------------------


def infer_schema(expression: ast.Expression) -> dict[str, Type]:
    """Compute ``sch(xi)`` for a pattern or query.

    Raises a :class:`~repro.errors.GPCTypeError` subclass if the
    expression is not well-typed.
    """
    if isinstance(expression, ast.NodePattern):
        if expression.variable is None:
            return {}
        return {expression.variable: NODE}
    if isinstance(expression, ast.EdgePattern):
        if expression.variable is None:
            return {}
        return {expression.variable: EDGE}
    if isinstance(expression, ast.Union):
        return union_schemas(
            infer_schema(expression.left), infer_schema(expression.right)
        )
    if isinstance(expression, ast.Concat):
        return concat_schemas(
            infer_schema(expression.left), infer_schema(expression.right)
        )
    if isinstance(expression, ast.Conditioned):
        schema = infer_schema(expression.pattern)
        check_condition(schema, expression.condition)
        return schema
    if isinstance(expression, ast.Repeat):
        return repeat_schema(infer_schema(expression.pattern))
    if isinstance(expression, ast.PatternQuery):
        schema = infer_schema(expression.pattern)
        if expression.name is not None:
            schema = name_schema(schema, expression.name)
        return schema
    if isinstance(expression, ast.Join):
        return join_schemas(
            infer_schema(expression.left), infer_schema(expression.right)
        )
    if isinstance(expression, ast.PatternExtension):
        return expression.infer_schema_ext(
            [infer_schema(child) for child in expression.children()]
        )
    raise TypeError(f"not a GPC expression: {expression!r}")


def is_well_typed(expression: ast.Expression) -> bool:
    """Whether the expression satisfies Definition 1."""
    try:
        infer_schema(expression)
    except GPCTypeError:
        return False
    return True
