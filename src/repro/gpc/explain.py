"""Query introspection: schemas, length analysis, and plan summaries.

``explain`` renders what the engine knows about an expression before
touching a graph: the inferred schema (Figure 2), the min/max match
lengths (the Approach 1 analysis), which collect approach would accept
it, and — for queries — the length bound each restrictor implies.

Useful in examples and when debugging why a pattern is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import CollectError, GPCTypeError
from repro.gpc import ast
from repro.gpc.minlength import (
    max_path_length,
    min_path_length,
    validate_approach1,
)
from repro.gpc.pretty import pretty
from repro.gpc.typing import infer_schema
from repro.gpc.types import Type

__all__ = [
    "PatternReport",
    "QueryReport",
    "explain_pattern",
    "explain_query",
    "explain",
    "explain_counters",
    "explain_estimates",
]


@dataclass(frozen=True)
class PatternReport:
    """Static analysis of a pattern."""

    text: str
    well_typed: bool
    type_error: Optional[str]
    schema: dict[str, Type]
    min_length: int
    max_length: Optional[int]
    gql_repetition_legal: bool
    size: int

    def render(self) -> str:
        lines = [f"pattern: {self.text}"]
        if not self.well_typed:
            lines.append(f"  ILL-TYPED: {self.type_error}")
            return "\n".join(lines)
        if self.schema:
            lines.append("  schema:")
            for variable in sorted(self.schema):
                lines.append(f"    {variable} : {self.schema[variable]}")
        else:
            lines.append("  schema: (no variables)")
        max_text = "unbounded" if self.max_length is None else str(self.max_length)
        lines.append(f"  match length: {self.min_length} .. {max_text}")
        lines.append(f"  pattern size |pi|: {self.size}")
        lines.append(
            f"  GQL repetition rule (Approach 1): "
            f"{'ok' if self.gql_repetition_legal else 'VIOLATED'}"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class QueryReport:
    """Static analysis of a query: per-item pattern reports plus the
    restrictor-implied evaluation strategy."""

    text: str
    items: tuple[tuple[str, PatternReport], ...]

    def render(self) -> str:
        lines = [f"query: {self.text}"]
        for strategy, report in self.items:
            lines.append(f"- restrictor strategy: {strategy}")
            lines.extend("  " + line for line in report.render().splitlines())
        return "\n".join(lines)


def explain_pattern(pattern: ast.Pattern) -> PatternReport:
    """Analyse a pattern without evaluating it."""
    schema: dict[str, Type] = {}
    error: Optional[str] = None
    try:
        schema = infer_schema(pattern)
    except GPCTypeError as exc:
        error = str(exc)
    legal = True
    try:
        validate_approach1(pattern)
    except CollectError:
        legal = False
    return PatternReport(
        text=pretty(pattern),
        well_typed=error is None,
        type_error=error,
        schema=schema,
        min_length=min_path_length(pattern),
        max_length=max_path_length(pattern),
        gql_repetition_legal=legal,
        size=ast.pattern_size(pattern),
    )


def _strategy(restrictor: ast.Restrictor, pattern: ast.Pattern) -> str:
    if restrictor.mode == "trail":
        base = "bounded eval at |E|, filter trails"
    elif restrictor.mode == "simple":
        base = "bounded eval at |N|, filter simple"
    else:
        base = "register-NFA exact shortest"
    if restrictor.shortest and restrictor.mode:
        return base + ", then per-pair minima"
    return base


def explain_query(query: ast.Query) -> QueryReport:
    """Analyse a query: one entry per joined pattern item."""
    items: list[tuple[str, PatternReport]] = []

    def walk(q: ast.Query) -> None:
        if isinstance(q, ast.Join):
            walk(q.left)
            walk(q.right)
        else:
            items.append(
                (_strategy(q.restrictor, q.pattern), explain_pattern(q.pattern))
            )

    walk(query)
    return QueryReport(text=pretty(query), items=tuple(items))


def explain(expression: ast.Expression) -> str:
    """Render a human-readable report for a pattern or query."""
    if isinstance(expression, (ast.PatternQuery, ast.Join)):
        return explain_query(expression).render()
    return explain_pattern(expression).render()


def explain_counters(
    counters,
    *,
    answers: Optional[int] = None,
    elapsed_s: Optional[float] = None,
) -> str:
    """Render observed execution statistics as an ``explain`` section.

    The static report above describes what the engine *plans* to do;
    this appendix — fed by :class:`~repro.obs.counters.EvalCounters`
    from an actual run — describes what it *did*, letting planner
    estimates be validated against observed work.
    """
    lines = ["observed execution:"]
    if answers is not None:
        lines.append(f"  answers: {answers}")
    if elapsed_s is not None:
        lines.append(f"  elapsed: {elapsed_s * 1000:.2f} ms")
    for name, value in counters.as_dict().items():
        lines.append(f"  {name}: {value}")
    return "\n".join(lines)


def _estimate_row(label: str, estimated: float, observed: float) -> str:
    est = max(float(estimated), 1.0)
    obs = max(float(observed), 1.0)
    if est >= obs:
        verdict = f"{est / obs:.1f}x over"
    else:
        verdict = f"{obs / est:.1f}x under"
    return f"  {label}: est {estimated:.0f} vs actual {observed:.0f} ({verdict})"


def explain_estimates(
    estimates,
    *,
    answers: Optional[int] = None,
    counters=None,
) -> str:
    """Render the planner's estimates against observed actuals.

    ``estimates`` is a :class:`~repro.gpc.planner.PlanEstimates`
    stamped at plan time; ``answers`` and ``counters`` (an
    :class:`~repro.obs.counters.EvalCounters`) come from the run being
    explained. Each row shows the symmetric over/under factor so
    misestimates read the same in both directions.
    """
    lines = ["estimated vs actual:"]
    if answers is not None:
        lines.append(_estimate_row("answers", estimates.cardinality, answers))
    else:
        lines.append(f"  answers: est {estimates.cardinality:.0f}")
    if estimates.joins:
        build = getattr(counters, "join_build_rows", 0) if counters else 0
        probe = getattr(counters, "join_probe_rows", 0) if counters else 0
        lines.append(
            _estimate_row("join build rows", estimates.join_build_rows, build)
        )
        lines.append(
            _estimate_row("join probe rows", estimates.join_probe_rows, probe)
        )
    if counters is not None:
        lines.append(
            f"  nfa states expanded: {counters.nfa_states_expanded} (observed)"
        )
    return "\n".join(lines)
