"""Concrete text syntax for GPC.

The paper presents GPC abstractly (Figure 1); this module gives it an
ASCII concrete syntax close to the paper's notation and to GQL:

.. code-block:: text

    query       :=  join_item (',' join_item)*
    join_item   :=  [NAME '='] restrictor pattern
    restrictor  :=  SHORTEST [SIMPLE | TRAIL] | SIMPLE | TRAIL
    pattern     :=  concat ('+' concat)*          -- union (lowest)
    concat      :=  postfixed+                    -- juxtaposition
    postfixed   :=  atom (repetition | condition)*   -- tightest
    atom        :=  node | edge | '[' pattern ']'
    node        :=  '(' [descriptor] ')'
    descriptor  :=  NAME [':' LABEL]  |  ':' LABEL
    edge        :=  '->' | '<-' | '~'
                 |  '-[' [descriptor] ']->'
                 |  '<-[' [descriptor] ']-'
                 |  '~[' [descriptor] ']~'
    repetition  :=  '*'  |  '{' [n] (',' | '..') [m] '}'  |  '{' n '}'
    condition   :=  '<<' boolean '>>'
    boolean     :=  disjunction of conjunctions of [NOT] comparisons
    comparison  :=  NAME '.' KEY '=' (constant | NAME '.' KEY)
    constant    :=  NUMBER | 'string' | "string" | TRUE | FALSE

Notes mirroring the paper:

- ``+`` is *union* (not Kleene plus; write ``{1,}`` for that);
- ``*`` abbreviates ``{0,}``, the Kleene star;
- square brackets group, exactly as in the paper's examples;
- conditioning ``<< ... >>`` renders the paper's angle brackets.

Example::

    parse_query("p = SHORTEST (x:A) -[e:knows]->{1,} (y:B) << x.k = y.k >>")
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Hashable

from repro.errors import ParseError
from repro.gpc import ast
from repro.gpc.conditions_ast import (
    And,
    Condition,
    Not,
    Or,
    PropertyEqualsConst,
    PropertyEqualsProperty,
)

__all__ = ["parse_pattern", "parse_query", "parse_condition", "tokenize"]


class _T(enum.Enum):
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    PLUS = "+"
    STAR = "*"
    EQUALS = "="
    COLON = ":"
    DOT = "."
    RANGE = ".."
    ARROW_RIGHT = "->"
    ARROW_LEFT = "<-"
    TILDE = "~"
    EDGE_OPEN_RIGHT = "-["
    EDGE_CLOSE_RIGHT = "]->"
    EDGE_OPEN_LEFT = "<-["
    EDGE_CLOSE_LEFT = "]-"
    EDGE_OPEN_UND = "~["
    EDGE_CLOSE_UND = "]~"
    COND_OPEN = "<<"
    COND_CLOSE = ">>"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    EOF = "eof"


@dataclass(frozen=True)
class _Token:
    kind: _T
    text: str
    position: int

    @property
    def upper(self) -> str:
        return self.text.upper()


_FIXED = [
    ("]->", _T.EDGE_CLOSE_RIGHT),
    ("<-[", _T.EDGE_OPEN_LEFT),
    ("-[", _T.EDGE_OPEN_RIGHT),
    ("]-", _T.EDGE_CLOSE_LEFT),
    ("~[", _T.EDGE_OPEN_UND),
    ("]~", _T.EDGE_CLOSE_UND),
    ("<<", _T.COND_OPEN),
    (">>", _T.COND_CLOSE),
    ("->", _T.ARROW_RIGHT),
    ("<-", _T.ARROW_LEFT),
    ("..", _T.RANGE),
    ("(", _T.LPAREN),
    (")", _T.RPAREN),
    ("[", _T.LBRACKET),
    ("]", _T.RBRACKET),
    ("{", _T.LBRACE),
    ("}", _T.RBRACE),
    (",", _T.COMMA),
    ("+", _T.PLUS),
    ("*", _T.STAR),
    ("=", _T.EQUALS),
    (":", _T.COLON),
    (".", _T.DOT),
    ("~", _T.TILDE),
]

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"-?\d+(\.\d+)?")
_STRING_RE = re.compile(r"'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\"")


def tokenize(text: str) -> list[_Token]:
    """Tokenize GPC concrete syntax; raises :class:`ParseError` on
    unrecognized input."""
    tokens: list[_Token] = []
    pos = 0
    n = len(text)
    while pos < n:
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        string_match = _STRING_RE.match(text, pos)
        if string_match:
            tokens.append(_Token(_T.STRING, string_match.group(), pos))
            pos = string_match.end()
            continue
        number_match = _NUMBER_RE.match(text, pos)
        if number_match and (ch.isdigit() or ch == "-"):
            # '-' only starts a number when followed by a digit and not
            # part of an edge token (checked below by fixed-token order
            # priority: try fixed tokens first for '-').
            if ch == "-" and text[pos : pos + 2] in ("-[", "->"):
                pass  # fall through to fixed tokens
            else:
                tokens.append(_Token(_T.NUMBER, number_match.group(), pos))
                pos = number_match.end()
                continue
        for literal, kind in _FIXED:
            if text.startswith(literal, pos):
                tokens.append(_Token(kind, literal, pos))
                pos += len(literal)
                break
        else:
            ident_match = _IDENT_RE.match(text, pos)
            if ident_match:
                tokens.append(_Token(_T.IDENT, ident_match.group(), pos))
                pos = ident_match.end()
            else:
                raise ParseError(f"unexpected character {ch!r}", pos)
    tokens.append(_Token(_T.EOF, "", n))
    return tokens


_RESTRICTOR_KEYWORDS = {"SIMPLE", "TRAIL", "SHORTEST"}
_PATTERN_START = {
    _T.LPAREN,
    _T.LBRACKET,
    _T.ARROW_RIGHT,
    _T.ARROW_LEFT,
    _T.TILDE,
    _T.EDGE_OPEN_RIGHT,
    _T.EDGE_OPEN_LEFT,
    _T.EDGE_OPEN_UND,
}


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.index = 0

    # -- token helpers ---------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.current
        self.index += 1
        return token

    def expect(self, kind: _T) -> _Token:
        if self.current.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {self.current.text!r}",
                self.current.position,
            )
        return self.advance()

    def at_keyword(self, *keywords: str) -> bool:
        return self.current.kind is _T.IDENT and self.current.upper in keywords

    # -- queries -----------------------------------------------------------

    def parse_query(self) -> ast.Query:
        items = [self._join_item()]
        while self.current.kind is _T.COMMA:
            self.advance()
            items.append(self._join_item())
        query: ast.Query = items[0]
        for item in items[1:]:
            query = ast.Join(query, item)
        return query

    def _join_item(self) -> ast.PatternQuery:
        name = None
        if (
            self.current.kind is _T.IDENT
            and self.current.upper not in _RESTRICTOR_KEYWORDS
            and self.tokens[self.index + 1].kind is _T.EQUALS
        ):
            name = self.advance().text
            self.advance()  # '='
        restrictor = self._restrictor()
        pattern = self.parse_pattern()
        return ast.PatternQuery(restrictor, pattern, name)

    def _restrictor(self) -> ast.Restrictor:
        if not self.at_keyword(*_RESTRICTOR_KEYWORDS):
            raise ParseError(
                f"expected a restrictor (SIMPLE, TRAIL or SHORTEST), found "
                f"{self.current.text!r}",
                self.current.position,
            )
        keyword = self.advance().upper
        if keyword == "SIMPLE":
            return ast.Restrictor.SIMPLE
        if keyword == "TRAIL":
            return ast.Restrictor.TRAIL
        if self.at_keyword("SIMPLE"):
            self.advance()
            return ast.Restrictor.SHORTEST_SIMPLE
        if self.at_keyword("TRAIL"):
            self.advance()
            return ast.Restrictor.SHORTEST_TRAIL
        return ast.Restrictor.SHORTEST

    # -- patterns ------------------------------------------------------------

    def parse_pattern(self) -> ast.Pattern:
        pattern = self._concat()
        while self.current.kind is _T.PLUS:
            self.advance()
            pattern = ast.Union(pattern, self._concat())
        return pattern

    def _concat(self) -> ast.Pattern:
        parts = [self._postfixed()]
        while self.current.kind in _PATTERN_START:
            parts.append(self._postfixed())
        pattern = parts[0]
        for part in parts[1:]:
            pattern = ast.Concat(pattern, part)
        return pattern

    def _postfixed(self) -> ast.Pattern:
        pattern = self._atom()
        while True:
            kind = self.current.kind
            if kind is _T.STAR:
                self.advance()
                pattern = ast.Repeat(pattern, 0, None)
            elif kind is _T.LBRACE:
                lower, upper = self._bounds()
                pattern = ast.Repeat(pattern, lower, upper)
            elif kind is _T.COND_OPEN:
                self.advance()
                condition = self._boolean()
                self.expect(_T.COND_CLOSE)
                pattern = ast.Conditioned(pattern, condition)
            else:
                return pattern

    def _bounds(self) -> tuple[int, int | None]:
        self.expect(_T.LBRACE)
        lower = 0
        upper: int | None = None
        if self.current.kind is _T.NUMBER:
            lower = self._int()
            if self.current.kind is _T.RBRACE:
                self.advance()
                return lower, lower
        if self.current.kind in (_T.COMMA, _T.RANGE):
            self.advance()
            if self.current.kind is _T.NUMBER:
                upper = self._int()
        else:
            raise ParseError(
                f"expected ',' or '..' in repetition bounds, found "
                f"{self.current.text!r}",
                self.current.position,
            )
        self.expect(_T.RBRACE)
        return lower, upper

    def _int(self) -> int:
        token = self.expect(_T.NUMBER)
        try:
            return int(token.text)
        except ValueError:
            raise ParseError(
                f"repetition bounds must be integers, found {token.text!r}",
                token.position,
            ) from None

    def _atom(self) -> ast.Pattern:
        kind = self.current.kind
        if kind is _T.LPAREN:
            return self._node_pattern()
        if kind is _T.LBRACKET:
            self.advance()
            pattern = self.parse_pattern()
            self.expect(_T.RBRACKET)
            return pattern
        if kind is _T.ARROW_RIGHT:
            self.advance()
            return ast.EdgePattern(ast.Direction.FORWARD)
        if kind is _T.ARROW_LEFT:
            self.advance()
            return ast.EdgePattern(ast.Direction.BACKWARD)
        if kind is _T.TILDE:
            self.advance()
            return ast.EdgePattern(ast.Direction.UNDIRECTED)
        if kind is _T.EDGE_OPEN_RIGHT:
            self.advance()
            descriptor = self._descriptor(_T.EDGE_CLOSE_RIGHT)
            self.expect(_T.EDGE_CLOSE_RIGHT)
            return ast.EdgePattern(ast.Direction.FORWARD, descriptor)
        if kind is _T.EDGE_OPEN_LEFT:
            self.advance()
            descriptor = self._descriptor(_T.EDGE_CLOSE_LEFT)
            self.expect(_T.EDGE_CLOSE_LEFT)
            return ast.EdgePattern(ast.Direction.BACKWARD, descriptor)
        if kind is _T.EDGE_OPEN_UND:
            self.advance()
            descriptor = self._descriptor(_T.EDGE_CLOSE_UND)
            self.expect(_T.EDGE_CLOSE_UND)
            return ast.EdgePattern(ast.Direction.UNDIRECTED, descriptor)
        raise ParseError(
            f"expected a pattern, found {self.current.text!r}",
            self.current.position,
        )

    def _node_pattern(self) -> ast.NodePattern:
        self.expect(_T.LPAREN)
        descriptor = self._descriptor(_T.RPAREN)
        self.expect(_T.RPAREN)
        return ast.NodePattern(descriptor)

    def _descriptor(self, closing: _T) -> ast.Descriptor:
        variable = None
        label = None
        if self.current.kind is _T.IDENT:
            variable = self.advance().text
        if self.current.kind is _T.COLON:
            self.advance()
            label = self.expect(_T.IDENT).text
        if self.current.kind is not closing:
            raise ParseError(
                f"invalid descriptor near {self.current.text!r}",
                self.current.position,
            )
        return ast.Descriptor(variable, label)

    # -- conditions -------------------------------------------------------

    def _boolean(self) -> Condition:
        condition = self._conjunction()
        while self.at_keyword("OR"):
            self.advance()
            condition = Or(condition, self._conjunction())
        return condition

    def _conjunction(self) -> Condition:
        condition = self._negation()
        while self.at_keyword("AND"):
            self.advance()
            condition = And(condition, self._negation())
        return condition

    def _negation(self) -> Condition:
        if self.at_keyword("NOT"):
            self.advance()
            return Not(self._negation())
        if self.current.kind is _T.LPAREN:
            self.advance()
            condition = self._boolean()
            self.expect(_T.RPAREN)
            return condition
        return self._comparison()

    def _comparison(self) -> Condition:
        variable = self.expect(_T.IDENT).text
        self.expect(_T.DOT)
        key = self.expect(_T.IDENT).text
        self.expect(_T.EQUALS)
        if self.current.kind is _T.IDENT and not self.at_keyword("TRUE", "FALSE"):
            other_variable = self.advance().text
            self.expect(_T.DOT)
            other_key = self.expect(_T.IDENT).text
            return PropertyEqualsProperty(variable, key, other_variable, other_key)
        constant = self._constant()
        return PropertyEqualsConst(variable, key, constant)

    def _constant(self) -> Hashable:
        token = self.current
        if token.kind is _T.NUMBER:
            self.advance()
            if "." in token.text:
                return float(token.text)
            return int(token.text)
        if token.kind is _T.STRING:
            self.advance()
            body = token.text[1:-1]
            return re.sub(r"\\(.)", r"\1", body)
        if self.at_keyword("TRUE"):
            self.advance()
            return True
        if self.at_keyword("FALSE"):
            self.advance()
            return False
        raise ParseError(
            f"expected a constant, found {token.text!r}", token.position
        )

    # -- entry points --------------------------------------------------------

    def finish(self) -> None:
        if self.current.kind is not _T.EOF:
            raise ParseError(
                f"unexpected trailing input {self.current.text!r}",
                self.current.position,
            )


def parse_pattern(text: str) -> ast.Pattern:
    """Parse a GPC pattern from concrete syntax."""
    parser = _Parser(tokenize(text))
    pattern = parser.parse_pattern()
    parser.finish()
    return pattern


def parse_query(text: str) -> ast.Query:
    """Parse a GPC query (restrictor required, joins with ``,``)."""
    parser = _Parser(tokenize(text))
    query = parser.parse_query()
    parser.finish()
    return query


def parse_condition(text: str) -> Condition:
    """Parse a bare condition (the part between ``<<`` and ``>>``)."""
    parser = _Parser(tokenize(text))
    condition = parser._boolean()
    parser.finish()
    return condition
