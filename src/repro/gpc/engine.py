"""The GPC query engine: restrictors, queries, joins (Section 5).

:class:`Evaluator` ties everything together:

- patterns are evaluated by the bounded compositional evaluator
  (:mod:`repro.gpc.semantics`);
- the ``trail`` and ``simple`` restrictors supply the Lemma 16 length
  bounds ``|E_d| + |E_u|`` and ``|N|`` and filter accordingly;
- ``shortest`` keeps, per endpoint pair, only the answers whose
  witnessing path has minimum length. When the pattern's maximum match
  length is unbounded, the engine runs *iterative deepening* seeded and
  cut off by the condition-free regular abstraction
  (:mod:`repro.automata.gpc_abstraction`): the abstraction's accepted
  pairs over-approximate the truly matchable pairs, so deepening stops
  as soon as every candidate pair has been found (or refuted at the
  configured cap);
- queries are restricted patterns, optionally named (``x = r p``), and
  joins combine answers by unifying assignments (the type system
  guarantees only singleton variables are shared).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationLimitError, RestrictorError
from repro.obs.counters import active_counters
from repro.obs.deadline import check_deadline
from repro.graph.ids import DirectedEdgeId, NodeId, UndirectedEdgeId
from repro.graph.paths import is_simple, is_trail
from repro.graph.property_graph import PropertyGraph
from repro.graph.snapshot import GraphSnapshot
from repro.gpc import ast
from repro.gpc.answers import Answer
from repro.gpc.collect import CollectMode
from repro.gpc.minlength import max_path_length, validate_approach1
from repro.gpc.planner import (
    PlanEstimates,
    ShortestPlan,
    estimate_plan,
    estimate_query_cardinality,
    explain_plan,
    join_shared_variables,
    plan_shortest,
)
from repro.gpc.analysis import QueryAnalysis, analyze_query, render_diagnostics
from repro.gpc.semantics import BoundedEvaluator, Match, _Limits
from repro.gpc.typing import infer_schema
from repro.gpc.abstraction import compile_pattern_abstraction
from repro.automata.nfa import NFA
from repro.gpc.register_nfa import (
    RegisterNFA,
    UnsupportedPattern,
    compile_dense_program,
    compile_flat_program,
    compile_register_nfa,
    dense_shortest_pair_lengths,
    enumerate_exact_length_walks,
    flat_shortest_pair_lengths,
    shortest_pair_lengths,
)
from repro.automata.product import pairs_and_distances

__all__ = ["EngineConfig", "Evaluator", "QueryPlan", "evaluate", "CollectMode"]


@dataclass(frozen=True)
class EngineConfig:
    """Engine knobs.

    ``collect_mode``
        Which of the paper's three ``collect`` approaches to use
        (Section 5); GROUPING (Approach 3) is the paper's default.
    ``max_pattern_length``
        Optional override for the length bound used when evaluating a
        bare pattern without a restrictor (needed because unrestricted
        denotations may be infinite).
    ``shortest_deepening_limit``
        Hard ceiling for iterative deepening under ``shortest``. When
        candidate endpoint pairs remain unresolved at this length, the
        engine raises :class:`~repro.errors.EvaluationLimitError`
        rather than silently dropping potentially valid answers
        (set ``lenient_shortest=True`` to accept the approximation).
    ``automaton_state_limit``
        Cap on abstraction-automaton size (repetition bounds unroll).
    ``max_intermediate_results`` / ``max_power_iterations``
        Resource fail-safes for the bounded evaluator.
    ``use_planner``
        Enables the cost-aware optimisations from
        :mod:`repro.gpc.planner` (hash joins, cardinality-ordered join
        sides, endpoint-pruned ``shortest`` starts). All of them are
        answer-preserving; the flag exists so benchmarks and
        differential tests can compare against naive evaluation.
    ``use_pushdown``
        Enables predicate pushdown in the ``shortest`` register
        compiler: ``x.key = const`` atoms move from final CHECK ops to
        the bind/step sites of ``x`` (bitmask probes over the columnar
        core), and fully register-free programs run on the flat-array
        fast lane. Answer-preserving by construction; the flag exists
        for differential testing and A/B benchmarks.
    ``use_analysis``
        Enables the static analyzer (:mod:`repro.gpc.analysis`):
        queries it proves empty short-circuit to the empty answer set
        without touching the snapshot, and otherwise the simplified
        query (constant-folded conditions, pruned dead union branches)
        is evaluated in place of the original. Answer-preserving —
        gated by a hypothesis differential suite; the flag exists for
        that suite and A/B benchmarks.
    """

    collect_mode: CollectMode = CollectMode.GROUPING
    max_pattern_length: int | None = None
    shortest_deepening_limit: int = 4096
    lenient_shortest: bool = False
    automaton_state_limit: int = 100_000
    max_intermediate_results: int = 2_000_000
    max_power_iterations: int = 10_000
    use_planner: bool = True
    use_pushdown: bool = True
    use_analysis: bool = True


DEFAULT_CONFIG = EngineConfig()


class QueryPlan:
    """Graph-independent compiled artifacts for queries.

    A plan memoises everything about a query that does *not* depend on
    the graph: schema inference (type checking), register-NFA
    compilation for ``shortest`` evaluation, and the condition-free
    regular abstraction used by the deepening fallback. Plans are the
    reuse unit of prepared queries (:mod:`repro.service`): compile
    once, execute against any graph or graph version.

    Compilation is lazy (first use memoises) unless :meth:`precompile`
    is called; after precompilation the plan is effectively read-only
    and safe to share across threads.
    """

    def __init__(self, config: EngineConfig | None = None):
        self.config = config or DEFAULT_CONFIG
        #: ``None`` records that the register compiler rejected the
        #: pattern, so the fallback is chosen without recompiling.
        self._register_nfas: dict[ast.Pattern, RegisterNFA | None] = {}
        self._abstractions: dict[ast.Pattern, NFA] = {}
        self._typechecked: set[ast.Expression] = set()
        self._join_variables: dict[ast.Join, tuple[str, ...]] = {}
        self._shortest_plans: dict[ast.Pattern, ShortestPlan] = {}
        #: ``(query, snapshot version)`` → :class:`PlanEstimates`;
        #: bounded (estimates are cheap to recompute) and keyed by
        #: version because cardinalities shift with the graph.
        self._estimates: dict[tuple, PlanEstimates] = {}

    def ensure_typechecked(self, expression: ast.Expression) -> None:
        """Run ``infer_schema`` once per expression (raises on error)."""
        if expression not in self._typechecked:
            infer_schema(expression)
            self._typechecked.add(expression)

    def analysis(self, query: ast.Query) -> QueryAnalysis:
        """The static analyzer's verdict for ``query``, memoised at
        module level (see :func:`repro.gpc.analysis.analyze_query` —
        verdicts are pure in the immutable AST, so plans share them).
        Computed on demand regardless of ``config.use_analysis``: lint
        and explain always report diagnostics, the flag only gates
        whether the *evaluator* acts on the verdict."""
        self.ensure_typechecked(query)
        return analyze_query(query)

    def provably_empty(self, query: ast.Query) -> bool:
        """Whether the analyzer proved the query empty on every graph."""
        return self.analysis(query).provably_empty

    def diagnostics(self, query: ast.Query):
        """The analyzer's :class:`~repro.gpc.analysis.Diagnostic`
        records for ``query``."""
        return self.analysis(query).diagnostics

    def register_nfa(self, pattern: ast.Pattern) -> RegisterNFA | None:
        """The pattern's register NFA, or ``None`` if unsupported."""
        if pattern not in self._register_nfas:
            try:
                rnfa = compile_register_nfa(
                    pattern,
                    state_limit=self.config.automaton_state_limit,
                    pushdown=self.config.use_pushdown,
                )
            except UnsupportedPattern:
                rnfa = None
            self._register_nfas[pattern] = rnfa
        return self._register_nfas[pattern]

    def abstraction(self, pattern: ast.Pattern) -> NFA:
        """The pattern's condition-free regular abstraction."""
        if pattern not in self._abstractions:
            self._abstractions[pattern] = compile_pattern_abstraction(
                pattern, state_limit=self.config.automaton_state_limit
            )
        return self._abstractions[pattern]

    def join_variables(self, join: ast.Join) -> tuple[str, ...]:
        """The join's shared singleton variables (hash-join keys)."""
        if join not in self._join_variables:
            self._join_variables[join] = join_shared_variables(join)
        return self._join_variables[join]

    def shortest_plan(self, pattern: ast.Pattern) -> ShortestPlan:
        """Endpoint-pruning constraints for a ``shortest`` pattern."""
        if pattern not in self._shortest_plans:
            self._shortest_plans[pattern] = plan_shortest(pattern)
        return self._shortest_plans[pattern]

    def estimates(self, query: ast.Query, view) -> PlanEstimates:
        """The planner's :class:`PlanEstimates` for ``query`` over
        ``view`` (a snapshot or graph), memoised per graph version."""
        key = (query, getattr(view, "version", None))
        found = self._estimates.get(key)
        if found is None:
            if len(self._estimates) >= 8:
                self._estimates.clear()
            found = estimate_plan(query, view, plan=self)
            self._estimates[key] = found
        return found

    def explain(self, query: ast.Query, graph=None) -> str:
        """Human-readable summary of the strategies chosen for
        ``query`` (see :func:`repro.gpc.planner.explain_plan`); pass a
        graph or snapshot to include cardinality estimates."""
        self.ensure_typechecked(query)
        view = (
            graph.snapshot()
            if graph is not None and hasattr(graph, "snapshot")
            else graph
        )
        report = explain_plan(query, view, plan=self)
        analysis = self.analysis(query)
        if analysis.provably_empty and self.config.use_analysis:
            report += (
                "\nanalysis: provably empty — evaluation short-circuits"
                " to the empty answer set"
            )
        return report + "\n" + render_diagnostics(analysis.diagnostics)

    def precompile(self, query: ast.Query) -> None:
        """Typecheck and compile every automaton the query can need."""
        self.ensure_typechecked(query)
        target = query
        if self.config.use_analysis:
            # Just typechecked above: call the memoised analyzer
            # directly rather than paying analysis()'s re-check.
            analysis = analyze_query(query)
            if analysis.provably_empty:
                # The evaluator never touches the snapshot (or any
                # automaton) for a proven-empty query.
                return
            if analysis.simplified is not query:
                self.ensure_typechecked(analysis.simplified)
                target = analysis.simplified
        for pattern_query in self._pattern_queries(target):
            restrictor = pattern_query.restrictor
            if restrictor.shortest and restrictor.mode is None:
                self.shortest_plan(pattern_query.pattern)
                if self.register_nfa(pattern_query.pattern) is None:
                    # Fallback path: the abstraction is only consulted
                    # when the pattern's length is syntactically
                    # unbounded, but compiling it is cheap and keeps
                    # execution compile-free.
                    if max_path_length(pattern_query.pattern) is None:
                        self.abstraction(pattern_query.pattern)

    def _pattern_queries(self, query: ast.Query):
        stack = [query]
        while stack:
            current = stack.pop()
            if isinstance(current, ast.PatternQuery):
                yield current
            elif isinstance(current, ast.Join):
                self.join_variables(current)
                stack.extend((current.left, current.right))


class Evaluator:
    """Evaluates GPC queries over a fixed property graph.

    The evaluator works against an immutable :class:`GraphSnapshot` of
    the graph taken at construction time (memoised per version by
    :meth:`PropertyGraph.snapshot`), so its hot paths read pre-built
    tuple indexes instead of re-freezing adjacency sets. Mutations made
    to the graph after construction are not observed — build a new
    evaluator (or use :class:`repro.service.GraphService`, which does
    so automatically).
    """

    def __init__(
        self,
        graph: PropertyGraph | GraphSnapshot,
        config: EngineConfig | None = None,
        plan: QueryPlan | None = None,
    ):
        self.graph = graph
        if config is not None and plan is not None and plan.config != config:
            raise ValueError(
                f"Evaluator config {config!r} disagrees with the plan's "
                f"compile-time config {plan.config!r}; the plan's automata "
                f"were compiled under its own limits, so mixing the two "
                f"would silently apply inconsistent settings. Pass only "
                f"one of them, or make them equal."
            )
        if config is None:
            config = plan.config if plan is not None else DEFAULT_CONFIG
        self.config = config
        self.plan = plan if plan is not None else QueryPlan(config)
        self._view = graph.snapshot() if hasattr(graph, "snapshot") else graph
        limits = _Limits(
            max_intermediate_results=self.config.max_intermediate_results,
            max_power_iterations=self.config.max_power_iterations,
        )
        self._bounded = BoundedEvaluator(
            self._view, collect_mode=self.config.collect_mode, limits=limits
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: ast.Query,
        *,
        typecheck: bool = True,
        start_restriction: "frozenset[NodeId] | None" = None,
    ) -> frozenset[Answer]:
        """Compute ``[[Q]]_G`` — always finite (Theorem 10).

        ``typecheck=False`` skips the upfront schema inference; only
        pass it for queries already checked (e.g. by a prepared query's
        plan).

        ``start_restriction`` restricts evaluation to the answers whose
        *first* path starts at one of the given nodes — for a join,
        that is the leftmost pattern query, whose path is always
        ``answer.paths[0]``. The restriction is applied natively (the
        ``shortest`` register search is seeded only from restricted
        nodes; bounded evaluation fuses the membership test into its
        restrictor filters), so

        ``evaluate(q, start_restriction=R)
          == {a in evaluate(q) : a.paths[0].src in R}``

        and evaluating a query once per cell of a partition of the
        node set unions losslessly to the full answer set. This is the
        scatter/gather seam used by :mod:`repro.cluster`.
        """
        if typecheck:
            self.plan.ensure_typechecked(query)
        restriction = (
            None if start_restriction is None else frozenset(start_restriction)
        )
        if self.config.use_analysis and isinstance(
            query, (ast.PatternQuery, ast.Join)
        ):
            analysis = self.plan.analysis(query)
            counters = active_counters()
            if analysis.provably_empty:
                # Short-circuit without touching the snapshot — but the
                # original query must still surface the validation
                # errors full evaluation would have raised (the same
                # principle as _eval_join's skipped-side handling:
                # query validity must not become analysis-dependent).
                for pattern_query in self.plan._pattern_queries(query):
                    self._validate_collect(pattern_query.pattern)
                if counters is not None:
                    counters.queries_proven_empty += 1
                return frozenset()
            if analysis.simplified is not query:
                if counters is not None:
                    counters.conditions_simplified += (
                        analysis.conditions_simplified
                    )
                    counters.dead_branches_pruned += (
                        analysis.dead_branches_pruned
                    )
                # Validate the original's collects before substituting:
                # a pruned branch may contain the construct SYNTACTIC
                # mode rejects.
                for pattern_query in self.plan._pattern_queries(query):
                    self._validate_collect(pattern_query.pattern)
                self.plan.ensure_typechecked(analysis.simplified)
                query = analysis.simplified
        return self._eval_query(query, restriction)

    def eval_pattern(
        self, pattern: ast.Pattern, max_length: int | None = None
    ) -> frozenset[Match]:
        """Bounded pattern denotation ``{(p, mu) : len(p) <= L}``.

        Patterns alone have no restrictor; a length bound must come
        from the caller or :attr:`EngineConfig.max_pattern_length`.
        When neither is given, the trail bound ``|E|`` is used (every
        longer path repeats an edge).
        """
        self.plan.ensure_typechecked(pattern)
        self._validate_collect(pattern)
        if max_length is None:
            max_length = self.config.max_pattern_length
        if max_length is None:
            max_length = self._view.num_edges
        return self._bounded.evaluate(pattern, max_length)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _eval_query(
        self,
        query: ast.Query,
        restriction: frozenset[NodeId] | None = None,
    ) -> frozenset[Answer]:
        if isinstance(query, ast.PatternQuery):
            matches = self._eval_restricted(
                query.restrictor, query.pattern, restriction
            )
            out = []
            for path, mu in matches:
                if query.name is not None:
                    mu = mu.bind(query.name, path)
                out.append(Answer((path,), mu))
            return frozenset(out)
        if isinstance(query, ast.Join):
            return self._eval_join(query, restriction)
        raise TypeError(f"not a query: {query!r}")

    def _eval_join(
        self,
        query: ast.Join,
        restriction: frozenset[NodeId] | None = None,
    ) -> frozenset[Answer]:
        """Join two answer sets.

        With the planner enabled, the side with the smaller estimated
        cardinality is evaluated first (an empty result short-circuits
        the other side entirely) and the sides are hash-joined on their
        shared singleton variables. Without it, this is the naive
        nested-loop product. Both produce identical answer sets:
        answers combine iff they agree on the shared variables, which
        is exactly bucket equality.

        A start restriction always flows into the *left* side: combined
        path tuples concatenate left-to-right, so ``paths[0]`` — the
        path the restriction is defined over — comes from the leftmost
        pattern query regardless of which side is evaluated first.
        """
        if not self.config.use_planner:
            left = self._eval_query(query.left, restriction)
            right = self._eval_query(query.right)
            return _nested_loop_join(left, right)
        left_estimate = estimate_query_cardinality(
            query.left, self._view, self.plan
        )
        right_estimate = estimate_query_cardinality(
            query.right, self._view, self.plan
        )
        left_first = left_estimate <= right_estimate
        first = self._eval_query(
            query.left if left_first else query.right,
            restriction if left_first else None,
        )
        if not first:
            # The join is empty regardless of the other side — but the
            # skipped side must still surface the validation errors
            # naive evaluation would have raised (e.g. CollectError
            # under Approach 1), or query validity becomes
            # data-dependent.
            skipped = query.right if left_first else query.left
            for pattern_query in self.plan._pattern_queries(skipped):
                self._validate_collect(pattern_query.pattern)
            return frozenset()
        second = self._eval_query(
            query.right if left_first else query.left,
            None if left_first else restriction,
        )
        left, right = (first, second) if left_first else (second, first)
        return _hash_join(
            left, right, self.plan.join_variables(query), self._view
        )

    # ------------------------------------------------------------------
    # Restrictors
    # ------------------------------------------------------------------

    def _eval_restricted(
        self,
        restrictor: ast.Restrictor,
        pattern: ast.Pattern,
        restriction: frozenset[NodeId] | None = None,
    ) -> frozenset[Match]:
        self._validate_collect(pattern)
        check_deadline()
        if restrictor.mode == "trail":
            bound = self._view.num_edges
            matches = frozenset(
                m
                for m in self._bounded.evaluate(pattern, bound)
                if (restriction is None or m[0].src in restriction)
                and is_trail(m[0])
            )
        elif restrictor.mode == "simple":
            bound = self._view.num_nodes
            matches = frozenset(
                m
                for m in self._bounded.evaluate(pattern, bound)
                if (restriction is None or m[0].src in restriction)
                and is_simple(m[0])
            )
        else:
            matches = None
        if not restrictor.shortest:
            if matches is None:
                raise RestrictorError(f"invalid restrictor {restrictor!r}")
            return matches
        if matches is not None:
            # shortest trail / shortest simple: minimise within the
            # already-finite filtered set. Filtering by source first is
            # safe: minima are taken per (src, tgt) pair, so dropping
            # whole pairs never changes the minimum of a kept pair.
            return _keep_shortest(matches)
        return self._eval_shortest(pattern, restriction)

    def _eval_shortest(
        self,
        pattern: ast.Pattern,
        restriction: frozenset[NodeId] | None = None,
    ) -> frozenset[Match]:
        """``shortest pi`` with no trail/simple underneath.

        The main route compiles the pattern to a register NFA
        (:mod:`repro.gpc.register_nfa`), computes the *exact* minimum
        match length per endpoint pair, and materialises only the
        witnesses of that length. Patterns using extension constructs
        without register compilation fall back to bounded iterative
        deepening.
        """
        rnfa = self.plan.register_nfa(pattern)
        if rnfa is None:
            return self._eval_shortest_fallback(pattern, restriction)
        from repro.enumeration.span_matcher import match_on_path

        limit = self.config.shortest_deepening_limit
        answers: set[Match] = set()
        counters = active_counters()
        starts, end_filter = self._shortest_candidates(pattern, restriction)
        view = self._view
        # Columnar snapshots get the dense-id search: the register
        # program is lowered onto the snapshot's interning tables once
        # and shared across every seed. When pushdown left the program
        # register-free and the snapshot is pristine, the flat-array
        # lane replaces the dict-state search entirely.
        use_dense = isinstance(view, GraphSnapshot)
        program = compile_dense_program(rnfa, view) if use_dense else None
        flat = (
            compile_flat_program(rnfa, view)
            if use_dense and self.config.use_pushdown
            else None
        )
        if counters is not None:
            counters.conditions_pushed += rnfa.pushed_atoms
        for start in starts:
            # The per-seed search dominates shortest evaluation, so the
            # request deadline is checked once per seed.
            check_deadline()
            if flat is not None:
                best = flat_shortest_pair_lengths(view, flat, start)
            elif use_dense:
                best = dense_shortest_pair_lengths(
                    view, rnfa, start, program=program
                )
            else:
                best = shortest_pair_lengths(view, rnfa, start)
            for end in sorted(best):
                if end_filter is not None and end not in end_filter:
                    continue
                length = best[end]
                # The register search can under-estimate in one corner:
                # an accepted run whose every factorization fails
                # collect unification. Probe upward until a witness
                # with a defined assignment appears.
                while True:
                    if counters is not None:
                        counters.deepening_rounds += 1
                    check_deadline()
                    found = False
                    for witness in enumerate_exact_length_walks(
                        self._view, rnfa, start, end, length
                    ):
                        for mu in match_on_path(
                            pattern, witness, self._view,
                            self.config.collect_mode,
                        ):
                            answers.add((witness, mu))
                            found = True
                    if found:
                        break
                    length += 1
                    if length > limit:
                        if self.config.lenient_shortest:
                            break
                        raise EvaluationLimitError(
                            f"shortest: no collectible witness for pair "
                            f"({start!r}, {end!r}) up to length {limit}; "
                            f"raise EngineConfig.shortest_deepening_limit "
                            f"or set lenient_shortest=True"
                        )
        return frozenset(answers)

    def _shortest_candidates(
        self,
        pattern: ast.Pattern,
        restriction: frozenset[NodeId] | None = None,
    ):
        """Start nodes to seed the register search from, and an
        optional end-node filter.

        Every match starts (ends) at a node satisfying the pattern's
        leading (trailing) constraints, so restricting the search to
        the planner's candidates drops no answers. Snapshot carriers
        are pre-sorted tuples — iterate them directly instead of
        re-sorting per query. A caller-supplied start restriction
        intersects the candidate starts, so every per-start register
        search outside the restriction is skipped entirely — this is
        what makes partitioned scatter/gather evaluation do ``1/K`` of
        the work per shard rather than filtering full answer sets.
        """
        if self.config.use_planner:
            shortest_plan = self.plan.shortest_plan(pattern)
            starts = shortest_plan.start.candidate_nodes(self._view)
            ends = shortest_plan.end.candidate_nodes(self._view)
            if starts is not None:
                counters = active_counters()
                if counters is not None:
                    counters.seeds_pruned += self._view.num_nodes - len(starts)
        else:
            starts = ends = None
        if starts is None:
            nodes = self._view.nodes
            starts = nodes if isinstance(nodes, tuple) else tuple(sorted(nodes))
        if restriction is not None:
            # ``starts`` is already sorted; filtering preserves order.
            starts = tuple(n for n in starts if n in restriction)
        return starts, (None if ends is None else frozenset(ends))

    def _eval_shortest_fallback(
        self,
        pattern: ast.Pattern,
        restriction: frozenset[NodeId] | None = None,
    ) -> frozenset[Match]:
        """Bounded-evaluation fallback for extension patterns."""
        syntactic_max = max_path_length(pattern)
        if syntactic_max is not None:
            # Bounded pattern: evaluate exactly and minimise.
            return _keep_shortest(
                _restrict_sources(
                    self._bounded.evaluate(pattern, syntactic_max), restriction
                )
            )
        # Unbounded: iterative deepening guided by the regular abstraction.
        nfa = self.plan.abstraction(pattern)
        candidates = pairs_and_distances(self._view, nfa)
        if restriction is not None:
            # Deepening only needs to resolve pairs whose source is in
            # the restriction; the rest can never contribute answers.
            candidates = {
                pair: dist
                for pair, dist in candidates.items()
                if pair[0] in restriction
            }
        if not candidates:
            return frozenset()
        limit = self.config.shortest_deepening_limit
        # Start at the *smallest* lower bound and deepen geometrically:
        # most pairs resolve early, and evaluating at unnecessarily
        # large bounds explodes (answer sets grow exponentially with
        # the length horizon — Theorem 13).
        length = max(1, min(candidates.values()))
        counters = active_counters()
        while True:
            if counters is not None:
                counters.deepening_rounds += 1
            check_deadline()
            results = self._bounded.evaluate(pattern, length)
            found_pairs = {(m[0].src, m[0].tgt) for m in results}
            remaining = set(candidates) - found_pairs
            if not remaining:
                return _keep_shortest(_restrict_sources(results, restriction))
            if length >= limit:
                if self.config.lenient_shortest:
                    return _keep_shortest(
                        _restrict_sources(results, restriction)
                    )
                raise EvaluationLimitError(
                    f"shortest: {len(remaining)} candidate endpoint pair(s) "
                    f"unresolved at deepening limit {limit}; they may be "
                    f"unmatchable (conditions pruned the abstraction) or "
                    f"require longer paths. Raise "
                    f"EngineConfig.shortest_deepening_limit or set "
                    f"lenient_shortest=True."
                )
            length = min(length * 2, limit)

    def _validate_collect(self, pattern: ast.Pattern) -> None:
        if self.config.collect_mode is CollectMode.SYNTACTIC:
            validate_approach1(pattern)


def _nested_loop_join(
    left: frozenset[Answer], right: frozenset[Answer]
) -> frozenset[Answer]:
    """Combine every left/right pair whose assignments unify."""
    counters = active_counters()
    if counters is not None:
        counters.join_build_rows += len(left)
        counters.join_probe_rows += len(left) * len(right)
    out = []
    for left_answer in left:
        for right_answer in right:
            combined = left_answer.combine(right_answer)
            if combined is not None:
                out.append(combined)
    return frozenset(out)


_ELEMENT_IDS = (NodeId, DirectedEdgeId, UndirectedEdgeId)


def _hash_join(
    left: frozenset[Answer],
    right: frozenset[Answer],
    shared: tuple[str, ...],
    view: object | None = None,
) -> frozenset[Answer]:
    """Combine two answer sets, bucketing on the shared variables.

    The hash table is built on the smaller side; path-tuple order in
    the combined answers always follows the query's left-to-right join
    order, so the result is identical to the nested loop's. Over a
    columnar snapshot, element-id key components are replaced by their
    interned dense ints — hashing a few small ints per row instead of
    ``_Id`` wrappers. The mapping is deterministic per snapshot (equal
    elements always get equal keys) and any accidental bucket collision
    is filtered by ``combine()``'s full re-unification.
    """
    if not left or not right:
        return frozenset()
    if not shared:
        # Disjoint schemas: the join is a plain cross product.
        return _nested_loop_join(left, right)
    dense_key = (
        view.dense_key if isinstance(view, GraphSnapshot) else None
    )
    if dense_key is None:

        def key_of(answer: Answer) -> tuple:
            return tuple(answer.assignment.get(v) for v in shared)

    else:

        def key_of(answer: Answer) -> tuple:
            get = answer.assignment.get
            return tuple(
                dense_key(value)
                if isinstance(value, _ELEMENT_IDS)
                else value
                for value in (get(v) for v in shared)
            )

    if len(left) <= len(right):
        build, probe, build_is_left = left, right, True
    else:
        build, probe, build_is_left = right, left, False
    counters = active_counters()
    if counters is not None:
        counters.join_build_rows += len(build)
        counters.join_probe_rows += len(probe)
    buckets: dict[tuple, list[Answer]] = {}
    for answer in build:
        buckets.setdefault(key_of(answer), []).append(answer)
    out = []
    for answer in probe:
        for mate in buckets.get(key_of(answer), ()):
            combined = (
                mate.combine(answer) if build_is_left else answer.combine(mate)
            )
            if combined is not None:
                out.append(combined)
    return frozenset(out)


def _restrict_sources(
    matches: frozenset[Match], restriction: frozenset[NodeId] | None
) -> frozenset[Match]:
    """Drop matches whose path starts outside the restriction."""
    if restriction is None:
        return matches
    return frozenset(m for m in matches if m[0].src in restriction)


def _keep_shortest(matches: frozenset[Match]) -> frozenset[Match]:
    """Keep, per endpoint pair, the answers of minimum path length."""
    minima: dict[tuple[NodeId, NodeId], int] = {}
    for path, _ in matches:
        key = (path.src, path.tgt)
        length = len(path)
        if key not in minima or length < minima[key]:
            minima[key] = length
    return frozenset(
        (path, mu)
        for path, mu in matches
        if len(path) == minima[(path.src, path.tgt)]
    )


def evaluate(
    query: ast.Query,
    graph: PropertyGraph,
    config: EngineConfig | None = None,
) -> frozenset[Answer]:
    """Convenience one-shot evaluation of a query over a graph."""
    return Evaluator(graph, config).evaluate(query)
