"""GPC+ — GPC closed under projection and top-level union (Section 6).

A GPC+ query is a set of rules::

    Ans(x1, ..., xk) :- Q1
    ...
    Ans(x1, ..., xk) :- Qn

where each ``Qi`` is a GPC query containing all head variables. Its
answer is the union over rules of the projections ``mu(x-bar)``.

This is the fragment Theorem 11 works with: it expresses UC2RPQs,
nested regular expressions, and regular queries (see
:mod:`repro.translate` for the constructive translations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GPCTypeError
from repro.graph.property_graph import PropertyGraph
from repro.gpc import ast
from repro.gpc.answers import project
from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.typing import infer_schema
from repro.gpc.values import Value

__all__ = ["Rule", "GPCPlusQuery"]


@dataclass(frozen=True)
class Rule:
    """One rule ``Ans(head) :- query``."""

    head: tuple[str, ...]
    query: ast.Query

    def __post_init__(self) -> None:
        schema = infer_schema(self.query)
        for variable in self.head:
            if variable not in schema:
                raise GPCTypeError(
                    f"head variable {variable!r} does not occur in the rule body"
                )


@dataclass(frozen=True)
class GPCPlusQuery:
    """A union of projection rules with a common head arity."""

    rules: tuple[Rule, ...]

    def __post_init__(self) -> None:
        if not self.rules:
            raise GPCTypeError("a GPC+ query needs at least one rule")
        arities = {len(rule.head) for rule in self.rules}
        if len(arities) != 1:
            raise GPCTypeError(
                f"all rules must share the head arity; found {sorted(arities)}"
            )

    @property
    def arity(self) -> int:
        return len(self.rules[0].head)

    def evaluate(
        self, graph: PropertyGraph, config: EngineConfig | None = None
    ) -> frozenset[tuple[Value, ...]]:
        """The union of the per-rule projections."""
        out: set[tuple[Value, ...]] = set()
        evaluator = Evaluator(graph, config)
        for rule in self.rules:
            answers = evaluator.evaluate(rule.query)
            out.update(project(answers, rule.head))
        return frozenset(out)


def single_rule(head: tuple[str, ...], query: ast.Query) -> GPCPlusQuery:
    """Convenience constructor for one-rule GPC+ queries."""
    return GPCPlusQuery((Rule(head, query),))
