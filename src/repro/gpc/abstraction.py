"""The condition-free regular abstraction of GPC patterns.

Dropping conditions and variable bindings from a GPC pattern leaves a
regular language of traversal steps. The abstraction *over-approximates*
the pattern: every true match is an accepted product path, so

- the set of endpoint pairs accepted by the product is a superset of
  the truly matchable pairs, and
- the minimum accepted length per pair is a lower bound on the true
  minimum match length.

The engine uses both facts to make the ``shortest`` restrictor
terminate quickly (Section 5 semantics, Lemma 16(c) bound).

Repetition bounds are unrolled exactly (``pi{n..m}`` becomes ``n``
copies plus ``m - n`` optional copies, or a star when unbounded), with
the builder's state cap guarding against pathological binary bounds.
"""

from __future__ import annotations

from repro.gpc import ast
from repro.automata.nfa import EdgeStep, NFA, NFABuilder, NodeTest

__all__ = ["compile_pattern_abstraction"]


def compile_pattern_abstraction(
    pattern: ast.Pattern, state_limit: int = 100_000
) -> NFA:
    """Compile the condition-free abstraction of ``pattern``."""
    builder = NFABuilder(state_limit=state_limit)
    start, end = _compile(pattern, builder)
    return builder.build(start, {end})


def _compile(pattern: ast.Pattern, builder: NFABuilder) -> tuple[int, int]:
    if isinstance(pattern, ast.NodePattern):
        start = builder.new_state()
        end = builder.new_state()
        if pattern.label is None:
            builder.add_epsilon(start, end)
        else:
            builder.add_node_test(start, NodeTest(pattern.label), end)
        return start, end
    if isinstance(pattern, ast.EdgePattern):
        start = builder.new_state()
        end = builder.new_state()
        builder.add_edge_step(
            start, EdgeStep(pattern.direction, pattern.label), end
        )
        return start, end
    if isinstance(pattern, ast.Concat):
        left_start, left_end = _compile(pattern.left, builder)
        right_start, right_end = _compile(pattern.right, builder)
        builder.add_epsilon(left_end, right_start)
        return left_start, right_end
    if isinstance(pattern, ast.Union):
        start = builder.new_state()
        end = builder.new_state()
        for branch in (pattern.left, pattern.right):
            b_start, b_end = _compile(branch, builder)
            builder.add_epsilon(start, b_start)
            builder.add_epsilon(b_end, end)
        return start, end
    if isinstance(pattern, ast.Conditioned):
        # Conditions are dropped: this is what makes it an abstraction.
        return _compile(pattern.pattern, builder)
    if isinstance(pattern, ast.Repeat):
        return _compile_repeat(pattern, builder)
    if isinstance(pattern, ast.PatternExtension):
        return pattern.compile_abstraction_ext(
            builder, lambda child: _compile(child, builder)
        )
    raise TypeError(f"not a pattern: {pattern!r}")


def _compile_repeat(pattern: ast.Repeat, builder: NFABuilder) -> tuple[int, int]:
    start = builder.new_state()
    current = start
    # Mandatory copies.
    for _ in range(pattern.lower):
        body_start, body_end = _compile(pattern.pattern, builder)
        builder.add_epsilon(current, body_start)
        current = body_end
    end = builder.new_state()
    if pattern.upper is None:
        # Unbounded tail: a star of the body.
        body_start, body_end = _compile(pattern.pattern, builder)
        builder.add_epsilon(current, body_start)
        builder.add_epsilon(body_end, current)
        builder.add_epsilon(current, end)
    else:
        # (upper - lower) optional copies.
        builder.add_epsilon(current, end)
        for _ in range(pattern.upper - pattern.lower):
            body_start, body_end = _compile(pattern.pattern, builder)
            builder.add_epsilon(current, body_start)
            builder.add_epsilon(body_end, end)
            current = body_end
    return start, end
