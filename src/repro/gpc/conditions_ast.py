"""Condition syntax (the ``theta`` production of Figure 1).

Atomic conditions compare a property of a singleton variable with a
constant (``x.a = c``) or with another property (``x.a = y.b``);
conditions are closed under ``and``, ``or`` and ``not``.

The classes here are pure syntax. Typing lives in
:mod:`repro.gpc.typing`; satisfaction (``mu |= theta``) lives in
:mod:`repro.gpc.conditions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Union as TUnion

__all__ = [
    "Condition",
    "PropertyEqualsConst",
    "PropertyEqualsProperty",
    "And",
    "Or",
    "Not",
    "condition_variables",
    "iter_atoms",
]


@dataclass(frozen=True)
class PropertyEqualsConst:
    """``x.key = constant``."""

    variable: str
    key: str
    constant: Hashable

    def __str__(self) -> str:
        return f"{self.variable}.{self.key} = {self.constant!r}"


@dataclass(frozen=True)
class PropertyEqualsProperty:
    """``x.key = y.key2``."""

    left_variable: str
    left_key: str
    right_variable: str
    right_key: str

    def __str__(self) -> str:
        return (
            f"{self.left_variable}.{self.left_key} = "
            f"{self.right_variable}.{self.right_key}"
        )


@dataclass(frozen=True)
class And:
    """Conjunction ``theta1 and theta2``."""

    left: "Condition"
    right: "Condition"

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or:
    """Disjunction ``theta1 or theta2``."""

    left: "Condition"
    right: "Condition"

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not:
    """Negation ``not theta``.

    Note the paper's semantics: ``mu |= not theta`` iff ``mu |/= theta``,
    so negating a comparison over an *undefined* property yields true.
    """

    inner: "Condition"

    def __str__(self) -> str:
        return f"(NOT {self.inner})"


Condition = TUnion[PropertyEqualsConst, PropertyEqualsProperty, And, Or, Not]


def condition_variables(condition: Condition) -> frozenset[str]:
    """All variables mentioned in ``condition``."""
    out: set[str] = set()
    for atom in iter_atoms(condition):
        if isinstance(atom, PropertyEqualsConst):
            out.add(atom.variable)
        else:
            out.add(atom.left_variable)
            out.add(atom.right_variable)
    return frozenset(out)


def iter_atoms(
    condition: Condition,
) -> Iterator[TUnion[PropertyEqualsConst, PropertyEqualsProperty]]:
    """Iterate over the atomic comparisons of ``condition``."""
    stack: list[Condition] = [condition]
    while stack:
        current = stack.pop()
        if isinstance(current, (PropertyEqualsConst, PropertyEqualsProperty)):
            yield current
        elif isinstance(current, (And, Or)):
            stack.append(current.left)
            stack.append(current.right)
        elif isinstance(current, Not):
            stack.append(current.inner)
        else:
            raise TypeError(f"not a condition: {current!r}")
