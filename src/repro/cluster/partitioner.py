"""Seed partitioning: splitting the start-node space across workers.

Scatter/gather evaluation is sound because the engine's
``start_restriction`` seam is an exact filter on answer start nodes
(:meth:`repro.gpc.engine.Evaluator.evaluate`): for any partition
``R_1 | ... | R_k`` of the node set, the per-cell answer sets are
disjoint and union losslessly to the full answer set. The partitioner's
job is therefore purely about *balance* and *work avoidance*:

- the **seed universe** of a query is the set of nodes its answers can
  possibly start from. The planner's pruned-start analysis
  (:func:`repro.gpc.planner.plan_shortest` — sound for any restrictor,
  not just ``shortest``) bounds it by the leftmost pattern's leading
  label/property constraints, with the snapshot's
  :meth:`~repro.graph.snapshot.GraphSnapshot.label_cardinalities`
  short-circuiting label alternatives that are empty in this version.
  Partitioning the universe instead of the whole node set keeps shards
  balanced even when only a few nodes are viable starts;
- cells are balanced by **degree weight** (``1 + deg(n)``): the work a
  seed node induces — register-NFA searches, trail expansions — grows
  with its adjacency, so classic LPT greedy assignment over degree
  weights evens out wall clock across workers far better than equal
  node counts on skewed graphs.

The partition is deterministic for a given snapshot and query, so the
merged answer set (and every per-shard answer set) is reproducible
across runs and backends.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional, Sequence

from repro.gpc import ast
from repro.gpc.planner import plan_shortest
from repro.graph.ids import NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.snapshot import GraphSnapshot
    from repro.service.prepared import PreparedQuery

__all__ = ["SeedPartitioner", "leftmost_pattern"]


def leftmost_pattern(query: ast.Query) -> ast.Pattern:
    """The pattern whose path becomes ``answer.paths[0]``.

    Join path tuples concatenate left-to-right, so the leftmost pattern
    query — the one the start restriction is defined over — is reached
    by following ``left`` links.
    """
    while isinstance(query, ast.Join):
        query = query.left
    if not isinstance(query, ast.PatternQuery):
        raise TypeError(f"not a query: {query!r}")
    return query.pattern


class SeedPartitioner:
    """Split a query's seed universe into ``num_partitions`` cells.

    Stateless apart from its configuration; one instance can partition
    for any snapshot/query combination and is safe to share.
    """

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise ValueError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        self.num_partitions = num_partitions

    # ------------------------------------------------------------------

    def seed_universe(
        self,
        view: "GraphSnapshot",
        prepared: "Optional[PreparedQuery]" = None,
    ) -> tuple[NodeId, ...]:
        """Every node some answer of the query can start from.

        Without a prepared query this is the whole node carrier. With
        one, the planner's leading-endpoint analysis bounds it: every
        match's source satisfies one of the constraint alternatives
        (the planner's soundness invariant), so nodes outside the
        candidate set can seed no answer and need not be scattered.
        """
        if prepared is None:
            return view.nodes
        pattern = leftmost_pattern(prepared.query)
        # The plan memoises the analysis per pattern; fall back to a
        # direct call for plans that have not seen it yet.
        constraint = prepared.plan.shortest_plan(pattern).start
        if not constraint.constrains:
            return view.nodes
        cards = view.label_cardinalities()
        if all(
            alt.labels
            and min(cards.nodes_with_label(label) for label in alt.labels) == 0
            for alt in constraint.alternatives
        ):
            # Every alternative requires a label with zero members in
            # this version: the universe is empty without a node scan.
            return ()
        candidates = constraint.candidate_nodes(view)
        return view.nodes if candidates is None else candidates

    def shardable(self, prepared: "PreparedQuery") -> bool:
        """Whether seed partitioning can actually *divide* the work.

        Only the bare-``shortest`` register-NFA route evaluates a start
        restriction natively (per-start searches outside the cell are
        skipped). Trail/simple and the shortest fallback run the full
        bounded evaluation and then filter, so K shards would each pay
        the whole cost — K× the CPU for zero division. Those queries
        run as a single unrestricted shard instead.
        """
        query = prepared.query
        while isinstance(query, ast.Join):
            query = query.left
        restrictor = query.restrictor
        if not (restrictor.shortest and restrictor.mode is None):
            return False
        return prepared.plan.register_nfa(query.pattern) is not None

    def partition(
        self,
        view: "GraphSnapshot",
        prepared: "Optional[PreparedQuery]" = None,
    ) -> "tuple[frozenset[NodeId] | None, ...]":
        """Disjoint, covering, degree-balanced cells of the universe.

        Always returns at least one cell (possibly empty) so a scatter
        still runs one task — evaluation-time validation errors must
        surface even when no seed node exists. Empty cells beyond the
        first are dropped: a shard with no seeds does no work. Queries
        the engine cannot restrict natively (see :meth:`shardable`)
        yield the single unrestricted cell ``(None,)``.
        """
        if prepared is not None and not self.shardable(prepared):
            return (None,)
        universe = self.seed_universe(view, prepared)
        cells = self._assign(view, universe)
        non_empty = tuple(cell for cell in cells if cell)
        return non_empty if non_empty else (frozenset(),)

    def _assign(
        self, view: "GraphSnapshot", universe: Sequence[NodeId]
    ) -> list[frozenset[NodeId]]:
        """LPT greedy: heaviest node to the lightest cell, with
        deterministic tie-breaks (cell index, then node order)."""
        count = min(self.num_partitions, max(1, len(universe)))
        # ``num_edges_at`` is CSR offset subtraction on columnar
        # snapshots — no adjacency tuples are materialised to weigh.
        weighted = sorted(
            ((1 + view.num_edges_at(node), node) for node in universe),
            key=lambda pair: (-pair[0], pair[1]),
        )
        heap = [(0, index) for index in range(count)]
        cells: list[set[NodeId]] = [set() for _ in range(count)]
        for weight, node in weighted:
            load, index = heapq.heappop(heap)
            cells[index].add(node)
            heapq.heappush(heap, (load + weight, index))
        return [frozenset(cell) for cell in cells]

    def describe(
        self,
        view: "GraphSnapshot",
        prepared: "Optional[PreparedQuery]" = None,
    ) -> str:
        """One-line summary used by :meth:`ClusterService.explain`."""
        cells = self.partition(view, prepared)
        if cells == (None,):
            return (
                "unsharded (leftmost restrictor is post-filtered; "
                "sharding would duplicate the bounded evaluation)"
            )
        universe = self.seed_universe(view, prepared)
        sizes = ", ".join(str(len(cell)) for cell in cells)
        return (
            f"seed universe {len(universe)}/{view.num_nodes} nodes; "
            f"{len(cells)} shard(s) of sizes [{sizes}]"
        )

    def __repr__(self) -> str:
        return f"SeedPartitioner(num_partitions={self.num_partitions})"
