"""Scatter/gather routing: shard construction, merge, failure surfacing.

The router owns the protocol between :class:`ClusterService` and its
executor backend:

- **scatter**: one :class:`~repro.cluster.backends.ShardCall` per
  partition cell, all against the same immutable snapshot;
- **gather**: shard outcomes are walked *in shard order* and their
  answer frozensets unioned. GPC's set semantics makes the merge
  deterministic regardless of worker scheduling — disjoint seed cells
  yield disjoint answer sets, and frozenset union is order-insensitive
  — so the fixed gather order exists purely to make latency accounting
  and failure reporting reproducible;
- **failure surfacing**: a failing shard never aborts its siblings.
  All outcomes are gathered first (latencies recorded for every shard
  that ran), then a :class:`repro.errors.ClusterError` is raised
  carrying one :class:`ShardFailure` per failed shard with the worker
  tag and original exception.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import ClusterError
from repro.gpc.answers import Answer
from repro.cluster.backends import ShardCall, ShardOutcome
from repro.graph.ids import NodeId
from repro.obs import current_carrier, remaining

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.stats import ClusterStats
    from repro.gpc.engine import EngineConfig

__all__ = ["ShardFailure", "ScatterGatherRouter"]


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard: which cell, which worker, what it raised."""

    shard: int
    worker: str
    error: Exception

    def describe(self) -> str:
        return (
            f"shard {self.shard} on worker {self.worker}: "
            f"{type(self.error).__name__}: {self.error}"
        )


class ScatterGatherRouter:
    """Builds shard calls and merges their outcomes."""

    def __init__(self, stats: "Optional[ClusterStats]" = None):
        self.stats = stats

    def scatter(
        self,
        query,
        config: "EngineConfig",
        cells: Sequence[frozenset[NodeId]],
    ) -> list[ShardCall]:
        """One call per partition cell.

        Each call captures the caller's ambient trace context (as an
        explicit carrier, since contextvars stop at the executor
        boundary) and the remaining request-deadline budget, so shard
        evaluation is traced and deadline-bounded wherever it runs.
        """
        carrier = current_carrier()
        deadline_s = remaining()
        calls = [
            ShardCall(
                query, config, cell, carrier=carrier, deadline_s=deadline_s
            )
            for cell in cells
        ]
        if self.stats is not None:
            self.stats.count(scatters=len(calls))
        return calls

    def gather(self, outcomes: Sequence[ShardOutcome]) -> frozenset[Answer]:
        """Union the shard answers in shard order; raise after the
        full gather when any shard failed."""
        self._record(outcomes)
        failures = [
            ShardFailure(index, outcome.worker, outcome.error)
            for index, outcome in enumerate(outcomes)
            if not outcome.ok
        ]
        if failures:
            raise self.failure_error(failures)
        return frozenset().union(
            *(outcome.result for outcome in outcomes)
        ) if outcomes else frozenset()

    def failure_error(self, failures: Sequence[ShardFailure]) -> ClusterError:
        """A :class:`ClusterError` summarising ``failures``, chained to
        the first original exception."""
        error = ClusterError(
            f"{len(failures)} shard(s) failed: "
            + "; ".join(f.describe() for f in failures),
            failures=failures,
        )
        error.__cause__ = failures[0].error
        return error

    def _record(self, outcomes: Sequence[ShardOutcome]) -> None:
        if self.stats is None:
            return
        failed = 0
        for outcome in outcomes:
            self.stats.record_shard(outcome.worker, outcome.elapsed_s)
            self.stats.engine.merge(outcome.counters)
            if not outcome.ok:
                failed += 1
        if failed:
            self.stats.count(shard_failures=failed)
