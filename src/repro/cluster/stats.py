"""Serving metrics for the sharded cluster runtime.

:class:`ClusterStats` mirrors :class:`~repro.service.stats.ServiceStats`
in spirit but tracks the quantities that matter for scatter/gather
serving: how many shard tasks were scattered, how often snapshots were
shipped to process workers, per-worker latency reservoirs (one
:class:`~repro.service.stats.LatencyRecorder` per worker tag) next to
the aggregate, and shard failure counts. ``as_dict()`` is the metrics
payload, exactly like the single-service stats.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.obs.counters import EvalCounters
from repro.service.stats import CacheStats, LatencyRecorder

__all__ = ["ClusterStats"]


@dataclass
class ClusterStats:
    """Aggregate metrics exposed by :class:`ClusterService.stats`.

    ``latency`` records router-level wall clock per query (scatter +
    evaluate + gather); ``shard_latency`` records in-worker evaluation
    time per shard task, with :attr:`per_worker` breaking the same
    samples down by worker tag (thread name or worker pid).
    """

    plan_cache: CacheStats = field(default_factory=CacheStats)
    result_cache: CacheStats = field(default_factory=CacheStats)
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    shard_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    per_worker: dict[str, LatencyRecorder] = field(default_factory=dict)
    queries: int = 0
    batches: int = 0
    scatters: int = 0
    shard_failures: int = 0
    snapshots_shipped: int = 0
    #: Version advances served by shipping a pickled delta chain to the
    #: warm workers instead of rebuilding the pool with a new snapshot.
    deltas_shipped: int = 0
    #: Router-side snapshot materialisations, with the same meaning as
    #: :attr:`ServiceStats.snapshots_built` / ``snapshots_derived`` —
    #: of the versions snapshotted, how many were derived incrementally.
    snapshots_built: int = 0
    snapshots_derived: int = 0
    #: Cumulative seconds spent interning ids and building (or
    #: patching) CSR snapshot columns, and the CSR adjacency rows
    #: patched copy-on-write by derivations — same meaning as the
    #: :class:`ServiceStats` counters.
    snapshot_build_s: float = 0.0
    csr_rows_patched: int = 0
    #: Aggregate engine work across every shard task (merged from each
    #: outcome's per-shard counters at gather time).
    engine: EvalCounters = field(default_factory=EvalCounters)
    #: The cluster's fingerprint-aggregated workload registry
    #: (:class:`repro.obs.insights.InsightsRegistry`), set by
    #: ``ClusterService``; ``None`` for stats objects built standalone.
    insights: object | None = None
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record_shard(self, worker: str, seconds: float) -> None:
        """Record one completed shard task attributed to ``worker``."""
        self.shard_latency.record(seconds)
        with self._lock:
            recorder = self.per_worker.get(worker)
            if recorder is None:
                recorder = self.per_worker[worker] = LatencyRecorder()
        recorder.record(seconds)

    def count(self, **deltas: float) -> None:
        """Atomically bump the named numeric counters."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def as_dict(self) -> dict[str, object]:
        """A JSON-serialisable flattening of every metric."""
        with self._lock:
            workers = dict(self.per_worker)
        result = {
            "queries": self.queries,
            "batches": self.batches,
            "scatters": self.scatters,
            "shard_failures": self.shard_failures,
            "snapshots_shipped": self.snapshots_shipped,
            "deltas_shipped": self.deltas_shipped,
            "snapshots_built": self.snapshots_built,
            "snapshots_derived": self.snapshots_derived,
            "snapshot_build_s": self.snapshot_build_s,
            "csr_rows_patched": self.csr_rows_patched,
            "plan_cache": self.plan_cache.as_dict(),
            "result_cache": self.result_cache.as_dict(),
            "latency": self.latency.summary(),
            "shard_latency": self.shard_latency.summary(),
            "engine": self.engine.as_dict(),
            "per_worker": {
                tag: recorder.summary() for tag, recorder in sorted(workers.items())
            },
        }
        if self.insights is not None:
            result["insights"] = self.insights.counters()
        return result
