"""Sharded cluster serving: partitioned scatter/gather evaluation.

This package scales the single-process query service
(:mod:`repro.service`) across workers. The key observation is that
GPC's set semantics makes sharding *by answer start node* sound: the
engine's ``start_restriction`` seam is an exact filter on the first
path's source, so evaluating a query once per cell of a partition of
the node set yields disjoint answer sets whose union is exactly the
unsharded answer set. No dedup, no post-filtering, no coordination
between workers — snapshots are immutable and each worker sees the
same graph version.

- :mod:`repro.cluster.service` — the :class:`ClusterService` façade
  (same surface as :class:`~repro.service.GraphService`);
- :mod:`repro.cluster.partitioner` — :class:`SeedPartitioner`
  (planner-pruned seed universe, degree-balanced LPT cells);
- :mod:`repro.cluster.backends` — :class:`SerialBackend`,
  :class:`ThreadBackend`, :class:`ProcessBackend` (version-keyed
  warm-worker snapshot shipping);
- :mod:`repro.cluster.router` — :class:`ScatterGatherRouter`
  (deterministic merge, per-shard failure surfacing);
- :mod:`repro.cluster.stats` — :class:`ClusterStats` (per-worker
  latency percentiles + aggregate).
"""

from repro.cluster.backends import (
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ShardCall,
    ShardOutcome,
    ThreadBackend,
    make_backend,
)
from repro.cluster.partitioner import SeedPartitioner
from repro.cluster.router import ScatterGatherRouter, ShardFailure
from repro.cluster.service import ClusterService
from repro.cluster.stats import ClusterStats

__all__ = [
    "ClusterService",
    "ClusterStats",
    "SeedPartitioner",
    "ScatterGatherRouter",
    "ShardFailure",
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ShardCall",
    "ShardOutcome",
    "make_backend",
]
