"""The :class:`ClusterService` façade — sharded scatter/gather serving.

``ClusterService`` presents the same surface as
:class:`~repro.service.service.GraphService` — ``prepare`` /
``evaluate`` / ``evaluate_batch`` / ``explain`` / ``stats`` plus the
mutation delegations — but evaluates each query by *partitioning its
seed space* across N workers instead of running it whole:

1. the :class:`~repro.cluster.partitioner.SeedPartitioner` splits the
   query's viable start nodes (pruned by the planner's leading-endpoint
   analysis) into degree-balanced cells;
2. the :class:`~repro.cluster.router.ScatterGatherRouter` turns the
   cells into shard calls against the current immutable snapshot;
3. the executor backend (serial / thread / process) evaluates every
   shard with the engine's native ``start_restriction`` seam;
4. the router unions the shard answers — lossless by GPC's set
   semantics: disjoint seed cells produce disjoint answer sets whose
   union is exactly the unsharded answer set.

Every backend returns frozenset-identical answers; the process backend
adds true CPU parallelism, shipping each snapshot once per graph
version into warm workers (see
:class:`~repro.cluster.backends.ProcessBackend`).
"""

from __future__ import annotations

import threading
import time
from typing import Hashable, Iterable, Mapping, Optional, Sequence

from repro.cluster.backends import ExecutorBackend, make_backend
from repro.cluster.partitioner import SeedPartitioner
from repro.cluster.router import ScatterGatherRouter
from repro.cluster.stats import ClusterStats
from repro.gpc import ast
from repro.gpc.answers import Answer
from repro.gpc.engine import DEFAULT_CONFIG, EngineConfig
from repro.graph.ids import (
    DirectedEdgeId,
    GraphElementId,
    NodeId,
    UndirectedEdgeId,
)
from repro.graph.property_graph import Constant, PropertyGraph
from repro.graph.snapshot import GraphSnapshot
from repro.errors import DeadlineExceededError, GPCError
from repro.gpc.analysis import lint_query
from repro.gpc.explain import explain_counters, explain_estimates
from repro.obs import EvalCounters, InsightsRegistry, current_span
from repro.obs import span as trace_span
from repro.service.cache import LRUCache, SemanticResultCache
from repro.service.prepared import PreparedQuery

__all__ = ["ClusterService"]


class ClusterService:
    """Serve GPC queries by scatter/gather over partitioned seeds.

    Example
    -------
    >>> from repro import GraphBuilder
    >>> from repro.cluster import ClusterService
    >>> g = (GraphBuilder().node("a", "P").node("b", "P")
    ...      .edge("a", "b", "knows").build())
    >>> with ClusterService(g, backend="serial", num_workers=2) as cluster:
    ...     len(cluster.evaluate("TRAIL (x:P) -[:knows]-> (y:P)"))
    1
    """

    def __init__(
        self,
        graph: Optional[PropertyGraph] = None,
        config: Optional[EngineConfig] = None,
        *,
        num_workers: int = 4,
        backend: "str | ExecutorBackend" = "process",
        partitioner: Optional[SeedPartitioner] = None,
        plan_cache_size: int = 256,
        result_cache_size: int = 4096,
        insights: "bool | InsightsRegistry" = True,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self._graph = graph if graph is not None else PropertyGraph()
        self.config = config or DEFAULT_CONFIG
        self.num_workers = num_workers
        self.stats = ClusterStats()
        # Same contract as GraphService: a registry instance is used
        # directly, a bool builds an enabled/disabled one.
        if isinstance(insights, InsightsRegistry):
            self.insights = insights
        else:
            self.insights = InsightsRegistry(enabled=bool(insights))
        self.stats.insights = self.insights
        self.backend = make_backend(backend, num_workers, self.stats)
        self.partitioner = (
            partitioner
            if partitioner is not None
            else SeedPartitioner(num_workers)
        )
        self.router = ScatterGatherRouter(self.stats)
        self._plan_cache = LRUCache(plan_cache_size, self.stats.plan_cache)
        self._result_cache = SemanticResultCache(
            result_cache_size,
            self.stats.result_cache,
            delta_source=self._graph.deltas_since,
        )
        self._lock = threading.RLock()
        self._last_snapshot_version: Optional[int] = None

    # ------------------------------------------------------------------
    # Graph access and mutation (same contract as GraphService)
    # ------------------------------------------------------------------

    @property
    def graph(self) -> PropertyGraph:
        """The underlying graph; mutate through the delegations below
        when serving concurrently (they hold the service lock)."""
        return self._graph

    @property
    def version(self) -> int:
        return self._graph.version

    def snapshot(self) -> GraphSnapshot:
        """The memoised snapshot of the current graph version.

        Tracks ``stats.snapshots_built`` / ``stats.snapshots_derived``
        exactly as :meth:`GraphService.snapshot` does, so cluster
        dashboards see the same build/derive ratio as single-service
        ones.
        """
        with self._lock:
            snap = self._graph.snapshot()
            if snap.version != self._last_snapshot_version:
                self._last_snapshot_version = snap.version
                self.stats.count(
                    snapshots_built=1,
                    snapshots_derived=1 if snap.derived else 0,
                    snapshot_build_s=snap.build_s,
                    csr_rows_patched=snap.csr_rows_patched,
                )
            return snap

    def add_node(
        self,
        key: Hashable,
        labels: Iterable[str] = (),
        properties: Optional[Mapping[str, Constant]] = None,
    ) -> NodeId:
        with self._lock:
            return self._graph.add_node(key, labels, properties)

    def add_edge(
        self,
        key: Hashable,
        source: NodeId,
        target: NodeId,
        labels: Iterable[str] = (),
        properties: Optional[Mapping[str, Constant]] = None,
    ) -> DirectedEdgeId:
        with self._lock:
            return self._graph.add_edge(key, source, target, labels, properties)

    def add_undirected_edge(
        self,
        key: Hashable,
        endpoint_a: NodeId,
        endpoint_b: NodeId,
        labels: Iterable[str] = (),
        properties: Optional[Mapping[str, Constant]] = None,
    ) -> UndirectedEdgeId:
        with self._lock:
            return self._graph.add_undirected_edge(
                key, endpoint_a, endpoint_b, labels, properties
            )

    def set_property(
        self, element: GraphElementId, key: str, value: Constant
    ) -> None:
        with self._lock:
            self._graph.set_property(element, key, value)

    def remove_node(self, node: NodeId) -> None:
        with self._lock:
            self._graph.remove_node(node)

    def remove_edge(self, edge: DirectedEdgeId) -> None:
        with self._lock:
            self._graph.remove_edge(edge)

    def remove_undirected_edge(self, edge: UndirectedEdgeId) -> None:
        with self._lock:
            self._graph.remove_undirected_edge(edge)

    # ------------------------------------------------------------------
    # Prepared queries and explain
    # ------------------------------------------------------------------

    def prepare(
        self,
        query: "str | ast.Query",
        config: Optional[EngineConfig] = None,
    ) -> PreparedQuery:
        """Router-side compilation, memoised per (query, config).

        Workers keep their own plan caches; this one drives seed
        partitioning and ``explain`` without shipping anything.
        """
        config = config or self.config
        key = (query, config)
        return self._plan_cache.get_or_create(
            key, lambda: PreparedQuery(query, config)
        )

    def explain(
        self,
        query: "str | ast.Query",
        config: Optional[EngineConfig] = None,
        *,
        analyze: bool = False,
    ) -> str:
        """The engine plan plus the cluster's sharding decision.

        ``analyze=True`` also scatters the query (cache-bypassed) and
        appends the observed execution counters summed over all shards.
        """
        config = config or self.config
        prepared = self.prepare(query, config)
        snap = self.snapshot()
        report = "\n".join(
            [
                prepared.explain(snap),
                f"cluster: backend={self.backend.name}, "
                f"workers={self.num_workers}; "
                + self.partitioner.describe(snap, prepared),
            ]
        )
        if not analyze:
            return report
        started = time.perf_counter()
        _, calls = self._scatter_one(query, config, snap)
        outcomes = (
            self.backend.run(
                snap, calls, delta_source=self._graph.deltas_since
            )
            if calls
            else []
        )
        result = self.router.gather(outcomes)
        elapsed = time.perf_counter() - started
        counters = EvalCounters()
        for outcome in outcomes:
            counters.merge(outcome.counters)
        observed = explain_counters(
            counters, answers=len(result), elapsed_s=elapsed
        )
        sections = [report, observed]
        estimates = self._plan_estimates(prepared, snap)
        if estimates is not None:
            sections.append(
                explain_estimates(
                    estimates, answers=len(result), counters=counters
                )
            )
        return "\n".join(sections)

    def lint(
        self,
        query: "str | ast.Query",
        config: Optional[EngineConfig] = None,
    ):
        """Static-analysis diagnostics for ``query`` (router-side —
        nothing is shipped to workers). Total: parse/type failures
        yield ``GPC000``/``GPC001`` diagnostics instead of raising.
        Returns a tuple of :class:`~repro.gpc.analysis.Diagnostic`.
        """
        try:
            prepared = self.prepare(query, config)
        except GPCError:
            return lint_query(query)
        return prepared.diagnostics

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: "str | ast.Query",
        config: Optional[EngineConfig] = None,
        *,
        use_cache: bool = True,
    ) -> frozenset[Answer]:
        """Scatter ``query`` across seed partitions, gather the union.

        Results are frozenset-identical to
        :meth:`GraphService.evaluate` on the same graph version,
        whatever the backend — including the footprint-aware result
        cache (entries survive footprint-disjoint mutations) and its
        ``use_cache`` bypass.
        """
        config = config or self.config
        started = time.perf_counter()
        snap = self.snapshot()
        result_key = (query, config)
        cache_outcome = "bypass"
        if use_cache:
            with trace_span("cluster.cache_probe") as probe:
                cached, cache_outcome = self._result_cache.get_with_outcome(
                    result_key, snap.version
                )
                probe.set_attr("hit", cached is not None)
            if cached is not None:
                self._record_query(started)
                self._record_insight(
                    query, started, answers=len(cached), cache=cache_outcome
                )
                return cached
        else:
            self._count_bypass()
        with trace_span("cluster.plan"):
            prepared, calls = self._scatter_one(query, config, snap)
        estimates = self._plan_estimates(prepared, snap)
        # The partitioner guarantees at least one cell today, but an
        # empty scatter must never reach the backend regardless: on the
        # process backend run() warms the pool and ships the snapshot
        # even for zero calls.
        counters = EvalCounters()
        try:
            with trace_span("cluster.eval", shards=len(calls)) as eval_span:
                outcomes = (
                    self.backend.run(
                        snap, calls, delta_source=self._graph.deltas_since
                    )
                    if calls
                    else []
                )
                # Re-parent each shard's serialised span under this
                # stage *before* gathering, so a failed gather still
                # leaves the shard spans in the request trace.
                for outcome in outcomes:
                    eval_span.adopt(outcome.span)
                    counters.merge(outcome.counters)
                result = self.router.gather(outcomes)
        except Exception as exc:
            # A failed gather still served the query's shards: count it
            # and record its latency, as evaluate_batch does, so error
            # rates computed from queries/shard_failures stay honest.
            self._record_query(started)
            self._record_insight(
                query,
                started,
                cache=cache_outcome,
                counters=counters,
                error=True,
                timeout=isinstance(exc, DeadlineExceededError),
            )
            raise
        if use_cache:
            self._result_cache.put(
                result_key, snap.version, prepared.footprint, result
            )
        self._record_query(started)
        self._record_insight(
            query,
            started,
            answers=len(result),
            cache=cache_outcome,
            counters=counters,
            estimates=estimates,
        )
        return result

    def evaluate_batch(
        self,
        queries: Sequence["str | ast.Query"],
        config: Optional[EngineConfig] = None,
        *,
        use_cache: bool = True,
        return_exceptions: bool = False,
        contexts=None,
    ) -> list:
        """Evaluate independent queries, each sharded, in one scatter.

        All shards of all (uncached) queries go to the backend
        together, so the worker pool pipelines across queries. Results
        come back in input order. A raising query never loses its
        siblings: every shard completes and sibling results are fully
        merged; with ``return_exceptions=True`` the failing positions
        hold the exception, otherwise the first failure is raised
        afterwards (same contract as
        :meth:`GraphService.evaluate_batch`).

        ``contexts`` (one distinct :class:`contextvars.Context` copy
        per query) carries each caller's trace span and deadline into
        that query's probe/scatter and gather stages, so every shard
        span lands in the right request's trace.
        """
        config = config or self.config
        if contexts is not None and len(contexts) != len(queries):
            raise ValueError(
                f"contexts ({len(contexts)}) must match "
                f"queries ({len(queries)})"
            )
        self.stats.count(batches=1)
        if not queries:
            return []
        started = time.perf_counter()
        snap = self.snapshot()
        calls: list = []

        def _probe_and_scatter(query):
            """Cache probe + scatter for one query, in its context.

            Returns a cached frozenset, a pre-scatter exception, or a
            ``(begin, end, footprint, estimates, cache_outcome)``
            window into ``calls``.
            """
            cache_outcome = "bypass"
            if use_cache:
                with trace_span("cluster.cache_probe") as probe:
                    cached, cache_outcome = (
                        self._result_cache.get_with_outcome(
                            (query, config), snap.version
                        )
                    )
                    probe.set_attr("hit", cached is not None)
                if cached is not None:
                    # Recorded here, inside the query's own context, so
                    # the insight cross-links the right trace id.
                    self._record_insight(
                        query,
                        started,
                        answers=len(cached),
                        cache=cache_outcome,
                    )
                    return cached
            else:
                self._count_bypass()
            try:
                with trace_span("cluster.plan"):
                    prepared, shard_calls = self._scatter_one(
                        query, config, snap
                    )
            except Exception as exc:
                return exc
            window = (
                len(calls),
                len(calls) + len(shard_calls),
                prepared.footprint,
                self._plan_estimates(prepared, snap),
                cache_outcome,
            )
            calls.extend(shard_calls)
            return window

        def _gather_window(begin, end, query, estimates, cache_outcome):
            """Adopt and merge one query's shard outcomes, in its
            context (exceptions propagate to the caller)."""
            chunk = outcomes[begin:end]
            counters = EvalCounters()
            with trace_span("cluster.eval", shards=end - begin) as eval_span:
                for outcome in chunk:
                    eval_span.adopt(outcome.span)
                    counters.merge(outcome.counters)
                try:
                    merged = self.router.gather(chunk)
                except Exception as exc:
                    self._record_insight(
                        query,
                        started,
                        cache=cache_outcome,
                        counters=counters,
                        error=True,
                        timeout=isinstance(exc, DeadlineExceededError),
                    )
                    raise
                self._record_insight(
                    query,
                    started,
                    answers=len(merged),
                    cache=cache_outcome,
                    counters=counters,
                    estimates=estimates,
                )
                return merged

        # Per query: a (start, end, footprint, estimates, cache
        # outcome) window into calls, a cached frozenset, or a
        # pre-scatter exception.
        windows: list = []
        for index, query in enumerate(queries):
            if contexts is None:
                windows.append(_probe_and_scatter(query))
            else:
                windows.append(contexts[index].run(_probe_and_scatter, query))
        # All-hit (or all-failed-pre-scatter) batches scatter nothing:
        # skip the backend entirely rather than paying a process-pool
        # spin-up / snapshot ship for an empty call list.
        outcomes = (
            self.backend.run(
                snap, calls, delta_source=self._graph.deltas_since
            )
            if calls
            else []
        )
        results: list = []
        evaluated = 0
        for index, (query, window) in enumerate(zip(queries, windows)):
            if isinstance(window, Exception):
                results.append(window)
                continue
            if isinstance(window, frozenset):
                results.append(window)
                evaluated += 1
                continue
            begin, end, footprint, estimates, cache_outcome = window
            evaluated += 1
            gather_args = (begin, end, query, estimates, cache_outcome)
            try:
                if contexts is None:
                    merged = _gather_window(*gather_args)
                else:
                    merged = contexts[index].run(_gather_window, *gather_args)
            except Exception as exc:
                results.append(exc)
                continue
            if use_cache:
                self._result_cache.put(
                    (query, config), snap.version, footprint, merged
                )
            results.append(merged)
        # One latency sample for the whole pipelined batch (per-query
        # wall clock is not separable once shards interleave). Queries
        # that failed before any shard ran are not counted — the same
        # accounting as `evaluate`, which raises before recording.
        self.stats.latency.record(time.perf_counter() - started)
        self.stats.count(queries=evaluated)
        if not return_exceptions:
            for item in results:
                if isinstance(item, Exception):
                    raise item
        return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def clear_caches(self) -> None:
        """Drop the router-side plan and result caches (stats kept)."""
        self._plan_cache.clear()
        self._result_cache.clear()

    def close(self) -> None:
        """Shut the executor backend down (idempotent)."""
        self.backend.close()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _scatter_one(
        self, query, config: EngineConfig, snap: GraphSnapshot
    ) -> "tuple[PreparedQuery, list]":
        """Prepare, partition and build the shard calls for one query;
        the prepared query rides along so callers can stamp cached
        results with its footprint."""
        prepared = self.prepare(query, config)
        cells = self.partitioner.partition(snap, prepared)
        return prepared, self.router.scatter(query, config, cells)

    def _plan_estimates(self, prepared: PreparedQuery, snap: GraphSnapshot):
        """The planner's pre-execution estimates, or ``None`` (insights
        disabled, or the query shape defeats estimation) — same
        contract as :meth:`GraphService._plan_estimates`."""
        if not self.insights.enabled:
            return None
        try:
            return prepared.estimates(snap)
        except Exception:
            return None

    def _record_insight(
        self,
        query,
        started: float,
        *,
        answers: "int | None" = None,
        cache: "str | None" = None,
        counters: "EvalCounters | None" = None,
        estimates=None,
        error: bool = False,
        timeout: bool = False,
    ) -> None:
        """Fold one evaluation into the insights registry, stamping the
        fingerprint onto the active span for slow-log cross-linking."""
        if not self.insights.enabled:
            return
        root = current_span()
        fingerprint = self.insights.record(
            query,
            latency_s=time.perf_counter() - started,
            answers=answers,
            cache=cache,
            counters=counters,
            estimates=estimates,
            error=error,
            timeout=timeout,
            trace_id=root.trace_id if root else None,
        )
        if root and fingerprint is not None:
            root.set_attr("fingerprint", fingerprint)

    def _record_query(self, started: float) -> None:
        self.stats.latency.record(time.perf_counter() - started)
        self.stats.count(queries=1)

    def _count_bypass(self) -> None:
        # Deliberate cache skips are bypasses, not misses — same
        # accounting as GraphService (hit_rate reflects real probes).
        with self._lock:
            self.stats.result_cache.bypasses += 1

    def __repr__(self) -> str:
        return (
            f"ClusterService(version={self.version}, "
            f"nodes={self._graph.num_nodes}, edges={self._graph.num_edges}, "
            f"backend={self.backend.name}, workers={self.num_workers}, "
            f"queries={self.stats.queries})"
        )
