"""Pluggable executor backends for sharded evaluation.

A backend turns a list of :class:`ShardCall`\\ s — (query, config,
seed restriction) triples against one immutable snapshot — into a list
of :class:`ShardOutcome`\\ s in the same order. Three implementations:

- :class:`SerialBackend` — in-process, sequential. The reference
  implementation used by tests and differential checks: zero
  concurrency, identical results by construction.
- :class:`ThreadBackend` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Shares the snapshot and a thread-safe plan cache by reference. The
  GIL caps its speedup for CPU-bound evaluation (see
  ``bench_a3_service.py``), but it parallelises anything that releases
  the GIL and keeps shipping costs at zero.
- :class:`ProcessBackend` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  for genuine CPU parallelism. Snapshots are immutable and picklable,
  so the backend ships one pickled snapshot into every worker via the
  pool initializer — a warm-worker snapshot cache: while the version
  is unchanged (the mutation-light serving case), queries ship only
  their text and seed restriction, never the graph. When the version
  *advances by a small delta chain* (the mutation-heavy case), the
  backend ships the pickled :class:`~repro.graph.delta.GraphDelta`
  chain alongside the calls instead of rebuilding the pool: each
  warm worker patches its held snapshot with
  :meth:`~repro.graph.snapshot.GraphSnapshot.derive` on first sight of
  the new version and caches the result. Only a large chain (or a
  missing delta log) forces a full pool rebuild + snapshot re-ship.
  Workers also keep per-process prepared-plan caches, so a repeated
  query is parsed/typechecked/compiled once per worker, not per call.

Backends never raise for a failing shard: the failure is captured in
its outcome so sibling shards complete and the router can surface the
error with full context (:class:`repro.errors.ClusterError`).
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.gpc import ast
from repro.gpc.answers import Answer
from repro.gpc.engine import EngineConfig
from repro.graph.delta import DEFAULT_SNAPSHOT_DELTA_THRESHOLD, GraphDelta
from repro.graph.ids import NodeId
from repro.obs import EvalCounters, deadline_scope, remote_span, use_counters
from repro.service.prepared import PreparedQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from typing import Callable

    from repro.cluster.stats import ClusterStats
    from repro.graph.snapshot import GraphSnapshot

    #: ``version -> contiguous delta chain to the current version``
    #: (``None`` when the bounded log no longer covers it); usually
    #: :meth:`repro.graph.property_graph.PropertyGraph.deltas_since`.
    DeltaSource = Callable[[int], Optional[tuple[GraphDelta, ...]]]

__all__ = [
    "ShardCall",
    "ShardOutcome",
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
]


@dataclass(frozen=True)
class ShardCall:
    """One unit of scattered work: evaluate ``query`` restricted to
    the shard's seed nodes (``None`` = unrestricted).

    ``carrier`` is the caller's trace context ``(trace_id, span_id)``
    — the explicit hand-off that lets shard spans survive the process
    boundary (contextvars do not pickle). ``deadline_s`` is the
    *remaining* request budget in seconds (monotonic deadlines are
    per-process, so the absolute deadline cannot cross either); the
    worker re-anchors it at task start, deliberately not charging
    pool queue wait against the budget.
    """

    query: "str | ast.Query"
    config: EngineConfig
    restriction: Optional[frozenset[NodeId]]
    carrier: Optional[tuple[str, str]] = None
    deadline_s: Optional[float] = None


@dataclass(frozen=True)
class ShardOutcome:
    """What came back from one shard task.

    Exactly one of ``result`` / ``error`` is set. ``worker`` tags which
    executor unit ran the task (``serial``, a thread name, or a worker
    pid) and ``elapsed_s`` is in-worker evaluation time. ``span`` is
    the shard's serialised span tree (``None`` when the call carried no
    trace context) — the gatherer re-parents it into the request trace
    — and ``counters`` the shard's engine work
    (:meth:`EvalCounters.as_dict`), merged into the cluster aggregate.
    """

    result: Optional[frozenset[Answer]]
    error: Optional[Exception]
    worker: str
    elapsed_s: float
    span: Optional[dict] = None
    counters: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None


#: Bound on every worker-side prepared-plan cache (mirrors the
#: service-layer plan LRU default): a long-lived backend serving many
#: distinct ad-hoc query texts must not grow memory without bound.
PLAN_CACHE_CAPACITY = 256


def _evict_oldest(plans: dict) -> None:
    """FIFO eviction down to capacity (dicts preserve insert order)."""
    while len(plans) > PLAN_CACHE_CAPACITY:
        del plans[next(iter(plans))]


def _cached_prepared(
    plans: dict, call: ShardCall, lock: Optional[threading.Lock] = None
) -> PreparedQuery:
    """The memoised prepared query for a call's (query, config).

    Construction runs outside the lock (compilation may be expensive);
    concurrent misses may both build, first writer wins — plans are
    idempotently recomputable, same policy as the service LRU.
    """
    key = (call.query, call.config)
    if lock is None:
        prepared = plans.get(key)
        if prepared is None:
            prepared = plans[key] = PreparedQuery(call.query, call.config)
            _evict_oldest(plans)
        return prepared
    with lock:
        prepared = plans.get(key)
    if prepared is None:
        built = PreparedQuery(call.query, call.config)
        with lock:
            prepared = plans.setdefault(key, built)
            _evict_oldest(plans)
    return prepared


def _evaluate_shard(
    snapshot: "GraphSnapshot",
    plans: dict,
    call: ShardCall,
    worker: str,
    lock: Optional[threading.Lock] = None,
) -> ShardOutcome:
    """Shared evaluation kernel for all backends.

    Recreates the caller's trace context from the call's carrier (the
    shard span and any engine spans under it ship home serialised in
    the outcome), applies the remaining-deadline budget, and accounts
    engine work into a per-shard :class:`EvalCounters`.
    """
    started = time.perf_counter()
    counters = EvalCounters()
    error: Optional[Exception] = None
    result: Optional[frozenset[Answer]] = None
    with remote_span("cluster.shard", call.carrier, worker=worker) as shard:
        try:
            with deadline_scope(call.deadline_s), use_counters(counters):
                prepared = _cached_prepared(plans, call, lock)
                result = prepared.execute(
                    snapshot, start_restriction=call.restriction
                )
        except Exception as exc:
            error = exc
            shard.record_error(exc)
        if shard:
            shard.set_attrs(counters.as_dict())
            if result is not None:
                shard.set_attr("answers", len(result))
        shard.end()
    return ShardOutcome(
        result,
        error,
        worker,
        time.perf_counter() - started,
        span=shard.to_dict(),
        counters=counters.as_dict(),
    )


class ExecutorBackend(ABC):
    """The executor seam of :class:`~repro.cluster.service.ClusterService`."""

    #: Stable identifier used in stats, explain output and benchmarks.
    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        snapshot: "GraphSnapshot",
        calls: Sequence[ShardCall],
        delta_source: "Optional[DeltaSource]" = None,
    ) -> list[ShardOutcome]:
        """Evaluate every call against ``snapshot``; outcomes align
        positionally with ``calls`` and failures are captured, never
        raised.

        ``delta_source`` (optional) lets shipping backends fetch the
        delta chain between the version their warm workers hold and
        ``snapshot.version``; in-process backends ignore it.
        """

    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def bind_stats(self, stats: "ClusterStats") -> None:
        """Adopt the owning cluster's stats sink (no-op by default).

        Called by :func:`make_backend` so user-constructed backend
        instances report the same counters (snapshot ships, …) as
        string-spec ones.
        """

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(ExecutorBackend):
    """Sequential in-process execution (the differential baseline)."""

    name = "serial"

    def __init__(self):
        self._plans: dict = {}

    def run(self, snapshot, calls, delta_source=None):
        return [
            _evaluate_shard(snapshot, self._plans, call, self.name)
            for call in calls
        ]


class ThreadBackend(ExecutorBackend):
    """Thread-pool execution: shared snapshot, shared plan cache."""

    name = "thread"

    def __init__(self, max_workers: int = 4):
        self._max_workers = max_workers
        self._plans: dict = {}
        self._plans_lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        #: Guards executor lifecycle and submission against concurrent
        #: run()/close() (duplicate pools, submit-after-shutdown).
        self._lock = threading.RLock()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="gpc-cluster",
            )
        return self._executor

    def _call(self, snapshot, call: ShardCall) -> ShardOutcome:
        return _evaluate_shard(
            snapshot,
            self._plans,
            call,
            threading.current_thread().name,
            self._plans_lock,
        )

    def run(self, snapshot, calls, delta_source=None):
        with self._lock:
            executor = self._ensure_executor()
            futures = [
                executor.submit(self._call, snapshot, call) for call in calls
            ]
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


# ---------------------------------------------------------------------------
# Process pool: per-worker snapshot + plan caches
# ---------------------------------------------------------------------------

#: Per-worker-process state, installed by the pool initializer: the
#: unpickled snapshot for the pool's *base* graph version, prepared
#: plans keyed by (query, config), and the latest snapshot derived
#: from a shipped delta chain (``(version, snapshot)``). Living at
#: module level makes it reachable from the picklable top-level task
#: function.
_WORKER_SNAPSHOT: "Optional[GraphSnapshot]" = None
_WORKER_DERIVED: "Optional[tuple[int, GraphSnapshot]]" = None
_WORKER_PLANS: dict = {}


def _init_process_worker(snapshot_blob: bytes) -> None:
    global _WORKER_SNAPSHOT, _WORKER_DERIVED
    _WORKER_SNAPSHOT = pickle.loads(snapshot_blob)
    _WORKER_DERIVED = None
    _WORKER_PLANS.clear()


def _resolve_worker_snapshot(ship) -> "GraphSnapshot":
    """The snapshot a shard task should evaluate against.

    ``ship`` is ``None`` (use the pool's base snapshot) or a
    ``(target_version, chain_blob)`` pair: the worker derives the
    target snapshot by applying the pickled delta chain, memoising the
    result so every subsequent task at that version reuses it. The
    chain is always anchored at the pool's base version, so a fresh
    worker can always derive from its base; a worker already holding
    an intermediate derived version applies only the chain *suffix*
    past it — successive small advances then cost O(step), not
    O(distance from base).
    """
    base = _WORKER_SNAPSHOT
    if ship is None:
        return base
    target_version, chain_blob = ship
    if base.version == target_version:
        return base
    global _WORKER_DERIVED
    derived = _WORKER_DERIVED
    if derived is not None and derived[0] == target_version:
        return derived[1]
    from repro.graph.snapshot import GraphSnapshot

    chain = pickle.loads(chain_blob)
    if derived is not None and base.version < derived[0] < target_version:
        suffix = tuple(d for d in chain if d.version > derived[0])
        snapshot = GraphSnapshot.derive(derived[1], suffix)
    else:
        snapshot = GraphSnapshot.derive(base, chain)
    _WORKER_DERIVED = (target_version, snapshot)
    return snapshot


def _run_process_shard(call: ShardCall, ship=None) -> ShardOutcome:
    worker = f"pid-{os.getpid()}"
    try:
        snapshot = _resolve_worker_snapshot(ship)
    except Exception as exc:  # pragma: no cover - defensive
        return ShardOutcome(None, exc, worker, 0.0)
    return _evaluate_shard(snapshot, _WORKER_PLANS, call, worker)


class ProcessBackend(ExecutorBackend):
    """Process-pool execution with version-keyed snapshot shipping
    and delta shipping for small version advances.

    A pool is warmed by shipping one pickled snapshot per worker
    through the initializer. While the version is stable, ``run``
    ships only calls. When the version *advances* and the caller
    supplies a ``delta_source``, the backend first tries the cheap
    path: ship the pickled delta chain (anchored at the pool's base
    version) alongside the calls and let each warm worker derive the
    new snapshot in place. Only when the chain is unavailable, too
    large relative to the graph (``delta_ship_threshold``), or belongs
    to a different graph does the pool rebuild with a fresh snapshot.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int = 4,
        stats: "Optional[ClusterStats]" = None,
        *,
        delta_ship_threshold: float = DEFAULT_SNAPSHOT_DELTA_THRESHOLD,
    ):
        self._max_workers = max_workers
        self._stats = stats
        self.delta_ship_threshold = delta_ship_threshold
        self._executor: Optional[ProcessPoolExecutor] = None
        #: The snapshot shipped through the pool initializer (the
        #: version every worker is guaranteed to hold).
        self._base_snapshot: "Optional[GraphSnapshot]" = None
        #: The owner of the delta chains the pool was warmed from
        #: (``delta_source.__self__``, i.e. the graph). Delta shipping
        #: is refused when a later call's source has a different owner:
        #: another graph's deltas must never patch this pool's base.
        self._base_owner: object = None
        #: The exact snapshot object the warm workers can currently
        #: reach (the base, or the target of the last delta ship).
        #: Identity (not just the version number) keys the cache: a
        #: backend instance shared between services over *different*
        #: graphs at coincidentally equal versions must rebuild, and
        #: per-graph snapshots are memoised per version, so an
        #: unchanged graph always presents the identical object.
        self._pool_snapshot: "Optional[GraphSnapshot]" = None
        #: The ship riding along with every task: ``None`` (evaluate
        #: on the base) or ``(target_version, pickled delta chain)``.
        self._ship: Optional[tuple[int, bytes]] = None
        #: Pickled-bytes memo for the same snapshot: re-pickling is the
        #: expensive half of a pool rebuild.
        self._blob_snapshot: "Optional[GraphSnapshot]" = None
        self._blob: Optional[bytes] = None
        #: Guards executor lifecycle and submission: close/rebuild may
        #: not tear a pool down while another thread is submitting to
        #: it. shutdown(wait=True) under the lock still lets in-flight
        #: futures finish (workers run independently of the lock).
        self._lock = threading.RLock()

    def bind_stats(self, stats: "ClusterStats") -> None:
        if self._stats is None:
            self._stats = stats

    @property
    def pool_version(self) -> Optional[int]:
        """The graph version the warm workers currently serve."""
        snapshot = self._pool_snapshot
        return None if snapshot is None else snapshot.version

    def _delta_chain(
        self, snapshot, delta_source
    ) -> Optional[tuple[GraphDelta, ...]]:
        """The shippable chain from the pool base to ``snapshot``, or
        ``None`` when rebuilding is required (chain unavailable, too
        big, or from another graph)."""
        base = self._base_snapshot
        if base is None or delta_source is None:
            return None
        owner = getattr(delta_source, "__self__", None)
        if owner is None or owner is not self._base_owner:
            return None
        if snapshot.version <= base.version:
            return None
        deltas = delta_source(base.version)
        if deltas is None:
            return None
        # The graph may already have moved past the snapshot we were
        # handed; ship only the prefix up to the snapshot's version.
        chain = tuple(d for d in deltas if d.version <= snapshot.version)
        if (
            not chain
            or chain[0].version != base.version + 1
            or chain[-1].version != snapshot.version
        ):
            return None
        size = snapshot.num_nodes + snapshot.num_edges
        if sum(d.size for d in chain) > max(
            1.0, self.delta_ship_threshold * size
        ):
            return None
        return chain

    def _ensure_executor(self, snapshot, delta_source) -> ProcessPoolExecutor:
        if self._executor is not None and self._pool_snapshot is snapshot:
            return self._executor
        if self._executor is not None:
            chain = self._delta_chain(snapshot, delta_source)
            if chain is not None:
                self._ship = (
                    snapshot.version,
                    pickle.dumps(chain, protocol=pickle.HIGHEST_PROTOCOL),
                )
                self._pool_snapshot = snapshot
                if self._stats is not None:
                    self._stats.count(deltas_shipped=1)
                return self._executor
        self.close()
        if self._blob_snapshot is not snapshot:
            self._blob = pickle.dumps(
                snapshot, protocol=pickle.HIGHEST_PROTOCOL
            )
            self._blob_snapshot = snapshot
        self._executor = ProcessPoolExecutor(
            max_workers=self._max_workers,
            initializer=_init_process_worker,
            initargs=(self._blob,),
        )
        self._base_snapshot = snapshot
        self._base_owner = getattr(delta_source, "__self__", None)
        self._pool_snapshot = snapshot
        self._ship = None
        if self._stats is not None:
            self._stats.count(snapshots_shipped=1)
        return self._executor

    def run(self, snapshot, calls, delta_source=None):
        with self._lock:
            executor = self._ensure_executor(snapshot, delta_source)
            ship = self._ship
            futures: list[Future] = [
                executor.submit(_run_process_shard, call, ship)
                for call in calls
            ]
        outcomes: list[ShardOutcome] = []
        for future in futures:
            try:
                outcomes.append(future.result())
            except Exception as exc:
                # Transport-level failure (e.g. a worker died); shard
                # evaluation errors are already captured in-outcome.
                outcomes.append(ShardOutcome(None, exc, self.name, 0.0))
        return outcomes

    def close(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
            self._base_snapshot = None
            self._base_owner = None
            self._pool_snapshot = None
            self._ship = None
        if executor is not None:
            executor.shutdown(wait=True)


def make_backend(
    spec: "str | ExecutorBackend",
    max_workers: int,
    stats: "Optional[ClusterStats]" = None,
) -> ExecutorBackend:
    """Resolve a backend spec: an instance passes through (adopting
    ``stats`` if it has none yet); the strings ``"serial"``,
    ``"thread"`` and ``"process"`` construct one."""
    if isinstance(spec, ExecutorBackend):
        if stats is not None:
            spec.bind_stats(stats)
        return spec
    if spec == "serial":
        return SerialBackend()
    if spec == "thread":
        return ThreadBackend(max_workers)
    if spec == "process":
        return ProcessBackend(max_workers, stats)
    raise ValueError(
        f"unknown backend {spec!r}; expected 'serial', 'thread', 'process' "
        f"or an ExecutorBackend instance"
    )
