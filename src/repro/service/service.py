"""The :class:`GraphService` façade — a query-serving runtime.

``GraphService`` owns one :class:`~repro.graph.property_graph.PropertyGraph`
and serves queries against it with every layer of reuse the engine
supports:

- **prepared queries** (plan cache): parsing, type checking and
  automaton compilation happen once per distinct ``(query, config)``;
- **versioned snapshots**: evaluation runs against the graph's
  memoised per-version :class:`~repro.graph.snapshot.GraphSnapshot`,
  so adjacency indexes are materialised once per version, not per
  call;
- **footprint-aware result cache**: answers are memoised per
  ``(query, config)`` and stamped with the graph version they were
  computed at. A mutation bumps the version, but only entries whose
  read footprint (:mod:`repro.gpc.footprint`) intersects the recorded
  mutation deltas are invalidated — footprint-disjoint entries are
  re-stamped and keep hitting across mutations;
- **concurrent batches**: :meth:`evaluate_batch` fans independent
  queries out over a thread pool (snapshots and precompiled plans are
  immutable, hence safely shared).

:class:`~repro.service.stats.ServiceStats` records cache hits, misses,
evictions and latency percentiles for observability.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Hashable, Iterable, Mapping, Sequence

from repro.gpc import ast
from repro.gpc.answers import Answer
from repro.gpc.engine import DEFAULT_CONFIG, EngineConfig
from repro.graph.ids import (
    DirectedEdgeId,
    GraphElementId,
    NodeId,
    UndirectedEdgeId,
)
from repro.graph.property_graph import Constant, PropertyGraph
from repro.graph.snapshot import GraphSnapshot
from repro.errors import DeadlineExceededError, GPCError
from repro.gpc.analysis import lint_query
from repro.gpc.explain import explain_counters, explain_estimates
from repro.obs import (
    EvalCounters,
    InsightsRegistry,
    current_span,
    span,
    use_counters,
)
from repro.service.cache import LRUCache, SemanticResultCache
from repro.service.prepared import PreparedQuery
from repro.service.stats import ServiceStats

__all__ = ["GraphService"]


class GraphService:
    """Serve GPC queries over one (mutable, versioned) property graph.

    Example
    -------
    >>> from repro import GraphBuilder
    >>> from repro.service import GraphService
    >>> g = (GraphBuilder().node("a", "P").node("b", "P")
    ...      .edge("a", "b", "knows").build())
    >>> service = GraphService(g)
    >>> len(service.evaluate("TRAIL (x:P) -[:knows]-> (y:P)"))
    1
    >>> service.stats.result_cache.misses
    1
    >>> _ = service.evaluate("TRAIL (x:P) -[:knows]-> (y:P)")  # cache hit
    >>> service.stats.result_cache.hits
    1
    """

    def __init__(
        self,
        graph: PropertyGraph | None = None,
        config: EngineConfig | None = None,
        *,
        plan_cache_size: int = 256,
        result_cache_size: int = 4096,
        max_workers: int | None = None,
        insights: bool | InsightsRegistry = True,
    ):
        self._graph = graph if graph is not None else PropertyGraph()
        self.config = config or DEFAULT_CONFIG
        self.stats = ServiceStats()
        # ``insights`` accepts a pre-built registry (shared or tuned)
        # or a bool; a disabled registry keeps record() a cheap no-op
        # so call sites never branch.
        if isinstance(insights, InsightsRegistry):
            self.insights = insights
        else:
            self.insights = InsightsRegistry(enabled=bool(insights))
        self.stats.insights = self.insights
        self._plan_cache = LRUCache(plan_cache_size, self.stats.plan_cache)
        self._result_cache = SemanticResultCache(
            result_cache_size,
            self.stats.result_cache,
            delta_source=self._graph.deltas_since,
        )
        self._max_workers = max_workers
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.RLock()
        self._last_snapshot_version: int | None = None

    # ------------------------------------------------------------------
    # Graph access and mutation (delegations bump the version)
    # ------------------------------------------------------------------

    @property
    def graph(self) -> PropertyGraph:
        """The underlying graph; mutating it invalidates caches.

        ``PropertyGraph`` itself is not thread-safe: when serving
        concurrently (e.g. during :meth:`evaluate_batch`), mutate
        through the service's delegating methods below — they hold the
        service lock, so snapshot construction never observes a
        half-applied mutation.
        """
        return self._graph

    @property
    def version(self) -> int:
        """The graph's current version (changes on every mutation)."""
        return self._graph.version

    def snapshot(self) -> GraphSnapshot:
        """The memoised snapshot of the current graph version.

        Small version steps are served by incremental delta derivation
        (:meth:`GraphSnapshot.derive`); ``stats.snapshots_derived``
        counts how many of the ``snapshots_built`` took that path.
        """
        with self._lock:
            snap = self._graph.snapshot()
            if snap.version != self._last_snapshot_version:
                self._last_snapshot_version = snap.version
                self.stats.snapshots_built += 1
                if snap.derived:
                    self.stats.snapshots_derived += 1
                self.stats.snapshot_build_s += snap.build_s
                self.stats.csr_rows_patched += snap.csr_rows_patched
            return snap

    def add_node(
        self,
        key: Hashable,
        labels: Iterable[str] = (),
        properties: Mapping[str, Constant] | None = None,
    ) -> NodeId:
        with self._lock:
            return self._graph.add_node(key, labels, properties)

    def add_edge(
        self,
        key: Hashable,
        source: NodeId,
        target: NodeId,
        labels: Iterable[str] = (),
        properties: Mapping[str, Constant] | None = None,
    ) -> DirectedEdgeId:
        with self._lock:
            return self._graph.add_edge(
                key, source, target, labels, properties
            )

    def add_undirected_edge(
        self,
        key: Hashable,
        endpoint_a: NodeId,
        endpoint_b: NodeId,
        labels: Iterable[str] = (),
        properties: Mapping[str, Constant] | None = None,
    ) -> UndirectedEdgeId:
        with self._lock:
            return self._graph.add_undirected_edge(
                key, endpoint_a, endpoint_b, labels, properties
            )

    def set_property(
        self, element: GraphElementId, key: str, value: Constant
    ) -> None:
        with self._lock:
            self._graph.set_property(element, key, value)

    def remove_node(self, node: NodeId) -> None:
        with self._lock:
            self._graph.remove_node(node)

    def remove_edge(self, edge: DirectedEdgeId) -> None:
        with self._lock:
            self._graph.remove_edge(edge)

    def remove_undirected_edge(self, edge: UndirectedEdgeId) -> None:
        with self._lock:
            self._graph.remove_undirected_edge(edge)

    # ------------------------------------------------------------------
    # Prepared queries (plan cache)
    # ------------------------------------------------------------------

    def prepare(
        self, query: str | ast.Query, config: EngineConfig | None = None
    ) -> PreparedQuery:
        """Parse/typecheck/compile once; memoised per (query, config).

        Both concrete-syntax strings and :mod:`repro.gpc.ast` queries
        are accepted (AST nodes are hashable, so either keys the
        cache).
        """
        config = config or self.config
        key = (query, config)
        return self._plan_cache.get_or_create(
            key, lambda: PreparedQuery(query, config)
        )

    def explain(
        self,
        query: str | ast.Query,
        config: EngineConfig | None = None,
        *,
        analyze: bool = False,
    ) -> str:
        """The planner's strategy summary for ``query`` against the
        current graph version (joins, shared variables, cardinality
        estimates, ``shortest`` start/end pruning).

        ``analyze=True`` additionally *runs* the query (cache-bypassed)
        and appends the observed execution counters — answer count,
        elapsed time, NFA/join/deepening work — so the planner's
        estimates can be compared against what actually happened.
        """
        prepared = self.prepare(query, config)
        snap = self.snapshot()
        report = prepared.explain(snap)
        if not analyze:
            return report
        counters = EvalCounters()
        started = time.perf_counter()
        with use_counters(counters):
            result = prepared.execute(snap)
        elapsed = time.perf_counter() - started
        self.stats.engine.merge(counters)
        observed = explain_counters(
            counters, answers=len(result), elapsed_s=elapsed
        )
        sections = [report, observed]
        estimates = self._plan_estimates(prepared, snap)
        if estimates is not None:
            sections.append(
                explain_estimates(
                    estimates, answers=len(result), counters=counters
                )
            )
        return "\n".join(sections)

    def lint(
        self, query: str | ast.Query, config: EngineConfig | None = None
    ):
        """Static-analysis diagnostics for ``query``, without touching
        the graph.

        Total: queries that fail to parse or typecheck yield an error
        diagnostic (``GPC000`` / ``GPC001``) instead of raising, so the
        caller can lint untrusted input in one call. Well-formed
        queries go through the (plan-cached) prepared query, so linting
        a query that will later be evaluated costs nothing extra.
        Returns a tuple of :class:`~repro.gpc.analysis.Diagnostic`.
        """
        try:
            prepared = self.prepare(query, config)
        except GPCError:
            return lint_query(query)
        return prepared.diagnostics

    # ------------------------------------------------------------------
    # Evaluation (result cache + snapshots)
    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: str | ast.Query,
        config: EngineConfig | None = None,
        *,
        use_cache: bool = True,
    ) -> frozenset[Answer]:
        """Evaluate ``query`` against the current graph version.

        Results are set-identical to one-shot
        ``Evaluator(graph, config).evaluate(parse_query(query))``; the
        service merely amortises compilation (plan cache), adjacency
        materialisation (snapshot memo) and repeated evaluation
        (result cache). Cached entries survive mutations whose deltas
        are disjoint from the query's read footprint — the semantic
        check proves the answers unchanged before re-serving them.
        """
        config = config or self.config
        started = time.perf_counter()
        # Snapshot first and validate cached entries against the
        # snapshot's own version: a concurrent mutation then yields a
        # version mismatch (resolved by the delta/footprint check)
        # rather than a stale entry served as current.
        snap = self.snapshot()
        result_key = (query, config)
        cache_outcome = "bypass"
        if use_cache:
            with span("service.cache_probe") as probe:
                cached, cache_outcome = self._result_cache.get_with_outcome(
                    result_key, snap.version
                )
                probe.set_attr("hit", cached is not None)
            if cached is not None:
                self._record_query(started)
                self._record_insight(
                    query, started, answers=len(cached), cache=cache_outcome
                )
                return cached
        else:
            # A deliberate cache skip is not a lookup: count it as a
            # bypass so hit_rate only reflects real cache probes.
            with self._lock:
                self.stats.result_cache.bypasses += 1
        with span("service.plan"):
            prepared = self.prepare(query, config)
        estimates = self._plan_estimates(prepared, snap)
        try:
            result, counters = self._execute(prepared, snap)
        except Exception as exc:
            self._record_insight(
                query,
                started,
                cache=cache_outcome,
                error=True,
                timeout=isinstance(exc, DeadlineExceededError),
            )
            raise
        if use_cache:
            self._result_cache.put(
                result_key, snap.version, prepared.footprint, result
            )
        self._record_query(started)
        self._record_insight(
            query,
            started,
            answers=len(result),
            cache=cache_outcome,
            counters=counters,
            estimates=estimates,
        )
        return result

    def _plan_estimates(self, prepared: PreparedQuery, snap: GraphSnapshot):
        """The planner's pre-execution estimates, or ``None``.

        ``None`` both when insights are disabled (skip the work) and
        when estimation rejects the query shape — estimates feed
        observability only and must never fail an evaluation.
        """
        if not self.insights.enabled:
            return None
        try:
            return prepared.estimates(snap)
        except Exception:
            return None

    def _record_insight(
        self,
        query,
        started: float,
        *,
        answers: int | None = None,
        cache: str | None = None,
        counters: EvalCounters | None = None,
        estimates=None,
        error: bool = False,
        timeout: bool = False,
    ) -> None:
        """Fold one evaluation into the insights registry.

        Stamps the fingerprint onto the active root span so slow-log
        entries in the trace store cross-link to ``GET /insights``.
        """
        if not self.insights.enabled:
            return
        root = current_span()
        fingerprint = self.insights.record(
            query,
            latency_s=time.perf_counter() - started,
            answers=answers,
            cache=cache,
            counters=counters,
            estimates=estimates,
            error=error,
            timeout=timeout,
            trace_id=root.trace_id if root else None,
        )
        if root and fingerprint is not None:
            root.set_attr("fingerprint", fingerprint)

    def _execute(
        self,
        prepared: PreparedQuery,
        snap: GraphSnapshot,
        *,
        start_restriction=None,
    ) -> tuple[frozenset[Answer], EvalCounters]:
        """Run one prepared execution with engine work accounting.

        A fresh :class:`EvalCounters` is made ambient for the call, then
        merged into the service-wide aggregate and — when a trace is
        active — attached to the ``service.eval`` span. Returns the
        answers together with the per-call counters (the observed side
        of insight plan-quality accounting).
        """
        counters = EvalCounters()
        with span("service.eval") as eval_span:
            try:
                with use_counters(counters):
                    result = prepared.execute(
                        snap, start_restriction=start_restriction
                    )
            finally:
                self.stats.engine.merge(counters)
                if eval_span:
                    eval_span.set_attrs(counters.as_dict())
            eval_span.set_attr("answers", len(result))
        return result, counters

    def evaluate_batch(
        self,
        queries: Sequence[str | ast.Query],
        config: EngineConfig | None = None,
        *,
        use_cache: bool = True,
        return_exceptions: bool = False,
        contexts: "Sequence[contextvars.Context] | None" = None,
    ) -> list[frozenset[Answer]]:
        """Evaluate independent queries concurrently.

        Returns results in input order. Every query is evaluated
        against the same graph snapshot semantics as
        :meth:`evaluate` (answers are frozensets, so the outcome is
        deterministic regardless of thread scheduling).

        A raising query never takes its siblings down: every future is
        drained before anything is re-raised, so sibling queries run to
        completion, their results are cached and their stats recorded.
        With ``return_exceptions=True`` the failing positions hold the
        exception object (so callers keep sibling results); otherwise
        the first failure is raised after the full drain.

        ``contexts`` (one :class:`contextvars.Context` per query)
        carries each caller's ambient state — active trace span,
        deadline — across the executor boundary: pool threads inherit
        the *pool creator's* context, not the submitter's, so without
        this the coalescer's per-request spans would detach. Each
        context must be a distinct copy (a Context cannot be entered
        concurrently).
        """
        if contexts is not None and len(contexts) != len(queries):
            raise ValueError(
                f"contexts ({len(contexts)}) must match "
                f"queries ({len(queries)})"
            )
        with self._lock:
            self.stats.batches += 1
        if not queries:
            return []
        # Submit inside the same lock window that resolves the
        # executor: close() swaps the executor out under this lock and
        # only then shuts it down, so a concurrent close can never
        # invalidate the pool between _ensure_executor and submit
        # ("cannot schedule new futures after shutdown"). close(wait=
        # True) still lets everything submitted here run to completion.
        with self._lock:
            executor = self._ensure_executor()
            if contexts is None:
                futures = [
                    executor.submit(
                        self.evaluate, query, config, use_cache=use_cache
                    )
                    for query in queries
                ]
            else:
                futures = [
                    executor.submit(
                        ctx.run,
                        self.evaluate,
                        query,
                        config,
                        use_cache=use_cache,
                    )
                    for ctx, query in zip(contexts, queries)
                ]
        outcomes: list = []
        for future in futures:
            try:
                outcomes.append(future.result())
            except Exception as exc:
                outcomes.append(exc)
        if not return_exceptions:
            for outcome in outcomes:
                if isinstance(outcome, Exception):
                    raise outcome
        return outcomes

    # ------------------------------------------------------------------
    # Lifecycle / maintenance
    # ------------------------------------------------------------------

    def clear_caches(self) -> None:
        """Drop every cached plan and result (stats are kept)."""
        self._plan_cache.clear()
        self._result_cache.clear()

    def close(self) -> None:
        """Shut the batch thread pool down (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "GraphService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="gpc-service",
                )
            return self._executor

    def _record_query(self, started: float) -> None:
        self.stats.latency.record(time.perf_counter() - started)
        with self._lock:
            self.stats.queries += 1

    def __repr__(self) -> str:
        return (
            f"GraphService(version={self.version}, "
            f"nodes={self._graph.num_nodes}, edges={self._graph.num_edges}, "
            f"queries={self.stats.queries})"
        )
