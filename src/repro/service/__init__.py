"""The query-service runtime: serving-layer reuse on top of the engine.

The paper's evaluator (:mod:`repro.gpc.engine`) is a one-shot
computation: parse, typecheck, compile, evaluate, discard. This
package adds the serving layer a production deployment needs —
prepared statements, versioned snapshots, plan/result caching, batch
concurrency and metrics:

- :mod:`repro.service.service` — the :class:`GraphService` façade;
- :mod:`repro.service.prepared` — :class:`PreparedQuery` (compile
  once, execute against any graph version);
- :mod:`repro.service.cache` — the thread-safe LRU used for plans and
  results;
- :mod:`repro.service.stats` — :class:`ServiceStats` (hit rates,
  latency percentiles).

Cache correctness hinges on :attr:`PropertyGraph.version`: every
mutation bumps it and records a :class:`~repro.graph.delta.GraphDelta`,
result entries are stamped with it, and
:meth:`PropertyGraph.snapshot` memoises per version (deriving small
steps incrementally from the recorded deltas). A stale result entry is
served again only when the footprint/delta intersection *proves* the
interleaving mutations could not change its answers; otherwise it is
invalidated.
"""

from repro.service.cache import LRUCache, SemanticResultCache
from repro.service.prepared import PreparedQuery
from repro.service.service import GraphService
from repro.service.stats import CacheStats, LatencyRecorder, ServiceStats

__all__ = [
    "GraphService",
    "PreparedQuery",
    "LRUCache",
    "SemanticResultCache",
    "CacheStats",
    "LatencyRecorder",
    "ServiceStats",
]
