"""Prepared queries: parse / typecheck / compile once, execute many.

A :class:`PreparedQuery` is the GPC analogue of a prepared statement.
Construction does all graph-independent work exactly once:

- parsing (when given concrete syntax),
- schema inference / type checking (Section 4),
- register-NFA and regular-abstraction compilation for ``shortest``
  evaluation (both memoised in a :class:`~repro.gpc.engine.QueryPlan`).

:meth:`PreparedQuery.execute` then runs the compiled plan against any
graph — or any *version* of a graph — paying only the evaluation cost.
After construction the plan is read-only, so one prepared query can be
executed from many threads concurrently (each execution builds its own
:class:`~repro.gpc.engine.Evaluator` over an immutable snapshot).
"""

from __future__ import annotations

from repro.gpc import ast
from repro.gpc.answers import Answer
from repro.gpc.engine import EngineConfig, Evaluator, QueryPlan
from repro.gpc.footprint import QueryFootprint, query_footprint
from repro.gpc.parser import parse_query
from repro.graph.property_graph import PropertyGraph
from repro.graph.snapshot import GraphSnapshot

__all__ = ["PreparedQuery"]


class PreparedQuery:
    """A parsed, typechecked, compiled — and re-executable — query."""

    __slots__ = ("text", "query", "config", "plan", "_footprint")

    def __init__(
        self,
        query: str | ast.Query,
        config: EngineConfig | None = None,
    ):
        if isinstance(query, str):
            self.text: str | None = query
            self.query = parse_query(query)
        else:
            self.text = None
            self.query = query
        self.plan = QueryPlan(config)
        self.config = self.plan.config
        self._footprint: QueryFootprint | None = None
        # Typechecks and compiles every automaton the query can need;
        # raises the same errors one-shot evaluation would.
        self.plan.precompile(self.query)

    @property
    def analysis(self):
        """The static analyzer's verdict for this query (memoised on
        the plan): the simplified query, an unsat proof when one
        exists, and lint diagnostics. See :mod:`repro.gpc.analysis`."""
        return self.plan.analysis(self.query)

    @property
    def diagnostics(self):
        """Static-analysis diagnostics for this query, as a tuple of
        :class:`~repro.gpc.analysis.Diagnostic` records."""
        return self.analysis.diagnostics

    @property
    def footprint(self) -> QueryFootprint:
        """The query's read footprint (memoised; see
        :mod:`repro.gpc.footprint`). Drives semantic result-cache
        invalidation in the service layer."""
        footprint = self._footprint
        if footprint is None:
            footprint = query_footprint(self.query)
            self._footprint = footprint
        return footprint

    def execute(
        self,
        graph: PropertyGraph | GraphSnapshot,
        *,
        start_restriction=None,
    ) -> frozenset[Answer]:
        """Evaluate against ``graph`` reusing the compiled plan.

        Equivalent to ``Evaluator(graph, config).evaluate(query)`` —
        same answers, none of the per-call compilation.

        ``start_restriction`` (a collection of node ids) keeps only the
        answers whose first path starts at one of the given nodes,
        evaluated natively by the engine — the scatter/gather seam used
        by :mod:`repro.cluster` to shard evaluation across workers.
        """
        evaluator = Evaluator(graph, self.config, plan=self.plan)
        return evaluator.evaluate(
            self.query, typecheck=False, start_restriction=start_restriction
        )

    def estimates(self, graph: PropertyGraph | GraphSnapshot):
        """The planner's :class:`~repro.gpc.planner.PlanEstimates` for
        this query over ``graph`` (memoised per graph version on the
        plan). The pre-execution half of estimate-vs-actual insight
        accounting."""
        view = graph.snapshot() if hasattr(graph, "snapshot") else graph
        return self.plan.estimates(self.query, view)

    def explain(self, graph: PropertyGraph | GraphSnapshot | None = None) -> str:
        """The planner's strategy summary for this query.

        Pass a graph (or snapshot) to include cardinality estimates and
        candidate-node counts; without one the summary is
        graph-independent. See :meth:`repro.gpc.engine.QueryPlan.explain`.
        """
        return self.plan.explain(self.query, graph)

    def __repr__(self) -> str:
        shown = self.text if self.text is not None else self.query
        return f"PreparedQuery({shown!r})"
