"""A small thread-safe LRU cache used for plans and results.

Keys must be hashable; the service layer keys plan entries by
``(query, config)`` and result entries by ``(query, config,
graph_version)``, so a graph mutation (version bump) makes every stale
result key simply miss, and the LRU policy eventually evicts the dead
entries without any explicit invalidation walk.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

from repro.service.stats import CacheStats

__all__ = ["LRUCache"]

V = TypeVar("V")

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping with hit/miss/eviction accounting."""

    def __init__(self, capacity: int, stats: CacheStats | None = None):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = stats if stats is not None else CacheStats()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable, default: V = None) -> V:  # type: ignore[assignment]
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value  # type: ignore[return-value]

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], V]) -> V:
        """Return the cached value, creating and caching it on miss.

        The factory runs outside the lock (it may be expensive, e.g. a
        query compilation); concurrent misses on the same key may both
        run it, and the last writer wins — acceptable because cached
        values are idempotently recomputable.
        """
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value  # type: ignore[return-value]
        created = factory()
        self.put(key, created)
        return created

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        return (
            f"LRUCache(capacity={self.capacity}, size={len(self)}, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"evictions={self.stats.evictions})"
        )
