"""Caches for the serving layer: a thread-safe LRU and the
footprint-aware result cache.

:class:`LRUCache` is the generic building block (used for prepared
plans). ``get_or_create`` is *single-flight*: concurrent misses on the
same key share one factory run — the first caller compiles, the rest
wait on a per-key event and read the published value — so a thundering
herd of identical cold queries compiles the plan once, not once per
thread.

:class:`SemanticResultCache` keys entries by ``(query, config)`` and
stores the graph version, the query's read footprint
(:class:`~repro.gpc.footprint.QueryFootprint`) and the answer set
together. On lookup at a newer version it fetches the delta chain the
graph recorded since the entry's version
(:meth:`~repro.graph.property_graph.PropertyGraph.deltas_since`) and
intersects the footprint with the chain's
:class:`~repro.graph.delta.DeltaSummary`:

- **disjoint** — the mutations provably cannot change this query's
  answers; the entry is *re-stamped* to the new version and served (a
  hit that survives the mutation);
- **intersecting** (or the chain is no longer available, or the
  footprint is unbounded) — the entry is invalidated and the caller
  recomputes.

Invalidation is lazy (checked at lookup) which is observably
equivalent to an eager walk on every version bump, but costs nothing
for entries never asked about again.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

from repro.graph.delta import summarize_deltas
from repro.obs.trace import span
from repro.service.stats import CacheStats

__all__ = ["LRUCache", "SemanticResultCache"]

V = TypeVar("V")

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping with hit/miss/eviction accounting."""

    def __init__(self, capacity: int, stats: CacheStats | None = None):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = stats if stats is not None else CacheStats()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        #: Per-key in-flight markers for single-flight get_or_create.
        self._inflight: dict[Hashable, threading.Event] = {}

    def get(self, key: Hashable, default: V = None) -> V:  # type: ignore[assignment]
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value  # type: ignore[return-value]

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], V]) -> V:
        """Return the cached value, creating and caching it on miss.

        Single-flight per key: the first thread to miss becomes the
        creator and runs ``factory`` outside the lock (it may be an
        expensive compilation); concurrent misses on the same key wait
        for the creator and then read the published value, counted as
        ``dedup_waits`` (plus the eventual hit). If the factory raises,
        the error propagates to the creator and one of the waiters
        retries as the new creator.
        """
        while True:
            with self._lock:
                value = self._entries.get(key, _MISSING)
                if value is not _MISSING:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return value  # type: ignore[return-value]
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    self.stats.misses += 1
                    creating = True
                else:
                    self.stats.dedup_waits += 1
                    creating = False
            if not creating:
                # The wait can dominate a request's plan stage (another
                # thread is compiling); make it visible in traces.
                with span("cache.dedup_wait"):
                    event.wait()
                continue  # re-probe: value published, or factory failed
            try:
                created = factory()
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                event.set()
                raise
            self.put(key, created)
            with self._lock:
                self._inflight.pop(key, None)
            event.set()
            return created

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        return (
            f"LRUCache(capacity={self.capacity}, size={len(self)}, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"evictions={self.stats.evictions})"
        )


class _ResultEntry:
    """One cached answer set with its version stamp and footprint."""

    __slots__ = ("version", "footprint", "result")

    def __init__(self, version: int, footprint, result):
        self.version = version
        self.footprint = footprint
        self.result = result


class SemanticResultCache:
    """LRU result cache with footprint-based invalidation.

    ``delta_source`` is
    :meth:`~repro.graph.property_graph.PropertyGraph.deltas_since` (or
    any ``version -> chain | None`` callable); without one — or when it
    returns ``None`` because the bounded delta log no longer covers the
    entry's version — a stale entry simply invalidates, reproducing
    the old global per-version flush.
    """

    def __init__(
        self,
        capacity: int,
        stats: CacheStats | None = None,
        *,
        delta_source=None,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = stats if stats is not None else CacheStats()
        self._delta_source = delta_source
        self._entries: OrderedDict[Hashable, _ResultEntry] = OrderedDict()
        self._lock = threading.Lock()
        #: Memoised chain summaries keyed by (from_version, to_version).
        #: Versions are monotonic, so entries never go stale; the dict
        #: is bounded FIFO. One mutation followed by K stale-entry
        #: lookups summarises the chain once, not K times.
        self._summary_memo: OrderedDict = OrderedDict()

    _SUMMARY_MEMO_CAPACITY = 32

    def _chain_summary(self, from_version: int):
        """The (memoised) summary of the deltas since ``from_version``,
        or ``None`` when the log no longer covers them."""
        deltas = self._delta_source(from_version)
        if deltas is None:
            return None
        to_version = deltas[-1].version if deltas else from_version
        memo_key = (from_version, to_version)
        with self._lock:
            summary = self._summary_memo.get(memo_key)
        if summary is not None:
            return summary
        summary = summarize_deltas(deltas)
        with self._lock:
            self._summary_memo[memo_key] = summary
            while len(self._summary_memo) > self._SUMMARY_MEMO_CAPACITY:
                self._summary_memo.popitem(last=False)
        return summary

    def get(self, key: Hashable, version: int):
        """The cached answers valid at ``version``, or ``None``.

        See :meth:`get_with_outcome` for the full lookup semantics.
        """
        return self.get_with_outcome(key, version)[0]

    def get_with_outcome(self, key: Hashable, version: int):
        """``(result, outcome)`` for a lookup at ``version``.

        ``outcome`` is one of ``"hit"`` / ``"restamp"`` / ``"miss"`` /
        ``"invalidated"``; ``result`` is ``None`` unless the outcome is
        a hit or restamp. Exact version match is a plain hit. An older
        stamp triggers the semantic check; surviving entries are
        re-stamped to ``version`` so the next lookup is exact again. A
        *newer* stamp (a reader holding an older snapshot than a
        concurrent writer) is treated as a miss — recomputing against
        the older snapshot is always sound.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None, "miss"
            if entry.version == version:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry.result, "hit"
            if entry.version > version or self._delta_source is None:
                self.stats.misses += 1
                return None, "miss"
            footprint = entry.footprint
            entry_version = entry.version
        # Delta fetch and footprint intersection run outside the lock;
        # the chain may extend past `version` if the graph has moved on
        # — a superset of the relevant mutations, so disjointness is
        # still a proof.
        summary = None
        if footprint is not None:
            with span("cache.delta_check"):
                summary = self._chain_summary(entry_version)
        with self._lock:
            current = self._entries.get(key)
            if current is not entry or entry.version != entry_version:
                self.stats.misses += 1  # raced with a concurrent update
                return None, "miss"
            if (
                summary is not None
                and footprint is not None
                and not footprint.affected_by(summary)
            ):
                entry.version = version
                self._entries.move_to_end(key)
                self.stats.hits += 1
                self.stats.restamps += 1
                return entry.result, "restamp"
            del self._entries[key]
            self.stats.misses += 1
            self.stats.invalidations += 1
            return None, "invalidated"

    def put(self, key: Hashable, version: int, footprint, result) -> None:
        """Store ``result`` computed at ``version`` with ``footprint``.

        A racing writer with an older snapshot never downgrades a
        newer stamp.
        """
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                if existing.version > version:
                    return
                self._entries.move_to_end(key)
            self._entries[key] = _ResultEntry(version, footprint, result)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        return (
            f"SemanticResultCache(capacity={self.capacity}, "
            f"size={len(self)}, hits={self.stats.hits}, "
            f"misses={self.stats.misses}, restamps={self.stats.restamps}, "
            f"invalidations={self.stats.invalidations})"
        )
