"""Serving metrics for the query-service runtime.

:class:`ServiceStats` aggregates cache hit/miss/eviction counters, a
bounded latency reservoir with percentile estimation, and coarse
throughput counters. All updates go through methods that the owning
:class:`~repro.service.service.GraphService` serialises with its own
lock, so the recorded numbers stay consistent under concurrent batch
evaluation.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field

from repro.obs.counters import EvalCounters

__all__ = ["CacheStats", "LatencyRecorder", "ServiceStats"]

#: Fixed histogram bucket upper bounds (seconds), Prometheus-style:
#: sub-millisecond through ten seconds in a 1-2.5-5 progression.
LATENCY_BUCKETS_S = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


@dataclass
class CacheStats:
    """Hit/miss/eviction/bypass counters for one cache.

    ``bypasses`` counts requests that deliberately skipped the cache
    (e.g. ``evaluate(use_cache=False)``). They are *not* lookups: a
    bypass never probed the cache, so counting it as a miss would
    silently drag ``hit_rate`` down.

    The footprint-aware result cache adds three counters:
    ``restamps`` — stale entries proven untouched by the interleaving
    mutations and re-stamped to the new version (these also count as
    hits); ``invalidations`` — stale entries dropped because their
    footprint intersected the mutations (these also count as misses);
    ``dedup_waits`` — ``get_or_create`` callers that waited on another
    thread's in-flight factory instead of running it again.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0
    restamps: int = 0
    invalidations: int = 0
    dedup_waits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "restamps": self.restamps,
            "invalidations": self.invalidations,
            "dedup_waits": self.dedup_waits,
            "hit_rate": self.hit_rate,
        }


class LatencyRecorder:
    """A bounded reservoir of recent latencies with percentiles.

    Keeps the most recent ``capacity`` samples (seconds). Percentiles
    use the nearest-rank method over the retained window — adequate
    for serving dashboards without unbounded memory.
    """

    def __init__(self, capacity: int = 4096):
        self._samples: deque[float] = deque(maxlen=capacity)
        self._count = 0
        self._total = 0.0
        #: All-time fixed-bucket counts (non-cumulative, one slot per
        #: LATENCY_BUCKETS_S bound plus a final +Inf overflow slot) —
        #: unlike the reservoir these never forget, so the /metrics
        #: histograms remain monotone counters as Prometheus expects.
        self._buckets = [0] * (len(LATENCY_BUCKETS_S) + 1)
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        index = bisect_left(LATENCY_BUCKETS_S, seconds)
        with self._lock:
            self._samples.append(seconds)
            self._count += 1
            self._total += seconds
            self._buckets[index] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]) of the window."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            window = sorted(self._samples)
        return _nearest_rank(window, p)

    def summary(self) -> dict[str, float]:
        """A consistent one-shot summary.

        Takes a single locked copy of the reservoir and sorts it once;
        mean and every percentile are derived from that same copy, so
        the summary is internally consistent even under concurrent
        ``record`` calls (and three times cheaper than re-locking and
        re-sorting per percentile).

        ``mean_s`` and the percentiles all describe the *retained
        window* — once the reservoir wraps, an all-time mean next to
        windowed percentiles would mix two populations and drift apart
        from them. The all-time figures stay available under their own
        keys: ``count`` / ``total_s`` (with ``window`` saying how many
        samples the distribution figures summarise).
        """
        with self._lock:
            window = sorted(self._samples)
            count = self._count
            total = self._total
        retained = len(window)
        return {
            "count": count,
            "total_s": total,
            "window": retained,
            "mean_s": sum(window) / retained if retained else 0.0,
            "p50_s": _nearest_rank(window, 50),
            "p90_s": _nearest_rank(window, 90),
            "p99_s": _nearest_rank(window, 99),
        }

    def histogram(self) -> dict[str, object]:
        """All-time fixed-bucket counts for Prometheus exposition.

        ``buckets`` pairs each :data:`LATENCY_BUCKETS_S` upper bound
        with its (non-cumulative) count; samples above the largest
        bound are only reflected in ``count``. The renderer
        (:func:`repro.obs.metrics.histogram_lines`) accumulates and
        adds the ``+Inf`` bucket.
        """
        with self._lock:
            counts = list(self._buckets)
            count = self._count
            total = self._total
        return {
            "buckets": [
                (bound, counts[i]) for i, bound in enumerate(LATENCY_BUCKETS_S)
            ],
            "sum": total,
            "count": count,
        }


def _nearest_rank(window: list[float], p: float) -> float:
    """Nearest-rank percentile over an already-sorted window."""
    if not window:
        return 0.0
    rank = max(1, -(-len(window) * p // 100))  # ceil without floats
    return window[int(rank) - 1]


@dataclass
class ServiceStats:
    """Aggregate metrics exposed by :class:`GraphService.stats`."""

    plan_cache: CacheStats = field(default_factory=CacheStats)
    result_cache: CacheStats = field(default_factory=CacheStats)
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    queries: int = 0
    batches: int = 0
    snapshots_built: int = 0
    #: Of the ``snapshots_built``, how many were derived incrementally
    #: from the previous version's snapshot instead of rebuilt.
    snapshots_derived: int = 0
    #: Cumulative wall-clock seconds spent interning ids and building
    #: (or incrementally patching) CSR snapshot columns.
    snapshot_build_s: float = 0.0
    #: Cumulative CSR adjacency rows patched copy-on-write by
    #: incremental snapshot derivations.
    csr_rows_patched: int = 0
    #: Aggregate engine work counters across every evaluation (merged
    #: per-call from the ambient EvalCounters; see repro.obs.counters).
    engine: EvalCounters = field(default_factory=EvalCounters)
    #: The service's fingerprint-aggregated workload registry
    #: (:class:`repro.obs.insights.InsightsRegistry`), set by
    #: ``GraphService``; ``None`` for stats objects built standalone.
    insights: object | None = None

    def as_dict(self) -> dict[str, object]:
        """A JSON-serialisable flattening of every metric."""
        result = {
            "queries": self.queries,
            "batches": self.batches,
            "snapshots_built": self.snapshots_built,
            "snapshots_derived": self.snapshots_derived,
            "snapshot_build_s": self.snapshot_build_s,
            "csr_rows_patched": self.csr_rows_patched,
            "plan_cache": self.plan_cache.as_dict(),
            "result_cache": self.result_cache.as_dict(),
            "latency": self.latency.summary(),
            "engine": self.engine.as_dict(),
        }
        if self.insights is not None:
            result["insights"] = self.insights.counters()
        return result
