"""Arithmetic conditions — the Section 7 aggregation extension.

Terms are built from property values ``y.k``, the group-count
aggregate ``#(x)`` (the number of bindings collected for a group
variable), integer constants, addition and multiplication. An
*arithmetic condition* equates two terms; Proposition 14 shows that
adding such conditions makes (data) complexity undecidable, via the
Diophantine gadget of :mod:`repro.extensions.diophantine`.

:class:`ArithConditioned` is a :class:`~repro.gpc.ast.PatternExtension`
filtering a pattern's matches by an arithmetic equation, mirroring the
core ``Conditioned`` construct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union as TUnion

from repro.errors import GPCTypeError
from repro.gpc import ast
from repro.gpc.assignments import Assignment
from repro.gpc.values import GroupValue
from repro.graph.ids import DirectedEdgeId, NodeId, UndirectedEdgeId
from repro.graph.property_graph import PropertyGraph
from repro.gpc.types import GroupType, is_singleton

__all__ = [
    "TermConst",
    "PropertyTerm",
    "Count",
    "TermSum",
    "TermProduct",
    "Term",
    "ArithConditioned",
    "evaluate_term",
    "term_variables",
]


@dataclass(frozen=True)
class TermConst:
    """An integer constant."""

    value: int


@dataclass(frozen=True)
class PropertyTerm:
    """``y.k`` — a numeric property of a singleton variable."""

    variable: str
    key: str


@dataclass(frozen=True)
class Count:
    """``#(x)`` — the number of bindings of a group variable."""

    variable: str


@dataclass(frozen=True)
class TermSum:
    left: "Term"
    right: "Term"


@dataclass(frozen=True)
class TermProduct:
    left: "Term"
    right: "Term"


Term = TUnion[TermConst, PropertyTerm, Count, TermSum, TermProduct]


def term_variables(term: Term) -> frozenset[str]:
    if isinstance(term, TermConst):
        return frozenset()
    if isinstance(term, (PropertyTerm, Count)):
        return frozenset({term.variable})
    return term_variables(term.left) | term_variables(term.right)


def evaluate_term(
    term: Term, graph: PropertyGraph, assignment: Assignment
) -> Optional[int]:
    """Evaluate a term; ``None`` when undefined (missing property,
    non-numeric value). Undefined operands make comparisons false,
    matching the paper's treatment of missing properties."""
    if isinstance(term, TermConst):
        return term.value
    if isinstance(term, PropertyTerm):
        value = assignment.get(term.variable)
        if not isinstance(value, (NodeId, DirectedEdgeId, UndirectedEdgeId)):
            return None
        raw = graph.get_property(value, term.key)
        if isinstance(raw, bool) or not isinstance(raw, int):
            return None
        return raw
    if isinstance(term, Count):
        value = assignment.get(term.variable)
        if not isinstance(value, GroupValue):
            return None
        return len(value)
    if isinstance(term, (TermSum, TermProduct)):
        left = evaluate_term(term.left, graph, assignment)
        right = evaluate_term(term.right, graph, assignment)
        if left is None or right is None:
            return None
        return left + right if isinstance(term, TermSum) else left * right
    raise TypeError(f"not a term: {term!r}")


@dataclass(frozen=True)
class ArithConditioned(ast.PatternExtension):
    """``pi << t1 = t2 >>`` with arithmetic terms (Section 7)."""

    pattern: ast.Pattern
    left: Term
    right: Term

    # -- PatternExtension hooks ------------------------------------------

    def children(self) -> tuple[ast.Pattern, ...]:
        return (self.pattern,)

    def infer_schema_ext(self, child_schemas: list[dict]) -> dict:
        (schema,) = child_schemas
        for term in (self.left, self.right):
            self._check_term(term, schema)
        return schema

    def _check_term(self, term: Term, schema: dict) -> None:
        for variable in term_variables(term):
            if variable not in schema:
                raise GPCTypeError(
                    f"arithmetic condition mentions unbound variable "
                    f"{variable!r}"
                )
        self._check_term_shapes(term, schema)

    def _check_term_shapes(self, term: Term, schema: dict) -> None:
        if isinstance(term, PropertyTerm):
            if not is_singleton(schema[term.variable]):
                raise GPCTypeError(
                    f"property term {term.variable}.{term.key} needs a "
                    f"singleton variable, got {schema[term.variable]}"
                )
        elif isinstance(term, Count):
            if not isinstance(schema[term.variable], GroupType):
                raise GPCTypeError(
                    f"#({term.variable}) needs a group variable, got "
                    f"{schema[term.variable]}"
                )
        elif isinstance(term, (TermSum, TermProduct)):
            self._check_term_shapes(term.left, schema)
            self._check_term_shapes(term.right, schema)

    def min_path_length_ext(self, child_mins: list[int]) -> int:
        return child_mins[0]

    def max_path_length_ext(self, child_maxes: list[Optional[int]]) -> Optional[int]:
        return child_maxes[0]

    def evaluate_ext(self, evaluator, max_length: int):
        graph = evaluator.graph
        for path, mu in evaluator.evaluate(self.pattern, max_length):
            left = evaluate_term(self.left, graph, mu)
            right = evaluate_term(self.right, graph, mu)
            if left is not None and left == right:
                yield (path, mu)

    def compile_abstraction_ext(self, builder, compile_child):
        # Arithmetic conditions are dropped in the regular abstraction,
        # like ordinary conditions.
        return compile_child(self.pattern)
