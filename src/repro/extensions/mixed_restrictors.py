"""Restrictors inside patterns — the Section 7 placement discussion.

The paper explains why GQL abandoned freely mixing restrictors: with
``trail [ shortest pi1 ] pi2``, the GQL rationale ("out of all the
answers to the query, choose the one with the shortest witness") can
force the *shortest* subpattern onto a path that is not shortest
between its endpoints. This module implements both readings so the
anomaly can be demonstrated and measured:

- **local semantics** (:class:`RestrictedSubpattern`): the restrictor
  is applied to the subpattern in isolation — the naive reading;
- **GQL-rationale semantics** (:func:`evaluate_gql_rationale`): the
  outer restrictor filters whole-query answers first, and *then* the
  inner ``shortest`` minimises the witness length among the survivors.

:func:`section7_anomaly` reproduces the paper's 3-node counterexample
end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import RestrictorError
from repro.graph.generators import section7_counterexample
from repro.graph.paths import Path, is_simple, is_trail
from repro.graph.property_graph import PropertyGraph
from repro.gpc import ast
from repro.gpc.answers import Answer
from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.types import PATH

__all__ = [
    "RestrictedSubpattern",
    "WitnessMarked",
    "evaluate_gql_rationale",
    "section7_anomaly",
    "AnomalyReport",
]


@dataclass(frozen=True)
class RestrictedSubpattern(ast.PatternExtension):
    """``rho pi`` as a *pattern* (not a query) under local semantics.

    ``trail``/``simple`` filter the subpattern's matches; ``shortest``
    keeps per-endpoint-pair minimum-length submatches. Local
    ``shortest`` is evaluated within the enclosing length bound, which
    is exact whenever the bound covers the subpattern's matches (always
    true under a query-level restrictor).
    """

    restrictor: ast.Restrictor
    pattern: ast.Pattern

    def children(self) -> tuple[ast.Pattern, ...]:
        return (self.pattern,)

    def infer_schema_ext(self, child_schemas: list[dict]) -> dict:
        (schema,) = child_schemas
        return schema

    def min_path_length_ext(self, child_mins: list[int]) -> int:
        return child_mins[0]

    def max_path_length_ext(self, child_maxes) -> Optional[int]:
        return child_maxes[0]

    def evaluate_ext(self, evaluator, max_length: int):
        matches = evaluator.evaluate(self.pattern, max_length)
        if self.restrictor.mode == "trail":
            matches = frozenset(m for m in matches if is_trail(m[0]))
        elif self.restrictor.mode == "simple":
            matches = frozenset(m for m in matches if is_simple(m[0]))
        if self.restrictor.shortest:
            minima: dict[tuple, int] = {}
            for path, _ in matches:
                key = (path.src, path.tgt)
                if key not in minima or len(path) < minima[key]:
                    minima[key] = len(path)
            matches = frozenset(
                (path, mu)
                for path, mu in matches
                if len(path) == minima[(path.src, path.tgt)]
            )
        return matches

    def compile_abstraction_ext(self, builder, compile_child):
        # Restrictors only remove matches; the child over-approximates.
        return compile_child(self.pattern)


@dataclass(frozen=True)
class WitnessMarked(ast.PatternExtension):
    """Marks a subpattern and records its matched subpath in a hidden
    ``Path``-typed binding, so a global post-pass can minimise it."""

    pattern: ast.Pattern
    witness: str

    def children(self) -> tuple[ast.Pattern, ...]:
        return (self.pattern,)

    def own_variables(self) -> frozenset[str]:
        return frozenset({self.witness})

    def infer_schema_ext(self, child_schemas: list[dict]) -> dict:
        (schema,) = child_schemas
        if self.witness in schema:
            raise RestrictorError(
                f"witness variable {self.witness!r} clashes with the pattern"
            )
        return {**schema, self.witness: PATH}

    def min_path_length_ext(self, child_mins: list[int]) -> int:
        return child_mins[0]

    def max_path_length_ext(self, child_maxes) -> Optional[int]:
        return child_maxes[0]

    def evaluate_ext(self, evaluator, max_length: int):
        for path, mu in evaluator.evaluate(self.pattern, max_length):
            yield (path, mu.bind(self.witness, path))

    def compile_abstraction_ext(self, builder, compile_child):
        return compile_child(self.pattern)


def evaluate_gql_rationale(
    graph: PropertyGraph,
    outer: ast.Restrictor,
    pattern_with_marker: ast.Pattern,
    witness: str,
    config: EngineConfig | None = None,
) -> frozenset[Answer]:
    """Evaluate under the GQL rationale: apply the *outer* restrictor
    to whole answers, then keep only answers whose recorded witness
    subpath (bound to ``witness`` by a :class:`WitnessMarked` marker)
    has minimum length among survivors with the same witness endpoints.
    The hidden binding is removed from the returned answers."""
    evaluator = Evaluator(graph, config)
    answers = evaluator.evaluate(ast.PatternQuery(outer, pattern_with_marker))
    minima: dict[tuple, int] = {}
    for answer in answers:
        sub = answer.assignment[witness]
        if not isinstance(sub, Path):
            raise RestrictorError(
                f"witness marker {witness!r} bound {type(sub).__name__}, "
                "expected a path"
            )
        key = (sub.src, sub.tgt)
        if key not in minima or len(sub) < minima[key]:
            minima[key] = len(sub)
    out = []
    for answer in answers:
        sub = answer.assignment[witness]
        if len(sub) == minima[(sub.src, sub.tgt)]:
            out.append(
                Answer(answer.paths, answer.assignment.drop((witness,)))
            )
    return frozenset(out)


@dataclass(frozen=True)
class AnomalyReport:
    """Measured outcome of the Section 7 counterexample."""

    true_shortest_length: int
    local_semantics_answers: int
    global_semantics_answers: int
    global_witness_length: int | None

    @property
    def anomaly_present(self) -> bool:
        """True when the surviving 'shortest' witness is longer than
        the true shortest path — the paper's counter-intuitive case."""
        return (
            self.global_witness_length is not None
            and self.global_witness_length > self.true_shortest_length
        )


def _counterexample_parts() -> tuple[ast.Pattern, ast.Pattern]:
    # shortest (:A) -[x]->{0,} (:B)   and   (:B) <-[y:a]-{0,} (:A)
    inner = ast.concat(
        ast.node(label="A"),
        ast.Repeat(ast.forward("x"), 0, None),
        ast.node(label="B"),
    )
    tail = ast.concat(
        ast.node(label="B"),
        ast.Repeat(ast.backward("y", "a"), 0, None),
        ast.node(label="A"),
    )
    return inner, tail


def section7_anomaly(
    config: EngineConfig | None = None,
) -> AnomalyReport:
    """Reproduce the Section 7 counterexample on its 3-node graph."""
    graph = section7_counterexample()
    inner, tail = _counterexample_parts()

    # Local semantics: inner shortest evaluated in isolation.
    local_pattern = ast.Concat(
        RestrictedSubpattern(ast.Restrictor.SHORTEST, inner), tail
    )
    evaluator = Evaluator(graph, config)
    local = evaluator.evaluate(
        ast.PatternQuery(ast.Restrictor.TRAIL, local_pattern)
    )

    # GQL rationale: trail first, then minimise the witness.
    marked = ast.Concat(WitnessMarked(inner, "__w"), tail)
    global_answers = evaluate_gql_rationale(
        graph, ast.Restrictor.TRAIL, marked, "__w", config
    )

    # The true shortest A -> B distance, for reference.
    reference = evaluator.evaluate(ast.PatternQuery(ast.Restrictor.SHORTEST, inner))
    true_shortest = min(len(answer.path) for answer in reference)

    witness_length: int | None = None
    for answer in global_answers:
        x_binding = answer.assignment["x"]
        witness_length = len(x_binding.entries)  # one entry per edge
        break
    return AnomalyReport(
        true_shortest_length=true_shortest,
        local_semantics_answers=len(local),
        global_semantics_answers=len(global_answers),
        global_witness_length=witness_length,
    )
