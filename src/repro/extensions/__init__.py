"""Section 7 extensions of the core calculus.

Each extension is implemented against the
:class:`~repro.gpc.ast.PatternExtension` protocol, leaving the core
calculus modules untouched:

- :mod:`repro.extensions.arithmetic` — arithmetic conditions with the
  group-count aggregate ``#(x)`` (shown undecidable in Prop. 14);
- :mod:`repro.extensions.diophantine` — the Appendix D gadget that
  reduces Hilbert's 10th problem to GPC-with-arithmetic, plus a
  bounded solver for decidable instances;
- :mod:`repro.extensions.label_expressions` — complex label
  expressions (conjunction, disjunction, negation, wildcard);
- :mod:`repro.extensions.mixed_restrictors` — restrictors inside
  patterns and the Section 7 placement counterexample;
- :mod:`repro.extensions.bag_semantics` — a bag-semantics evaluator
  counting derivations.
"""

from repro.extensions.arithmetic import (
    ArithConditioned,
    Count,
    PropertyTerm,
    TermConst,
    TermProduct,
    TermSum,
    evaluate_term,
)
from repro.extensions.diophantine import (
    DiophantineInstance,
    build_gadget_graph,
    build_gadget_pattern,
    solve_bounded,
)
from repro.extensions.label_expressions import (
    LabelAnd,
    LabelAtom,
    LabelNot,
    LabelOr,
    LabelWildcard,
    NodeWithLabelExpr,
    EdgeWithLabelExpr,
    satisfies_label_expr,
)
from repro.extensions.mixed_restrictors import (
    RestrictedSubpattern,
    evaluate_gql_rationale,
    section7_anomaly,
)
from repro.extensions.bag_semantics import BagEvaluator

__all__ = [
    "ArithConditioned",
    "Count",
    "PropertyTerm",
    "TermConst",
    "TermSum",
    "TermProduct",
    "evaluate_term",
    "DiophantineInstance",
    "build_gadget_graph",
    "build_gadget_pattern",
    "solve_bounded",
    "LabelAtom",
    "LabelAnd",
    "LabelOr",
    "LabelNot",
    "LabelWildcard",
    "NodeWithLabelExpr",
    "EdgeWithLabelExpr",
    "satisfies_label_expr",
    "RestrictedSubpattern",
    "evaluate_gql_rationale",
    "section7_anomaly",
    "BagEvaluator",
]
