"""Bag semantics — counting derivations (a Section 7 extension).

The core calculus has set semantics (like relational calculus); SQL
and GQL use bags. This evaluator mirrors the bounded compositional
evaluator but returns a multiplicity per answer: the number of
distinct *derivations* producing it (e.g. two different unions
producing the same match yield multiplicity 2, as do two different
factorizations of a repetition).

Termination caveat: with edgeless repetition bodies the number of
derivations of a single answer can be infinite (that is exactly why
Section 5 needs the three ``collect`` approaches), so this evaluator
requires every repetition body to have positive minimum length and
raises :class:`~repro.errors.CollectError` otherwise.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import CollectError
from repro.graph.ids import NodeId
from repro.graph.paths import Path, is_simple, is_trail
from repro.graph.property_graph import PropertyGraph
from repro.gpc import ast
from repro.gpc.assignments import Assignment
from repro.gpc.collect import CollectAccumulator, CollectMode, empty_group_assignment
from repro.gpc.conditions import satisfies
from repro.gpc.minlength import min_path_length, validate_approach1
from repro.gpc.semantics import Match
from repro.gpc.typing import infer_schema
from repro.gpc.values import Nothing

__all__ = ["BagEvaluator"]


class BagEvaluator:
    """Evaluates patterns under bag semantics, bounded by path length."""

    def __init__(self, graph: PropertyGraph):
        self.graph = graph
        self._memo: dict[tuple[ast.Pattern, int], Counter] = {}

    def evaluate(self, pattern: ast.Pattern, max_length: int) -> Counter:
        """``Counter[(path, assignment)] -> multiplicity``."""
        validate_approach1(pattern)
        return self._eval(pattern, max_length)

    def evaluate_query(self, query: ast.PatternQuery) -> Counter:
        """Bag answers of a restricted pattern query."""
        restrictor = query.restrictor
        if restrictor.mode == "trail":
            bound = self.graph.num_edges
            keep = is_trail
        elif restrictor.mode == "simple":
            bound = self.graph.num_nodes
            keep = is_simple
        else:
            bound = self.graph.num_edges
            keep = lambda _p: True  # noqa: E731 - tiny local predicate
        bag = self.evaluate(query.pattern, bound)
        bag = Counter(
            {match: count for match, count in bag.items() if keep(match[0])}
        )
        if restrictor.shortest:
            minima: dict[tuple[NodeId, NodeId], int] = {}
            for (path, _), _count in bag.items():
                key = (path.src, path.tgt)
                if key not in minima or len(path) < minima[key]:
                    minima[key] = len(path)
            bag = Counter(
                {
                    (path, mu): count
                    for (path, mu), count in bag.items()
                    if len(path) == minima[(path.src, path.tgt)]
                }
            )
        if query.name is not None:
            bag = Counter(
                {
                    (path, mu.bind(query.name, path)): count
                    for (path, mu), count in bag.items()
                }
            )
        return bag

    # ------------------------------------------------------------------

    def _eval(self, pattern: ast.Pattern, max_length: int) -> Counter:
        if max_length < 0:
            return Counter()
        key = (pattern, max_length)
        if key not in self._memo:
            self._memo[key] = self._dispatch(pattern, max_length)
        return self._memo[key]

    def _dispatch(self, pattern: ast.Pattern, max_length: int) -> Counter:
        if isinstance(pattern, (ast.NodePattern, ast.EdgePattern)):
            return self._eval_atomic(pattern, max_length)
        if isinstance(pattern, ast.Concat):
            return self._eval_concat(pattern, max_length)
        if isinstance(pattern, ast.Union):
            return self._eval_union(pattern, max_length)
        if isinstance(pattern, ast.Conditioned):
            inner = self._eval(pattern.pattern, max_length)
            return Counter(
                {
                    (path, mu): count
                    for (path, mu), count in inner.items()
                    if satisfies(self.graph, mu, pattern.condition)
                }
            )
        if isinstance(pattern, ast.Repeat):
            return self._eval_repeat(pattern, max_length)
        raise TypeError(f"bag semantics does not support {pattern!r}")

    def _eval_atomic(self, pattern, max_length: int) -> Counter:
        from repro.gpc.semantics import BoundedEvaluator

        # Atomic patterns have exactly one derivation per match.
        helper = BoundedEvaluator(self.graph)
        return Counter(dict.fromkeys(helper.evaluate(pattern, max_length), 1))

    def _eval_concat(self, pattern: ast.Concat, max_length: int) -> Counter:
        left_min = min_path_length(pattern.left)
        right_min = min_path_length(pattern.right)
        left = self._eval(pattern.left, max_length - right_min)
        right = self._eval(pattern.right, max_length - left_min)
        by_source: dict[NodeId, list[tuple[Match, int]]] = {}
        for match, count in right.items():
            by_source.setdefault(match[0].src, []).append((match, count))
        out: Counter = Counter()
        for (left_path, left_mu), left_count in left.items():
            for (right_path, right_mu), right_count in by_source.get(
                left_path.tgt, ()
            ):
                if len(left_path) + len(right_path) > max_length:
                    continue
                merged = left_mu.unify(right_mu)
                if merged is None:
                    continue
                out[(left_path.concat(right_path), merged)] += left_count * right_count
        return out

    def _eval_union(self, pattern: ast.Union, max_length: int) -> Counter:
        union_domain = frozenset(infer_schema(pattern))
        out: Counter = Counter()
        for branch in (pattern.left, pattern.right):
            branch_bag = self._eval(branch, max_length)
            branch_domain = frozenset(infer_schema(branch))
            missing = union_domain - branch_domain
            for (path, mu), count in branch_bag.items():
                if missing:
                    padded = dict(mu)
                    padded.update({v: Nothing for v in missing})
                    mu = Assignment(padded)
                out[(path, mu)] += count
        return out

    def _eval_repeat(self, pattern: ast.Repeat, max_length: int) -> Counter:
        if min_path_length(pattern.pattern) < 1:
            raise CollectError(
                "bag semantics requires repetition bodies with positive "
                "minimum length (derivation counts diverge otherwise)"
            )
        domain = tuple(sorted(infer_schema(pattern.pattern)))
        out: Counter = Counter()
        if pattern.lower == 0:
            zero_mu = empty_group_assignment(domain)
            for node in self.graph.nodes:
                out[(Path.node(node), zero_mu)] += 1
        if pattern.upper == 0:
            return out
        base = self._eval(pattern.pattern, max_length)
        by_source: dict[NodeId, list] = {}
        for match, count in base.items():
            by_source.setdefault(match[0].src, []).append((match, count))
        seed = CollectAccumulator(mode=CollectMode.SYNTACTIC)
        current: Counter = Counter()
        for (path, mu), count in base.items():
            extended = seed.extend(path, mu)
            if extended is not None:
                current[(path, extended)] += count
        power = 1
        while current:
            if power >= pattern.lower and (
                pattern.upper is None or power <= pattern.upper
            ):
                for (path, accumulator), count in current.items():
                    out[(path, accumulator.finalize(domain))] += count
            if pattern.upper is not None and power >= pattern.upper:
                break
            if power > max_length:
                break
            next_states: Counter = Counter()
            for (path, accumulator), count in current.items():
                for (factor_path, factor_mu), factor_count in by_source.get(
                    path.tgt, ()
                ):
                    if len(path) + len(factor_path) > max_length:
                        continue
                    extended = accumulator.extend(factor_path, factor_mu)
                    if extended is None:
                        continue
                    next_states[(path.concat(factor_path), extended)] += (
                        count * factor_count
                    )
            current = next_states
            power += 1
        return out
